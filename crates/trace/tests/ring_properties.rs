//! Property suite for the NI trace ring (ISSUE 3 satellite).
//!
//! Arbitrary operation sequences — pushes of arbitrary events
//! interleaved with drains, over arbitrary capacities including the
//! disabled capacity 0 — must never panic, must preserve push order
//! through drains, must never exceed capacity, and must keep the exact
//! accounting identity `pushed == drained + retained + overflow`.

use nistream_trace::{TraceEvent, TraceRing};
use proptest::collection::vec;
use proptest::prelude::*;

/// Compact encodable op: Some(tag) = push an event derived from `tag`,
/// None = drain.
fn decode_event(tag: u64) -> TraceEvent {
    let at = tag.wrapping_mul(0x9e37_79b9);
    let stream = (tag % 7) as u32;
    let seq = tag;
    match tag % 6 {
        0 => TraceEvent::Admit {
            at,
            stream,
            period: 1 + tag % 50_000,
            loss_num: (tag % 3) as u32,
            loss_den: 1 + (tag % 4) as u32,
        },
        1 => TraceEvent::Reject {
            at,
            reason: (tag % 5) as u32,
        },
        2 => TraceEvent::Decision {
            at,
            stream: if tag % 2 == 0 { Some(stream) } else { None },
            dropped: (tag % 4) as u32,
            backlog: tag % 100,
            compares: tag % 64,
            touches: tag % 64,
        },
        3 => TraceEvent::Dispatch {
            at,
            stream,
            seq,
            len: (tag % 1500) as u32,
            deadline: at.wrapping_add(tag % 1000),
            on_time: tag % 2 == 0,
        },
        4 => TraceEvent::Drop { at, stream, seq },
        _ => TraceEvent::QueueDepth { at, depth: tag % 200 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn accounting_identity_holds_under_arbitrary_ops(
        cap in 0usize..12,
        ops in vec(0u64..2000, 0..200),
    ) {
        let mut ring = TraceRing::with_capacity(cap);
        let mut drained_total = 0u64;
        for &op in &ops {
            if op % 11 == 0 {
                drained_total += ring.drain().len() as u64;
                prop_assert_eq!(ring.len(), 0, "drain empties the ring");
            } else {
                ring.push(decode_event(op));
            }
            prop_assert!(ring.len() <= ring.capacity(), "capacity never exceeded");
            prop_assert_eq!(
                ring.pushed(),
                ring.drained() + ring.len() as u64 + ring.overflow(),
                "pushed == drained + retained + overflow"
            );
        }
        prop_assert_eq!(ring.drained(), drained_total);
    }

    #[test]
    fn drain_preserves_push_order_and_keeps_newest(
        cap in 1usize..16,
        tags in vec(0u64..10_000, 0..64),
    ) {
        let mut ring = TraceRing::with_capacity(cap);
        for &t in &tags {
            ring.push(decode_event(t));
        }
        let expect_overflow = tags.len().saturating_sub(cap) as u64;
        prop_assert_eq!(ring.overflow(), expect_overflow, "exact overflow == pushed - retained");
        let kept: Vec<TraceEvent> = tags
            .iter()
            .skip(tags.len().saturating_sub(cap))
            .map(|&t| decode_event(t))
            .collect();
        prop_assert_eq!(ring.drain(), kept, "oldest evicted first, order preserved");
    }

    #[test]
    fn serialization_of_any_event_is_stable(tag in 0u64..1_000_000) {
        let ev = decode_event(tag);
        let line = nistream_trace::event_line(&ev);
        let json = nistream_trace::event_json(&ev);
        prop_assert_eq!(&line, &nistream_trace::event_line(&ev));
        prop_assert_eq!(&json, &nistream_trace::event_json(&ev));
        prop_assert!(!line.contains('\n'));
        prop_assert!(json.starts_with("{\"ev\":\"") && json.ends_with('}'));
    }
}
