//! The compact NI-resident trace record.
//!
//! Every field is a plain integer: timestamps are the scheduler's
//! nanosecond virtual time (`u64`, the same fixed-point convention as
//! `dwcs::types::Time`), identifiers are raw `u32` stream indices. The
//! variants deliberately exclude placement-specific data — pool slot
//! addresses, NI buffer addresses, sink identities — so that the same
//! schedule produces byte-identical event streams on every placement.

/// One scheduler-observable event.
///
/// Ordering within one service pass is fixed by the service core:
/// `Drop*` (reclaim-before-dispatch, DESIGN.md §8), then `Decision`,
/// then `Dispatch*`, then `QueueDepth`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A stream was admitted.
    Admit {
        /// Admission time (ns, virtual).
        at: u64,
        /// Raw stream id.
        stream: u32,
        /// Request period / deadline spacing (ns).
        period: u64,
        /// Loss-tolerance numerator (x of x/y).
        loss_num: u32,
        /// Loss-tolerance denominator (y of x/y).
        loss_den: u32,
    },
    /// A stream open was refused (bad QoS spec, table full, ...).
    Reject {
        /// Refusal time (ns, virtual).
        at: u64,
        /// Embedding-defined status code (e.g. DVCM `status::BAD_QOS`).
        reason: u32,
    },
    /// One scheduling decision completed.
    Decision {
        /// Decision time (ns, virtual).
        at: u64,
        /// Winning stream, if any frame was selected.
        stream: Option<u32>,
        /// Late frames dropped while reaching this decision.
        dropped: u32,
        /// Frames still queued across streams after the decision.
        backlog: u64,
        /// Representation compare count for this decision.
        compares: u64,
        /// Representation touch count for this decision.
        touches: u64,
    },
    /// One frame handed to the placement's transport.
    Dispatch {
        /// Decision time of the pass that released the frame (ns).
        at: u64,
        /// Raw stream id.
        stream: u32,
        /// Frame sequence number within the stream.
        seq: u64,
        /// Payload length (bytes).
        len: u32,
        /// The deadline the frame was scheduled against (ns).
        deadline: u64,
        /// Whether the frame made its deadline.
        on_time: bool,
    },
    /// One frame dropped (late within loss budget, or stream close).
    Drop {
        /// Drop time (ns, virtual).
        at: u64,
        /// Raw stream id.
        stream: u32,
        /// Frame sequence number within the stream.
        seq: u64,
    },
    /// Total queued frames after one service pass.
    QueueDepth {
        /// Measurement time (ns, virtual).
        at: u64,
        /// Frames queued across all streams.
        depth: u64,
    },
}

impl TraceEvent {
    /// The event's timestamp (ns, virtual).
    pub fn at(&self) -> u64 {
        match *self {
            TraceEvent::Admit { at, .. }
            | TraceEvent::Reject { at, .. }
            | TraceEvent::Decision { at, .. }
            | TraceEvent::Dispatch { at, .. }
            | TraceEvent::Drop { at, .. }
            | TraceEvent::QueueDepth { at, .. } => at,
        }
    }

    /// The stream the event concerns, when it concerns exactly one.
    pub fn stream(&self) -> Option<u32> {
        match *self {
            TraceEvent::Admit { stream, .. }
            | TraceEvent::Dispatch { stream, .. }
            | TraceEvent::Drop { stream, .. } => Some(stream),
            TraceEvent::Decision { stream, .. } => stream,
            TraceEvent::Reject { .. } | TraceEvent::QueueDepth { .. } => None,
        }
    }
}
