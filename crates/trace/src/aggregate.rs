//! Host-side aggregation: fold drained events into counters and
//! histograms.
//!
//! Everything here is integer arithmetic so that summaries — like the
//! raw event streams — serialize byte-deterministically. Convenience
//! floating-point views (mean latency in ms, ...) live with the rest of
//! the repo's float bridges in `nistream_core::report`, never here.

use crate::event::TraceEvent;
use std::collections::BTreeMap;

/// A log₂ histogram over `u64` nanosecond values.
///
/// Bucket `i` holds values `v` with `⌊log₂ v⌋ = i - 1` (bucket 0 holds
/// exactly 0), i.e. bucket boundaries are powers of two — coarse, but
/// enough to separate microsecond decision latencies from millisecond
/// queueing tails, and integer-exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Recorded sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Occupancy of bucket `i` (0 for out-of-range `i`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// `(lower_bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }
}

/// Per-stream event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamAgg {
    /// Frames dispatched.
    pub dispatches: u64,
    /// Dispatches that made their deadline.
    pub on_time: u64,
    /// Dispatches past their deadline (send-late policy).
    pub late: u64,
    /// Frames dropped.
    pub drops: u64,
    /// Payload bytes dispatched.
    pub bytes: u64,
}

/// The folded view of one drained event stream.
#[derive(Clone, Debug, Default)]
pub struct Aggregate {
    /// Streams admitted.
    pub admits: u64,
    /// Stream opens refused.
    pub rejects: u64,
    /// Scheduling decisions observed.
    pub decisions: u64,
    /// Decisions that selected no frame.
    pub idle_decisions: u64,
    /// Total representation compares across decisions.
    pub compares: u64,
    /// Total representation touches across decisions.
    pub touches: u64,
    /// Largest post-decision backlog observed.
    pub max_backlog: u64,
    /// Lateness past deadline per dispatch (0 when on time), ns.
    pub latency: Histogram,
    /// Absolute change in per-stream inter-dispatch gap, ns.
    pub jitter: Histogram,
    streams: BTreeMap<u32, StreamAgg>,
    last_at: BTreeMap<u32, u64>,
    last_gap: BTreeMap<u32, u64>,
}

impl Aggregate {
    /// A fresh, empty aggregate.
    pub fn new() -> Aggregate {
        Aggregate::default()
    }

    /// Fold a slice of events (typically one ring drain).
    pub fn fold_all(&mut self, events: &[TraceEvent]) {
        for ev in events {
            self.fold(ev);
        }
    }

    /// Fold one event.
    pub fn fold(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Admit { .. } => self.admits += 1,
            TraceEvent::Reject { .. } => self.rejects += 1,
            TraceEvent::Decision {
                stream,
                backlog,
                compares,
                touches,
                ..
            } => {
                self.decisions += 1;
                if stream.is_none() {
                    self.idle_decisions += 1;
                }
                self.compares += compares;
                self.touches += touches;
                self.max_backlog = self.max_backlog.max(backlog);
            }
            TraceEvent::Dispatch {
                at,
                stream,
                len,
                deadline,
                on_time,
                ..
            } => {
                let s = self.streams.entry(stream).or_default();
                s.dispatches += 1;
                if on_time {
                    s.on_time += 1;
                } else {
                    s.late += 1;
                }
                s.bytes += u64::from(len);
                self.latency.record(at.saturating_sub(deadline));
                if let Some(&prev) = self.last_at.get(&stream) {
                    let gap = at.saturating_sub(prev);
                    if let Some(&pg) = self.last_gap.get(&stream) {
                        self.jitter.record(gap.abs_diff(pg));
                    }
                    self.last_gap.insert(stream, gap);
                }
                self.last_at.insert(stream, at);
            }
            TraceEvent::Drop { stream, .. } => {
                self.streams.entry(stream).or_default().drops += 1;
            }
            TraceEvent::QueueDepth { depth, .. } => {
                self.max_backlog = self.max_backlog.max(depth);
            }
        }
    }

    /// Per-stream counters, ascending by stream id.
    pub fn streams(&self) -> impl Iterator<Item = (u32, &StreamAgg)> {
        self.streams.iter().map(|(&sid, agg)| (sid, agg))
    }

    /// Counters for one stream, if it appeared in the trace.
    pub fn stream(&self, sid: u32) -> Option<&StreamAgg> {
        self.streams.get(&sid)
    }

    /// Total frames dispatched across streams.
    pub fn total_dispatches(&self) -> u64 {
        self.streams.values().map(|s| s.dispatches).sum()
    }

    /// Total frames dropped across streams.
    pub fn total_drops(&self) -> u64 {
        self.streams.values().map(|s| s.drops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1, "zero bucket");
        assert_eq!(h.bucket(1), 1, "v=1");
        assert_eq!(h.bucket(2), 2, "v in [2,4)");
        assert_eq!(h.bucket(3), 1, "v in [4,8)");
        assert_eq!(h.bucket(11), 1, "v in [1024,2048)");
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (4, 1), (1024, 1)]);
    }

    #[test]
    fn fold_tracks_streams_latency_and_jitter() {
        let mut a = Aggregate::new();
        a.fold_all(&[
            TraceEvent::Admit {
                at: 0,
                stream: 1,
                period: 10,
                loss_num: 1,
                loss_den: 2,
            },
            TraceEvent::Dispatch {
                at: 10,
                stream: 1,
                seq: 0,
                len: 100,
                deadline: 10,
                on_time: true,
            },
            TraceEvent::Dispatch {
                at: 25,
                stream: 1,
                seq: 1,
                len: 100,
                deadline: 20,
                on_time: false,
            },
            TraceEvent::Dispatch {
                at: 30,
                stream: 1,
                seq: 2,
                len: 100,
                deadline: 30,
                on_time: true,
            },
            TraceEvent::Drop {
                at: 40,
                stream: 1,
                seq: 3,
            },
            TraceEvent::QueueDepth { at: 40, depth: 7 },
        ]);
        let s = a.stream(1).copied().unwrap_or_default();
        assert_eq!((s.dispatches, s.on_time, s.late, s.drops, s.bytes), (3, 2, 1, 1, 300));
        assert_eq!(a.latency.count(), 3);
        assert_eq!(a.latency.sum(), 5, "only the late dispatch adds lateness");
        // Gaps: 15 then 5 → one jitter sample of 10.
        assert_eq!(a.jitter.count(), 1);
        assert_eq!(a.jitter.sum(), 10);
        assert_eq!(a.max_backlog, 7);
        assert_eq!(a.admits, 1);
    }
}
