//! Canonical serialization of drained traces: text lines, JSON, CSV.
//!
//! All three renderings are **byte-deterministic**: the same event
//! sequence always serializes to the same bytes (integer formatting
//! only, `BTreeMap`-ordered summaries, no timestamps of our own). The
//! golden-trace and determinism suites rely on this by comparing raw
//! serialized bytes across placements and across same-seed runs.
//!
//! The JSON layout (`schema = "nistream-trace/v1"`):
//!
//! ```json
//! {"schema":"nistream-trace/v1",
//!  "runs":[{"label":"...","overflow":0,
//!           "events":[{"ev":"dispatch","at":1000,...},...],
//!           "summary":{...,"streams":[...]}}]}
//! ```

use crate::aggregate::Aggregate;
use crate::event::TraceEvent;
use crate::ring::TraceRing;
use std::fmt::Write as _;

/// One drained trace: the retained events plus how many the ring lost.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceCapture {
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events the ring evicted before this drain (exact count).
    pub overflow: u64,
}

impl TraceCapture {
    /// Drain `ring` into a capture.
    pub fn from_ring(ring: &mut TraceRing) -> TraceCapture {
        TraceCapture {
            events: ring.drain(),
            overflow: ring.overflow(),
        }
    }

    /// Whether the capture holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One event as a canonical text line (stable across releases; the
/// golden-trace tests byte-compare these).
pub fn event_line(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::Admit {
            at,
            stream,
            period,
            loss_num,
            loss_den,
        } => format!("admit at={at} stream={stream} period={period} loss={loss_num}/{loss_den}"),
        TraceEvent::Reject { at, reason } => format!("reject at={at} reason={reason}"),
        TraceEvent::Decision {
            at,
            stream,
            dropped,
            backlog,
            compares,
            touches,
        } => {
            let sid = stream.map_or_else(|| "-".to_string(), |s| s.to_string());
            format!("decision at={at} stream={sid} dropped={dropped} backlog={backlog} compares={compares} touches={touches}")
        }
        TraceEvent::Dispatch {
            at,
            stream,
            seq,
            len,
            deadline,
            on_time,
        } => format!(
            "dispatch at={at} stream={stream} seq={seq} len={len} deadline={deadline} on_time={}",
            u8::from(on_time)
        ),
        TraceEvent::Drop { at, stream, seq } => format!("drop at={at} stream={stream} seq={seq}"),
        TraceEvent::QueueDepth { at, depth } => format!("qdepth at={at} depth={depth}"),
    }
}

/// A whole event sequence as newline-terminated canonical lines.
pub fn to_lines(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_line(ev));
        out.push('\n');
    }
    out
}

/// One event as a JSON object.
pub fn event_json(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::Admit {
            at,
            stream,
            period,
            loss_num,
            loss_den,
        } => format!(
            r#"{{"ev":"admit","at":{at},"stream":{stream},"period":{period},"loss_num":{loss_num},"loss_den":{loss_den}}}"#
        ),
        TraceEvent::Reject { at, reason } => format!(r#"{{"ev":"reject","at":{at},"reason":{reason}}}"#),
        TraceEvent::Decision {
            at,
            stream,
            dropped,
            backlog,
            compares,
            touches,
        } => {
            let sid = stream.map_or_else(|| "null".to_string(), |s| s.to_string());
            format!(
                r#"{{"ev":"decision","at":{at},"stream":{sid},"dropped":{dropped},"backlog":{backlog},"compares":{compares},"touches":{touches}}}"#
            )
        }
        TraceEvent::Dispatch {
            at,
            stream,
            seq,
            len,
            deadline,
            on_time,
        } => format!(
            r#"{{"ev":"dispatch","at":{at},"stream":{stream},"seq":{seq},"len":{len},"deadline":{deadline},"on_time":{on_time}}}"#
        ),
        TraceEvent::Drop { at, stream, seq } => {
            format!(r#"{{"ev":"drop","at":{at},"stream":{stream},"seq":{seq}}}"#)
        }
        TraceEvent::QueueDepth { at, depth } => format!(r#"{{"ev":"qdepth","at":{at},"depth":{depth}}}"#),
    }
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

fn summary_json(agg: &Aggregate) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        r#"{{"admits":{},"rejects":{},"decisions":{},"idle_decisions":{},"compares":{},"touches":{},"max_backlog":{},"dispatches":{},"drops":{},"latency_sum_ns":{},"latency_max_ns":{},"jitter_sum_ns":{},"jitter_count":{},"streams":["#,
        agg.admits,
        agg.rejects,
        agg.decisions,
        agg.idle_decisions,
        agg.compares,
        agg.touches,
        agg.max_backlog,
        agg.total_dispatches(),
        agg.total_drops(),
        agg.latency.sum(),
        agg.latency.max(),
        agg.jitter.sum(),
        agg.jitter.count(),
    );
    for (i, (sid, st)) in agg.streams().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            r#"{{"stream":{},"dispatches":{},"on_time":{},"late":{},"drops":{},"bytes":{}}}"#,
            sid, st.dispatches, st.on_time, st.late, st.drops, st.bytes
        );
    }
    s.push_str("]}");
    s
}

/// Serialize labelled runs to the `nistream-trace/v1` JSON document.
pub fn to_json(runs: &[(&str, &TraceCapture)]) -> String {
    let mut out = String::from(r#"{"schema":"nistream-trace/v1","runs":["#);
    for (i, (label, cap)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut agg = Aggregate::new();
        agg.fold_all(&cap.events);
        let _ = write!(
            out,
            r#"{{"label":"{}","overflow":{},"events":["#,
            escape(label),
            cap.overflow
        );
        for (j, ev) in cap.events.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&event_json(ev));
        }
        let _ = write!(out, r#"],"summary":{}}}"#, summary_json(&agg));
    }
    out.push_str("]}");
    out
}

/// Serialize labelled runs to per-stream summary CSV (one `all` row per
/// run, then one row per stream).
pub fn to_csv(runs: &[(&str, &TraceCapture)]) -> String {
    let mut out = String::from("label,stream,dispatches,on_time,late,drops,bytes,overflow\n");
    for (label, cap) in runs {
        let mut agg = Aggregate::new();
        agg.fold_all(&cap.events);
        let _ = writeln!(
            out,
            "{label},all,{},{},{},{},{},{}",
            agg.total_dispatches(),
            agg.streams().map(|(_, s)| s.on_time).sum::<u64>(),
            agg.streams().map(|(_, s)| s.late).sum::<u64>(),
            agg.total_drops(),
            agg.streams().map(|(_, s)| s.bytes).sum::<u64>(),
            cap.overflow,
        );
        for (sid, st) in agg.streams() {
            let _ = writeln!(
                out,
                "{label},{sid},{},{},{},{},{},",
                st.dispatches, st.on_time, st.late, st.drops, st.bytes
            );
        }
    }
    out
}

/// Cheap structural check used by tests and tools: is `json` shaped
/// like a `nistream-trace/v1` document? (Prefix, a `runs` array, and
/// balanced braces/brackets — not a full JSON parse.)
pub fn is_schema_valid(json: &str) -> bool {
    let t = json.trim();
    if !t.starts_with(r#"{"schema":"nistream-trace/v1""#) || !t.contains(r#""runs":["#) || !t.ends_with('}') {
        return false;
    }
    let mut braces = 0i64;
    let mut brackets = 0i64;
    for c in t.chars() {
        match c {
            '{' => braces += 1,
            '}' => braces -= 1,
            '[' => brackets += 1,
            ']' => brackets -= 1,
            _ => {}
        }
        if braces < 0 || brackets < 0 {
            return false;
        }
    }
    braces == 0 && brackets == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceCapture {
        TraceCapture {
            events: vec![
                TraceEvent::Admit {
                    at: 0,
                    stream: 0,
                    period: 1000,
                    loss_num: 1,
                    loss_den: 2,
                },
                TraceEvent::Decision {
                    at: 1000,
                    stream: Some(0),
                    dropped: 0,
                    backlog: 1,
                    compares: 2,
                    touches: 3,
                },
                TraceEvent::Dispatch {
                    at: 1000,
                    stream: 0,
                    seq: 0,
                    len: 64,
                    deadline: 1000,
                    on_time: true,
                },
                TraceEvent::QueueDepth { at: 1000, depth: 1 },
            ],
            overflow: 0,
        }
    }

    #[test]
    fn json_is_schema_valid_and_deterministic() {
        let cap = sample();
        let a = to_json(&[("run", &cap)]);
        let b = to_json(&[("run", &cap)]);
        assert_eq!(a, b);
        assert!(is_schema_valid(&a), "{a}");
        assert!(a.contains(r#""ev":"dispatch""#));
        assert!(a.contains(r#""summary":{"admits":1"#));
    }

    #[test]
    fn schema_check_rejects_other_documents() {
        assert!(!is_schema_valid("{}"));
        assert!(!is_schema_valid(r#"{"schema":"nistream-trace/v1","runs":["#));
        assert!(!is_schema_valid(r#"{"schema":"other","runs":[]}"#));
    }

    #[test]
    fn lines_round_every_variant() {
        let cap = sample();
        let text = to_lines(&cap.events);
        assert_eq!(text.lines().count(), cap.events.len());
        assert!(text.starts_with("admit at=0 stream=0 period=1000 loss=1/2\n"));
        assert!(text.ends_with("qdepth at=1000 depth=1\n"));
    }

    #[test]
    fn csv_has_totals_and_stream_rows() {
        let cap = sample();
        let csv = to_csv(&[("r", &cap)]);
        assert!(csv.starts_with("label,stream,"));
        assert!(csv.contains("r,all,1,1,0,0,64,0"));
        assert!(csv.contains("r,0,1,1,0,0,64,"));
    }
}
