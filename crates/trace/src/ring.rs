//! The NI-resident trace ring: fixed capacity, drop-oldest, exact
//! accounting.
//!
//! # Sizing
//!
//! The i960RD evaluation boards carry 4 MB of local RAM shared by frame
//! buffers, stream state and the DVCM run-time (paper §4). A
//! [`TraceEvent`] occupies well under 64 bytes, so the default NI
//! capacity of [`TraceRing::NI_DEFAULT_CAPACITY`] events costs at most
//! ~512 KB — an eighth of board RAM — while holding several seconds of
//! events at the paper's decision rates. When the host drains too
//! slowly the ring **drops its oldest events** (the newest events are
//! the ones a stalled host needs to diagnose the stall) and counts every
//! loss in [`overflow`](TraceRing::overflow), so aggregation always
//! knows exactly how much it did not see.
//!
//! # Invariant
//!
//! `pushed == drained + len + overflow` at every point in the ring's
//! life — pinned by the property suite in `tests/ring_properties.rs`.
//!
//! Like all NI-resident code this module is integer-only and
//! panic-free; the single allocation happens at construction
//! (`VecDeque::with_capacity`) and steady-state push/drain never grows
//! the buffer.

use crate::event::TraceEvent;
use std::collections::VecDeque;

/// Fixed-capacity drop-oldest event buffer.
///
/// Capacity 0 builds a *disabled* ring: pushes are counted as overflow
/// and nothing is retained, letting embeddings keep one unconditional
/// code path.
#[derive(Debug, Default)]
pub struct TraceRing {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    pushed: u64,
    overflow: u64,
    drained: u64,
}

impl TraceRing {
    /// Default NI-side capacity (events); see the module docs for the
    /// memory-budget arithmetic.
    pub const NI_DEFAULT_CAPACITY: usize = 8192;

    /// A ring holding at most `cap` events (0 = disabled).
    pub fn with_capacity(cap: usize) -> TraceRing {
        TraceRing {
            buf: VecDeque::with_capacity(cap),
            cap,
            pushed: 0,
            overflow: 0,
            drained: 0,
        }
    }

    /// Append one event, evicting the oldest if the ring is full.
    // analysis: hot
    pub fn push(&mut self, ev: TraceEvent) {
        self.pushed += 1;
        if self.cap == 0 {
            self.overflow += 1;
            return;
        }
        if self.buf.len() >= self.cap {
            let _ = self.buf.pop_front();
            self.overflow += 1;
        }
        // analysis: allow(ni-no-alloc) reason="bounded by `cap`: eviction precedes the push at capacity, which is reserved at construction"
        self.buf.push_back(ev);
    }

    /// Remove and return all retained events, oldest first.
    // analysis: allow(ni-no-alloc) reason="host-side drain; the name-keyed call graph reaches it through the service pass's unrelated `drops.drain(..)`"
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let out: Vec<TraceEvent> = self.buf.drain(..).collect();
        self.drained += out.len() as u64;
        out
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring currently retains no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events lost to eviction (plus every push while disabled).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total events handed out by [`drain`](TraceRing::drain).
    pub fn drained(&self) -> u64 {
        self.drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent::Drop {
            at: seq,
            stream: 0,
            seq,
        }
    }

    #[test]
    fn drop_oldest_with_exact_overflow() {
        let mut r = TraceRing::with_capacity(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overflow(), 2);
        let out = r.drain();
        assert_eq!(out, vec![ev(2), ev(3), ev(4)], "oldest evicted, order kept");
        assert_eq!(r.pushed(), r.drained() + r.len() as u64 + r.overflow());
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let mut r = TraceRing::with_capacity(0);
        for i in 0..4 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 0);
        assert_eq!(r.overflow(), 4);
        assert!(r.drain().is_empty());
        assert_eq!(r.pushed(), r.drained() + r.len() as u64 + r.overflow());
    }

    #[test]
    fn drain_resets_retention_but_not_counters() {
        let mut r = TraceRing::with_capacity(8);
        r.push(ev(0));
        r.push(ev(1));
        assert_eq!(r.drain().len(), 2);
        assert!(r.is_empty());
        r.push(ev(2));
        assert_eq!(r.drain(), vec![ev(2)]);
        assert_eq!(r.pushed(), 3);
        assert_eq!(r.drained(), 3);
        assert_eq!(r.overflow(), 0);
    }
}
