//! Two-tier deterministic tracing for the NI streaming stack.
//!
//! The paper's measurements (per-decision latency in Tables 1–3, queuing
//! delay and bandwidth under host load in Figures 6–10) all hinge on
//! *observing* scheduler behaviour without perturbing it. This crate
//! splits that concern the way the hardware does:
//!
//! * **NI tier** ([`event`], [`ring`]) — code that runs beside the
//!   scheduler on the co-processor. [`TraceEvent`] is a compact,
//!   integer-only record; [`TraceRing`] is a fixed-capacity drop-oldest
//!   buffer sized against the i960RD's 4 MB RAM budget. No floating
//!   point, no panicking constructs, no allocation after construction —
//!   the same `nistream-analysis` lint families that police the
//!   scheduler itself apply here.
//! * **Host tier** ([`aggregate`], [`export`]) — the host drains the
//!   ring over the (simulated) PCI bus and folds events into per-stream
//!   counters and log₂ latency/jitter histograms, then renders canonical
//!   text lines, JSON, or CSV. Serialization is byte-deterministic: the
//!   golden-trace and determinism test suites compare serialized traces
//!   with `assert_eq!` on the raw bytes.
//!
//! The event stream is emitted centrally by `dwcs::svc::SchedService`
//! through the `Platform::tracer` hook, so every placement — host
//! engine, DVCM extension, both simulators — produces the *same* events
//! for the same schedule.

pub mod aggregate;
pub mod event;
pub mod export;
pub mod ring;

pub use aggregate::{Aggregate, Histogram, StreamAgg};
pub use event::TraceEvent;
pub use export::{event_json, event_line, is_schema_valid, to_csv, to_json, to_lines, TraceCapture};
pub use ring::TraceRing;
