//! # i2o — the I2O messaging layer
//!
//! The paper's NICs are **I2O-compliant** boards: host and I/O processor
//! (IOP) communicate through the I2O message-passing protocol — fixed-size
//! message frames living in IOP-local memory, addressed by MFAs (Message
//! Frame Addresses) that circulate through four hardware FIFOs (inbound
//! free/post, outbound free/post). "It allows portable device driver
//! development by defining a message-passing protocol between the host and
//! peer I/O devices … The focus is on relieving the host from tasks that
//! may be offloaded to a programmable NI" (§5).
//!
//! This crate implements the protocol machinery the rest of the system
//! rides on:
//!
//! * [`message`] — message frames: function codes for the device classes
//!   the paper's system uses (Executive, LAN packet send, BSA block
//!   storage reads, and the **private class** that carries DVCM extension
//!   traffic), initiator/target TIDs, transaction contexts, bounded
//!   payloads, and exact word-level encode/decode.
//! * [`queues::MessageUnit`] — the four-FIFO messaging unit with an
//!   MFA-indexed frame pool, faithful to the post/free discipline
//!   (allocate → write → post; consume → reply → return).
//! * [`devices`] — a TID-indexed device table for routing.
//! * [`memory::CardMemory`] — the card's local memory arena (the 4 MB the
//!   i960RD ships with), where the single copy of every frame lives.
//! * [`bsa::BsaDevice`] — the Block Storage class: block reads DMA from
//!   the disk image into card memory (SGL-style), as real I2O does.
//! * [`lan::LanPort`] — the LAN class: packet sends read card-memory
//!   extents out to a transmit queue.
//!
//! Transport *cost* is not modelled here — the host touches these FIFOs
//! with PIO reads/writes and moves payloads by DMA, and `serversim` prices
//! those through `hwsim::PciBus` (Table 5's 3.6/3.1 µs words and
//! 66.27 MB/s bulk).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsa;
pub mod devices;
pub mod lan;
pub mod memory;
pub mod message;
pub mod queues;

pub use bsa::BsaDevice;
pub use devices::{DeviceClass, DeviceTable, Tid};
pub use lan::LanPort;
pub use memory::CardMemory;
pub use message::{I2oFunction, MessageFrame};
pub use queues::{MessageUnit, Mfa, PostError};
