//! I2O message frames and their word-level encoding.
//!
//! Real I2O messages are little-endian 32-bit word arrays in IOP memory:
//! a standard header (version/offset, flags, size, target/initiator
//! addresses, function, transaction contexts) followed by function-specific
//! payload. We encode exactly that shape — frames round-trip through
//! `encode`/`decode` bit-exactly — restricted to the function codes the
//! paper's system exercises.

use crate::devices::Tid;
use core::fmt;

/// Maximum frame size in 32-bit words (a common IOP configuration: 128-byte
/// frames = 32 words).
pub const MAX_FRAME_WORDS: usize = 32;

/// Header words before the payload.
pub const HEADER_WORDS: usize = 5;

/// Maximum payload words per frame.
pub const MAX_PAYLOAD_WORDS: usize = MAX_FRAME_WORDS - HEADER_WORDS;

/// I2O function codes used by this system (subset of the spec's function
/// space, with the spec's numeric values where they exist).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum I2oFunction {
    /// `UtilNOP` — liveness probe.
    UtilNop,
    /// `ExecOutboundInit` — initialise the outbound queue.
    ExecOutboundInit,
    /// `ExecSysQuiesce` — stop IOP activity.
    ExecSysQuiesce,
    /// LAN class: transmit a packet (payload: buffer address + length).
    LanPacketSend,
    /// LAN class: receive-buffer post.
    LanReceivePost,
    /// BSA (block storage) class: read blocks (payload: LBA + count +
    /// destination address).
    BsaBlockRead,
    /// BSA class: write blocks.
    BsaBlockWrite,
    /// Private class — vendor extension traffic; this is how DVCM
    /// instructions travel (org id discriminates the extension protocol).
    Private {
        /// Organisation id (vendor namespace).
        org: u16,
        /// Extension-defined function.
        func: u16,
    },
    /// Reply to any of the above (bit 7 of the function in real I2O).
    Reply {
        /// Function being replied to, encoded.
        of: u16,
        /// Completion status (0 = success).
        status: u8,
    },
}

impl I2oFunction {
    fn code(self) -> u32 {
        match self {
            I2oFunction::UtilNop => 0x00,
            I2oFunction::ExecOutboundInit => 0xA1,
            I2oFunction::ExecSysQuiesce => 0xC3,
            I2oFunction::LanPacketSend => 0x38,
            I2oFunction::LanReceivePost => 0x39,
            I2oFunction::BsaBlockRead => 0x30,
            I2oFunction::BsaBlockWrite => 0x31,
            I2oFunction::Private { .. } => 0xFF,
            I2oFunction::Reply { .. } => 0x80,
        }
    }

    /// Extra word the function contributes to the header (private org/func,
    /// reply status).
    fn aux_word(self) -> u32 {
        match self {
            I2oFunction::Private { org, func } => (u32::from(org) << 16) | u32::from(func),
            I2oFunction::Reply { of, status } => (u32::from(of) << 16) | u32::from(status),
            _ => 0,
        }
    }

    fn from_words(code: u32, aux: u32) -> Option<I2oFunction> {
        Some(match code {
            0x00 => I2oFunction::UtilNop,
            0xA1 => I2oFunction::ExecOutboundInit,
            0xC3 => I2oFunction::ExecSysQuiesce,
            0x38 => I2oFunction::LanPacketSend,
            0x39 => I2oFunction::LanReceivePost,
            0x30 => I2oFunction::BsaBlockRead,
            0x31 => I2oFunction::BsaBlockWrite,
            0xFF => I2oFunction::Private {
                org: (aux >> 16) as u16,
                func: (aux & 0xFFFF) as u16,
            },
            0x80 => I2oFunction::Reply {
                of: (aux >> 16) as u16,
                status: (aux & 0xFF) as u8,
            },
            _ => return None,
        })
    }
}

/// Frame decode failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Fewer words than a header.
    TooShort,
    /// Size field disagrees with the word count.
    SizeMismatch,
    /// Unknown function code.
    UnknownFunction(u32),
    /// Frame exceeds [`MAX_FRAME_WORDS`].
    TooLong,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TooShort => write!(f, "frame shorter than the I2O header"),
            DecodeError::SizeMismatch => write!(f, "size field disagrees with frame length"),
            DecodeError::UnknownFunction(c) => write!(f, "unknown I2O function 0x{c:02X}"),
            DecodeError::TooLong => write!(f, "frame exceeds {MAX_FRAME_WORDS} words"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// An I2O message frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MessageFrame {
    /// Function being requested/replied.
    pub function: I2oFunction,
    /// Target device.
    pub target: Tid,
    /// Initiating device (host OS module or IOP device).
    pub initiator: Tid,
    /// Initiator's transaction context — returned verbatim in replies so
    /// the initiator can match them (we pack a 32-bit cookie).
    pub context: u32,
    /// Function-specific payload words.
    pub payload: Vec<u32>,
}

impl MessageFrame {
    /// Build a frame; panics if the payload exceeds frame capacity (frames
    /// are fixed-size in hardware; callers chunk).
    pub fn new(function: I2oFunction, target: Tid, initiator: Tid, context: u32, payload: Vec<u32>) -> MessageFrame {
        assert!(payload.len() <= MAX_PAYLOAD_WORDS, "payload exceeds I2O frame");
        MessageFrame {
            function,
            target,
            initiator,
            context,
            payload,
        }
    }

    /// A reply frame to this request with the given status and payload.
    pub fn reply(&self, status: u8, payload: Vec<u32>) -> MessageFrame {
        MessageFrame::new(
            I2oFunction::Reply {
                of: self.function.code() as u16,
                status,
            },
            self.initiator,
            self.target,
            self.context,
            payload,
        )
    }

    /// Total size in words.
    pub fn words(&self) -> usize {
        HEADER_WORDS + self.payload.len()
    }

    /// Size in bytes (what a PIO/DMA transport moves).
    pub fn bytes(&self) -> u64 {
        (self.words() * 4) as u64
    }

    /// Encode to the word-array wire form.
    pub fn encode(&self) -> Vec<u32> {
        let mut w = Vec::with_capacity(self.words());
        // Word 0: version (01) | flags | message size in words.
        w.push(0x0001_0000 | self.words() as u32);
        // Word 1: function | target TID | initiator TID packed.
        w.push((self.function.code() << 24) | (u32::from(self.target.0) << 12) | u32::from(self.initiator.0));
        // Word 2: function auxiliary (private org/func, reply status).
        w.push(self.function.aux_word());
        // Word 3: initiator context.
        w.push(self.context);
        // Word 4: reserved (alignment to the spec's two-context layout).
        w.push(0);
        w.extend_from_slice(&self.payload);
        w
    }

    /// Decode from wire form.
    pub fn decode(words: &[u32]) -> Result<MessageFrame, DecodeError> {
        if words.len() < HEADER_WORDS {
            return Err(DecodeError::TooShort);
        }
        if words.len() > MAX_FRAME_WORDS {
            return Err(DecodeError::TooLong);
        }
        let size = (words[0] & 0xFFFF) as usize;
        if size != words.len() {
            return Err(DecodeError::SizeMismatch);
        }
        let code = words[1] >> 24;
        let target = Tid(((words[1] >> 12) & 0xFFF) as u16);
        let initiator = Tid((words[1] & 0xFFF) as u16);
        let function = I2oFunction::from_words(code, words[2]).ok_or(DecodeError::UnknownFunction(code))?;
        Ok(MessageFrame {
            function,
            target,
            initiator,
            context: words[3],
            payload: words[HEADER_WORDS..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(func: I2oFunction) -> MessageFrame {
        MessageFrame::new(func, Tid(0x123), Tid(0x001), 0xDEAD_BEEF, vec![1, 2, 3])
    }

    #[test]
    fn round_trips_every_function() {
        let funcs = [
            I2oFunction::UtilNop,
            I2oFunction::ExecOutboundInit,
            I2oFunction::ExecSysQuiesce,
            I2oFunction::LanPacketSend,
            I2oFunction::LanReceivePost,
            I2oFunction::BsaBlockRead,
            I2oFunction::BsaBlockWrite,
            I2oFunction::Private { org: 0x4754, func: 7 }, // 'GT'
            I2oFunction::Reply { of: 0x38, status: 2 },
        ];
        for f in funcs {
            let m = sample(f);
            let decoded = MessageFrame::decode(&m.encode()).unwrap();
            assert_eq!(decoded, m, "function {f:?}");
        }
    }

    #[test]
    fn reply_swaps_addressing_and_keeps_context() {
        let req = sample(I2oFunction::BsaBlockRead);
        let rep = req.reply(0, vec![42]);
        assert_eq!(rep.target, req.initiator);
        assert_eq!(rep.initiator, req.target);
        assert_eq!(rep.context, req.context);
        match rep.function {
            I2oFunction::Reply { of, status } => {
                assert_eq!(of, 0x30);
                assert_eq!(status, 0);
            }
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(MessageFrame::decode(&[0; 2]), Err(DecodeError::TooShort));
        let mut w = sample(I2oFunction::UtilNop).encode();
        w[0] = 0x0001_0000 | 99; // wrong size
        assert_eq!(MessageFrame::decode(&w), Err(DecodeError::SizeMismatch));
        let mut w = sample(I2oFunction::UtilNop).encode();
        w[1] = 0x77 << 24; // bogus function
        assert_eq!(MessageFrame::decode(&w), Err(DecodeError::UnknownFunction(0x77)));
        let long = vec![0x0001_0000 | 40; 40];
        assert_eq!(MessageFrame::decode(&long), Err(DecodeError::TooLong));
    }

    #[test]
    #[should_panic(expected = "payload exceeds")]
    fn oversized_payload_rejected() {
        let _ = MessageFrame::new(I2oFunction::UtilNop, Tid(1), Tid(2), 0, vec![0; MAX_PAYLOAD_WORDS + 1]);
    }

    #[test]
    fn sizes_are_consistent() {
        let m = sample(I2oFunction::LanPacketSend);
        assert_eq!(m.words(), 8);
        assert_eq!(m.bytes(), 32);
        assert_eq!(m.encode().len(), m.words());
    }
}
