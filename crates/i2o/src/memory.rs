//! Card-local memory — where the single copy of every frame lives.
//!
//! §3.1 of the paper: *"To conserve memory, we maintain a single copy of
//! frames in NI memory and allow scheduling analysis and dispatch to
//! manipulate addresses of frames."* The i960RD ships with 4 MB on board
//! (expandable to 36 MB). [`CardMemory`] models that arena: a flat
//! byte-addressed store that BSA block reads DMA into, producers address
//! frames out of, and the LAN port transmits from — with bounds checking
//! standing in for the card's fault behaviour.

/// Default on-board memory (the i960RD's 4 MB).
pub const DEFAULT_CARD_MEMORY: usize = 4 * 1024 * 1024;

/// The card's local memory arena.
pub struct CardMemory {
    bytes: Vec<u8>,
    /// Bytes written (diagnostics).
    pub bytes_in: u64,
    /// Bytes read out.
    pub bytes_out: u64,
    /// Rejected out-of-bounds accesses.
    pub faults: u64,
}

impl CardMemory {
    /// Arena of `size` bytes.
    pub fn new(size: usize) -> CardMemory {
        CardMemory {
            bytes: vec![0; size],
            bytes_in: 0,
            bytes_out: 0,
            faults: 0,
        }
    }

    /// The i960RD's stock configuration.
    pub fn i960rd() -> CardMemory {
        CardMemory::new(DEFAULT_CARD_MEMORY)
    }

    /// Capacity in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Write `data` at `addr`; `false` (fault) if out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> bool {
        let Ok(start) = usize::try_from(addr) else {
            self.faults += 1;
            return false;
        };
        let Some(end) = start.checked_add(data.len()) else {
            self.faults += 1;
            return false;
        };
        if end > self.bytes.len() {
            self.faults += 1;
            return false;
        }
        self.bytes[start..end].copy_from_slice(data);
        self.bytes_in += data.len() as u64;
        true
    }

    /// Read `len` bytes at `addr`.
    pub fn read(&mut self, addr: u64, len: usize) -> Option<&[u8]> {
        let start = usize::try_from(addr).ok()?;
        let end = start.checked_add(len)?;
        if end > self.bytes.len() {
            self.faults += 1;
            return None;
        }
        self.bytes_out += len as u64;
        Some(&self.bytes[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut m = CardMemory::new(1024);
        assert!(m.write(100, b"frame-bytes"));
        assert_eq!(m.read(100, 11).unwrap(), b"frame-bytes");
        assert_eq!(m.bytes_in, 11);
        assert_eq!(m.bytes_out, 11);
        assert_eq!(m.faults, 0);
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut m = CardMemory::new(64);
        assert!(!m.write(60, &[0; 8]));
        assert!(m.read(60, 8).is_none());
        assert!(!m.write(u64::MAX - 2, &[0; 8]));
        assert_eq!(m.faults, 3);
        // In-bounds still works afterwards.
        assert!(m.write(0, &[1; 64]));
    }

    #[test]
    fn stock_size_is_4mb() {
        assert_eq!(CardMemory::i960rd().size(), 4 * 1024 * 1024);
    }
}
