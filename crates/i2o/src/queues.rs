//! The messaging unit: MFA FIFOs and the frame pool.
//!
//! Protocol discipline, exactly as on the i960RD:
//!
//! * **Host → IOP**: read an MFA from the *inbound free* FIFO (a PIO read —
//!   the expensive 3.6 µs kind), write the message frame at that address,
//!   post the MFA to the *inbound post* FIFO (a PIO write).
//! * **IOP → host**: IOP takes an MFA from *outbound free*, writes the
//!   reply, posts to *outbound post*; the host drains it (interrupt or
//!   poll) and returns the MFA to *outbound free*.
//!
//! An MFA whose frame slot is still occupied cannot re-enter a free list
//! (use-after-free of card memory) — the unit enforces that.

use crate::message::MessageFrame;
use std::collections::VecDeque;

/// Message Frame Address: index into the IOP's frame pool (the real thing
/// is a card-local byte address; the pool slot index is its image).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mfa(pub u32);

/// Errors from FIFO operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PostError {
    /// No free MFAs available (producer outrunning consumer).
    NoFreeFrames,
    /// Posting an MFA that was never allocated from the free list, or
    /// double-posting.
    BadMfa,
    /// Post FIFO at capacity.
    FifoFull,
}

/// One direction's FIFO pair + frame slots.
struct Channel {
    free: VecDeque<Mfa>,
    post: VecDeque<Mfa>,
    slots: Vec<Option<MessageFrame>>,
    fifo_depth: usize,
}

impl Channel {
    fn new(frames: usize, fifo_depth: usize) -> Channel {
        Channel {
            free: (0..frames as u32).map(Mfa).collect(),
            post: VecDeque::with_capacity(fifo_depth),
            slots: (0..frames).map(|_| None).collect(),
            fifo_depth,
        }
    }

    fn alloc(&mut self) -> Option<Mfa> {
        self.free.pop_front()
    }

    fn post(&mut self, mfa: Mfa, frame: MessageFrame) -> Result<(), PostError> {
        let slot = self.slots.get_mut(mfa.0 as usize).ok_or(PostError::BadMfa)?;
        if slot.is_some() {
            return Err(PostError::BadMfa); // double post
        }
        if self.post.len() >= self.fifo_depth {
            return Err(PostError::FifoFull);
        }
        *slot = Some(frame);
        self.post.push_back(mfa);
        Ok(())
    }

    fn consume(&mut self) -> Option<(Mfa, MessageFrame)> {
        let mfa = self.post.pop_front()?;
        // post() seats the frame before queueing the MFA, so the slot is
        // occupied here; degrade to "nothing to consume" if it ever is not.
        let frame = self.slots[mfa.0 as usize].take()?;
        Some((mfa, frame))
    }

    fn release(&mut self, mfa: Mfa) -> Result<(), PostError> {
        let slot = self.slots.get(mfa.0 as usize).ok_or(PostError::BadMfa)?;
        if slot.is_some() {
            return Err(PostError::BadMfa); // frame not consumed yet
        }
        if self.free.contains(&mfa) {
            return Err(PostError::BadMfa); // double free
        }
        self.free.push_back(mfa);
        Ok(())
    }
}

/// The IOP messaging unit: inbound (host→IOP) and outbound (IOP→host)
/// channels.
pub struct MessageUnit {
    inbound: Channel,
    outbound: Channel,
    /// Requests consumed by the IOP.
    pub requests_handled: u64,
    /// Replies drained by the host.
    pub replies_drained: u64,
}

impl MessageUnit {
    /// Unit with `frames` message frames and `fifo_depth` FIFO entries per
    /// direction (typical IOP configurations: tens of frames).
    pub fn new(frames: usize, fifo_depth: usize) -> MessageUnit {
        MessageUnit {
            inbound: Channel::new(frames, fifo_depth),
            outbound: Channel::new(frames, fifo_depth),
            requests_handled: 0,
            replies_drained: 0,
        }
    }

    // ----- host side -----

    /// Host: allocate an inbound frame (PIO read of the inbound-free FIFO).
    pub fn host_alloc(&mut self) -> Option<Mfa> {
        self.inbound.alloc()
    }

    /// Host: write + post a request frame.
    pub fn host_post(&mut self, mfa: Mfa, frame: MessageFrame) -> Result<(), PostError> {
        self.inbound.post(mfa, frame)
    }

    /// Host: drain one reply from the outbound post FIFO.
    pub fn host_drain_reply(&mut self) -> Option<(Mfa, MessageFrame)> {
        let r = self.outbound.consume();
        if r.is_some() {
            self.replies_drained += 1;
        }
        r
    }

    /// Host: return a drained reply MFA to the outbound free list.
    pub fn host_release_reply(&mut self, mfa: Mfa) -> Result<(), PostError> {
        self.outbound.release(mfa)
    }

    // ----- IOP side -----

    /// IOP: take the next request.
    pub fn iop_next_request(&mut self) -> Option<(Mfa, MessageFrame)> {
        let r = self.inbound.consume();
        if r.is_some() {
            self.requests_handled += 1;
        }
        r
    }

    /// IOP: return a consumed request MFA to the inbound free list.
    pub fn iop_release_request(&mut self, mfa: Mfa) -> Result<(), PostError> {
        self.inbound.release(mfa)
    }

    /// IOP: allocate an outbound frame for a reply/notification.
    pub fn iop_alloc_reply(&mut self) -> Option<Mfa> {
        self.outbound.alloc()
    }

    /// IOP: post a reply.
    pub fn iop_post_reply(&mut self, mfa: Mfa, frame: MessageFrame) -> Result<(), PostError> {
        self.outbound.post(mfa, frame)
    }

    /// Depth of the inbound post FIFO (requests waiting for the IOP).
    pub fn inbound_backlog(&self) -> usize {
        self.inbound.post.len()
    }

    /// Depth of the outbound post FIFO (replies waiting for the host).
    pub fn outbound_backlog(&self) -> usize {
        self.outbound.post.len()
    }

    /// Free inbound frames.
    pub fn inbound_free(&self) -> usize {
        self.inbound.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Tid;
    use crate::message::I2oFunction;

    fn frame(ctx: u32) -> MessageFrame {
        MessageFrame::new(I2oFunction::UtilNop, Tid(2), Tid(1), ctx, vec![])
    }

    fn unit() -> MessageUnit {
        MessageUnit::new(4, 4)
    }

    #[test]
    fn request_reply_round_trip() {
        let mut mu = unit();
        // Host posts a request.
        let mfa = mu.host_alloc().unwrap();
        mu.host_post(mfa, frame(7)).unwrap();
        assert_eq!(mu.inbound_backlog(), 1);
        // IOP consumes, replies, releases.
        let (req_mfa, req) = mu.iop_next_request().unwrap();
        assert_eq!(req.context, 7);
        mu.iop_release_request(req_mfa).unwrap();
        let rep_mfa = mu.iop_alloc_reply().unwrap();
        mu.iop_post_reply(rep_mfa, req.reply(0, vec![])).unwrap();
        // Host drains and releases.
        let (out_mfa, rep) = mu.host_drain_reply().unwrap();
        assert_eq!(rep.context, 7);
        mu.host_release_reply(out_mfa).unwrap();
        assert_eq!(mu.requests_handled, 1);
        assert_eq!(mu.replies_drained, 1);
        assert_eq!(mu.inbound_free(), 4);
    }

    #[test]
    fn free_list_exhaustion_backpressures() {
        let mut mu = unit();
        let mfas: Vec<Mfa> = std::iter::from_fn(|| mu.host_alloc()).collect();
        assert_eq!(mfas.len(), 4);
        assert!(mu.host_alloc().is_none(), "no frames left");
        // Posting and consuming one recycles it.
        mu.host_post(mfas[0], frame(0)).unwrap();
        let (m, _) = mu.iop_next_request().unwrap();
        mu.iop_release_request(m).unwrap();
        assert!(mu.host_alloc().is_some());
    }

    #[test]
    fn double_post_and_double_free_rejected() {
        let mut mu = unit();
        let mfa = mu.host_alloc().unwrap();
        mu.host_post(mfa, frame(1)).unwrap();
        assert_eq!(mu.host_post(mfa, frame(2)), Err(PostError::BadMfa));
        let (m, _) = mu.iop_next_request().unwrap();
        mu.iop_release_request(m).unwrap();
        assert_eq!(mu.iop_release_request(m), Err(PostError::BadMfa));
    }

    #[test]
    fn release_before_consume_rejected() {
        let mut mu = unit();
        let mfa = mu.host_alloc().unwrap();
        mu.host_post(mfa, frame(1)).unwrap();
        // Frame still posted: cannot return to free list.
        assert_eq!(mu.iop_release_request(mfa), Err(PostError::BadMfa));
    }

    #[test]
    fn bogus_mfa_rejected() {
        let mut mu = unit();
        assert_eq!(mu.host_post(Mfa(99), frame(0)), Err(PostError::BadMfa));
        assert_eq!(mu.host_release_reply(Mfa(99)), Err(PostError::BadMfa));
    }

    #[test]
    fn fifo_ordering_is_preserved() {
        let mut mu = unit();
        for i in 0..3 {
            let mfa = mu.host_alloc().unwrap();
            mu.host_post(mfa, frame(i)).unwrap();
        }
        for i in 0..3 {
            let (m, f) = mu.iop_next_request().unwrap();
            assert_eq!(f.context, i);
            mu.iop_release_request(m).unwrap();
        }
    }
}
