//! Device table: TIDs and device classes.
//!
//! Every addressable entity on an I2O IOP has a 12-bit TID (target id):
//! the executive itself, each LAN port, each BSA (block storage) unit, and
//! any vendor-private devices — which is where DVCM extension modules
//! appear on the wire.

use core::fmt;

/// 12-bit target identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Tid(pub u16);

/// The executive's well-known TID.
pub const TID_IOP_EXEC: Tid = Tid(0);
/// The host OS module's conventional TID.
pub const TID_HOST: Tid = Tid(1);

/// I2O device classes present in this system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceClass {
    /// The IOP executive.
    Executive,
    /// A LAN port (one of the card's two 100 Mb/s Ethernet ports).
    LanPort {
        /// Port index on the card (0 or 1 on the i960RD).
        port: u8,
    },
    /// A block-storage unit (disk on one of the card's two SCSI ports).
    BlockStorage {
        /// SCSI port index (0 or 1).
        port: u8,
    },
    /// A vendor-private device (DVCM extension endpoint).
    Private {
        /// Organisation id.
        org: u16,
    },
}

/// A registered device.
#[derive(Clone, Debug)]
pub struct Device {
    /// Its TID.
    pub tid: Tid,
    /// Its class.
    pub class: DeviceClass,
    /// Human-readable name.
    pub name: String,
}

/// TID allocator + registry for one IOP.
pub struct DeviceTable {
    devices: Vec<Device>,
    next_tid: u16,
}

impl Default for DeviceTable {
    fn default() -> Self {
        DeviceTable::new()
    }
}

impl DeviceTable {
    /// Table pre-populated with the executive (TID 0) and host (TID 1).
    pub fn new() -> DeviceTable {
        let mut t = DeviceTable {
            devices: Vec::new(),
            next_tid: 2,
        };
        t.devices.push(Device {
            tid: TID_IOP_EXEC,
            class: DeviceClass::Executive,
            name: "iop-exec".into(),
        });
        t.devices.push(Device {
            tid: TID_HOST,
            class: DeviceClass::Executive,
            name: "host-osm".into(),
        });
        t
    }

    /// Register a device; returns its freshly assigned TID.
    pub fn register(&mut self, class: DeviceClass, name: impl Into<String>) -> Tid {
        let tid = Tid(self.next_tid);
        assert!(self.next_tid < 0xFFF, "TID space exhausted");
        self.next_tid += 1;
        self.devices.push(Device {
            tid,
            class,
            name: name.into(),
        });
        tid
    }

    /// Look a device up by TID.
    pub fn get(&self, tid: Tid) -> Option<&Device> {
        self.devices.iter().find(|d| d.tid == tid)
    }

    /// All devices of a class predicate.
    pub fn find(&self, pred: impl Fn(&DeviceClass) -> bool) -> Vec<&Device> {
        self.devices.iter().filter(|d| pred(&d.class)).collect()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether only the well-known devices exist.
    pub fn is_empty(&self) -> bool {
        self.devices.len() <= 2
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{:03x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_tids_present() {
        let t = DeviceTable::new();
        assert_eq!(t.get(TID_IOP_EXEC).unwrap().name, "iop-exec");
        assert_eq!(t.get(TID_HOST).unwrap().name, "host-osm");
        assert!(t.is_empty(), "no user devices yet");
    }

    #[test]
    fn registration_assigns_unique_tids() {
        let mut t = DeviceTable::new();
        let lan0 = t.register(DeviceClass::LanPort { port: 0 }, "eth0");
        let lan1 = t.register(DeviceClass::LanPort { port: 1 }, "eth1");
        let bsa = t.register(DeviceClass::BlockStorage { port: 0 }, "scsi0");
        assert_ne!(lan0, lan1);
        assert_ne!(lan1, bsa);
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(bsa).unwrap().name, "scsi0");
    }

    #[test]
    fn find_by_class() {
        let mut t = DeviceTable::new();
        t.register(DeviceClass::LanPort { port: 0 }, "eth0");
        t.register(DeviceClass::BlockStorage { port: 0 }, "scsi0");
        t.register(DeviceClass::BlockStorage { port: 1 }, "scsi1");
        let disks = t.find(|c| matches!(c, DeviceClass::BlockStorage { .. }));
        assert_eq!(disks.len(), 2);
        let lans = t.find(|c| matches!(c, DeviceClass::LanPort { .. }));
        assert_eq!(lans.len(), 1);
    }

    #[test]
    fn tid_display() {
        assert_eq!(format!("{}", Tid(0x2A)), "tid02a");
    }
}
