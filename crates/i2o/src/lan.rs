//! LAN class — the card's 100 Mb/s Ethernet ports.
//!
//! A `LanPacketSend` names a card-memory extent; the port reads the bytes
//! out of [`CardMemory`] and appends them to its transmit log (what the
//! wire would carry — serialization *time* is `hwsim::Ethernet`'s job).
//! This is the final hop of the paper's Path B/C: "media may be streamed
//! directly through to the network using the 100 Mbps ethernet port".
//!
//! Request payload: `[addr_hi, addr_lo, len_bytes]`; reply `[len_bytes]`.

use crate::memory::CardMemory;
use crate::message::{I2oFunction, MessageFrame};

/// Completion statuses.
pub mod status {
    /// Success.
    pub const OK: u8 = 0;
    /// Malformed request.
    pub const BAD_REQUEST: u8 = 2;
    /// Source extent faulted.
    pub const MEM_FAULT: u8 = 4;
    /// Transmit queue full (backpressure).
    pub const TX_FULL: u8 = 5;
}

/// One transmitted packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxRecord {
    /// Source card address.
    pub addr: u64,
    /// The bytes as they left the card.
    pub bytes: Vec<u8>,
}

/// A LAN port with a bounded transmit queue.
pub struct LanPort {
    /// Transmit log (drained by the wire model / tests).
    pub tx: Vec<TxRecord>,
    /// Maximum queued packets before backpressure.
    pub tx_capacity: usize,
    /// Packets sent.
    pub packets: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Rejected sends.
    pub errors: u64,
}

impl LanPort {
    /// Port with a transmit queue of `tx_capacity` packets.
    pub fn new(tx_capacity: usize) -> LanPort {
        LanPort {
            tx: Vec::new(),
            tx_capacity: tx_capacity.max(1),
            packets: 0,
            bytes: 0,
            errors: 0,
        }
    }

    /// Handle a `LanPacketSend`.
    pub fn handle(&mut self, req: &MessageFrame, mem: &mut CardMemory) -> MessageFrame {
        if req.function != I2oFunction::LanPacketSend {
            self.errors += 1;
            return req.reply(status::BAD_REQUEST, vec![]);
        }
        let p = &req.payload;
        let (Some(&hi), Some(&lo), Some(&len)) = (p.first(), p.get(1), p.get(2)) else {
            self.errors += 1;
            return req.reply(status::BAD_REQUEST, vec![]);
        };
        if self.tx.len() >= self.tx_capacity {
            self.errors += 1;
            return req.reply(status::TX_FULL, vec![]);
        }
        let addr = (u64::from(hi) << 32) | u64::from(lo);
        let Some(data) = mem.read(addr, len as usize) else {
            self.errors += 1;
            return req.reply(status::MEM_FAULT, vec![]);
        };
        let bytes = data.to_vec();
        self.packets += 1;
        self.bytes += u64::from(len);
        self.tx.push(TxRecord { addr, bytes });
        req.reply(status::OK, vec![len])
    }

    /// Drain the transmit queue (the wire took the packets).
    pub fn drain(&mut self) -> Vec<TxRecord> {
        std::mem::take(&mut self.tx)
    }
}

/// Build a packet-send request for `len` bytes at card address `addr`.
pub fn send_request(
    target: crate::devices::Tid,
    initiator: crate::devices::Tid,
    context: u32,
    addr: u64,
    len: u32,
) -> MessageFrame {
    MessageFrame::new(
        I2oFunction::LanPacketSend,
        target,
        initiator,
        context,
        vec![(addr >> 32) as u32, addr as u32, len],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Tid;

    fn st(r: &MessageFrame) -> u8 {
        match r.function {
            I2oFunction::Reply { status, .. } => status,
            _ => 0xFF,
        }
    }

    #[test]
    fn send_reads_card_memory() {
        let mut port = LanPort::new(8);
        let mut mem = CardMemory::new(4096);
        mem.write(0x100, b"mpeg-frame-payload");
        let reply = port.handle(&send_request(Tid(4), Tid(1), 5, 0x100, 18), &mut mem);
        assert_eq!(st(&reply), status::OK);
        assert_eq!(port.packets, 1);
        assert_eq!(port.bytes, 18);
        let drained = port.drain();
        assert_eq!(drained[0].bytes, b"mpeg-frame-payload");
        assert!(port.tx.is_empty());
    }

    #[test]
    fn backpressure_when_queue_full() {
        let mut port = LanPort::new(2);
        let mut mem = CardMemory::new(4096);
        mem.write(0, &[1; 10]);
        for _ in 0..2 {
            assert_eq!(
                st(&port.handle(&send_request(Tid(4), Tid(1), 0, 0, 10), &mut mem)),
                status::OK
            );
        }
        let r = port.handle(&send_request(Tid(4), Tid(1), 0, 0, 10), &mut mem);
        assert_eq!(st(&r), status::TX_FULL);
        port.drain();
        assert_eq!(
            st(&port.handle(&send_request(Tid(4), Tid(1), 0, 0, 10), &mut mem)),
            status::OK
        );
    }

    #[test]
    fn faults_and_bad_requests() {
        let mut port = LanPort::new(2);
        let mut mem = CardMemory::new(64);
        let r = port.handle(&send_request(Tid(4), Tid(1), 0, 60, 10), &mut mem);
        assert_eq!(st(&r), status::MEM_FAULT);
        let junk = MessageFrame::new(I2oFunction::UtilNop, Tid(4), Tid(1), 0, vec![]);
        assert_eq!(st(&port.handle(&junk, &mut mem)), status::BAD_REQUEST);
        assert_eq!(port.errors, 2);
    }
}
