//! BSA — the I2O Block Storage Architecture class.
//!
//! The i960RD cards carry two SCSI ports with disks directly attached; the
//! paper's streams are sourced from files on those disks. A BSA block read
//! does **not** return data inline (a message frame holds ~100 bytes) —
//! like real I2O it DMAs the blocks into card/host memory and replies with
//! a completion. [`BsaDevice::handle`] therefore takes the target
//! [`CardMemory`]: reads copy medium → memory at the request's destination
//! address, writes copy memory → medium.
//!
//! Request payload convention (32-bit words):
//!
//! * `BsaBlockRead`:  `[lba, block_count, addr_hi, addr_lo]`
//! * `BsaBlockWrite`: `[lba, block_count, addr_hi, addr_lo]`
//! * reply: `[bytes_moved]` with a status code.
//!
//! Service *time* (seek/rotate/transfer) is priced by `hwsim::ScsiDisk`;
//! this module is the data path and protocol handling.

use crate::memory::CardMemory;
use crate::message::{I2oFunction, MessageFrame};

/// Block size in bytes (classic SCSI sector).
pub const BLOCK_BYTES: usize = 512;

/// Completion statuses.
pub mod status {
    /// Success.
    pub const OK: u8 = 0;
    /// LBA + count exceeds the medium.
    pub const OUT_OF_RANGE: u8 = 1;
    /// Malformed request payload.
    pub const BAD_REQUEST: u8 = 2;
    /// Destination/source memory range faulted.
    pub const MEM_FAULT: u8 = 4;
}

/// A block-storage unit backed by an in-memory medium (the disk image).
pub struct BsaDevice {
    medium: Vec<u8>,
    /// Blocks read.
    pub reads: u64,
    /// Blocks written.
    pub writes: u64,
    /// Requests rejected.
    pub errors: u64,
}

impl BsaDevice {
    /// A device with `blocks` zeroed blocks.
    pub fn new(blocks: usize) -> BsaDevice {
        BsaDevice {
            medium: vec![0; blocks * BLOCK_BYTES],
            reads: 0,
            writes: 0,
            errors: 0,
        }
    }

    /// A device initialised from a disk image (padded to block size) —
    /// how tests put an MPEG file "on disk".
    pub fn with_image(image: &[u8]) -> BsaDevice {
        let blocks = image.len().div_ceil(BLOCK_BYTES).max(1);
        let mut medium = vec![0; blocks * BLOCK_BYTES];
        medium[..image.len()].copy_from_slice(image);
        BsaDevice {
            medium,
            reads: 0,
            writes: 0,
            errors: 0,
        }
    }

    /// Capacity in blocks.
    pub fn blocks(&self) -> usize {
        self.medium.len() / BLOCK_BYTES
    }

    /// Handle one BSA request; data moves through `mem`.
    pub fn handle(&mut self, req: &MessageFrame, mem: &mut CardMemory) -> MessageFrame {
        let is_read = match req.function {
            I2oFunction::BsaBlockRead => true,
            I2oFunction::BsaBlockWrite => false,
            _ => {
                self.errors += 1;
                return req.reply(status::BAD_REQUEST, vec![]);
            }
        };
        let p = &req.payload;
        let (Some(&lba), Some(&count), Some(&hi), Some(&lo)) = (p.first(), p.get(1), p.get(2), p.get(3)) else {
            self.errors += 1;
            return req.reply(status::BAD_REQUEST, vec![]);
        };
        let (lba, count) = (lba as usize, count as usize);
        let addr = (u64::from(hi) << 32) | u64::from(lo);
        if count == 0 || lba + count > self.blocks() {
            self.errors += 1;
            return req.reply(status::OUT_OF_RANGE, vec![]);
        }
        let bytes = count * BLOCK_BYTES;
        let start = lba * BLOCK_BYTES;
        if is_read {
            // Medium → card memory. Copy out first (borrow discipline).
            let chunk = self.medium[start..start + bytes].to_vec();
            if !mem.write(addr, &chunk) {
                self.errors += 1;
                return req.reply(status::MEM_FAULT, vec![]);
            }
            self.reads += count as u64;
        } else {
            let Some(data) = mem.read(addr, bytes) else {
                self.errors += 1;
                return req.reply(status::MEM_FAULT, vec![]);
            };
            let data = data.to_vec();
            self.medium[start..start + bytes].copy_from_slice(&data);
            self.writes += count as u64;
        }
        req.reply(status::OK, vec![bytes as u32])
    }
}

/// Build a block-read request frame (`count` blocks from `lba` into card
/// memory at `addr`).
pub fn read_request(
    target: crate::devices::Tid,
    initiator: crate::devices::Tid,
    context: u32,
    lba: u32,
    count: u32,
    addr: u64,
) -> MessageFrame {
    MessageFrame::new(
        I2oFunction::BsaBlockRead,
        target,
        initiator,
        context,
        vec![lba, count, (addr >> 32) as u32, addr as u32],
    )
}

/// Build a block-write request frame.
pub fn write_request(
    target: crate::devices::Tid,
    initiator: crate::devices::Tid,
    context: u32,
    lba: u32,
    count: u32,
    addr: u64,
) -> MessageFrame {
    MessageFrame::new(
        I2oFunction::BsaBlockWrite,
        target,
        initiator,
        context,
        vec![lba, count, (addr >> 32) as u32, addr as u32],
    )
}

#[cfg(test)]
fn reply_status(reply: &MessageFrame) -> u8 {
    match reply.function {
        I2oFunction::Reply { status, .. } => status,
        _ => 0xFF,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Tid;

    fn tids() -> (Tid, Tid) {
        (Tid(3), Tid(1))
    }

    #[test]
    fn read_dmas_blocks_into_card_memory() {
        let image: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        let mut dev = BsaDevice::with_image(&image);
        let mut mem = CardMemory::new(64 * 1024);
        let (t, i) = tids();

        let req = read_request(t, i, 7, 1, 2, 0x1000);
        let reply = dev.handle(&req, &mut mem);
        assert_eq!(reply_status(&reply), status::OK);
        assert_eq!(reply.payload[0], 1024, "two blocks moved");
        assert_eq!(mem.read(0x1000, 1024).unwrap(), &image[BLOCK_BYTES..BLOCK_BYTES + 1024]);
        assert_eq!(dev.reads, 2);
    }

    #[test]
    fn write_reads_card_memory_into_medium() {
        let mut dev = BsaDevice::new(8);
        let mut mem = CardMemory::new(64 * 1024);
        let (t, i) = tids();
        let data = vec![0x5A; BLOCK_BYTES];
        assert!(mem.write(0x2000, &data));
        let reply = dev.handle(&write_request(t, i, 9, 3, 1, 0x2000), &mut mem);
        assert_eq!(reply_status(&reply), status::OK);
        assert_eq!(&dev.medium[3 * BLOCK_BYTES..4 * BLOCK_BYTES], &data[..]);
        // Round-trip: read it back to a different address.
        let reply = dev.handle(&read_request(t, i, 10, 3, 1, 0x8000), &mut mem);
        assert_eq!(reply_status(&reply), status::OK);
        assert_eq!(mem.read(0x8000, BLOCK_BYTES).unwrap(), &data[..]);
    }

    #[test]
    fn rejections_are_classified() {
        let mut dev = BsaDevice::new(2);
        let mut mem = CardMemory::new(1024);
        let (t, i) = tids();
        // Out of range on the medium.
        let r = dev.handle(&read_request(t, i, 0, 2, 1, 0), &mut mem);
        assert_eq!(reply_status(&r), status::OUT_OF_RANGE);
        // Memory fault on the card.
        let r = dev.handle(&read_request(t, i, 0, 0, 1, 4096), &mut mem);
        assert_eq!(reply_status(&r), status::MEM_FAULT);
        // Malformed payload.
        let bad = MessageFrame::new(I2oFunction::BsaBlockRead, t, i, 0, vec![1]);
        let r = dev.handle(&bad, &mut mem);
        assert_eq!(reply_status(&r), status::BAD_REQUEST);
        // Wrong function class.
        let junk = MessageFrame::new(I2oFunction::UtilNop, t, i, 0, vec![]);
        let r = dev.handle(&junk, &mut mem);
        assert_eq!(reply_status(&r), status::BAD_REQUEST);
        assert_eq!(dev.errors, 4);
    }

    #[test]
    fn image_padding_rounds_up() {
        let dev = BsaDevice::with_image(&[1, 2, 3]);
        assert_eq!(dev.blocks(), 1);
        let dev = BsaDevice::with_image(&vec![0; BLOCK_BYTES + 1]);
        assert_eq!(dev.blocks(), 2);
    }
}
