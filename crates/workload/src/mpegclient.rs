//! MPEG client request patterns.
//!
//! The figures' streaming workload: "Two MPEG clients shown as streams s1
//! and s2 connect to the system" and play for the duration of the run.
//! A [`ClientPlan`] describes when each client connects, the QoS it
//! negotiates (frame period and loss-tolerance), and how long it plays —
//! the experiment harness turns plans into `OpenStream`/producer schedules.

use dwcs::types::{Time, MILLISECOND};
use simkit::SimTime;

/// One MPEG client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MpegClient {
    /// Display name in figures ("s1", "s2", …).
    pub name: String,
    /// Connect time.
    pub connect_at: SimTime,
    /// Frame period `T` (ns) — deadline spacing the client requests.
    pub period: Time,
    /// Loss-tolerance numerator.
    pub loss_num: u32,
    /// Loss-tolerance denominator.
    pub loss_den: u32,
    /// Stream bitrate (bits/s) the producer feeds at.
    pub bitrate: u64,
    /// Playback duration.
    pub play_for: SimTime,
}

/// A set of clients forming one experiment's streaming load.
#[derive(Clone, Debug, Default)]
pub struct ClientPlan {
    /// The clients.
    pub clients: Vec<MpegClient>,
}

impl ClientPlan {
    /// The paper's two-stream plan: s1 and s2 connect at the start and
    /// play for the whole run. The settling bandwidth per stream in
    /// Figures 7/9 is ~250–260 kb/s — low-rate MPEG-1 (quarter-size
    /// video); a frame period of 33.37 ms (30 fps) with a 2-of-8
    /// loss window matches the traces.
    pub fn two_streams(run_secs: u64) -> ClientPlan {
        let client = |name: &str, offset_ms: u64| MpegClient {
            name: name.to_string(),
            connect_at: SimTime::from_nanos(offset_ms * 1_000_000),
            period: (100 * MILLISECOND) / 3, // 33.33 ms: 30 fps
            loss_num: 2,
            loss_den: 8,
            bitrate: 260_000,
            play_for: SimTime::from_nanos(run_secs * 1_000_000_000),
        };
        ClientPlan {
            clients: vec![client("s1", 0), client("s2", 40)],
        }
    }

    /// A synthetic many-client plan for scalability sweeps.
    pub fn fan(n: u32, bitrate: u64, fps: u64, run_secs: u64) -> ClientPlan {
        let clients = (0..n)
            .map(|i| MpegClient {
                name: format!("s{}", i + 1),
                connect_at: SimTime::from_nanos(u64::from(i) * 10_000_000),
                period: 1_000_000_000 / fps,
                loss_num: 2,
                loss_den: 8,
                bitrate,
                play_for: SimTime::from_nanos(run_secs * 1_000_000_000),
            })
            .collect();
        ClientPlan { clients }
    }

    /// Mean frame size in bytes implied by a client's bitrate and period.
    pub fn frame_bytes(c: &MpegClient) -> u32 {
        ((c.bitrate as f64 / 8.0) * (c.period as f64 / 1e9)).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_streams_matches_figures() {
        let p = ClientPlan::two_streams(100);
        assert_eq!(p.clients.len(), 2);
        assert_eq!(p.clients[0].name, "s1");
        assert_eq!(p.clients[1].name, "s2");
        // 30 fps → period ≈ 33.3 ms.
        assert!((33.0..34.0).contains(&(p.clients[0].period as f64 / 1e6)));
        // ~260 kb/s at 30 fps → ~1 083-byte frames: near the 1000-byte
        // frames of Table 4.
        let fb = ClientPlan::frame_bytes(&p.clients[0]);
        assert!((1_000..1_200).contains(&fb), "frame bytes {fb}");
    }

    #[test]
    fn fan_spreads_connects() {
        let p = ClientPlan::fan(8, 1_500_000, 25, 10);
        assert_eq!(p.clients.len(), 8);
        assert!(p.clients.windows(2).all(|w| w[0].connect_at < w[1].connect_at));
        assert_eq!(p.clients[3].period, 40_000_000);
    }
}
