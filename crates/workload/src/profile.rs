//! Time-varying load profiles (the shape of Figure 6).
//!
//! Figure 6 shows three traces of total CPU utilization over ~100 s:
//! no web load (spiky ~15 % average from streaming alone), a 45 %-average
//! run, and a 60 %-average run whose sustained phase pushes past 80 %.
//! Load arrives after the streams start (~15 s in), ramps quickly, holds,
//! and stops before the end. [`LoadProfile`] encodes that phase structure
//! as piecewise-constant request rates.

use simkit::SimTime;

/// Piecewise-constant request-rate profile.
#[derive(Clone, Debug, Default)]
pub struct LoadProfile {
    /// `(start, end, requests-per-second)` phases, non-overlapping,
    /// time-ordered.
    pub phases: Vec<(SimTime, SimTime, f64)>,
}

impl LoadProfile {
    /// No web load at all.
    pub fn none() -> LoadProfile {
        LoadProfile { phases: Vec::new() }
    }

    /// The experiment shape: idle until `start`, ramp for `ramp` seconds
    /// at half rate, hold `rate` until `end`.
    pub fn experiment(start_s: u64, ramp_s: u64, end_s: u64, rate: f64) -> LoadProfile {
        let s = SimTime::from_nanos(start_s * 1_000_000_000);
        let r = SimTime::from_nanos((start_s + ramp_s) * 1_000_000_000);
        let e = SimTime::from_nanos(end_s * 1_000_000_000);
        LoadProfile {
            phases: vec![(s, r, rate / 2.0), (r, e, rate)],
        }
    }

    /// Request rate at time `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        for &(s, e, rate) in &self.phases {
            if t >= s && t < e {
                return rate;
            }
        }
        0.0
    }

    /// When the profile becomes active (first phase start).
    pub fn starts_at(&self) -> Option<SimTime> {
        self.phases.first().map(|&(s, _, _)| s)
    }

    /// When the profile goes quiet (last phase end).
    pub fn ends_at(&self) -> Option<SimTime> {
        self.phases.last().map(|&(_, e, _)| e)
    }
}

/// Solve for the httperf rate that produces `target_util` (0..1) average
/// CPU utilization on `cpus` cores, given mean request CPU demand in
/// cycles and the core clock.
///
/// `rate × cycles_per_req / hz = target_util × cpus`
pub fn calibrate_rate(target_util: f64, cpus: u32, mean_req_cycles: u64, hz: u64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&target_util));
    target_util * f64::from(cpus) * hz as f64 / mean_req_cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    #[test]
    fn experiment_shape() {
        let p = LoadProfile::experiment(15, 5, 80, 100.0);
        assert_eq!(p.rate_at(at(0)), 0.0);
        assert_eq!(p.rate_at(at(16)), 50.0, "ramp at half rate");
        assert_eq!(p.rate_at(at(30)), 100.0, "sustained");
        assert_eq!(p.rate_at(at(85)), 0.0, "quiet after end");
        assert_eq!(p.starts_at(), Some(at(15)));
        assert_eq!(p.ends_at(), Some(at(80)));
    }

    #[test]
    fn none_is_always_zero() {
        let p = LoadProfile::none();
        assert_eq!(p.rate_at(at(50)), 0.0);
        assert_eq!(p.starts_at(), None);
    }

    #[test]
    fn calibration_solves_the_utilization_equation() {
        // 2 CPUs at 200 MHz, 1 M cycles/request, want 45 %:
        // rate = 0.45 × 2 × 2e8 / 1e6 = 180 req/s.
        let rate = calibrate_rate(0.45, 2, 1_000_000, 200_000_000);
        assert!((rate - 180.0).abs() < 1e-9);
        // Sanity: plugging back reproduces the utilization.
        let util = rate * 1_000_000.0 / (2.0 * 200_000_000.0);
        assert!((util - 0.45).abs() < 1e-12);
    }
}
