//! httperf-style open-loop web load generation.
//!
//! `httperf` issues requests at a fixed rate regardless of server progress
//! (open loop) — that is precisely what makes it a good overload tool, and
//! the paper uses its `--rate`/`--num-conns`/`--num-calls` controls. The
//! generator reproduces that: exponential inter-arrivals around the target
//! rate (Poisson traffic), a ceiling on total calls, and heavy-tailed
//! object sizes.

use simkit::rng::Pcg32;
use simkit::SimDuration;

/// One generated web request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WebRequest {
    /// Monotone request id.
    pub id: u64,
    /// Response body size in bytes (bounded Pareto: mostly small pages,
    /// occasional big objects).
    pub response_bytes: u64,
    /// Logical connection issuing the call (round-robin over the
    /// configured connection count, like httperf's `--num-conns`).
    pub connection: u32,
}

/// Generator configuration (httperf's knobs).
#[derive(Clone, Debug)]
pub struct HttperfConfig {
    /// Target request rate (requests/second) — `--rate`.
    pub rate: f64,
    /// Number of concurrent logical connections — `--num-conns`.
    pub connections: u32,
    /// Ceiling on total calls — `--num-calls` (`None` = unbounded).
    pub total_calls: Option<u64>,
    /// Pareto shape for response sizes (1.2 is the classic web value).
    pub size_alpha: f64,
    /// Smallest response (bytes).
    pub size_min: f64,
    /// Largest response (bytes).
    pub size_max: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HttperfConfig {
    fn default() -> HttperfConfig {
        HttperfConfig {
            rate: 100.0,
            connections: 16,
            total_calls: None,
            size_alpha: 1.2,
            size_min: 1_024.0,
            size_max: 512_000.0,
            seed: 0x6874_7470, // "http"
        }
    }
}

/// The open-loop generator.
pub struct HttperfGen {
    cfg: HttperfConfig,
    rng: Pcg32,
    issued: u64,
}

impl HttperfGen {
    /// Generator from a configuration.
    pub fn new(cfg: HttperfConfig) -> HttperfGen {
        let seed = cfg.seed;
        HttperfGen {
            cfg,
            rng: Pcg32::new(seed, 0x48_54_54_50),
            issued: 0,
        }
    }

    /// Next request: `(inter-arrival delay, request)`, or `None` once the
    /// call ceiling is reached or the rate is zero. (Intentionally not an
    /// `Iterator` impl: the rate can be changed between draws.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimDuration, WebRequest)> {
        if self.cfg.rate <= 0.0 {
            return None;
        }
        if let Some(max) = self.cfg.total_calls {
            if self.issued >= max {
                return None;
            }
        }
        let gap = self.rng.exp(1.0 / self.cfg.rate);
        let req = WebRequest {
            id: self.issued,
            response_bytes: self
                .rng
                .bounded_pareto(self.cfg.size_alpha, self.cfg.size_min, self.cfg.size_max)
                .round() as u64,
            connection: (self.issued % u64::from(self.cfg.connections.max(1))) as u32,
        };
        self.issued += 1;
        Some((SimDuration::from_secs_f64(gap), req))
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Change the rate mid-run (load profiles ramp).
    pub fn set_rate(&mut self, rate: f64) {
        self.cfg.rate = rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected_on_average() {
        let mut g = HttperfGen::new(HttperfConfig {
            rate: 200.0,
            ..HttperfConfig::default()
        });
        let n = 10_000;
        let mut total = SimDuration::ZERO;
        for _ in 0..n {
            let (gap, _) = g.next().unwrap();
            total += gap;
        }
        let measured = n as f64 / total.as_secs_f64();
        assert!((measured - 200.0).abs() < 8.0, "measured {measured:.1} req/s");
    }

    #[test]
    fn call_ceiling_stops_generation() {
        let mut g = HttperfGen::new(HttperfConfig {
            total_calls: Some(5),
            ..HttperfConfig::default()
        });
        let drawn: Vec<_> = std::iter::from_fn(|| g.next()).collect();
        assert_eq!(drawn.len(), 5);
        assert_eq!(g.issued(), 5);
    }

    #[test]
    fn connections_round_robin() {
        let mut g = HttperfGen::new(HttperfConfig {
            connections: 3,
            ..HttperfConfig::default()
        });
        let conns: Vec<u32> = (0..6).map(|_| g.next().unwrap().1.connection).collect();
        assert_eq!(conns, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn sizes_are_heavy_tailed_within_bounds() {
        let mut g = HttperfGen::new(HttperfConfig::default());
        let sizes: Vec<u64> = (0..5_000).map(|_| g.next().unwrap().1.response_bytes).collect();
        assert!(sizes.iter().all(|&s| (1_024..=512_000).contains(&s)));
        let small = sizes.iter().filter(|&&s| s < 10_000).count();
        assert!(small > sizes.len() / 2, "mass near the minimum: {small}");
        assert!(sizes.iter().any(|&s| s > 100_000), "tail exists");
    }

    #[test]
    fn zero_rate_yields_nothing() {
        let mut g = HttperfGen::new(HttperfConfig {
            rate: 0.0,
            ..HttperfConfig::default()
        });
        assert!(g.next().is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = HttperfGen::new(HttperfConfig::default());
        let mut b = HttperfGen::new(HttperfConfig::default());
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }
}
