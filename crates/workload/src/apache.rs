//! The Apache 1.3 process-pool model.
//!
//! The paper's configuration: "the Apache web server version 1.3.12 (with
//! a maximum of 10 server processes and starting process pool with five
//! server processes)". Requests are accepted by an idle worker or queue in
//! the listen backlog; Apache's spare-server logic forks more workers (up
//! to the ceiling) when the backlog persists. Each request costs CPU
//! (parse + dynamic glue + copies scaling with the response size) — that
//! CPU demand is what contends with the host-based DWCS scheduler and
//! produces Figures 6–8.

use crate::httperf::WebRequest;
use std::collections::VecDeque;

/// Resource demand of one request, priced by the host models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestWork {
    /// Host CPU cycles (parse, headers, copyout).
    pub cpu_cycles: u64,
    /// Bytes read from the document tree (mostly cache-hot).
    pub disk_bytes: u64,
    /// Bytes pushed to the network.
    pub net_bytes: u64,
}

/// Pool configuration.
#[derive(Clone, Copy, Debug)]
pub struct ApacheConfig {
    /// `StartServers` (paper: 5).
    pub start_servers: u32,
    /// `MaxClients` (paper: 10).
    pub max_servers: u32,
    /// Listen backlog capacity (connections refused beyond it).
    pub backlog: usize,
    /// Fixed CPU cycles per request (parsing, logging, headers).
    pub base_cycles: u64,
    /// Extra CPU cycles per response byte (checksums + copies).
    pub cycles_per_byte: u64,
}

impl Default for ApacheConfig {
    fn default() -> ApacheConfig {
        ApacheConfig {
            start_servers: 5,
            max_servers: 10,
            backlog: 128,
            // ~2.5 ms of 200 MHz CPU per request + 1.2 cycles/byte: a
            // 10 KB page ≈ 2.6 M cycles ≈ 13 ms of CPU? No — 500k + 12k
            // cycles ≈ 2.6 ms. Sized so a few hundred req/s saturate two
            // 200 MHz CPUs, matching the paper's 45 %/60 % operating
            // points at httperf-scale rates.
            base_cycles: 500_000,
            cycles_per_byte: 1,
        }
    }
}

/// The process pool: workers + backlog.
pub struct ApachePool {
    cfg: ApacheConfig,
    /// Current worker count (grows under pressure).
    workers: u32,
    /// Workers currently serving a request.
    busy: u32,
    /// Queued requests.
    backlog: VecDeque<WebRequest>,
    /// Requests accepted (served or queued).
    pub accepted: u64,
    /// Requests refused (backlog full).
    pub refused: u64,
    /// Requests completed.
    pub completed: u64,
}

impl ApachePool {
    /// Pool with the paper's defaults.
    pub fn new() -> ApachePool {
        ApachePool::with_config(ApacheConfig::default())
    }

    /// Pool with explicit configuration.
    pub fn with_config(cfg: ApacheConfig) -> ApachePool {
        ApachePool {
            workers: cfg.start_servers,
            busy: 0,
            backlog: VecDeque::new(),
            cfg,
            accepted: 0,
            refused: 0,
            completed: 0,
        }
    }

    /// CPU/disk/net demand of a request.
    pub fn work_of(&self, req: &WebRequest) -> RequestWork {
        RequestWork {
            cpu_cycles: self.cfg.base_cycles + req.response_bytes * self.cfg.cycles_per_byte,
            disk_bytes: req.response_bytes,
            net_bytes: req.response_bytes + 512, // headers
        }
    }

    /// Offer an arriving request. Returns the request to *start serving*
    /// now, if a worker picked it up immediately; queued otherwise.
    pub fn arrive(&mut self, req: WebRequest) -> Option<WebRequest> {
        if self.busy < self.workers {
            self.busy += 1;
            self.accepted += 1;
            return Some(req);
        }
        // Spare-server logic: fork another worker if allowed.
        if self.workers < self.cfg.max_servers {
            self.workers += 1;
            self.busy += 1;
            self.accepted += 1;
            return Some(req);
        }
        if self.backlog.len() < self.cfg.backlog {
            self.accepted += 1;
            self.backlog.push_back(req);
            None
        } else {
            self.refused += 1;
            None
        }
    }

    /// A worker finished its request. Returns the next queued request that
    /// worker should start, if any.
    pub fn complete(&mut self) -> Option<WebRequest> {
        debug_assert!(self.busy > 0, "complete without a busy worker");
        self.completed += 1;
        if let Some(next) = self.backlog.pop_front() {
            // Worker stays busy with the next request.
            Some(next)
        } else {
            self.busy -= 1;
            None
        }
    }

    /// Busy workers.
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Current pool size.
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Queued requests.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }
}

impl Default for ApachePool {
    fn default() -> Self {
        ApachePool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, bytes: u64) -> WebRequest {
        WebRequest {
            id,
            response_bytes: bytes,
            connection: 0,
        }
    }

    #[test]
    fn starts_with_five_grows_to_ten() {
        let mut p = ApachePool::new();
        assert_eq!(p.workers(), 5);
        // 10 simultaneous arrivals: 5 to the start pool, 5 forked.
        let started: Vec<_> = (0..10).filter_map(|i| p.arrive(req(i, 1000))).collect();
        assert_eq!(started.len(), 10);
        assert_eq!(p.workers(), 10);
        assert_eq!(p.busy(), 10);
        // Eleventh queues.
        assert!(p.arrive(req(10, 1000)).is_none());
        assert_eq!(p.backlog_len(), 1);
    }

    #[test]
    fn completion_pulls_from_backlog() {
        let mut p = ApachePool::new();
        for i in 0..11 {
            p.arrive(req(i, 1000));
        }
        assert_eq!(p.backlog_len(), 1);
        let next = p.complete();
        assert_eq!(next.unwrap().id, 10, "queued request starts");
        assert_eq!(p.busy(), 10, "worker stays busy");
        assert_eq!(p.backlog_len(), 0);
        // Draining with empty backlog frees workers.
        for _ in 0..10 {
            assert!(p.complete().is_none());
        }
        assert_eq!(p.busy(), 0);
        assert_eq!(p.completed, 11);
    }

    #[test]
    fn backlog_ceiling_refuses() {
        let mut p = ApachePool::with_config(ApacheConfig {
            backlog: 2,
            ..ApacheConfig::default()
        });
        for i in 0..12 {
            p.arrive(req(i, 100));
        }
        assert_eq!(p.backlog_len(), 2);
        assert_eq!(p.refused, 0);
        p.arrive(req(99, 100));
        assert_eq!(p.refused, 1);
    }

    #[test]
    fn work_scales_with_response_size() {
        let p = ApachePool::new();
        let small = p.work_of(&req(0, 1_000));
        let large = p.work_of(&req(1, 100_000));
        assert!(large.cpu_cycles > small.cpu_cycles);
        assert_eq!(small.cpu_cycles, 501_000);
        assert_eq!(small.net_bytes, 1_512);
    }
}
