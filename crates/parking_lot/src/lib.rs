//! Vendored std-only stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access (DESIGN.md §6: no external
//! dependencies), so the subset of the `parking_lot` API this workspace
//! uses is reimplemented here over `std::sync`. Semantics preserved from
//! the real crate:
//!
//! * `lock()` returns the guard directly (no poisoning — a panicked holder
//!   does not wedge the lock; we recover the inner guard).
//! * `Mutex::new` is `const`, so statics work.
//!
//! Fairness/parking behaviour of the real crate is *not* reproduced; for
//! the uncontended-by-construction locks this workspace uses (per-slot ring
//! mutexes, frame-pool free lists) that is irrelevant.

#![forbid(unsafe_code)]

use std::sync::TryLockError;

/// Re-exported guard type: identical to `std::sync::MutexGuard`.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Re-exported guard types for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write-side guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike `std`, a panic in
    /// a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_is_not_poisoned_by_panicking_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock usable after a holder panicked");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
