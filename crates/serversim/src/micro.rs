//! Scheduler microbenchmarks — Tables 1, 2 and 3.
//!
//! Method, per §4.2 of the paper: *"we start the scheduler after all frame
//! descriptors have been written into the circular buffer"*, then measure
//!
//! * **Total Sched time** — time to schedule every frame out onto the
//!   network;
//! * **Avg frame Sched time** — the above per frame;
//! * **Total / Avg time w/o Scheduler** — the same transmission loop with
//!   execution "re-routed … to a point where the address of the frame to
//!   be dispatched is readily available" (dispatch only, no DWCS rules).
//!
//! The harness segments a synthetic MPEG-1 file (the paper's 151-frame
//! sequence length is the default), pre-loads the descriptors, then drives
//! the real DWCS scheduler while charging each decision's cost to the
//! [`hwsim::I960Core`] model — so the *algorithm execution* (window
//! adjustments, heap operations, drop handling) is genuine, and only the
//! per-operation timing is modelled.

use dwcs::{DualHeap, DwcsScheduler, FrameDesc, FrameKind, StreamQos};
use fixedpt::ops::MathMode;
use hwsim::i960::{dwcs_work, DescriptorStore, I960Core};
use mpeg1::{EncoderConfig, Segmenter, SyntheticEncoder};
use nistream_trace::{TraceEvent, TraceRing};
use simkit::SimDuration;

/// One microbenchmark configuration cell.
#[derive(Clone, Debug)]
pub struct MicroConfig {
    /// Arithmetic build.
    pub math: MathMode,
    /// i960 data cache enabled?
    pub cache: bool,
    /// Descriptor storage.
    pub store: DescriptorStore,
    /// Frames in the pre-loaded sequence (the paper's run divides to 151).
    pub frames: usize,
    /// Streams the frames are spread across (the paper's microbenchmark
    /// streams one file).
    pub streams: usize,
}

impl Default for MicroConfig {
    fn default() -> MicroConfig {
        MicroConfig {
            math: MathMode::FixedPoint,
            cache: false,
            store: DescriptorStore::PinnedMemory,
            frames: 151,
            streams: 1,
        }
    }
}

/// Microbenchmark outcome (one column of Tables 1–3).
#[derive(Clone, Copy, Debug)]
pub struct MicroResult {
    /// Time to schedule + transmit every frame (µs).
    pub total_sched_us: f64,
    /// Per frame (µs).
    pub avg_sched_us: f64,
    /// Transmit-only loop (µs).
    pub total_nosched_us: f64,
    /// Per frame (µs).
    pub avg_nosched_us: f64,
    /// Frames processed.
    pub frames: usize,
}

impl MicroResult {
    /// The scheduler overhead the paper quotes: avg with − avg without.
    pub fn overhead_us(&self) -> f64 {
        self.avg_sched_us - self.avg_nosched_us
    }
}

/// Build the frame descriptors by actually encoding and segmenting a
/// synthetic MPEG-1 stream (the unit of scheduling is the MPEG-I frame).
fn segmented_frames(frames: usize) -> Vec<(FrameKind, u32, u64)> {
    let mut enc = SyntheticEncoder::new(EncoderConfig::default());
    let (bytes, _) = enc.encode(frames);
    Segmenter::new(&bytes)
        .segment_all()
        .expect("synthetic stream segments cleanly")
        .into_iter()
        .map(|f| {
            let kind = match f.kind {
                mpeg1::PictureKind::I => FrameKind::I,
                mpeg1::PictureKind::P => FrameKind::P,
                mpeg1::PictureKind::B => FrameKind::B,
            };
            (kind, f.len, f.offset as u64)
        })
        .collect()
}

/// Run one microbenchmark cell.
pub fn run(cfg: &MicroConfig) -> MicroResult {
    run_inner(cfg, None)
}

/// Run one microbenchmark cell with the scheduled pass narrated into an
/// NI trace ring: one `Admit` per stream, then per service pass any
/// `Drop`s, the `Decision`, and the `Dispatch` if a frame went out, all
/// stamped with the pass's deadline-query time (the same pass-start
/// convention the service core uses). The measurement itself is
/// untouched — [`run`] and `run_traced` return identical numbers.
pub fn run_traced(cfg: &MicroConfig, ring: &mut TraceRing) -> MicroResult {
    run_inner(cfg, Some(ring))
}

fn run_inner(cfg: &MicroConfig, mut trace: Option<&mut TraceRing>) -> MicroResult {
    let mut core = I960Core::new()
        .with_math(cfg.math)
        .with_cache(cfg.cache)
        .with_store(cfg.store);

    // Pre-load every descriptor (paper: scheduler starts after the ring is
    // full). One stream per cfg; a 30 fps deadline chain.
    let mut sched: DwcsScheduler<DualHeap> = DwcsScheduler::new(DualHeap::new(cfg.streams));
    let period = 33_333_333u64 / cfg.streams as u64; // keep aggregate rate
    let sids: Vec<_> = (0..cfg.streams)
        .map(|_| sched.add_stream(StreamQos::new(period, 2, 8)))
        .collect();
    if let Some(ring) = trace.as_deref_mut() {
        for sid in &sids {
            ring.push(TraceEvent::Admit {
                at: 0,
                stream: sid.0,
                period,
                loss_num: 2,
                loss_den: 8,
            });
        }
    }
    let frames = segmented_frames(cfg.frames);
    for (i, &(kind, len, addr)) in frames.iter().enumerate() {
        let sid = sids[i % sids.len()];
        let desc = FrameDesc::new(sid, (i / sids.len()) as u64, len, kind).at_addr(addr);
        sched.enqueue(sid, desc, 0);
    }

    // Scheduled pass: decide + dispatch per frame, charging the core model.
    // Ring occupancy decays from `frames` to 0 as the paper's run drains.
    let mut now = SimDuration::ZERO;
    let mut occupancy = frames.len() as u64;
    let mut sent = 0usize;
    while sent < frames.len() {
        // Run the scheduler far enough in its own virtual time that every
        // pre-loaded deadline has passed is wrong — we want on-time
        // service, so query at each head deadline like the firmware's
        // paced loop.
        let t = sched.next_eligible().expect("frames remain");
        let d = sched.schedule_next(t);
        if let Some(ring) = trace.as_deref_mut() {
            sched.drain_dropped(|desc| {
                ring.push(TraceEvent::Drop {
                    at: t,
                    stream: desc.stream.0,
                    seq: desc.seq,
                });
            });
            ring.push(TraceEvent::Decision {
                at: t,
                stream: d.frame.map(|f| f.desc.stream.0),
                dropped: d.dropped,
                backlog: sched.total_backlog(),
                compares: d.work.compares,
                touches: d.work.touches,
            });
            if let Some(f) = d.frame {
                ring.push(TraceEvent::Dispatch {
                    at: t,
                    stream: f.desc.stream.0,
                    seq: f.desc.seq,
                    len: f.desc.len,
                    deadline: f.deadline,
                    on_time: f.on_time,
                });
            }
        }
        let work = dwcs_work::Work {
            compares: d.work.compares,
            touches: d.work.touches,
        };
        now += core.decision_time(work, occupancy);
        if let Some(_f) = d.frame {
            now += core.dispatch_time();
            sent += 1;
            occupancy -= 1;
        } else {
            // Paced idle or drops; drops shrink occupancy too.
            occupancy = occupancy.saturating_sub(u64::from(d.dropped));
            sent += d.dropped as usize;
        }
    }
    let total_sched_us = now.as_micros_f64();

    // Transmit-only pass: address is "readily available"; only the
    // dispatch path runs.
    let mut core2 = I960Core::new()
        .with_math(cfg.math)
        .with_cache(cfg.cache)
        .with_store(cfg.store);
    let mut nosched = SimDuration::ZERO;
    for _ in &frames {
        nosched += core2.dispatch_time();
        // The float build still converts rate counters per frame even in
        // the transmit loop (the paper's w/o-scheduler times differ by
        // build: 34.6 vs 30.35 µs) — one ratio bookkeeping op per frame.
        let per_frame_ratio = match cfg.math {
            MathMode::FixedPoint => hwsim::calib::FIXED_RATIO_CYCLES,
            MathMode::SoftFloat => hwsim::calib::SOFT_FP_RATIO_CYCLES / 2,
        };
        nosched += core2.cycles_time(per_frame_ratio);
    }
    let total_nosched_us = nosched.as_micros_f64();

    let n = frames.len() as f64;
    MicroResult {
        total_sched_us,
        avg_sched_us: total_sched_us / n,
        total_nosched_us,
        avg_nosched_us: total_nosched_us / n,
        frames: frames.len(),
    }
}

/// Table 1: data cache disabled, software-FP and fixed-point columns.
pub fn table1() -> (MicroResult, MicroResult) {
    let float = run(&MicroConfig {
        math: MathMode::SoftFloat,
        ..MicroConfig::default()
    });
    let fixed = run(&MicroConfig::default());
    (float, fixed)
}

/// Table 2: data cache enabled.
pub fn table2() -> (MicroResult, MicroResult) {
    let float = run(&MicroConfig {
        math: MathMode::SoftFloat,
        cache: true,
        ..MicroConfig::default()
    });
    let fixed = run(&MicroConfig {
        cache: true,
        ..MicroConfig::default()
    });
    (float, fixed)
}

/// Table 3: fixed point, cache enabled, descriptors in the hardware-queue
/// registers.
pub fn table3() -> MicroResult {
    run(&MicroConfig {
        cache: true,
        store: DescriptorStore::HwQueueRegs,
        ..MicroConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let (float, fixed) = table1();
        assert_eq!(fixed.frames, 151);
        // Paper: avg sched 129.67 (FP) vs 108.48 (fixed); w/o 34.6 / 30.35.
        assert!(
            (100.0..=120.0).contains(&fixed.avg_sched_us),
            "fixed avg {:.2}",
            fixed.avg_sched_us
        );
        assert!(
            (120.0..=140.0).contains(&float.avg_sched_us),
            "float avg {:.2}",
            float.avg_sched_us
        );
        assert!(
            (28.0..=33.0).contains(&fixed.avg_nosched_us),
            "fixed w/o {:.2}",
            fixed.avg_nosched_us
        );
        assert!(
            (33.0..=37.0).contains(&float.avg_nosched_us),
            "float w/o {:.2}",
            float.avg_nosched_us
        );
        // Fixed point wins by ~20 µs per decision.
        let delta = float.avg_sched_us - fixed.avg_sched_us;
        assert!((15.0..=26.0).contains(&delta), "FP penalty {delta:.1}");
    }

    #[test]
    fn table2_cache_saves_over_table1() {
        let (_, fixed_off) = table1();
        let (float_on, fixed_on) = table2();
        let save = fixed_off.avg_sched_us - fixed_on.avg_sched_us;
        assert!((10.0..=18.0).contains(&save), "cache saving {save:.1} µs");
        // Paper Table 2: fixed 94.60, float 115.20.
        assert!(
            (85.0..=105.0).contains(&fixed_on.avg_sched_us),
            "{:.2}",
            fixed_on.avg_sched_us
        );
        assert!(
            (105.0..=125.0).contains(&float_on.avg_sched_us),
            "{:.2}",
            float_on.avg_sched_us
        );
    }

    #[test]
    fn table3_hwqueue_comparable_to_cached_memory() {
        let (_, fixed_on) = table2();
        let hw = table3();
        let diff = (hw.avg_sched_us - fixed_on.avg_sched_us).abs();
        assert!(
            diff < 10.0,
            "hwqueue {:.2} vs pinned {:.2}",
            hw.avg_sched_us,
            fixed_on.avg_sched_us
        );
    }

    #[test]
    fn overhead_matches_paper_65_to_78us() {
        let (_, fixed_off) = table1();
        let (_, fixed_on) = table2();
        assert!(
            (70.0..=85.0).contains(&fixed_off.overhead_us()),
            "{:.1}",
            fixed_off.overhead_us()
        );
        assert!(
            (60.0..=72.0).contains(&fixed_on.overhead_us()),
            "{:.1}",
            fixed_on.overhead_us()
        );
    }

    #[test]
    fn traced_cell_matches_untraced_and_narrates_every_frame() {
        let cfg = MicroConfig::default();
        let plain = run(&cfg);
        let mut ring = TraceRing::with_capacity(4096);
        let traced = run_traced(&cfg, &mut ring);

        assert_eq!(plain.total_sched_us, traced.total_sched_us);
        assert_eq!(plain.total_nosched_us, traced.total_nosched_us);

        let events = ring.drain();
        assert_eq!(ring.overflow(), 0);
        let admits = events.iter().filter(|e| matches!(e, TraceEvent::Admit { .. })).count();
        assert_eq!(admits, 1, "single-stream cell");
        let dispatches = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Dispatch { .. }))
            .count();
        let drops = events.iter().filter(|e| matches!(e, TraceEvent::Drop { .. })).count();
        assert_eq!(dispatches + drops, plain.frames, "every frame leaves a trace");
    }

    #[test]
    fn multi_stream_configs_also_run() {
        let r = run(&MicroConfig {
            streams: 8,
            frames: 160,
            ..MicroConfig::default()
        });
        assert_eq!(r.frames, 160);
        assert!(r.avg_sched_us > r.avg_nosched_us);
    }
}
