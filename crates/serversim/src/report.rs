//! Collectors and formatting shared by the experiment binaries.

use simkit::{SimDuration, SimTime, Trace};

/// Windowed rate collector: accumulate byte counts, emit one bits/second
/// sample per window — how the figures' "Bandwidth (bps)" traces are made.
pub struct RateWindow {
    window: SimDuration,
    window_start: SimTime,
    bytes_in_window: u64,
    trace: Trace,
}

impl RateWindow {
    /// Collector with the given window (the figures use 1 s).
    pub fn new(window: SimDuration) -> RateWindow {
        RateWindow {
            window,
            window_start: SimTime::ZERO,
            bytes_in_window: 0,
            trace: Trace::new(),
        }
    }

    /// Record `bytes` delivered at time `t`.
    pub fn record(&mut self, t: SimTime, bytes: u64) {
        self.roll(t);
        self.bytes_in_window += bytes;
    }

    fn roll(&mut self, t: SimTime) {
        while t.since(self.window_start) >= self.window {
            let end = self.window_start + self.window;
            let bps = self.bytes_in_window as f64 * 8.0 / self.window.as_secs_f64();
            self.trace.push(end, bps);
            self.window_start = end;
            self.bytes_in_window = 0;
        }
    }

    /// Close out at `t` and return the bps trace.
    pub fn finish(mut self, t: SimTime) -> Trace {
        self.roll(t);
        self.trace
    }
}

/// Average several traces pointwise (they must share sampling instants,
/// which our samplers guarantee by construction). Used to aggregate
/// per-CPU utilization into the total Perfmeter-style series of Figure 6.
pub fn average_traces(traces: &[Trace]) -> Trace {
    let mut out = Trace::new();
    let Some(first) = traces.first() else {
        return out;
    };
    for (i, &(t, _)) in first.points().iter().enumerate() {
        let mut sum = 0.0;
        let mut n = 0;
        for tr in traces {
            if let Some(&(_, v)) = tr.points().get(i) {
                sum += v;
                n += 1;
            }
        }
        if n > 0 {
            out.push(t, sum / n as f64);
        }
    }
    out
}

/// Render an aligned text table: `header` then rows. Column widths adapt
/// to content. Used by every `repro_*` binary so outputs diff cleanly.
pub fn format_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let rule: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
    out.push_str(&rule);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    #[test]
    fn rate_window_computes_bps() {
        let mut rw = RateWindow::new(SimDuration::from_secs(1));
        // 32 500 bytes each second = 260 kb/s.
        for sec in 0..5u64 {
            for _ in 0..10 {
                rw.record(t(sec) + SimDuration::from_millis(50), 3_250);
            }
        }
        let tr = rw.finish(t(5));
        assert_eq!(tr.len(), 5);
        for &(_, bps) in tr.points() {
            assert!((bps - 260_000.0).abs() < 1e-6, "got {bps}");
        }
    }

    #[test]
    fn rate_window_empty_windows_are_zero() {
        let mut rw = RateWindow::new(SimDuration::from_secs(1));
        rw.record(t(0) + SimDuration::from_millis(1), 1_000);
        rw.record(t(3) + SimDuration::from_millis(1), 1_000);
        let tr = rw.finish(t(4));
        let vals: Vec<f64> = tr.points().iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![8_000.0, 0.0, 0.0, 8_000.0]);
    }

    #[test]
    fn averaging_traces() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        for s in 1..=3u64 {
            a.push(t(s), 10.0);
            b.push(t(s), 30.0);
        }
        let avg = average_traces(&[a, b]);
        assert_eq!(avg.len(), 3);
        for &(_, v) in avg.points() {
            assert_eq!(v, 20.0);
        }
    }

    #[test]
    fn table_formatting_aligns() {
        let s = format_table(
            "Table X",
            &["Microbenchmark", "us"],
            &[
                vec!["Total Sched time".into(), "16425.36".into()],
                vec!["Avg".into(), "108.48".into()],
            ],
        );
        assert!(s.contains("Table X"));
        assert!(s.contains("| 16425.36"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[4].len());
    }
}
