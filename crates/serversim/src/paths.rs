//! Critical-path benchmarks — Table 4 — and PCI transfers — Table 5.
//!
//! Figure 3's three frame-transfer paths, each measured as "the latency of
//! a 1000 byte frame transfer from disk to remote client … averaged over
//! 1000 transfers":
//!
//! * **Path A** (Experiment I): system disk → host filesystem → host CPU →
//!   I/O bus → a conventional NI → network. Two variants, exactly as the
//!   paper ran them: Solaris **UFS** (cached/prefetching → ≈ 1 ms) and the
//!   **VxWorks dos filesystem mounted on the host** (≈ 8 ms).
//! * **Path C** (Experiment II): disk attached to the i960 NI → NI CPU →
//!   network; no host involvement at all (≈ 5.4 ms, dominated by the
//!   4.2 ms dosFs disk access).
//! * **Path B** (Experiment III): disk on one NI → PCI peer-to-peer DMA →
//!   scheduler NI → network (≈ 5.415 ms = 4.2 disk + 1.2 net + 0.015 PCI).

use hwsim::{Ethernet, Filesystem, HostCpu, PciBus, ScsiDisk};
use simkit::rng::Pcg32;
use simkit::SimDuration;

/// Latency breakdown of one path (mean over the configured transfers).
#[derive(Clone, Copy, Debug)]
pub struct PathBreakdown {
    /// Disk + filesystem component (ms).
    pub disk_ms: f64,
    /// Host CPU component (ms) — zero for NI-only paths.
    pub host_ms: f64,
    /// PCI peer-to-peer component (ms) — Path B only.
    pub pci_ms: f64,
    /// Network component, end to end (ms).
    pub net_ms: f64,
    /// Total (ms).
    pub total_ms: f64,
}

fn breakdown(disk: SimDuration, host: SimDuration, pci: SimDuration, net: SimDuration) -> PathBreakdown {
    let total = disk + host + pci + net;
    PathBreakdown {
        disk_ms: disk.as_millis_f64(),
        host_ms: host.as_millis_f64(),
        pci_ms: pci.as_millis_f64(),
        net_ms: net.as_millis_f64(),
        total_ms: total.as_millis_f64(),
    }
}

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct PathConfig {
    /// Frame size (the paper uses 1000 bytes).
    pub frame_bytes: u64,
    /// Transfers to average over (the paper uses 1000).
    pub transfers: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PathConfig {
    fn default() -> PathConfig {
        PathConfig {
            frame_bytes: 1000,
            transfers: 1000,
            seed: 0x7061_7468, // "path"
        }
    }
}

fn mean<F: FnMut(&mut Pcg32) -> SimDuration>(cfg: &PathConfig, stream: u64, mut f: F) -> SimDuration {
    let mut rng = Pcg32::new(cfg.seed, stream);
    let mut total = SimDuration::ZERO;
    for _ in 0..cfg.transfers {
        total += f(&mut rng);
    }
    total / u64::from(cfg.transfers)
}

/// Path A with Solaris UFS (Experiment I, fast variant).
///
/// Host-side sending is cheaper than the NI firmware path: a 200 MHz CPU
/// drives the Intel 82557 with a mature Solaris stack (send side ≈ 100 µs
/// vs the i960's 520 µs).
pub fn path_a_ufs(cfg: &PathConfig) -> PathBreakdown {
    let mut disk = ScsiDisk::new();
    let fs = Filesystem::ufs();
    let mut cpu = HostCpu::new();
    let mut eth = host_sender_eth();

    let disk_t = mean(cfg, 1, |rng| fs.read_frame(&mut disk, cfg.frame_bytes, rng));
    let host_t = mean(cfg, 2, |_| cpu.frame_send_time(cfg.frame_bytes));
    let net_t = mean(cfg, 3, |_| eth.end_to_end(cfg.frame_bytes));
    breakdown(disk_t, host_t, SimDuration::ZERO, net_t)
}

/// Path A with the VxWorks dos filesystem mounted on the host
/// (Experiment I, slow variant).
pub fn path_a_vxfs(cfg: &PathConfig) -> PathBreakdown {
    let mut disk = ScsiDisk::new();
    let fs = Filesystem::dosfs_on_host();
    let mut cpu = HostCpu::new();
    let mut eth = host_sender_eth();

    let disk_t = mean(cfg, 1, |rng| fs.read_frame(&mut disk, cfg.frame_bytes, rng));
    let host_t = mean(cfg, 2, |_| cpu.frame_send_time(cfg.frame_bytes));
    let net_t = mean(cfg, 3, |_| eth.end_to_end(cfg.frame_bytes));
    breakdown(disk_t, host_t, SimDuration::ZERO, net_t)
}

/// Path C (Experiment II): NI-attached disk, NI CPU, network. "Bus
/// activity is reduced to a minimum by disabling other cards"; the NI's
/// dosFs runs with the data cache disabled.
pub fn path_c(cfg: &PathConfig) -> PathBreakdown {
    let mut disk = ScsiDisk::new();
    let fs = Filesystem::dosfs();
    let mut eth = Ethernet::new(); // NI firmware sender

    let disk_t = mean(cfg, 1, |rng| fs.read_frame(&mut disk, cfg.frame_bytes, rng));
    let net_t = mean(cfg, 3, |_| eth.end_to_end(cfg.frame_bytes));
    breakdown(disk_t, SimDuration::ZERO, SimDuration::ZERO, net_t)
}

/// Path B (Experiment III): disk on one NI, PCI peer-to-peer DMA to the
/// scheduler NI, then the network. "This transfer does not involve
/// consumption of host memory, host CPU cycles or host system bus
/// bandwidth."
pub fn path_b(cfg: &PathConfig) -> PathBreakdown {
    let mut disk = ScsiDisk::new();
    let fs = Filesystem::dosfs();
    let mut bus = PciBus::new();
    let mut eth = Ethernet::new();

    let disk_t = mean(cfg, 1, |rng| fs.read_frame(&mut disk, cfg.frame_bytes, rng));
    let pci_t = mean(cfg, 2, |_| bus.dma_time(cfg.frame_bytes));
    let net_t = mean(cfg, 3, |_| eth.end_to_end(cfg.frame_bytes));
    breakdown(disk_t, SimDuration::ZERO, pci_t, net_t)
}

/// The host-NIC (Intel 82557 + Solaris stack) Ethernet variant used by
/// Path A.
fn host_sender_eth() -> Ethernet {
    let mut eth = Ethernet::new();
    eth.send_stack = SimDuration::from_micros(100);
    eth.recv_stack = SimDuration::from_micros(450);
    eth
}

/// Table 5 rows: the raw PCI card-to-card benchmarks.
#[derive(Clone, Copy, Debug)]
pub struct Table5 {
    /// DMA time for the 773 665-byte MPEG file (µs).
    pub file_dma_us: f64,
    /// Effective bandwidth of that transfer (MB/s).
    pub file_dma_mbps: f64,
    /// PIO word read (µs).
    pub pio_read_us: f64,
    /// PIO word write (µs).
    pub pio_write_us: f64,
}

/// Run the Table 5 benchmarks.
pub fn table5() -> Table5 {
    let mut bus = PciBus::new();
    let t = bus.dma_time(773_665);
    Table5 {
        file_dma_us: t.as_micros_f64(),
        file_dma_mbps: 773_665.0 / t.as_secs_f64() / 1e6,
        pio_read_us: bus.pio_read_time(1).as_micros_f64(),
        pio_write_us: bus.pio_write_time(1).as_micros_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PathConfig {
        PathConfig::default()
    }

    #[test]
    fn path_a_ufs_lands_near_1ms() {
        let b = path_a_ufs(&cfg());
        assert!(
            (0.7..=1.5).contains(&b.total_ms),
            "Table 4: ≈1 ms, got {:.2}",
            b.total_ms
        );
    }

    #[test]
    fn path_a_vxfs_lands_near_8ms() {
        let b = path_a_vxfs(&cfg());
        assert!(
            (6.5..=9.0).contains(&b.total_ms),
            "Table 4: ≈8 ms, got {:.2}",
            b.total_ms
        );
    }

    #[test]
    fn path_c_lands_near_5_4ms() {
        let b = path_c(&cfg());
        assert!(
            (5.0..=5.8).contains(&b.total_ms),
            "Table 4: 5.4 ms, got {:.2}",
            b.total_ms
        );
        assert!((3.9..=4.5).contains(&b.disk_ms), "disk ≈4.2 ms, got {:.2}", b.disk_ms);
        assert!((1.0..=1.3).contains(&b.net_ms), "net ≈1.2 ms, got {:.2}", b.net_ms);
        assert_eq!(b.host_ms, 0.0, "no host CPU on Path C");
    }

    #[test]
    fn path_b_is_path_c_plus_15us() {
        let b = path_b(&cfg());
        let c = path_c(&cfg());
        assert!(
            (5.0..=5.8).contains(&b.total_ms),
            "Table 4: 5.415 ms, got {:.2}",
            b.total_ms
        );
        let extra_ms = b.total_ms - c.total_ms;
        assert!(
            (0.010..=0.025).contains(&extra_ms),
            "PCI hop ≈0.015 ms, got {extra_ms:.4}"
        );
        assert!((0.014..=0.017).contains(&b.pci_ms));
    }

    #[test]
    fn ni_paths_beat_host_vxfs_path_but_lose_to_ufs() {
        // The paper's punchline for Table 4: with the same filesystem the
        // NI path wins big (5.4 vs 8 ms); a cached host UFS beats both.
        let ufs = path_a_ufs(&cfg()).total_ms;
        let vxfs = path_a_vxfs(&cfg()).total_ms;
        let ni = path_c(&cfg()).total_ms;
        assert!(ni < vxfs, "NI {ni:.2} < host-vxfs {vxfs:.2}");
        assert!(ufs < ni, "cached UFS {ufs:.2} < NI {ni:.2}");
    }

    #[test]
    fn table5_matches_paper() {
        let t = table5();
        assert!((11_600.0..=11_750.0).contains(&t.file_dma_us), "{:.2}", t.file_dma_us);
        assert!((65.5..=66.5).contains(&t.file_dma_mbps), "{:.2}", t.file_dma_mbps);
        assert!((t.pio_read_us - 3.6).abs() < 0.01);
        assert!((t.pio_write_us - 3.1).abs() < 0.01);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = path_c(&cfg());
        let b = path_c(&cfg());
        assert_eq!(a.total_ms, b.total_ms);
    }
}
