//! Shared-PCI-bus contention: many producer NIs feeding one scheduler NI.
//!
//! §4.2.2 of the paper: *"A more scalable way to stream media … is to
//! attach disks to a separate i960 RD card and transfer frames from disk
//! across the PCI bus to a separate Scheduler-NI"*, and §6: *"careful
//! balance between NIs dedicated for scheduling and stream sourcing is
//! required"*. This event-driven experiment quantifies that balance: `P`
//! producer NIs each sourcing `S` streams DMA frames over the **shared**
//! bus (FIFO arbitration via [`simkit::Resource`]) into the scheduler NI,
//! which decides and transmits work-conservingly.
//!
//! Expected shape (asserted by tests, reported by `cluster_capacity`-style
//! sweeps): delivered throughput scales with producers until the scheduler
//! NI's CPU+wire budget saturates, while the PCI bus itself stays lightly
//! used and DMA queueing delays remain microseconds — the bus is *not*
//! the scarce resource, exactly why peer-to-peer offload scales.

use dwcs::{DualHeap, DwcsScheduler, FrameDesc, FrameKind, StreamId, StreamQos};
use hwsim::i960::dwcs_work;
use hwsim::{Ethernet, I960Core, PciBus};
use simkit::{Engine, Resource, SimDuration, SimTime};

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct PciSimConfig {
    /// Producer NIs on the bus.
    pub producers: usize,
    /// Streams per producer NI.
    pub streams_per_producer: usize,
    /// Frame period per stream.
    pub period: SimDuration,
    /// Frame size (bytes).
    pub frame_bytes: u32,
    /// Simulated duration.
    pub run: SimDuration,
}

impl Default for PciSimConfig {
    fn default() -> PciSimConfig {
        PciSimConfig {
            producers: 2,
            streams_per_producer: 8,
            period: SimDuration::from_millis(33),
            frame_bytes: 1_083,
            run: SimDuration::from_secs(5),
        }
    }
}

/// Sweep outcome.
#[derive(Clone, Copy, Debug)]
pub struct PciSimResult {
    /// Frames delivered to the wire.
    pub delivered: u64,
    /// Aggregate delivered throughput (bits/s).
    pub throughput_bps: f64,
    /// PCI bus utilization in [0, 1].
    pub bus_utilization: f64,
    /// Mean DMA grant wait (ms).
    pub mean_dma_wait_ms: f64,
    /// Deepest bus queue observed.
    pub max_bus_queue: usize,
    /// Offered frame rate (frames/s) for reference.
    pub offered_fps: f64,
    /// Scheduler-NI busy fraction in [0, 1].
    pub sched_ni_utilization: f64,
}

struct World {
    bus: Option<Resource<World>>,
    bus_model: PciBus,
    sched: DwcsScheduler<DualHeap>,
    core: I960Core,
    eth: Ethernet,
    sched_busy: bool,
    sched_busy_time: SimDuration,
    delivered: u64,
    delivered_bytes: u64,
    frame_bytes: u32,
    end: SimTime,
}

type Eng = Engine<World>;

fn with_bus(w: &mut World, f: impl FnOnce(&mut World, &mut Resource<World>)) {
    let mut bus = w.bus.take().expect("bus present");
    f(w, &mut bus);
    w.bus = Some(bus);
}

/// One stream's periodic production: frame ready → queue for the bus.
fn produce(w: &mut World, eng: &mut Eng, sid: StreamId, seq: u64, period: SimDuration) {
    if eng.now() >= w.end {
        return;
    }
    // Request the shared bus for the card-to-card DMA.
    let bytes = u64::from(w.frame_bytes);
    with_bus(w, |_w, bus| {
        bus.acquire(eng, move |w: &mut World, eng| {
            let dma = w.bus_model.dma_time(bytes);
            eng.schedule_in(dma, move |w: &mut World, eng| {
                with_bus(w, |_w, bus| bus.release(eng));
                // Frame now resides in scheduler-NI memory.
                let desc = FrameDesc::new(sid, seq, bytes as u32, FrameKind::P);
                let t = eng.now().as_nanos();
                w.sched.enqueue(sid, desc, t);
                kick_scheduler(w, eng);
            });
        });
    });
    // Next frame of this stream.
    eng.schedule_in(period, move |w: &mut World, eng| {
        produce(w, eng, sid, seq + 1, period);
    });
}

/// Scheduler NI: work-conserving decide→dispatch loop.
fn kick_scheduler(w: &mut World, eng: &mut Eng) {
    if w.sched_busy || eng.now() >= w.end {
        return;
    }
    let t = eng.now().as_nanos();
    let d = w.sched.schedule_next(t);
    let Some(f) = d.frame else { return };
    let work = dwcs_work::Work {
        compares: d.work.compares,
        touches: d.work.touches,
    };
    let cost = w.core.decision_time(work, 8) + w.core.dispatch_time() + w.eth.send_occupancy(u64::from(f.desc.len));
    w.sched_busy = true;
    w.sched_busy_time += cost;
    eng.schedule_in(cost, move |w: &mut World, eng| {
        w.sched_busy = false;
        w.delivered += 1;
        w.delivered_bytes += u64::from(f.desc.len);
        kick_scheduler(w, eng);
    });
}

/// Run one configuration.
pub fn run(cfg: &PciSimConfig) -> PciSimResult {
    let mut eng: Eng = Engine::new();
    let total_streams = cfg.producers * cfg.streams_per_producer;
    let mut sched = DwcsScheduler::new(DualHeap::new(total_streams.max(1)));
    let mut sids = Vec::new();
    for _ in 0..total_streams {
        sids.push(sched.add_stream(StreamQos::new(cfg.period.as_nanos(), 2, 8)));
    }
    let mut w = World {
        bus: Some(Resource::new("pci")),
        bus_model: PciBus::new(),
        sched,
        core: I960Core::new().with_cache(true),
        eth: Ethernet::new(),
        sched_busy: false,
        sched_busy_time: SimDuration::ZERO,
        delivered: 0,
        delivered_bytes: 0,
        frame_bytes: cfg.frame_bytes,
        end: SimTime::ZERO + cfg.run,
    };
    // Stagger stream starts across one period to avoid phase pile-up.
    for (i, &sid) in sids.iter().enumerate() {
        let offset = cfg.period * (i as u64) / (total_streams as u64);
        let period = cfg.period;
        eng.schedule_at(SimTime::ZERO + offset, move |w: &mut World, eng| {
            produce(w, eng, sid, 0, period);
        });
    }
    let end = w.end;
    eng.run_until(&mut w, end);

    let bus = w.bus.as_ref().expect("bus present");
    let run_s = cfg.run.as_secs_f64();
    PciSimResult {
        delivered: w.delivered,
        throughput_bps: w.delivered_bytes as f64 * 8.0 / run_s,
        bus_utilization: bus.utilization(w.end),
        mean_dma_wait_ms: bus.wait_stats().mean(),
        max_bus_queue: bus.max_queue(),
        offered_fps: total_streams as f64 / cfg.period.as_secs_f64(),
        sched_ni_utilization: w.sched_busy_time.as_secs_f64() / run_s,
    }
}

/// Sweep producer counts at fixed per-producer load.
pub fn sweep(producers: &[usize]) -> Vec<(usize, PciSimResult)> {
    producers
        .iter()
        .map(|&p| {
            let cfg = PciSimConfig {
                producers: p,
                ..PciSimConfig::default()
            };
            (p, run(&cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_until_scheduler_saturates() {
        let rows = sweep(&[1, 2, 4, 8]);
        // Monotone non-decreasing delivery.
        for w in rows.windows(2) {
            assert!(w[1].1.delivered >= w[0].1.delivered, "{rows:?}");
        }
        // At 1 producer the scheduler keeps up with the offered rate.
        let (_, one) = rows[0];
        let expected = one.offered_fps * 5.0; // 5 s run
        assert!(
            (one.delivered as f64) > expected * 0.95,
            "delivered {} of ~{expected}",
            one.delivered
        );
    }

    #[test]
    fn bus_is_not_the_bottleneck() {
        let cfg = PciSimConfig {
            producers: 8,
            ..PciSimConfig::default()
        };
        let r = run(&cfg);
        // 8 producers × 8 streams at 30 fps ≈ 1 939 frames/s of 1 083-byte
        // DMAs ≈ 2.1 MB/s on a 66 MB/s bus.
        assert!(r.bus_utilization < 0.10, "bus util {:.3}", r.bus_utilization);
        assert!(r.mean_dma_wait_ms < 0.2, "dma wait {:.3} ms", r.mean_dma_wait_ms);
        // The scheduler NI is the loaded component.
        assert!(r.sched_ni_utilization > r.bus_utilization, "{r:?}");
    }

    #[test]
    fn saturated_scheduler_ni_caps_delivery() {
        // Crank the per-frame wire time by using big frames: the NI's
        // send occupancy (~0.6 ms at 1 KB, much more at 8 KB) caps fps.
        let cfg = PciSimConfig {
            producers: 8,
            streams_per_producer: 16,
            frame_bytes: 8_000,
            ..PciSimConfig::default()
        };
        let r = run(&cfg);
        let offered = r.offered_fps * 5.0;
        assert!(
            (r.delivered as f64) < offered * 0.8,
            "saturation expected: {} vs offered {offered}",
            r.delivered
        );
        assert!(r.sched_ni_utilization > 0.95, "{r:?}");
    }

    #[test]
    fn deterministic() {
        let a = run(&PciSimConfig::default());
        let b = run(&PciSimConfig::default());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.max_bus_queue, b.max_bus_queue);
    }
}
