//! Cluster topology — the paper's Figure 1 architecture.
//!
//! "A server configured as 16 quad Pentium Pro nodes connected via
//! I2O-based NIs, each of which has two 100 Mbps Ethernet links, a PCI
//! interface to the host CPU, and two SCSI interfaces directly attached to
//! disk devices." The paper's *evaluation* is single-node; this module
//! provides the cluster-level capacity model the conclusions gesture at
//! ("careful balance between NIs dedicated for scheduling and stream
//! sourcing is required, given the limited I/O slot real-estate") and an
//! example binary explores it.
//!
//! The model is analytic, not event-driven: per-NI and per-node stream
//! capacities derive from the calibrated primitives (decision + dispatch +
//! wire occupancy per frame; disk service per frame; PCI budget) and
//! admission control uses the real DWCS feasibility test.

use dwcs::admission;
use dwcs::StreamQos;
use hwsim::calib;
use simkit::SimDuration;

/// Role of one I2O NI in a node (§3.1: "One or more NIs in a system may be
/// dedicated to running the NI-based scheduler and other disk-attached NIs
/// may serve as stream producers").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NiRole {
    /// Runs the DWCS scheduler; no disks so the data cache stays on.
    Scheduler,
    /// Disks attached; sources frames over the PCI bus to scheduler NIs.
    Producer,
}

/// One node's I/O configuration.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// PCI slots available for I2O NIs ("limited I/O slot real-estate").
    pub slots: usize,
    /// How many of those slots hold scheduler NIs (rest are producers).
    pub scheduler_nis: usize,
    /// Per-stream QoS used for capacity accounting.
    pub stream_qos: StreamQos,
    /// Frame size in bytes.
    pub frame_bytes: u64,
}

impl Default for NodeConfig {
    fn default() -> NodeConfig {
        NodeConfig {
            slots: 3, // the paper's experimental node holds three I2O cards
            scheduler_nis: 1,
            stream_qos: StreamQos::new(33_333_333, 2, 8),
            frame_bytes: 1_083,
        }
    }
}

/// Capacity report for one node.
#[derive(Clone, Copy, Debug)]
pub struct NodeCapacity {
    /// Streams one scheduler NI sustains (CPU-side: decision + dispatch +
    /// wire occupancy per frame period).
    pub streams_per_scheduler_ni: u32,
    /// Streams one producer NI's disks can source (disk service per frame
    /// period, two SCSI ports).
    pub streams_per_producer_ni: u32,
    /// PCI-bus-limited stream count (producer→scheduler DMA per period).
    pub pci_stream_limit: u32,
    /// The node's bottleneck stream count given its NI mix.
    pub node_streams: u32,
}

/// Compute a node's stream capacity from the calibrated primitives.
pub fn node_capacity(cfg: &NodeConfig) -> NodeCapacity {
    let period = SimDuration::from_nanos(cfg.stream_qos.period);

    // Scheduler NI: per frame it pays one decision, one dispatch, and the
    // send-side wire occupancy of its 100 Mb/s port (two ports per card).
    let mut core = hwsim::I960Core::new().with_cache(true);
    let mut eth = hwsim::Ethernet::new();
    let per_frame = core.decision_time(
        hwsim::i960::dwcs_work::Work {
            compares: 8,
            touches: 8,
        },
        16,
    ) + core.dispatch_time()
        + eth.send_occupancy(cfg.frame_bytes);
    let cpu_limit = (period.as_nanos() / per_frame.as_nanos().max(1)) as u32;
    // Wire limit across both ports.
    let wire = eth.wire_time(cfg.frame_bytes);
    let wire_limit = 2 * (period.as_nanos() / wire.as_nanos().max(1)) as u32;
    let streams_per_scheduler_ni = cpu_limit.min(wire_limit);

    // Producer NI: each frame costs one dosFs disk access; two SCSI ports
    // work in parallel.
    let disk = hwsim::ScsiDisk::new();
    let fs = hwsim::Filesystem::dosfs();
    let per_disk_frame = fs.mean_read_frame(&disk, cfg.frame_bytes);
    let streams_per_producer_ni = 2 * (period.as_nanos() / per_disk_frame.as_nanos().max(1)) as u32;

    // PCI: each producer frame crosses the bus once (card-to-card DMA).
    let mut bus = hwsim::PciBus::new();
    let per_dma = bus.dma_time(cfg.frame_bytes);
    let pci_stream_limit = (period.as_nanos() / per_dma.as_nanos().max(1)) as u32;

    let producers = cfg.slots.saturating_sub(cfg.scheduler_nis) as u32;
    let sched = cfg.scheduler_nis as u32;
    let node_streams = (sched * streams_per_scheduler_ni)
        .min(producers * streams_per_producer_ni)
        .min(pci_stream_limit);

    NodeCapacity {
        streams_per_scheduler_ni,
        streams_per_producer_ni,
        pci_stream_limit,
        node_streams,
    }
}

/// A whole cluster (Figure 1): `nodes` × the node capacity, with the DWCS
/// admission test cross-checking that the per-NI stream count is actually
/// schedulable at the link.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Number of nodes (the paper's testbed: 16).
    pub nodes: usize,
    /// Per-node configuration.
    pub node: NodeConfig,
}

impl Cluster {
    /// The paper's 16-node testbed shape.
    pub fn paper_testbed() -> Cluster {
        Cluster {
            nodes: 16,
            node: NodeConfig::default(),
        }
    }

    /// Aggregate stream capacity.
    pub fn total_streams(&self) -> u32 {
        node_capacity(&self.node).node_streams * self.nodes as u32
    }

    /// Check a uniform stream set against DWCS feasibility on one
    /// scheduler NI's link (service time = wire time of one frame).
    pub fn admissible_per_ni(&self, streams: u32) -> bool {
        let eth = hwsim::Ethernet::new();
        let service = eth.wire_time(self.node.frame_bytes).as_nanos();
        let set: Vec<StreamQos> = (0..streams).map(|_| self.node.stream_qos).collect();
        admission::feasible(&set, service)
    }
}

/// Sweep scheduler/producer NI splits for a node — the "careful balance"
/// the conclusion calls for. Returns `(scheduler_nis, node_streams)`.
pub fn sweep_ni_split(slots: usize, base: &NodeConfig) -> Vec<(usize, u32)> {
    (1..slots)
        .map(|s| {
            let mut cfg = base.clone();
            cfg.slots = slots;
            cfg.scheduler_nis = s;
            (s, node_capacity(&cfg).node_streams)
        })
        .collect()
}

/// Host clock sanity constant re-exported for capacity math callers.
pub const HOST_HZ: u64 = calib::HOST_HZ;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_ni_sustains_hundreds_of_low_rate_streams() {
        let cap = node_capacity(&NodeConfig::default());
        // Per frame ≈ 65 µs + 28 µs + ~610 µs wire-side at 1083 B; a 33 ms
        // period admits ~47 such frames per port-pair CPU.
        assert!((20..=100).contains(&cap.streams_per_scheduler_ni), "{cap:?}");
    }

    #[test]
    fn producer_disks_are_the_scarce_resource() {
        let cap = node_capacity(&NodeConfig::default());
        // 4.2 ms per frame on dosFs: a 33 ms period admits ~7 streams per
        // disk, 15 per card — producers bottleneck the node.
        assert!(cap.streams_per_producer_ni < cap.streams_per_scheduler_ni, "{cap:?}");
        assert!(cap.node_streams <= cap.streams_per_producer_ni * 2);
    }

    #[test]
    fn split_sweep_shows_a_balance_point() {
        let sweep = sweep_ni_split(6, &NodeConfig::default());
        assert_eq!(sweep.len(), 5);
        // Capacity must rise then fall (or plateau): all-schedulers or
        // all-producers are both worse than a mix.
        let best = sweep.iter().map(|&(_, c)| c).max().unwrap();
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(best >= first && best >= last);
        assert!(best > 0);
    }

    #[test]
    fn cluster_scales_linearly_with_nodes() {
        let one = Cluster {
            nodes: 1,
            node: NodeConfig::default(),
        };
        let sixteen = Cluster::paper_testbed();
        assert_eq!(sixteen.total_streams(), one.total_streams() * 16);
    }

    #[test]
    fn admission_agrees_with_capacity_order_of_magnitude() {
        let c = Cluster::paper_testbed();
        let cap = node_capacity(&c.node);
        assert!(c.admissible_per_ni(cap.streams_per_scheduler_ni));
        // Far beyond capacity must be rejected by the exact test too.
        assert!(!c.admissible_per_ni(cap.streams_per_scheduler_ni * 50));
    }
}
