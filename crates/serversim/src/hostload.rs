//! Host-based scheduling under web-server load — Figures 6, 7 and 8.
//!
//! The experiment (§4.2.3): a Quad Pentium Pro with two CPUs online runs
//! Apache (pool of 5–10 processes) loaded by remote httperf clients, while
//! the host-resident DWCS scheduler streams MPEG to two clients (s1, s2).
//! Load is applied at the 45 % and 60 % average-utilization operating
//! points; bandwidth and queuing delay degrade badly because "the
//! (frame/packet) scheduler receives CPU at lower rates … leading to
//! back-logged frames in scheduler input queues that result in missed
//! deadlines and loss-tolerance violations".
//!
//! Model: a quantum-driven round-robin multiprocessor (Solaris TS
//! coarsened to RR — what matters is that the DWCS process shares the run
//! queue with web workers and daemons), with every work item priced by
//! `hwsim::HostCpu`. Producers burst the segmented MPEG file into the
//! scheduler queues at connect time (matching the linear queuing-delay
//! growth of Figure 8's *unloaded* curve); the DWCS process wakes at frame
//! deadlines, pays its ~50 µs decision plus the Path-A per-frame host send
//! tax, and drops frames that have aged past the grace window.

use crate::report::{average_traces, RateWindow};
use dwcs::scheduler::Pacing;
use dwcs::svc::{DispatchRecord, Platform, SchedService};
use dwcs::{DualHeap, FrameDesc, FrameKind, SchedulerConfig, StreamId, StreamQos};
use hwsim::HostCpu;
use nistream_trace::{TraceCapture, TraceRing};
use simkit::{Engine, Pcg32, SimDuration, SimTime, Trace, UtilizationSampler};
use std::collections::VecDeque;
use workload::apache::ApachePool;
use workload::mpegclient::ClientPlan;
use workload::profile::LoadProfile;

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct HostLoadConfig {
    /// CPUs online (the paper brings two online for this experiment).
    pub cpus: usize,
    /// Round-robin quantum.
    pub quantum: SimDuration,
    /// Web load profile (none / 45 % / 60 %).
    pub web: LoadProfile,
    /// Streaming clients.
    pub plan: ClientPlan,
    /// Frames pre-loaded per stream.
    pub frames_per_stream: usize,
    /// Total simulated time.
    pub run: SimDuration,
    /// Mean web response CPU cycles (tuning for utilization calibration).
    pub web_cycles_per_byte: u64,
    /// RNG seed.
    pub seed: u64,
    /// Scheduler trace ring capacity in events (0 disables tracing).
    pub trace_capacity: usize,
}

impl Default for HostLoadConfig {
    fn default() -> HostLoadConfig {
        HostLoadConfig {
            cpus: 2,
            quantum: SimDuration::from_millis(20),
            web: LoadProfile::none(),
            plan: ClientPlan::two_streams(100),
            frames_per_stream: 3_000, // 30 fps × 100 s: the file outlasts the run
            run: SimDuration::from_secs(100),
            web_cycles_per_byte: 2,
            seed: 0x686f_7374, // "host"
            trace_capacity: 0,
        }
    }
}

/// Per-stream outcome series.
#[derive(Clone, Debug)]
pub struct StreamSeries {
    /// Stream name ("s1", "s2").
    pub name: String,
    /// Windowed bandwidth (bps), 1 s windows — Figure 7/9 material.
    pub bandwidth: Trace,
    /// `(frame#, queuing delay ms)` per transmitted frame — Figure 8/10.
    pub qdelay: Vec<(u64, f64)>,
    /// Frames transmitted.
    pub sent: u64,
    /// Frames dropped late.
    pub dropped: u64,
    /// Window-constraint violations.
    pub violations: u64,
    /// Mean inter-departure jitter (ms) — §4.2.3's delay-jitter metric.
    pub mean_jitter_ms: f64,
}

/// Whole-experiment outcome.
#[derive(Clone, Debug)]
pub struct HostLoadResult {
    /// Total CPU utilization (%), 1 s windows — Figure 6 material.
    pub cpu_util: Trace,
    /// Mean of `cpu_util`.
    pub avg_util: f64,
    /// Max of `cpu_util`.
    pub peak_util: f64,
    /// Per-stream series.
    pub streams: Vec<StreamSeries>,
    /// Web requests completed.
    pub web_completed: u64,
    /// Worst observed wake-to-run latency of the DWCS process (ms) — the
    /// direct measure of CPU contention the paper blames for degradation.
    pub max_dwcs_wait_ms: f64,
    /// Scheduler event trace (empty unless
    /// [`HostLoadConfig::trace_capacity`] is set).
    pub trace: TraceCapture,
}

// ---------------------------------------------------------------------
// World
// ---------------------------------------------------------------------

enum Kind {
    /// Periodic system daemon (Solaris base load).
    Daemon { work: SimDuration, period: SimDuration },
    /// Apache worker currently serving a request.
    Web { remaining_cycles: u64 },
    /// MPEG producer: segments + injects its file in a burst.
    Producer {
        stream_idx: usize,
        next_frame: usize,
        per_frame_cycles: u64,
    },
    /// The host DWCS scheduler process.
    Dwcs,
}

struct Proc {
    kind: Kind,
    runnable: bool,
    alive: bool,
}

struct Cpu {
    running: Option<usize>,
    last_proc: Option<usize>,
    sampler: UtilizationSampler,
    model: HostCpu,
}

/// The host-placement binding of [`dwcs::svc::Platform`] for this
/// simulation: simulated time advances as the DWCS process pays the
/// Path-A per-frame host send tax, and every dispatch lands in the
/// bandwidth / queuing-delay series. Send pricing is cache-independent
/// (`HostCpu::frame_send_time` never touches the cache model), so the
/// platform owns its own `HostCpu` instance without perturbing the
/// per-CPU decision-cost state.
///
/// Public so the cross-placement trace-conformance suite can drive this
/// binding directly on a scripted schedule.
pub struct HostSendPlatform {
    now_ns: u64,
    send_model: HostCpu,
    frames_sent: Vec<u64>,
    bw: Vec<RateWindow>,
    qdelay: Vec<Vec<(u64, f64)>>,
    trace: Option<TraceRing>,
}

impl HostSendPlatform {
    /// A platform serving `nstreams` streams, with a trace ring of
    /// `trace_capacity` events (0 disables tracing).
    pub fn new(nstreams: usize, trace_capacity: usize) -> HostSendPlatform {
        let n = nstreams.max(1);
        HostSendPlatform {
            now_ns: 0,
            send_model: HostCpu::new(),
            frames_sent: vec![0; n],
            bw: (0..n).map(|_| RateWindow::new(SimDuration::from_secs(1))).collect(),
            qdelay: vec![Vec::new(); n],
            trace: (trace_capacity > 0).then(|| TraceRing::with_capacity(trace_capacity)),
        }
    }

    /// Drain the trace ring (empty capture when tracing is off).
    pub fn drain_trace(&mut self) -> TraceCapture {
        self.trace.as_mut().map(TraceCapture::from_ring).unwrap_or_default()
    }
}

impl Platform for HostSendPlatform {
    fn now(&mut self) -> u64 {
        self.now_ns
    }

    fn set_now(&mut self, t: u64) {
        self.now_ns = t;
    }

    fn dispatch(&mut self, rec: &DispatchRecord) {
        let len = u64::from(rec.frame.desc.len);
        self.now_ns += self.send_model.frame_send_time(len).as_nanos();
        let done_at = SimTime::from_nanos(self.now_ns);
        let si = rec.frame.desc.stream.index().min(self.bw.len() - 1);
        self.bw[si].record(done_at, len);
        self.frames_sent[si] += 1;
        let delay_ms = self.now_ns.saturating_sub(rec.frame.desc.enqueued_at) as f64 / 1e6;
        let n = self.frames_sent[si];
        self.qdelay[si].push((n, delay_ms));
    }

    fn tracer(&mut self) -> Option<&mut TraceRing> {
        self.trace.as_mut()
    }
}

struct World {
    cfg: HostLoadConfig,
    procs: Vec<Proc>,
    run_q: VecDeque<usize>,
    /// Low-priority queue: the DWCS process. Solaris TS demotes it below
    /// the frequently-sleeping web workers and daemons (it is the
    /// CPU-consuming class), so it runs only when no higher-priority
    /// process wants a CPU — §1's "the time-critical execution of device
    /// interactions is easily jeopardized by the CPU's need to also run
    /// higher-level application services".
    lo_q: VecDeque<usize>,
    cpus: Vec<Cpu>,
    pool: ApachePool,
    rng: Pcg32,
    svc: SchedService<DualHeap, HostSendPlatform>,
    sids: Vec<StreamId>,
    frame_bytes: Vec<u32>,
    dwcs_pid: usize,
    dwcs_woke_at: Option<SimTime>,
    max_dwcs_wait: SimDuration,
}

type Eng = Engine<World>;

fn make_runnable(w: &mut World, eng: &mut Eng, pid: usize) {
    let p = &mut w.procs[pid];
    if p.alive && !p.runnable {
        p.runnable = true;
        if pid == w.dwcs_pid {
            w.lo_q.push_back(pid);
            w.dwcs_woke_at = Some(eng.now());
        } else {
            w.run_q.push_back(pid);
        }
        eng.schedule_now(try_dispatch);
    }
}

fn try_dispatch(w: &mut World, eng: &mut Eng) {
    for ci in 0..w.cpus.len() {
        if w.cpus[ci].running.is_some() {
            continue;
        }
        let Some(pid) = w.run_q.pop_front().or_else(|| w.lo_q.pop_front()) else {
            break;
        };
        start_slice(w, eng, ci, pid);
    }
}

fn start_slice(w: &mut World, eng: &mut Eng, ci: usize, pid: usize) {
    let now = eng.now();
    if pid == w.dwcs_pid {
        if let Some(woke) = w.dwcs_woke_at.take() {
            w.max_dwcs_wait = w.max_dwcs_wait.max(now.since(woke));
        }
    }
    w.cpus[ci].running = Some(pid);
    w.cpus[ci].sampler.busy(now);

    // Context switch cost when the CPU changes processes.
    let mut used = SimDuration::ZERO;
    if w.cpus[ci].last_proc != Some(pid) {
        used += w.cpus[ci].model.context_switch();
        w.cpus[ci].last_proc = Some(pid);
    }
    let quantum = w.cfg.quantum;

    // Simulate the proc's activity for this slice; effects carry their
    // own sub-slice timestamps.
    enum After {
        Requeue,
        Block,
        Die,
    }
    let after;
    match &mut w.procs[pid].kind {
        Kind::Daemon { work, .. } => {
            used += *work;
            after = After::Block; // re-armed by its periodic wake event
        }
        Kind::Web { remaining_cycles } => {
            // A busy Apache worker does not yield between requests: it
            // chains queued connections until its quantum expires. Under
            // backlog this concentrates CPU into full-quantum slices —
            // exactly the contention pattern that starves the DWCS
            // process.
            let mut rem = *remaining_cycles;
            let mut dead = false;
            loop {
                let budget = quantum.saturating_sub(used);
                let need = w.cpus[ci].model.cycles_time(rem);
                if need <= budget {
                    used += need;
                    match w.pool.complete() {
                        Some(next) => {
                            rem = w.pool.work_of(&next).cpu_cycles
                                + next.response_bytes * (w.cfg.web_cycles_per_byte - 1);
                        }
                        None => {
                            dead = true;
                            break;
                        }
                    }
                } else {
                    let burned = (budget.as_nanos() as u128 * w.cpus[ci].model.hz as u128 / 1_000_000_000) as u64;
                    rem = rem.saturating_sub(burned.max(1));
                    used = quantum;
                    break;
                }
            }
            if let Kind::Web { remaining_cycles } = &mut w.procs[pid].kind {
                *remaining_cycles = rem;
            }
            after = if dead { After::Die } else { After::Requeue };
        }
        Kind::Producer {
            stream_idx,
            next_frame,
            per_frame_cycles,
        } => {
            let stream_idx = *stream_idx;
            let per = w.cpus[ci].model.cycles_time(*per_frame_cycles);
            let total = w.cfg.frames_per_stream;
            let mut produced_any = false;
            while *next_frame < total && used + per <= quantum {
                used += per;
                let t = now + used;
                let seq = *next_frame as u64;
                *next_frame += 1;
                produced_any = true;
                let sid = w.sids[stream_idx];
                let len = w.frame_bytes[stream_idx];
                let kind = match seq % 9 {
                    0 => FrameKind::I,
                    3 | 6 => FrameKind::P,
                    _ => FrameKind::B,
                };
                let desc = FrameDesc::new(sid, seq, len, kind);
                w.svc.ingest_at(sid, desc, t.as_nanos());
            }
            let done = {
                let Kind::Producer { next_frame, .. } = &w.procs[pid].kind else {
                    unreachable!()
                };
                *next_frame >= total
            };
            after = if done { After::Die } else { After::Requeue };
            if produced_any {
                // Wake the scheduler for the new work.
                let wake_pid = w.dwcs_pid;
                eng.schedule_in(used, move |w: &mut World, eng| make_runnable(w, eng, wake_pid));
            }
        }
        Kind::Dwcs => {
            // Process every eligible frame within the quantum. Decision
            // cost is priced on *this CPU's* cache-stateful model; the
            // service core then runs one decide/reclaim/dispatch pass on
            // the platform clock, which advances by the per-frame send
            // tax whenever a frame goes out.
            loop {
                let t_cur = now + used;
                match w.svc.next_eligible() {
                    Some(d) if d <= t_cur.as_nanos() => {
                        let decision_cost = w.cpus[ci].model.decision_time(16);
                        if used + decision_cost > quantum {
                            break;
                        }
                        used += decision_cost;
                        let decide_at = now + used;
                        w.svc.platform_mut().now_ns = decide_at.as_nanos();
                        let out = w.svc.service_once();
                        if out.dispatched > 0 {
                            used = SimDuration::from_nanos(w.svc.platform_mut().now_ns.saturating_sub(now.as_nanos()));
                        }
                        if used >= quantum {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            // More eligible work right now? requeue; else block + wake at
            // the next deadline.
            let t_end = (now + used).as_nanos();
            match w.svc.next_eligible() {
                Some(d) if d <= t_end => after = After::Requeue,
                Some(d) => {
                    after = After::Block;
                    let wake_pid = w.dwcs_pid;
                    let at = SimTime::from_nanos(d);
                    eng.schedule_at(at.max(now + used), move |w: &mut World, eng| {
                        make_runnable(w, eng, wake_pid);
                    });
                }
                None => after = After::Block,
            }
        }
    }

    // Daemons consumed `work`; everyone else computed `used` above.
    let end_handling = move |w: &mut World, eng: &mut Eng, ci: usize, pid: usize, after: After| {
        let t = eng.now();
        w.cpus[ci].sampler.idle(t);
        w.cpus[ci].running = None;
        match after {
            After::Requeue => {
                if pid == w.dwcs_pid {
                    w.lo_q.push_back(pid);
                } else {
                    w.run_q.push_back(pid);
                }
            }
            After::Block => {
                w.procs[pid].runnable = false;
            }
            After::Die => {
                w.procs[pid].runnable = false;
                w.procs[pid].alive = false;
            }
        }
        try_dispatch(w, eng);
    };
    eng.schedule_in(used.max(SimDuration::from_nanos(1)), move |w: &mut World, eng| {
        end_handling(w, eng, ci, pid, after);
    });
}

fn spawn_daemons(w: &mut World, eng: &mut Eng) {
    // Four Solaris-ish daemons: cron/perfmeter/nscd/inetd-style periodic
    // work. ~12 % of two 200 MHz CPUs in aggregate, which together with
    // streaming overhead reproduces Figure 6's ~15 % no-load average.
    for i in 0..4usize {
        let pid = w.procs.len();
        w.procs.push(Proc {
            kind: Kind::Daemon {
                work: SimDuration::from_micros(2_400),
                period: SimDuration::from_millis(40),
            },
            runnable: false,
            alive: true,
        });
        // Stagger their periods.
        let offset = SimDuration::from_millis(10 * i as u64);
        eng.schedule_in(offset, move |w: &mut World, eng| daemon_tick(w, eng, pid));
    }
}

fn daemon_tick(w: &mut World, eng: &mut Eng, pid: usize) {
    if !w.procs[pid].alive {
        return;
    }
    let Kind::Daemon { period, .. } = w.procs[pid].kind else {
        return;
    };
    make_runnable(w, eng, pid);
    eng.schedule_in(period, move |w: &mut World, eng| daemon_tick(w, eng, pid));
}

fn schedule_web_arrivals(w: &mut World, eng: &mut Eng) {
    let now = eng.now();
    let rate = w.cfg.web.rate_at(now);
    if rate <= 0.0 {
        // Quiet phase: re-check at the next phase boundary (or every
        // second if none upcoming).
        let next_check = w
            .cfg
            .web
            .phases
            .iter()
            .map(|&(s, _, _)| s)
            .find(|&s| s > now)
            .unwrap_or(now + SimDuration::from_secs(1));
        if next_check <= now + w.cfg.run {
            eng.schedule_at(
                next_check.max(now + SimDuration::from_millis(100)),
                schedule_web_arrivals,
            );
        }
        return;
    }
    let gap = SimDuration::from_secs_f64(w.rng.exp(1.0 / rate));
    eng.schedule_in(gap, move |w: &mut World, eng| {
        // One request arrives.
        let bytes = w.rng.bounded_pareto(1.2, 1_024.0, 512_000.0).round() as u64;
        let req = workload::httperf::WebRequest {
            id: w.pool.accepted,
            response_bytes: bytes,
            connection: 0,
        };
        let mut demand = w.pool.work_of(&req);
        demand.cpu_cycles += bytes * (w.cfg.web_cycles_per_byte - 1);
        if let Some(started) = w.pool.arrive(req) {
            let _ = started;
            let pid = w.procs.len();
            w.procs.push(Proc {
                kind: Kind::Web {
                    remaining_cycles: demand.cpu_cycles,
                },
                runnable: false,
                alive: true,
            });
            make_runnable(w, eng, pid);
        }
        schedule_web_arrivals(w, eng);
    });
}

/// Run the experiment.
pub fn run(cfg: HostLoadConfig) -> HostLoadResult {
    let mut eng: Eng = <Eng>::new();
    let nstreams = cfg.plan.clients.len();

    // Scheduler: deadline-paced, one-period grace (see module docs).
    let grace = cfg.plan.clients.first().map(|c| c.period).unwrap_or(0);
    let sched_cfg = SchedulerConfig {
        pacing: Pacing::DeadlinePaced,
        late_grace: grace,
        ..SchedulerConfig::default()
    };
    let platform = HostSendPlatform::new(nstreams, cfg.trace_capacity);
    let mut svc = SchedService::new(DualHeap::new(nstreams.max(1)), sched_cfg, platform);
    let mut sids = Vec::new();
    let mut frame_bytes = Vec::new();
    for c in &cfg.plan.clients {
        sids.push(svc.open(StreamQos::new(c.period, c.loss_num, c.loss_den)));
        frame_bytes.push(ClientPlan::frame_bytes(c));
    }

    let seed = cfg.seed;
    let run_t = SimTime::ZERO + cfg.run;
    let mut w = World {
        cpus: (0..cfg.cpus)
            .map(|_| Cpu {
                running: None,
                last_proc: None,
                sampler: UtilizationSampler::new(SimDuration::from_secs(1)),
                model: HostCpu::new(),
            })
            .collect(),
        procs: Vec::new(),
        run_q: VecDeque::new(),
        lo_q: VecDeque::new(),
        pool: ApachePool::new(),
        rng: Pcg32::new(seed, 77),
        svc,
        sids,
        frame_bytes,
        dwcs_pid: 0,
        dwcs_woke_at: None,
        max_dwcs_wait: SimDuration::ZERO,
        cfg,
    };

    // The DWCS process.
    w.dwcs_pid = w.procs.len();
    w.procs.push(Proc {
        kind: Kind::Dwcs,
        runnable: false,
        alive: true,
    });

    // Producers: burst the segmented file in at connect time.
    for (i, c) in w.cfg.plan.clients.clone().iter().enumerate() {
        let pid = w.procs.len();
        w.procs.push(Proc {
            kind: Kind::Producer {
                stream_idx: i,
                next_frame: 0,
                per_frame_cycles: 10_000, // 50 µs segment+inject per frame
            },
            runnable: false,
            alive: true,
        });
        let at = c.connect_at;
        eng.schedule_at(at, move |w: &mut World, eng| make_runnable(w, eng, pid));
    }

    spawn_daemons(&mut w, &mut eng);
    schedule_web_arrivals(&mut w, &mut eng);

    eng.run_until(&mut w, run_t);

    // Collect results.
    let util_traces: Vec<Trace> = w.cpus.drain(..).map(|c| c.sampler.finish(run_t)).collect();
    let cpu_util = average_traces(&util_traces);
    let avg_util = cpu_util.mean_between(SimTime::ZERO, run_t).unwrap_or(0.0);
    let peak_util = cpu_util.min_max().map(|(_, hi)| hi).unwrap_or(0.0);

    let mut streams = Vec::new();
    for (i, c) in w.cfg.plan.clients.iter().enumerate() {
        let bandwidth = w.svc.platform_mut().bw.remove(0).finish(run_t);
        let qdelay = std::mem::take(&mut w.svc.platform_mut().qdelay[i]);
        let stats = w.svc.scheduler().stats(w.sids[i]);
        streams.push(StreamSeries {
            name: c.name.clone(),
            bandwidth,
            qdelay,
            sent: stats.sent(),
            dropped: stats.dropped,
            violations: stats.violations,
            mean_jitter_ms: stats.mean_jitter() as f64 / 1e6,
        });
    }
    HostLoadResult {
        cpu_util,
        avg_util,
        peak_util,
        streams,
        web_completed: w.pool.completed,
        max_dwcs_wait_ms: w.max_dwcs_wait.as_millis_f64(),
        trace: w.svc.platform_mut().drain_trace(),
    }
}

/// Web request rate whose *sustained phase* produces roughly
/// `target_total` (0..1) total utilization, accounting for the streaming
/// baseline. The paper's "45 %"/"60 %" labels are whole-run averages whose
/// sustained plateaus sit noticeably higher (Figure 6's 60 % run exceeds
/// 80 % during the loaded window) — callers pass the plateau target.
pub fn web_rate_for(target_total: f64, cfg: &HostLoadConfig) -> f64 {
    let baseline = 0.14;
    let web_target = (target_total - baseline).max(0.0);
    // Mean response ≈ 6.1 KB (bounded Pareto 1.2 over [1 KB, 512 KB]);
    // cycles = base + bytes × cycles_per_byte.
    let mean_cycles = 500_000.0 + 6_100.0 * cfg.web_cycles_per_byte as f64;
    workload::profile::calibrate_rate(web_target, cfg.cpus as u32, mean_cycles as u64, hwsim::calib::HOST_HZ)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> HostLoadConfig {
        HostLoadConfig {
            run: SimDuration::from_secs(30),
            frames_per_stream: 900, // 30 fps × 30 s
            plan: ClientPlan::two_streams(30),
            ..HostLoadConfig::default()
        }
    }

    #[test]
    fn unloaded_run_settles_at_stream_rate() {
        let r = run(quick_cfg());
        assert_eq!(r.streams.len(), 2);
        for s in &r.streams {
            // 30 fps × ~1083 B ≈ 260 kb/s settling bandwidth.
            let settle = s.bandwidth.settling_value(0.5).unwrap();
            assert!((200_000.0..=300_000.0).contains(&settle), "{}: {settle:.0} bps", s.name);
            assert_eq!(s.dropped, 0, "no drops without load");
        }
    }

    #[test]
    fn unloaded_queuing_delay_grows_linearly() {
        let r = run(quick_cfg());
        let q = &r.streams[0].qdelay;
        assert!(q.len() > 100);
        // Frame k waits ≈ k × 33 ms: delay at frame 90 ≈ 3 s.
        let (n, d) = q[89];
        assert_eq!(n, 90);
        assert!((2_000.0..=4_000.0).contains(&d), "delay at frame 90 = {d:.0} ms");
        // Monotone growth.
        assert!(q.windows(2).all(|w| w[1].1 >= w[0].1 - 100.0));
    }

    #[test]
    fn unloaded_utilization_is_low_with_early_peak() {
        let r = run(quick_cfg());
        assert!((5.0..=25.0).contains(&r.avg_util), "avg {:.1} %", r.avg_util);
        assert!(r.peak_util >= r.avg_util);
        assert!(r.peak_util < 70.0, "peak {:.1} %", r.peak_util);
    }

    #[test]
    fn heavy_load_degrades_bandwidth_and_delay() {
        let mut cfg = quick_cfg();
        let rate = web_rate_for(0.85, &cfg);
        cfg.web = LoadProfile::experiment(5, 2, 30, rate);
        let loaded = run(cfg);
        let unloaded = run(quick_cfg());

        let bw_loaded: f64 = loaded
            .streams
            .iter()
            .map(|s| s.bandwidth.settling_value(0.5).unwrap())
            .sum();
        let bw_unloaded: f64 = unloaded
            .streams
            .iter()
            .map(|s| s.bandwidth.settling_value(0.5).unwrap())
            .sum();
        assert!(
            bw_loaded < bw_unloaded * 0.9,
            "load must cost bandwidth: {bw_loaded:.0} vs {bw_unloaded:.0}"
        );
        let drops: u64 = loaded.streams.iter().map(|s| s.dropped).sum();
        assert!(drops > 0, "60 % load must shed frames");
        assert!(loaded.avg_util > unloaded.avg_util + 20.0);
    }

    #[test]
    fn deterministic() {
        let a = run(quick_cfg());
        let b = run(quick_cfg());
        assert_eq!(a.avg_util, b.avg_util);
        assert_eq!(a.streams[0].sent, b.streams[0].sent);
    }

    #[test]
    fn tracing_captures_the_run_without_perturbing_it() {
        let plain = run(quick_cfg());
        let mut cfg = quick_cfg();
        cfg.trace_capacity = 1 << 16;
        let traced = run(cfg);

        assert!(plain.trace.is_empty(), "tracing off by default");
        assert!(!traced.trace.is_empty(), "traced run captures events");
        assert_eq!(traced.trace.overflow, 0, "64 Ki ring holds a 30 s run");
        let admits = traced
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, nistream_trace::TraceEvent::Admit { .. }))
            .count();
        assert_eq!(admits, 2, "one admit per stream");
        let dispatches = traced
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, nistream_trace::TraceEvent::Dispatch { .. }))
            .count() as u64;
        let sent: u64 = traced.streams.iter().map(|s| s.sent).sum();
        assert_eq!(dispatches, sent, "every send is traced");

        // The observer effect is zero: all published series match.
        assert_eq!(plain.avg_util, traced.avg_util);
        for (a, b) in plain.streams.iter().zip(&traced.streams) {
            assert_eq!(a.sent, b.sent);
            assert_eq!(a.qdelay, b.qdelay);
        }
    }

    #[test]
    fn more_cpus_mitigate_but_do_not_cure() {
        // The quad with all four CPUs online absorbs the same web load
        // far better than the paper's two-CPU configuration — but the
        // DWCS process still rides the low-priority queue, so heavy
        // enough load reproduces the pathology on any CPU count. (The
        // paper took CPUs *off-line* to make the effect measurable.)
        let loaded = |cpus: usize| {
            let mut cfg = quick_cfg();
            cfg.cpus = cpus;
            let rate = web_rate_for(0.85, &quick_cfg());
            cfg.web = LoadProfile::experiment(5, 2, 30, rate);
            run(cfg)
        };
        let two = loaded(2);
        let four = loaded(4);
        let sent2: u64 = two.streams.iter().map(|s| s.sent).sum();
        let sent4: u64 = four.streams.iter().map(|s| s.sent).sum();
        assert!(sent4 > sent2, "four CPUs deliver more: {sent4} vs {sent2}");
        assert!(four.avg_util < two.avg_util, "same load spread thinner");
    }
}
