//! NI-based scheduling — Figures 9 and 10.
//!
//! The counterpart experiment (§4.2.3): one CPU online, web load on one
//! NI, and the i960 NI running the DWCS scheduler serving the MPEG
//! clients directly. "The NI based scheduler is completely immune to web
//! server loading": the NI kernel runs only the scheduler task and network
//! services; frame producers DMA descriptors in without consuming NI-CPU
//! at service time; and the dispatch path never crosses the host bus.
//!
//! The model composes the full NI stack — frames segmented by `mpeg1`,
//! descriptors injected through the DVCM media-scheduler extension,
//! decisions priced by the `hwsim` i960 model, transmissions priced by the
//! NI Ethernet model — and (structurally) takes no input from the host
//! load at all. The experiment still *runs* the host web-load world in
//! parallel to produce Figure 6-style utilization evidence that the host
//! was indeed busy while the NI streams stayed flat.

use crate::hostload::{self, HostLoadConfig, HostLoadResult, StreamSeries};
use crate::report::RateWindow;
use dvcm::instr::{StreamSpec, VcmInstruction};
use dvcm::{ExtensionModule, MediaSchedExt};
use dwcs::scheduler::{Pacing, SchedDecision};
use dwcs::svc::{DispatchRecord, Platform};
use dwcs::{SchedulerConfig, StreamId};
use hwsim::i960::dwcs_work;
use hwsim::{Ethernet, I960Core};
use nistream_trace::{TraceCapture, TraceRing};
use simkit::{SimDuration, SimTime};
use workload::mpegclient::ClientPlan;
use workload::profile::LoadProfile;

/// The NI-placement binding of [`dwcs::svc::Platform`] for this
/// simulation: every decision the service core takes is priced on the
/// i960 model (cache-stateful, so the single core instance sees the same
/// access sequence the firmware would), and every dispatch pays the NI
/// dispatch cost plus wire occupancy on the NI's own Ethernet port —
/// the path that never crosses the host bus.
///
/// Public so the cross-placement trace-conformance suite can drive this
/// binding directly on a scripted schedule.
pub struct NiWirePlatform {
    now_ns: u64,
    core: I960Core,
    eth: Ethernet,
    sent: Vec<u64>,
    bw: Vec<RateWindow>,
    qdelay: Vec<Vec<(u64, f64)>>,
    decision_total: SimDuration,
    decisions: u64,
    trace: Option<TraceRing>,
}

impl NiWirePlatform {
    /// A platform serving `nstreams` streams, with the cache policy of the
    /// modelled i960 and a trace ring of `trace_capacity` events (0
    /// disables tracing).
    pub fn new(nstreams: usize, ni_cache: bool, trace_capacity: usize) -> NiWirePlatform {
        let n = nstreams.max(1);
        NiWirePlatform {
            now_ns: 0,
            core: I960Core::new().with_cache(ni_cache),
            eth: Ethernet::new(),
            sent: vec![0; n],
            bw: (0..n).map(|_| RateWindow::new(SimDuration::from_secs(1))).collect(),
            qdelay: vec![Vec::new(); n],
            decision_total: SimDuration::ZERO,
            decisions: 0,
            trace: (trace_capacity > 0).then(|| TraceRing::with_capacity(trace_capacity)),
        }
    }

    /// Drain the trace ring (empty capture when tracing is off).
    pub fn drain_trace(&mut self) -> TraceCapture {
        self.trace.as_mut().map(TraceCapture::from_ring).unwrap_or_default()
    }
}

impl Platform for NiWirePlatform {
    fn now(&mut self) -> u64 {
        self.now_ns
    }

    fn set_now(&mut self, t: u64) {
        self.now_ns = t;
    }

    fn on_decision(&mut self, decision: &SchedDecision, backlog: u64) {
        let work = dwcs_work::Work {
            compares: decision.work.compares,
            touches: decision.work.touches,
        };
        let cost = self.core.decision_time(work, backlog.min(64));
        self.decision_total += cost;
        self.decisions += 1;
        self.now_ns += cost.as_nanos();
    }

    fn dispatch(&mut self, rec: &DispatchRecord) {
        let len = u64::from(rec.frame.desc.len);
        self.now_ns += self.core.dispatch_time().as_nanos();
        self.now_ns += self.eth.send_occupancy(len).as_nanos();
        let si = rec.frame.desc.stream.index();
        self.sent[si] += 1;
        self.bw[si].record(SimTime::from_nanos(self.now_ns), len);
        let delay_ms = self.now_ns.saturating_sub(rec.frame.desc.enqueued_at) as f64 / 1e6;
        self.qdelay[si].push((self.sent[si], delay_ms));
    }

    fn tracer(&mut self) -> Option<&mut TraceRing> {
        self.trace.as_mut()
    }
}

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct NiLoadConfig {
    /// Streaming clients.
    pub plan: ClientPlan,
    /// Frames per stream.
    pub frames_per_stream: usize,
    /// Simulated run length.
    pub run: SimDuration,
    /// Web load applied to the *host* (shown alongside; cannot affect the
    /// NI pipeline).
    pub host_web: LoadProfile,
    /// Data cache on the NI (scheduler-only NIs enable it: "exclusively
    /// running the scheduler thread, with no disks attached allowing data
    /// caching").
    pub ni_cache: bool,
    /// Capacity of the NI trace ring in events; 0 (the default) disables
    /// tracing entirely.
    pub trace_capacity: usize,
}

impl Default for NiLoadConfig {
    fn default() -> NiLoadConfig {
        NiLoadConfig {
            plan: ClientPlan::two_streams(100),
            frames_per_stream: 3_000,
            run: SimDuration::from_secs(100),
            host_web: LoadProfile::none(),
            ni_cache: true,
            trace_capacity: 0,
        }
    }
}

/// Outcome: per-stream series from the NI plus the host-side utilization
/// evidence.
#[derive(Clone, Debug)]
pub struct NiLoadResult {
    /// Per-stream bandwidth/queuing-delay series (Figures 9/10).
    pub streams: Vec<StreamSeries>,
    /// The host world running the web load concurrently (Figure 6-style
    /// evidence). `None` when `host_web` is empty.
    pub host: Option<HostLoadResult>,
    /// Mean NI scheduling decision time observed (µs).
    pub mean_decision_us: f64,
    /// Events drained from the NI trace ring (empty when tracing is off).
    pub trace: TraceCapture,
}

/// Run the NI experiment.
pub fn run(cfg: NiLoadConfig) -> NiLoadResult {
    // --- The NI pipeline (host load cannot reach it by construction). ---
    let n = cfg.plan.clients.len();
    let platform = NiWirePlatform::new(n, cfg.ni_cache, cfg.trace_capacity);

    let sched_cfg = SchedulerConfig {
        pacing: Pacing::DeadlinePaced,
        ..SchedulerConfig::default()
    };
    let mut ext = MediaSchedExt::with_platform(n.max(1), sched_cfg, platform);

    // Open streams and inject every frame descriptor through the DVCM
    // instruction path (producers on a disk-NI DMA frames across the PCI
    // bus; only descriptors reach the scheduler).
    let mut sids = Vec::new();
    for c in &cfg.plan.clients {
        let reply = ext.on_instruction(
            VcmInstruction::OpenStream(StreamSpec {
                period: c.period,
                loss_num: c.loss_num,
                loss_den: c.loss_den,
                droppable: true,
            }),
            0,
        );
        assert_eq!(reply.status, 0, "stream admission");
        sids.push(StreamId(reply.payload[0]));
    }
    for (i, c) in cfg.plan.clients.iter().enumerate() {
        let len = ClientPlan::frame_bytes(c);
        let t0 = c.connect_at.as_nanos();
        for k in 0..cfg.frames_per_stream {
            ext.on_instruction(
                VcmInstruction::EnqueueFrame {
                    stream: sids[i],
                    addr: 0xA000_0000 + (k as u64) * u64::from(len),
                    len,
                    kind: dwcs::FrameKind::P,
                },
                t0,
            );
        }
    }

    // NI service loop: sleep to the next eligible deadline, then run one
    // service pass — the platform prices the decision and any dispatch,
    // advancing the NI clock as a side effect.
    let mut now = SimTime::ZERO;
    let end = SimTime::ZERO + cfg.run;

    while now < end {
        let Some(next) = ext.scheduler_mut().next_eligible() else {
            break;
        };
        let next_t = SimTime::from_nanos(next);
        if next_t >= end {
            break;
        }
        now = now.max(next_t);
        let _ = ext.poll_decision(now.as_nanos());
        now = SimTime::from_nanos(ext.platform().now_ns);
    }

    let (decision_total, decisions) = {
        let p = ext.platform();
        (p.decision_total, p.decisions)
    };
    let mut streams = Vec::new();
    for (i, c) in cfg.plan.clients.iter().enumerate() {
        let bandwidth = ext.platform_mut().bw.remove(0).finish(end);
        let qdelay = std::mem::take(&mut ext.platform_mut().qdelay[i]);
        let stats = ext.scheduler().stats(sids[i]);
        streams.push(StreamSeries {
            name: c.name.clone(),
            bandwidth,
            qdelay,
            sent: stats.sent(),
            dropped: stats.dropped,
            violations: stats.violations,
            mean_jitter_ms: stats.mean_jitter() as f64 / 1e6,
        });
    }

    // --- Host-side web load, for the utilization evidence only. ---
    let host = if cfg.host_web.starts_at().is_some() {
        let host_cfg = HostLoadConfig {
            cpus: 1, // "one CPU is brought off-line for a total of one on-line CPU"
            web: cfg.host_web.clone(),
            plan: ClientPlan { clients: Vec::new() }, // streams are on the NI
            frames_per_stream: 0,
            run: cfg.run,
            ..HostLoadConfig::default()
        };
        Some(hostload::run(host_cfg))
    } else {
        None
    };

    NiLoadResult {
        streams,
        host,
        mean_decision_us: if decisions == 0 {
            0.0
        } else {
            decision_total.as_micros_f64() / decisions as f64
        },
        trace: ext.platform_mut().drain_trace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::profile::LoadProfile;

    fn quick() -> NiLoadConfig {
        NiLoadConfig {
            plan: ClientPlan::two_streams(30),
            frames_per_stream: 900,
            run: SimDuration::from_secs(30),
            ..NiLoadConfig::default()
        }
    }

    #[test]
    fn ni_streams_settle_at_stream_rate() {
        let r = run(quick());
        assert_eq!(r.streams.len(), 2);
        for s in &r.streams {
            let settle = s.bandwidth.settling_value(0.5).unwrap();
            assert!((220_000.0..=300_000.0).contains(&settle), "{}: {settle:.0}", s.name);
            assert_eq!(s.dropped, 0, "NI never falls behind");
            assert_eq!(s.violations, 0);
        }
    }

    #[test]
    fn ni_is_immune_to_host_load() {
        let unloaded = run(quick());
        let mut cfg = quick();
        cfg.host_web = LoadProfile::experiment(5, 2, 30, 400.0);
        let loaded = run(cfg);
        // Identical NI-side series, bit for bit.
        for (a, b) in unloaded.streams.iter().zip(&loaded.streams) {
            assert_eq!(a.sent, b.sent);
            assert_eq!(
                a.qdelay, b.qdelay,
                "{} series must be identical under host load",
                a.name
            );
        }
        // ...while the host really was loaded.
        let host = loaded.host.expect("host world ran");
        assert!(host.avg_util > 30.0, "host avg {:.1} %", host.avg_util);
    }

    #[test]
    fn tracing_captures_the_ni_run_without_perturbing_it() {
        let plain = run(quick());
        let mut cfg = quick();
        cfg.trace_capacity = 1 << 16;
        let traced = run(cfg);

        assert!(plain.trace.is_empty(), "tracing off by default");
        assert!(!traced.trace.is_empty(), "traced run captures events");
        assert_eq!(traced.trace.overflow, 0, "64 Ki ring holds a 30 s run");
        let dispatches = traced
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, nistream_trace::TraceEvent::Dispatch { .. }))
            .count() as u64;
        let sent: u64 = traced.streams.iter().map(|s| s.sent).sum();
        assert_eq!(dispatches, sent, "every NI send is traced");

        // The observer effect is zero: all published series match.
        assert_eq!(plain.mean_decision_us, traced.mean_decision_us);
        for (a, b) in plain.streams.iter().zip(&traced.streams) {
            assert_eq!(a.sent, b.sent);
            assert_eq!(a.qdelay, b.qdelay);
        }
    }

    #[test]
    fn ni_decision_time_matches_paper_65us() {
        let r = run(quick());
        assert!(
            (55.0..=80.0).contains(&r.mean_decision_us),
            "i960 decision ≈65 µs, got {:.1}",
            r.mean_decision_us
        );
    }

    #[test]
    fn ni_queuing_delay_grows_linearly_like_figure10() {
        let r = run(quick());
        let q = &r.streams[0].qdelay;
        let (n, d) = q[89];
        assert_eq!(n, 90);
        // Frame 90 waited ≈ 90 periods ≈ 3 s.
        assert!((2_500.0..=3_500.0).contains(&d), "delay at frame 90 = {d:.0} ms");
        assert!(q.windows(2).all(|w| w[1].1 >= w[0].1 - 1.0), "monotone");
    }
}
