//! The integrated NI node: DVCM runtime as a *wind* task.
//!
//! §3.1.1 of the paper: *"The DWCS scheduler code module is embedded in
//! the i960 RD I2O NI with the bootable system image of the VxWorks
//! Operating System … Initialization code in the kernel is used to spawn
//! the scheduler thread."* And §4.2.3's load-immunity argument rests on
//! the NI kernel running *few* tasks: "A stand-alone embedded VxWorks
//! configuration may run few system tasks (threads) scheduled by the
//! native `wind` scheduler."
//!
//! [`NiNode`] is that configuration: a `vxkit::Kernel` at 66 MHz whose
//! spawned tasks include the DVCM service task (drains the I2O inbound
//! FIFO, polls the media-scheduler extension), paced by a watchdog-driven
//! doorbell semaphore; cycles consumed by tasks advance the node's
//! nanosecond clock through the i960 cost model. Optional *interference*
//! tasks quantify how little competing NI work perturbs the scheduler —
//! the counterpoint to `hostload`'s collapse.

use dvcm::{MediaSchedExt, NiRuntime};
use dwcs::scheduler::Pacing;
use dwcs::{SchedulerConfig, Time};
use hwsim::calib;
use simkit::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;
use vxkit::kernel::{Kernel, KernelConfig, KernelEvent};
use vxkit::sync::SemKind;
use vxkit::task::{BlockOn, FnTask, StepResult};
use vxkit::timer::IsrAction;
use vxkit::{SemId, TaskId};

/// Cycles the DVCM service task charges per inbound instruction handled.
const CYCLES_PER_INSTRUCTION: u64 = 600;
/// Cycles per scheduler poll that produced work (decision + dispatch are
/// priced separately by the caller through `hwsim::I960Core`; this is the
/// task-loop spine).
const CYCLES_PER_POLL: u64 = 400;

/// Configuration of the embedded node.
#[derive(Clone, Debug)]
pub struct NiNodeConfig {
    /// Kernel tick rate (`sysClkRateGet`); 1 kHz gives millisecond pacing
    /// granularity for 30 fps streams.
    pub tick_hz: u64,
    /// Wind-task priority of the DVCM service task (0 = highest).
    pub dvcm_priority: u8,
    /// Background tasks to spawn: `(priority, cycles_per_period,
    /// period_ticks)` — protocol housekeeping, stats daemons, etc.
    pub interference: Vec<(u8, u64, u64)>,
    /// I2O message frames in the unit.
    pub frames: usize,
}

impl Default for NiNodeConfig {
    fn default() -> NiNodeConfig {
        NiNodeConfig {
            tick_hz: 1_000,
            dvcm_priority: 50,
            interference: Vec::new(),
            frames: 32,
        }
    }
}

/// The embedded NI node.
pub struct NiNode {
    /// The wind kernel.
    pub kernel: Kernel,
    /// The DVCM runtime (shared with the service task).
    pub runtime: Rc<RefCell<NiRuntime>>,
    /// Node clock in nanoseconds (advanced by executed cycles and idle
    /// tick waits).
    clock_ns: Rc<RefCell<Time>>,
    /// Doorbell the watchdog gives each tick to wake the service task.
    doorbell: SemId,
    /// The service task.
    pub dvcm_task: TaskId,
    tick_ns: u64,
    cpu_hz: u64,
    /// Dispatch timestamps observed (ns) — jitter analysis.
    pub dispatches: Rc<RefCell<Vec<Time>>>,
}

impl NiNode {
    /// Boot the node: kernel up, DVCM runtime with a media-scheduler
    /// extension loaded, service task spawned, tick watchdog armed.
    pub fn boot(cfg: NiNodeConfig) -> NiNode {
        let mut kernel = Kernel::new(KernelConfig {
            cpu_hz: calib::I960_HZ,
            tick_hz: cfg.tick_hz,
            ..KernelConfig::default()
        });
        let tick_ns_early = 1_000_000_000 / cfg.tick_hz;
        let mut rt = NiRuntime::new(cfg.frames);
        // Deadline-paced like the firmware, with a grace of two kernel
        // ticks: the service task wakes on tick boundaries, so service
        // commences up to one tick after a deadline by construction.
        rt.registry.load(Box::new(MediaSchedExt::with_config(
            16,
            SchedulerConfig {
                pacing: Pacing::DeadlinePaced,
                late_grace: 2 * tick_ns_early,
                ..SchedulerConfig::default()
            },
        )));
        let runtime = Rc::new(RefCell::new(rt));
        let clock_ns = Rc::new(RefCell::new(0u64));
        let dispatches = Rc::new(RefCell::new(Vec::new()));

        let doorbell = kernel.create_sem(SemKind::Binary, 0);
        let wd = kernel.create_watchdog();
        kernel.wd_start_periodic(wd, 1, IsrAction::SemGive(doorbell));

        // The DVCM service task: wake on doorbell, drain FIFO, poll the
        // scheduler extension, sleep again.
        let task_rt = Rc::clone(&runtime);
        let task_clock = Rc::clone(&clock_ns);
        let task_disp = Rc::clone(&dispatches);
        let dvcm_task = kernel.spawn(
            cfg.dvcm_priority,
            Box::new(FnTask::new("tDvcm", move |ctx| {
                if !ctx.sem_take_nowait(doorbell) {
                    return StepResult::Block {
                        cycles: 40,
                        on: BlockOn::SemTake(doorbell, None),
                    };
                }
                let now = *task_clock.borrow();
                let mut rt = task_rt.borrow_mut();
                let served = rt.service_inbound(now, 8) as u64;
                let mut polls = 0u64;
                // Drain every frame whose deadline has arrived (bounded
                // per step so the task's worst case stays schedulable).
                loop {
                    let worked = rt.poll_extensions(now);
                    if worked == 0 || polls > 64 {
                        break;
                    }
                    polls += u64::from(worked);
                }
                drop(rt);
                if polls > 0 {
                    task_disp.borrow_mut().push(now);
                }
                StepResult::Ran {
                    cycles: 200 + served * CYCLES_PER_INSTRUCTION + polls * CYCLES_PER_POLL,
                }
            })),
        );

        // Interference tasks: periodic compute loops.
        for (i, &(prio, cycles, period)) in cfg.interference.iter().enumerate() {
            let sem = kernel.create_sem(SemKind::Binary, 0);
            let wd = kernel.create_watchdog();
            kernel.wd_start_periodic(wd, period.max(1), IsrAction::SemGive(sem));
            kernel.spawn(
                prio,
                Box::new(FnTask::new(format!("tBusy{i}"), move |ctx| {
                    if ctx.sem_take_nowait(sem) {
                        StepResult::Ran { cycles }
                    } else {
                        StepResult::Block {
                            cycles: 40,
                            on: BlockOn::SemTake(sem, None),
                        }
                    }
                })),
            );
        }

        let tick_ns = 1_000_000_000 / cfg.tick_hz;
        NiNode {
            kernel,
            runtime,
            clock_ns,
            doorbell,
            dvcm_task,
            tick_ns,
            cpu_hz: calib::I960_HZ,
            dispatches,
        }
    }

    /// Current node time (ns).
    pub fn now(&self) -> Time {
        *self.clock_ns.borrow()
    }

    /// Run the node until its clock reaches `until_ns`: execute tasks,
    /// advancing the clock by their cycles; when the kernel idles, jump to
    /// the next tick boundary and announce it.
    pub fn run_until(&mut self, until_ns: Time) {
        let mut next_tick = (self.now() / self.tick_ns + 1) * self.tick_ns;
        while self.now() < until_ns {
            match self.kernel.step() {
                KernelEvent::Ran { cycles, .. } => {
                    let dt = SimDuration::for_cycles_at_hz(cycles, self.cpu_hz).as_nanos();
                    let now = {
                        let mut c = self.clock_ns.borrow_mut();
                        *c += dt.max(1);
                        *c
                    };
                    while now >= next_tick {
                        self.kernel.tick_announce();
                        next_tick += self.tick_ns;
                    }
                }
                KernelEvent::Idle => {
                    *self.clock_ns.borrow_mut() = next_tick.min(until_ns);
                    if next_tick <= until_ns {
                        self.kernel.tick_announce();
                        next_tick += self.tick_ns;
                    }
                }
            }
        }
    }

    /// The doorbell semaphore (tests inject extra wakes through it).
    pub fn doorbell(&self) -> SemId {
        self.doorbell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvcm::instr::{StreamSpec, VcmInstruction};
    use dvcm::VcmHandle;
    use dwcs::types::{MILLISECOND, SECOND};
    use dwcs::StreamId;

    fn open_and_load(node: &mut NiNode, frames: usize, period: u64) -> StreamId {
        let ext_tid = node.runtime.borrow().ext_tid;
        let mut host = VcmHandle::new(ext_tid);
        let sid = {
            let mut rt = node.runtime.borrow_mut();
            let r = host
                .call(
                    &mut rt,
                    VcmInstruction::OpenStream(StreamSpec {
                        period,
                        loss_num: 2,
                        loss_den: 8,
                        droppable: true,
                    }),
                    0,
                )
                .unwrap();
            assert_eq!(r.status, 0);
            let sid = StreamId(r.payload[0]);
            for k in 0..frames {
                host.call(
                    &mut rt,
                    VcmInstruction::EnqueueFrame {
                        stream: sid,
                        addr: k as u64,
                        len: 1_000,
                        kind: dwcs::FrameKind::P,
                    },
                    0,
                )
                .unwrap();
            }
            sid
        };
        sid
    }

    #[test]
    fn dvcm_task_services_streams_under_wind_scheduling() {
        let mut node = NiNode::boot(NiNodeConfig::default());
        let sid = open_and_load(&mut node, 30, 10 * MILLISECOND);
        // 30 frames at 10 ms periods: done within 400 ms of node time.
        node.run_until(400 * MILLISECOND);
        let rt = node.runtime.borrow();
        let ext = rt.registry.len();
        assert_eq!(ext, 1);
        drop(rt);
        // Read stats through the instruction path.
        let ext_tid = node.runtime.borrow().ext_tid;
        let mut host = VcmHandle::new(ext_tid);
        let mut rt = node.runtime.borrow_mut();
        let stats = host.call(&mut rt, VcmInstruction::QueryStats(sid), SECOND).unwrap();
        let sent = stats.payload[0] + stats.payload[1];
        let dropped = stats.payload[2];
        assert_eq!(sent + dropped, 30, "all frames serviced by the wind task");
        assert!(dropped <= 2, "1 kHz tick pacing keeps frames fresh (dropped {dropped})");
    }

    #[test]
    fn low_priority_interference_does_not_perturb_the_scheduler_task() {
        // Baseline node.
        let mut a = NiNode::boot(NiNodeConfig::default());
        open_and_load(&mut a, 20, 10 * MILLISECOND);
        a.run_until(300 * MILLISECOND);
        let base: Vec<u64> = a.dispatches.borrow().clone();

        // Node with three *lower-priority* busy tasks (the NI's "few
        // system tasks"): 2 ms of work every 5 ticks each.
        let mut b = NiNode::boot(NiNodeConfig {
            interference: vec![(200, 132_000, 5), (201, 132_000, 5), (202, 132_000, 5)],
            ..NiNodeConfig::default()
        });
        open_and_load(&mut b, 20, 10 * MILLISECOND);
        b.run_until(300 * MILLISECOND);
        let loaded: Vec<u64> = b.dispatches.borrow().clone();

        assert_eq!(base.len(), loaded.len(), "same service events");
        // Dispatch instants shift by a few kernel ticks at most (the busy
        // tasks hold the CPU for up to 2 ms right at a tick boundary).
        for (x, y) in base.iter().zip(&loaded) {
            let delta = x.abs_diff(*y);
            assert!(delta <= 3 * MILLISECOND, "perturbation {delta} ns");
        }
    }

    #[test]
    fn higher_priority_hog_delays_the_scheduler_task() {
        // A *higher-priority* hog (10 ms of work per tick — overload)
        // starves the service task: the inverse experiment, showing the
        // wind scheduler model is actually doing priority scheduling.
        let mut node = NiNode::boot(NiNodeConfig {
            interference: vec![(10, 660_000 * 2, 1)], // 20 ms work per 1 ms tick
            ..NiNodeConfig::default()
        });
        open_and_load(&mut node, 10, 10 * MILLISECOND);
        node.run_until(300 * MILLISECOND);
        let serviced = node.dispatches.borrow().len();
        assert!(serviced < 10, "hog must starve the DVCM task (serviced {serviced})");
    }

    #[test]
    fn node_clock_advances_with_work_and_idles_to_ticks() {
        let mut node = NiNode::boot(NiNodeConfig::default());
        node.run_until(50 * MILLISECOND);
        assert!(node.now() >= 50 * MILLISECOND);
        // Kernel saw ~50 ticks at 1 kHz.
        let ticks = node.kernel.tick();
        assert!((45..=55).contains(&ticks), "ticks {ticks}");
    }
}
