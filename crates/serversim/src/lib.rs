//! # serversim — whole-server experiments
//!
//! Composes the substrates (`hwsim` cost models, `vxkit` kernel, `i2o`
//! messaging, `dvcm` extensions, `dwcs` scheduling, `workload` generators)
//! into the paper's experiments. One module per experiment family:
//!
//! * [`micro`] — the scheduler microbenchmarks of **Tables 1–3**: a
//!   pre-loaded MPEG sequence scheduled on the modelled i960, sweeping
//!   arithmetic build (software-FP vs fixed-point), data cache (off/on),
//!   and descriptor store (pinned memory vs hardware-queue registers).
//! * [`paths`] — the critical-path benchmarks of **Table 4** (frame
//!   transfer Paths A, B, C of Figure 3) and the raw PCI numbers of
//!   **Table 5**.
//! * [`hostload`] — the host-based scheduler under web load
//!   (**Figures 6–8**): a quantum-scheduled multi-CPU host running the
//!   Apache pool, daemons, MPEG producers and the DWCS process, with CPU
//!   utilization, per-stream bandwidth and queuing-delay traces.
//! * [`niload`] — the NI-based scheduler (**Figures 9–10**): the same
//!   streams served by the i960 model, structurally immune to host load.
//! * [`ninode`] — the integrated embedded NI: the DVCM service loop as a
//!   *wind* task on the `vxkit` kernel, watchdog-paced, with interference
//!   tasks quantifying the "few system tasks" argument.
//! * [`pcibus_sim`] — shared-PCI contention: producer NIs DMA through a
//!   FIFO-arbitrated bus (`simkit::Resource`) into one scheduler NI.
//! * [`cluster`] — the multi-node topology of the paper's Figure 1, for
//!   capacity exploration beyond the single-node evaluation.
//! * [`report`] — windowed-rate collectors and table formatting shared by
//!   the `repro_*` binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod hostload;
pub mod micro;
pub mod niload;
pub mod ninode;
pub mod paths;
pub mod pcibus_sim;
pub mod report;
