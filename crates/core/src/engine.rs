//! The real multithreaded streaming engine.
//!
//! Architecture mirrors the paper's NI firmware, with OS threads standing
//! in for the co-processor:
//!
//! * **Producers** (any thread holding a [`StreamHandle`]) copy a frame
//!   into the preallocated [`FramePool`] and push its descriptor through a
//!   synchronization-free SPSC ring — Figure 4(b)'s "circular queue for
//!   each stream eliminates the need for synchronization between the
//!   scheduler … and the server that queues packets".
//! * **The scheduler thread** drains rings into the shared service core
//!   ([`dwcs::svc::SchedService`], dual-heap representation,
//!   deadline-paced by default) bound to an [`EnginePlatform`]: decisions,
//!   drop-reclaim ordering and dispatch accounting live in the core; the
//!   platform resolves descriptors to pooled payloads and hands frames to
//!   the configured [`FrameSink`]. Dropped frames' pool slots are
//!   reclaimed by the platform.
//! * **Control** flows over a command channel (open/close/stats/shutdown)
//!   — the moral equivalent of DVCM instructions through the I2O unit.

use crate::pool::{FramePool, SlotId};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use dwcs::metrics::StreamStats;
use dwcs::ring::{Consumer, Producer, SpscRing};
use dwcs::scheduler::Pacing;
use dwcs::svc::{DispatchRecord, Platform, SchedService};
use dwcs::{DualHeap, FrameDesc, FrameKind, SchedulerConfig, StreamId, StreamQos};
use nistream_trace::{TraceCapture, TraceRing};
use std::net::UdpSocket;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors from the server API.
#[derive(Debug, PartialEq, Eq)]
pub enum ServerError {
    /// The scheduler thread is gone (shutdown or panicked).
    Stopped,
    /// The frame pool is exhausted (producer outran the scheduler).
    PoolExhausted,
    /// Per-stream ring is full (burst larger than ring capacity).
    RingFull,
    /// Payload exceeds the pool slot size.
    FrameTooLarge,
    /// Unknown stream.
    NoSuchStream,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Stopped => write!(f, "scheduler thread has stopped"),
            ServerError::PoolExhausted => write!(f, "frame pool exhausted (producer outran the scheduler)"),
            ServerError::RingFull => write!(f, "per-stream descriptor ring full"),
            ServerError::FrameTooLarge => write!(f, "payload exceeds the pool slot size"),
            ServerError::NoSuchStream => write!(f, "unknown stream id"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Record of one frame delivered to a collecting sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SentRecord {
    /// Stream id.
    pub stream: StreamId,
    /// Producer sequence number.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// Whether it met its deadline.
    pub on_time: bool,
    /// Engine-clock nanoseconds at dispatch.
    pub at_ns: u64,
}

/// Where dispatched frames go.
pub enum SinkKind {
    /// Drop payloads (pure scheduling benchmark).
    Discard,
    /// Keep [`SentRecord`]s retrievable via [`MediaServer::collected`].
    Collect,
    /// Datagram per frame to the given address (best-effort).
    Udp(std::net::SocketAddr),
}

/// The clock the engine's service core reads: wall time in production,
/// a shared settable counter when a test drives the core synchronously.
#[derive(Clone)]
pub enum EngineClock {
    /// Nanoseconds elapsed since the server epoch.
    Wall(Instant),
    /// Virtual nanoseconds, set by the driver.
    Virtual(Arc<AtomicU64>),
}

impl EngineClock {
    /// A wall clock starting now.
    pub fn wall() -> EngineClock {
        EngineClock::Wall(Instant::now())
    }

    /// A virtual clock starting at zero; clones share the counter.
    pub fn virtual_clock() -> EngineClock {
        EngineClock::Virtual(Arc::new(AtomicU64::new(0)))
    }

    /// Current reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match self {
            EngineClock::Wall(epoch) => epoch.elapsed().as_nanos() as u64,
            EngineClock::Virtual(ns) => ns.load(Ordering::Relaxed),
        }
    }

    /// Set a virtual clock; a wall clock ignores this (time passes by
    /// itself).
    pub fn set_ns(&self, t: u64) {
        if let EngineClock::Virtual(ns) = self {
            ns.store(t, Ordering::Relaxed);
        }
    }
}

/// A sink for dispatched frames. Implement to bridge into your transport.
pub trait FrameSink: Send {
    /// Deliver one frame.
    fn deliver(&mut self, desc: &FrameDesc, on_time: bool, payload: &[u8]);

    /// Observe a frame the scheduler dropped (late, within loss budget)
    /// or discarded on stream close. Its pool slot is already reclaimed.
    fn dropped(&mut self, desc: &FrameDesc) {
        let _ = desc;
    }
}

/// Discards frames.
pub struct DiscardSink;

impl FrameSink for DiscardSink {
    fn deliver(&mut self, _desc: &FrameDesc, _on_time: bool, _payload: &[u8]) {}
}

/// Collects [`SentRecord`]s (and drop notices) behind shared handles.
pub struct CollectSink {
    records: Arc<parking_lot::Mutex<Vec<SentRecord>>>,
    drops: Arc<parking_lot::Mutex<Vec<FrameDesc>>>,
    clock: EngineClock,
}

impl CollectSink {
    /// A collector reading timestamps from `clock`; returns the sink and
    /// shared handles to its dispatch and drop logs.
    #[allow(clippy::type_complexity)]
    pub fn shared(
        clock: EngineClock,
    ) -> (
        CollectSink,
        Arc<parking_lot::Mutex<Vec<SentRecord>>>,
        Arc<parking_lot::Mutex<Vec<FrameDesc>>>,
    ) {
        let records = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let drops = Arc::new(parking_lot::Mutex::new(Vec::new()));
        (
            CollectSink {
                records: Arc::clone(&records),
                drops: Arc::clone(&drops),
                clock,
            },
            records,
            drops,
        )
    }
}

impl FrameSink for CollectSink {
    fn deliver(&mut self, desc: &FrameDesc, on_time: bool, payload: &[u8]) {
        self.records.lock().push(SentRecord {
            stream: desc.stream,
            seq: desc.seq,
            len: payload.len() as u32,
            on_time,
            at_ns: self.clock.now_ns(),
        });
    }

    fn dropped(&mut self, desc: &FrameDesc) {
        self.drops.lock().push(*desc);
    }
}

/// Sends each frame as a UDP datagram.
pub struct UdpSink {
    socket: UdpSocket,
}

impl FrameSink for UdpSink {
    fn deliver(&mut self, _desc: &FrameDesc, _on_time: bool, payload: &[u8]) {
        // Best-effort, like the firmware's raw port: errors are dropped.
        let _ = self.socket.send(&payload[..payload.len().min(65_000)]);
    }
}

/// The host engine's binding of [`dwcs::svc::Platform`]: descriptors
/// resolve against the [`FramePool`], dispatches deliver the pooled
/// payload to a [`FrameSink`], dropped frames release their slot back to
/// the pool, and time comes from an [`EngineClock`].
pub struct EnginePlatform {
    clock: EngineClock,
    pool: FramePool,
    sink: Box<dyn FrameSink>,
    trace: Option<TraceRing>,
}

impl EnginePlatform {
    /// Bind a clock, payload pool and sink into a platform (untraced).
    pub fn new(clock: EngineClock, pool: FramePool, sink: Box<dyn FrameSink>) -> EnginePlatform {
        EnginePlatform {
            clock,
            pool,
            sink,
            trace: None,
        }
    }

    /// Install a trace ring of `capacity` events (0 removes tracing).
    pub fn set_trace(&mut self, capacity: usize) {
        self.trace = (capacity > 0).then(|| TraceRing::with_capacity(capacity));
    }

    /// Drain the trace ring (empty capture when tracing is off).
    pub fn drain_trace(&mut self) -> TraceCapture {
        self.trace.as_mut().map(TraceCapture::from_ring).unwrap_or_default()
    }
}

impl Platform for EnginePlatform {
    fn now(&mut self) -> u64 {
        self.clock.now_ns()
    }

    fn set_now(&mut self, t: u64) {
        self.clock.set_ns(t);
    }

    fn dispatch(&mut self, rec: &DispatchRecord) {
        let sink = &mut self.sink;
        self.pool.take(rec.frame.desc.addr as SlotId, |payload| {
            sink.deliver(&rec.frame.desc, rec.frame.on_time, payload);
        });
    }

    fn reclaim(&mut self, desc: &FrameDesc) {
        self.pool.release(desc.addr as SlotId);
        self.sink.dropped(desc);
    }

    fn tracer(&mut self) -> Option<&mut TraceRing> {
        self.trace.as_mut()
    }
}

/// The engine's service core: the shared scheduler service bound to the
/// host-thread platform. The scheduler thread drives one of these; tests
/// (notably the cross-placement conformance suite) drive one
/// synchronously on a virtual clock.
pub type HostSchedCore = SchedService<DualHeap, EnginePlatform>;

/// Build the engine's service core directly.
pub fn host_sched_core(
    cfg: SchedulerConfig,
    clock: EngineClock,
    pool: FramePool,
    sink: Box<dyn FrameSink>,
) -> HostSchedCore {
    SchedService::new(DualHeap::new(16), cfg, EnginePlatform::new(clock, pool, sink))
}

enum Command {
    Open(StreamQos, Consumer<FrameDesc>, Sender<StreamId>),
    Close(StreamId),
    Stats(StreamId, Sender<Option<StreamStats>>),
    StatsAll(Sender<Vec<(StreamId, StreamStats)>>),
    DrainTrace(Sender<TraceCapture>),
    Shutdown,
}

/// Builder for [`MediaServer`].
pub struct MediaServerBuilder {
    pool_slots: usize,
    slot_size: usize,
    ring_capacity: usize,
    pacing: Pacing,
    late_grace: u64,
    sink: SinkKind,
    trace_capacity: usize,
}

impl Default for MediaServerBuilder {
    fn default() -> Self {
        MediaServerBuilder {
            pool_slots: 1024,
            slot_size: 64 * 1024,
            ring_capacity: 256,
            pacing: Pacing::DeadlinePaced,
            // A real clock always overshoots a deadline by wakeup jitter;
            // tolerate OS-scheduler noise before declaring frames late
            // (tighten for hard pacing experiments).
            late_grace: 5 * dwcs::types::MILLISECOND,
            sink: SinkKind::Discard,
            trace_capacity: 0,
        }
    }
}

impl MediaServerBuilder {
    /// Frame pool geometry (slots × slot bytes). Allocated once at start.
    pub fn pool(mut self, slots: usize, slot_size: usize) -> Self {
        self.pool_slots = slots;
        self.slot_size = slot_size;
        self
    }

    /// Per-stream descriptor ring capacity.
    pub fn ring_capacity(mut self, cap: usize) -> Self {
        self.ring_capacity = cap;
        self
    }

    /// Dispatch pacing (deadline-paced by default: output at stream rate).
    pub fn pacing(mut self, p: Pacing) -> Self {
        self.pacing = p;
        self
    }

    /// Lateness grace in nanoseconds (see `dwcs::SchedulerConfig`).
    pub fn late_grace(mut self, ns: u64) -> Self {
        self.late_grace = ns;
        self
    }

    /// Frame destination.
    pub fn sink(mut self, sink: SinkKind) -> Self {
        self.sink = sink;
        self
    }

    /// Attach an event trace ring of `capacity` events to the scheduler
    /// thread (0 — the default — disables tracing). Drain with
    /// [`MediaServer::drain_trace`].
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Spawn the scheduler thread and return the server.
    pub fn start(self) -> std::io::Result<MediaServer> {
        let pool = FramePool::new(self.pool_slots, self.slot_size);
        let epoch = Instant::now();
        let clock = EngineClock::Wall(epoch);
        let mut records = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut drops = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink: Box<dyn FrameSink> = match self.sink {
            SinkKind::Discard => Box::new(DiscardSink),
            SinkKind::Collect => {
                let (sink, recs, drps) = CollectSink::shared(clock.clone());
                records = recs;
                drops = drps;
                Box::new(sink)
            }
            SinkKind::Udp(addr) => {
                let socket = UdpSocket::bind("0.0.0.0:0")?;
                socket.connect(addr)?;
                Box::new(UdpSink { socket })
            }
        };

        let (cmd_tx, cmd_rx) = unbounded::<Command>();
        let cfg = SchedulerConfig {
            pacing: self.pacing,
            late_grace: self.late_grace,
            ..SchedulerConfig::default()
        };
        let thread_pool = pool.clone();
        let trace_capacity = self.trace_capacity;
        let handle = std::thread::Builder::new()
            .name("dwcs-scheduler".into())
            .spawn(move || scheduler_loop(cfg, cmd_rx, thread_pool, sink, clock, trace_capacity))?;

        Ok(MediaServer {
            cmd_tx,
            pool,
            epoch,
            ring_capacity: self.ring_capacity,
            records,
            drops,
            handle: parking_lot::Mutex::new(Some(handle)),
        })
    }
}

/// Apply one control command to the service core. Returns `true` on
/// shutdown.
fn handle_command(
    svc: &mut HostSchedCore,
    rings: &mut Vec<(StreamId, Consumer<FrameDesc>)>,
    pool: &FramePool,
    cmd: Command,
) -> bool {
    match cmd {
        Command::Open(qos, cons, reply) => {
            let sid = svc.open(qos);
            rings.push((sid, cons));
            let _ = reply.send(sid);
        }
        Command::Close(sid) => {
            // Reclaim anything still queued in the ring; the service core
            // routes frames already drained into the scheduler through
            // the platform's reclaimer.
            if let Some(pos) = rings.iter().position(|(s, _)| *s == sid) {
                let (_, mut cons) = rings.remove(pos);
                while let Some(desc) = cons.pop() {
                    pool.release(desc.addr as SlotId);
                }
            }
            svc.close(sid);
        }
        Command::Stats(sid, reply) => {
            let known = svc.scheduler().stream_ids().any(|s| s == sid);
            let _ = reply.send(known.then(|| svc.scheduler().stats(sid).clone()));
        }
        Command::StatsAll(reply) => {
            let all: Vec<_> = svc
                .scheduler()
                .stream_ids()
                .collect::<Vec<_>>()
                .into_iter()
                .map(|sid| (sid, svc.scheduler().stats(sid).clone()))
                .collect();
            let _ = reply.send(all);
        }
        Command::DrainTrace(reply) => {
            let _ = reply.send(svc.platform_mut().drain_trace());
        }
        Command::Shutdown => return true,
    }
    false
}

fn scheduler_loop(
    cfg: SchedulerConfig,
    cmd_rx: Receiver<Command>,
    pool: FramePool,
    sink: Box<dyn FrameSink>,
    clock: EngineClock,
    trace_capacity: usize,
) {
    let mut svc = host_sched_core(cfg, clock.clone(), pool.clone(), sink);
    svc.platform_mut().set_trace(trace_capacity);
    let mut rings: Vec<(StreamId, Consumer<FrameDesc>)> = Vec::new();

    loop {
        // 1. Control commands.
        loop {
            match cmd_rx.try_recv() {
                Ok(cmd) => {
                    if handle_command(&mut svc, &mut rings, &pool, cmd) {
                        return;
                    }
                }
                Err(crossbeam::channel::TryRecvError::Disconnected) => return,
                Err(crossbeam::channel::TryRecvError::Empty) => break,
            }
        }

        // 2. Drain producer rings into the service core.
        let t = clock.now_ns();
        for (sid, cons) in &mut rings {
            while let Some(desc) = cons.pop() {
                svc.ingest_at(*sid, desc, t);
            }
        }

        // 3. One service pass: decide, reclaim drops, dispatch.
        let out = svc.service_once();
        if out.dispatched > 0 || out.decision.dropped > 0 {
            continue; // stay hot while frames flow
        }

        // 4. Idle: sleep until the next deadline or the next command.
        let t = clock.now_ns();
        let sleep = match svc.next_eligible() {
            Some(at) if at > t => Duration::from_nanos((at - t).min(500_000)),
            Some(_) => continue,
            None => Duration::from_micros(500),
        };
        match cmd_rx.recv_timeout(sleep) {
            Ok(cmd) => {
                if handle_command(&mut svc, &mut rings, &pool, cmd) {
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Handle for producing frames into one stream. Single producer: the ring
/// is SPSC; clone-free by design.
pub struct StreamHandle {
    id: StreamId,
    producer: Producer<FrameDesc>,
    pool: FramePool,
    epoch: Instant,
    seq: u64,
    kind_cycle: [FrameKind; 9],
}

impl StreamHandle {
    /// This stream's id.
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Queue one frame for scheduling (copies the payload into the pool).
    pub fn send(&mut self, payload: &[u8]) -> Result<(), ServerError> {
        self.send_kind(payload, self.kind_cycle[(self.seq % 9) as usize])
    }

    /// Queue one frame with an explicit picture kind.
    pub fn send_kind(&mut self, payload: &[u8], kind: FrameKind) -> Result<(), ServerError> {
        if payload.len() > self.pool.slot_size() {
            return Err(ServerError::FrameTooLarge);
        }
        let slot = self.pool.store(payload).ok_or(ServerError::PoolExhausted)?;
        let desc = FrameDesc {
            stream: self.id,
            seq: self.seq,
            len: payload.len() as u32,
            kind,
            enqueued_at: self.epoch.elapsed().as_nanos() as u64,
            addr: u64::from(slot),
        };
        match self.producer.push(desc) {
            Ok(()) => {
                self.seq += 1;
                Ok(())
            }
            Err(_) => {
                self.pool.release(slot);
                Err(ServerError::RingFull)
            }
        }
    }

    /// Frames queued so far.
    pub fn produced(&self) -> u64 {
        self.seq
    }
}

/// The media server: a DWCS scheduler thread plus producer-facing API.
pub struct MediaServer {
    cmd_tx: Sender<Command>,
    pool: FramePool,
    epoch: Instant,
    ring_capacity: usize,
    records: Arc<parking_lot::Mutex<Vec<SentRecord>>>,
    drops: Arc<parking_lot::Mutex<Vec<FrameDesc>>>,
    handle: parking_lot::Mutex<Option<JoinHandle<()>>>,
}

impl MediaServer {
    /// Start building a server.
    pub fn builder() -> MediaServerBuilder {
        MediaServerBuilder::default()
    }

    /// Open a stream with the given QoS; returns its producer handle.
    pub fn open_stream(&self, qos: StreamQos) -> Result<StreamHandle, ServerError> {
        let (producer, consumer) = SpscRing::with_capacity(self.ring_capacity);
        let (reply_tx, reply_rx) = bounded(1);
        self.cmd_tx
            .send(Command::Open(qos, consumer, reply_tx))
            .map_err(|_| ServerError::Stopped)?;
        let id = reply_rx.recv().map_err(|_| ServerError::Stopped)?;
        Ok(StreamHandle {
            id,
            producer,
            pool: self.pool.clone(),
            epoch: self.epoch,
            seq: 0,
            kind_cycle: [
                FrameKind::I,
                FrameKind::B,
                FrameKind::B,
                FrameKind::P,
                FrameKind::B,
                FrameKind::B,
                FrameKind::P,
                FrameKind::B,
                FrameKind::B,
            ],
        })
    }

    /// Close a stream (its backlog is discarded and pool slots reclaimed).
    pub fn close_stream(&self, sid: StreamId) -> Result<(), ServerError> {
        self.cmd_tx.send(Command::Close(sid)).map_err(|_| ServerError::Stopped)
    }

    /// Fetch a stream's service statistics.
    pub fn stats(&self, sid: StreamId) -> Result<StreamStats, ServerError> {
        let (tx, rx) = bounded(1);
        self.cmd_tx
            .send(Command::Stats(sid, tx))
            .map_err(|_| ServerError::Stopped)?;
        rx.recv()
            .map_err(|_| ServerError::Stopped)?
            .ok_or(ServerError::NoSuchStream)
    }

    /// Fetch statistics for every open stream.
    pub fn stats_all(&self) -> Result<Vec<(StreamId, StreamStats)>, ServerError> {
        let (tx, rx) = bounded(1);
        self.cmd_tx
            .send(Command::StatsAll(tx))
            .map_err(|_| ServerError::Stopped)?;
        rx.recv().map_err(|_| ServerError::Stopped)
    }

    /// Records accumulated by a [`SinkKind::Collect`] sink.
    pub fn collected(&self) -> Vec<SentRecord> {
        self.records.lock().clone()
    }

    /// Descriptors of frames dropped by the scheduler (late within loss
    /// budget, or discarded on close) — populated by a
    /// [`SinkKind::Collect`] sink.
    pub fn dropped_frames(&self) -> Vec<FrameDesc> {
        self.drops.lock().clone()
    }

    /// Drain the scheduler thread's trace ring (empty capture when the
    /// server was built without [`MediaServerBuilder::trace`]).
    pub fn drain_trace(&self) -> Result<TraceCapture, ServerError> {
        let (tx, rx) = bounded(1);
        self.cmd_tx
            .send(Command::DrainTrace(tx))
            .map_err(|_| ServerError::Stopped)?;
        rx.recv().map_err(|_| ServerError::Stopped)
    }

    /// Nanoseconds since the server started (the scheduler's clock).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Stop the scheduler thread and wait for it.
    pub fn shutdown(&self) {
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for MediaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwcs::types::MILLISECOND;

    fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn frames_flow_end_to_end() {
        let server = MediaServer::builder()
            .sink(SinkKind::Collect)
            .pacing(Pacing::WorkConserving)
            .start()
            .unwrap();
        let mut s = server.open_stream(StreamQos::new(MILLISECOND, 1, 2)).unwrap();
        for i in 0..20u8 {
            s.send(&[i; 100]).unwrap();
        }
        assert!(
            wait_until(Duration::from_secs(5), || server.collected().len() == 20),
            "collected {}",
            server.collected().len()
        );
        let recs = server.collected();
        let seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>(), "FIFO per stream");
        let stats = server.stats(s.id()).unwrap();
        assert_eq!(stats.enqueued, 20);
        assert_eq!(stats.sent(), 20);
        server.shutdown();
    }

    #[test]
    fn deadline_pacing_spreads_dispatches() {
        let server = MediaServer::builder()
            .sink(SinkKind::Collect)
            .pacing(Pacing::DeadlinePaced)
            .start()
            .unwrap();
        // 5 ms period: 10 frames should take ≥ ~45 ms to drain.
        let mut s = server.open_stream(StreamQos::new(5 * MILLISECOND, 1, 2)).unwrap();
        for _ in 0..10 {
            s.send(&[0u8; 64]).unwrap();
        }
        assert!(wait_until(Duration::from_secs(5), || server.collected().len() == 10));
        let recs = server.collected();
        let span_ns = recs.last().unwrap().at_ns - recs.first().unwrap().at_ns;
        assert!(span_ns >= 40 * MILLISECOND, "paced span {} ms", span_ns / MILLISECOND);
        server.shutdown();
    }

    #[test]
    fn two_streams_share_fairly() {
        let server = MediaServer::builder()
            .sink(SinkKind::Collect)
            .pacing(Pacing::WorkConserving)
            .start()
            .unwrap();
        let mut a = server.open_stream(StreamQos::new(MILLISECOND, 1, 2)).unwrap();
        let mut b = server.open_stream(StreamQos::new(MILLISECOND, 1, 2)).unwrap();
        for _ in 0..15 {
            a.send(&[1u8; 50]).unwrap();
            b.send(&[2u8; 50]).unwrap();
        }
        assert!(wait_until(Duration::from_secs(5), || server.collected().len() == 30));
        let recs = server.collected();
        let a_count = recs.iter().filter(|r| r.stream == a.id()).count();
        assert_eq!(a_count, 15);
        server.shutdown();
    }

    #[test]
    fn stats_all_reports_every_stream() {
        let server = MediaServer::builder().pacing(Pacing::WorkConserving).start().unwrap();
        let mut a = server.open_stream(StreamQos::new(MILLISECOND, 1, 2)).unwrap();
        let _b = server.open_stream(StreamQos::new(MILLISECOND, 0, 1)).unwrap();
        a.send(&[0u8; 8]).unwrap();
        // Wait for the scheduler thread to drain the ring, not merely for
        // both streams to exist — the enqueued counter lags stream creation.
        assert!(wait_until(Duration::from_secs(5), || {
            server
                .stats_all()
                .map(|v| v.len() == 2 && v.iter().any(|(sid, st)| *sid == a.id() && st.enqueued == 1))
                .unwrap_or(false)
        }));
        let all = server.stats_all().unwrap();
        assert_eq!(all.len(), 2);
        assert!(all.iter().any(|(sid, st)| *sid == a.id() && st.enqueued == 1));
        server.shutdown();
        assert!(matches!(server.stats_all(), Err(ServerError::Stopped)));
        assert_eq!(ServerError::RingFull.to_string(), "per-stream descriptor ring full");
    }

    #[test]
    fn stats_for_unknown_stream_errors() {
        let server = MediaServer::builder().start().unwrap();
        assert_eq!(server.stats(StreamId(42)).unwrap_err(), ServerError::NoSuchStream);
        server.shutdown();
    }

    #[test]
    fn close_reclaims_pool_slots() {
        let server = MediaServer::builder()
            .pool(8, 1024)
            .pacing(Pacing::DeadlinePaced)
            .start()
            .unwrap();
        // Long period so nothing dispatches quickly.
        let mut s = server.open_stream(StreamQos::new(10_000 * MILLISECOND, 1, 2)).unwrap();
        for _ in 0..8 {
            s.send(&[0u8; 16]).unwrap();
        }
        assert_eq!(s.send(&[0u8; 16]).unwrap_err(), ServerError::PoolExhausted);
        server.close_stream(s.id()).unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || s.pool.free_slots() == 8),
            "free {}",
            s.pool.free_slots()
        );
        server.shutdown();
    }

    #[test]
    fn oversized_frame_rejected() {
        let server = MediaServer::builder().pool(4, 128).start().unwrap();
        let mut s = server.open_stream(StreamQos::new(MILLISECOND, 1, 2)).unwrap();
        assert_eq!(s.send(&[0u8; 129]).unwrap_err(), ServerError::FrameTooLarge);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let server = MediaServer::builder().start().unwrap();
        server.shutdown();
        server.shutdown();
        // API after shutdown errors cleanly.
        assert!(server.open_stream(StreamQos::new(MILLISECOND, 1, 2)).is_err());
    }

    #[test]
    fn udp_sink_delivers_datagrams() {
        let receiver = UdpSocket::bind("127.0.0.1:0").unwrap();
        receiver.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let addr = receiver.local_addr().unwrap();
        let server = MediaServer::builder()
            .sink(SinkKind::Udp(addr))
            .pacing(Pacing::WorkConserving)
            .start()
            .unwrap();
        let mut s = server.open_stream(StreamQos::new(MILLISECOND, 1, 2)).unwrap();
        s.send(b"frame-payload-over-udp").unwrap();
        let mut buf = [0u8; 64];
        let (n, _) = receiver.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"frame-payload-over-udp");
        server.shutdown();
    }

    #[test]
    fn traced_server_captures_the_event_stream() {
        let server = MediaServer::builder()
            .sink(SinkKind::Collect)
            .pacing(Pacing::WorkConserving)
            .trace(1024)
            .start()
            .unwrap();
        let mut s = server.open_stream(StreamQos::new(MILLISECOND, 1, 2)).unwrap();
        for i in 0..5u8 {
            s.send(&[i; 64]).unwrap();
        }
        assert!(wait_until(Duration::from_secs(5), || server.collected().len() == 5));
        let cap = server.drain_trace().unwrap();
        use nistream_trace::TraceEvent;
        let admits = cap
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Admit { .. }))
            .count();
        let dispatches = cap
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Dispatch { .. }))
            .count();
        assert_eq!(admits, 1, "one stream admitted");
        assert_eq!(dispatches, 5, "every delivered frame traced");
        // Untraced server yields an empty capture.
        let untraced = MediaServer::builder().start().unwrap();
        assert!(untraced.drain_trace().unwrap().is_empty());
        untraced.shutdown();
        server.shutdown();
    }

    #[test]
    fn virtual_clock_core_runs_synchronously() {
        // The same binding the scheduler thread uses, driven inline on a
        // virtual clock: this is the conformance-test harness surface.
        let pool = FramePool::new(8, 256);
        let clock = EngineClock::virtual_clock();
        let (sink, records, drops) = CollectSink::shared(clock.clone());
        let mut svc = host_sched_core(SchedulerConfig::default(), clock.clone(), pool.clone(), Box::new(sink));
        // Tolerance 1/2: the first late head drops within budget.
        let sid = svc.open(StreamQos::new(MILLISECOND, 1, 2));
        for seq in 0..2u64 {
            let slot = pool.store(&[seq as u8; 32]).unwrap();
            let desc = FrameDesc {
                stream: sid,
                seq,
                len: 32,
                kind: FrameKind::P,
                enqueued_at: 0,
                addr: u64::from(slot),
            };
            svc.ingest_at(sid, desc, 0);
        }
        // Far past the first deadline: seq 0 drops (slot reclaimed), the
        // re-anchored seq 1 dispatches on time.
        clock.set_ns(100 * MILLISECOND);
        let out = svc.service_once();
        assert_eq!(out.decision.dropped, 1);
        assert_eq!(out.dispatched, 1);
        assert_eq!(drops.lock().len(), 1);
        let recs = records.lock();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq, 1);
        assert_eq!(recs[0].at_ns, 100 * MILLISECOND, "virtual timestamps");
        drop(recs);
        assert_eq!(pool.free_slots(), 8, "dropped and sent slots both recovered");
    }
}
