//! Host-side reporting bridge: fixed-point → `f64`.
//!
//! The NI-resident crates (`dwcs`, `fixedpt`, `dvcm`, …) are FPU-free by
//! policy — the i960RD has no floating-point unit, and the
//! `nistream-analysis` `ni-no-float` lint enforces the ban mechanically.
//! Their report quantities are therefore fixed-point ([`fixedpt::Q16`],
//! [`fixedpt::Frac`]); the conversions to `f64` that displays and plots
//! want live *here*, on the host side, where an FPU exists.

use dwcs::admission;
use dwcs::metrics::StreamStats;
use dwcs::{StreamQos, Time};

/// Total mandatory utilization of a stream set as a plain `f64`, for
/// printing and plotting. Delegates to [`dwcs::admission::utilization`]
/// (exact rational arithmetic) and converts at the very end.
pub fn utilization_f64(streams: &[StreamQos], service: Time) -> f64 {
    admission::utilization(streams, service).to_f64()
}

/// Fraction of a stream's departed frames that met their deadline, as a
/// plain `f64`. Delegates to [`StreamStats::on_time_fraction`] (Q16.16)
/// and converts at the very end.
pub fn on_time_fraction_f64(stats: &StreamStats) -> f64 {
    stats.on_time_fraction().to_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwcs::types::MILLISECOND;

    #[test]
    fn utilization_converts_exactly_for_dyadic_values() {
        // 1 ms service every 4 ms, lossless: U = 1/4, exact in both Frac
        // and f64.
        let q = StreamQos::new(4 * MILLISECOND, 0, 1);
        assert_eq!(utilization_f64(&[q], MILLISECOND), 0.25);
    }

    #[test]
    fn on_time_fraction_of_idle_stream_is_one() {
        let s = StreamStats::default();
        assert_eq!(on_time_fraction_f64(&s), 1.0);
    }
}
