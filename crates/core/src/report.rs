//! Host-side reporting bridge: fixed-point → `f64`.
//!
//! The NI-resident crates (`dwcs`, `fixedpt`, `dvcm`, …) are FPU-free by
//! policy — the i960RD has no floating-point unit, and the
//! `nistream-analysis` `ni-no-float` lint enforces the ban mechanically.
//! Their report quantities are therefore fixed-point ([`fixedpt::Q16`],
//! [`fixedpt::Frac`]); the conversions to `f64` that displays and plots
//! want live *here*, on the host side, where an FPU exists.

use dwcs::admission;
use dwcs::metrics::StreamStats;
use dwcs::{StreamQos, Time};
use nistream_trace::Aggregate;

// The trace exporters are integer-only by construction (they run on the
// NI-drained event stream); they are re-exported here because this module
// is the host-side gateway every display path already imports.
pub use nistream_trace::{to_csv as trace_to_csv, to_json as trace_to_json};

/// Mean dispatch lateness of a folded trace in milliseconds, as a plain
/// `f64`. The aggregator keeps the latency histogram in exact integer
/// nanoseconds; the division happens at the very end, here on the host.
pub fn mean_lateness_ms_f64(agg: &Aggregate) -> f64 {
    if agg.latency.count() == 0 {
        0.0
    } else {
        agg.latency.sum() as f64 / agg.latency.count() as f64 / 1e6
    }
}

/// Fraction of traced dispatches that met their deadline, as a plain
/// `f64`. An empty trace reports 1.0 (nothing was late).
pub fn trace_on_time_fraction_f64(agg: &Aggregate) -> f64 {
    let dispatches = agg.total_dispatches();
    if dispatches == 0 {
        1.0
    } else {
        let on_time: u64 = agg.streams().map(|(_, s)| s.on_time).sum();
        on_time as f64 / dispatches as f64
    }
}

/// Total mandatory utilization of a stream set as a plain `f64`, for
/// printing and plotting. Delegates to [`dwcs::admission::utilization`]
/// (exact rational arithmetic) and converts at the very end.
pub fn utilization_f64(streams: &[StreamQos], service: Time) -> f64 {
    admission::utilization(streams, service).to_f64()
}

/// Fraction of a stream's departed frames that met their deadline, as a
/// plain `f64`. Delegates to [`StreamStats::on_time_fraction`] (Q16.16)
/// and converts at the very end.
pub fn on_time_fraction_f64(stats: &StreamStats) -> f64 {
    stats.on_time_fraction().to_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwcs::types::MILLISECOND;

    #[test]
    fn utilization_converts_exactly_for_dyadic_values() {
        // 1 ms service every 4 ms, lossless: U = 1/4, exact in both Frac
        // and f64.
        let q = StreamQos::new(4 * MILLISECOND, 0, 1);
        assert_eq!(utilization_f64(&[q], MILLISECOND), 0.25);
    }

    #[test]
    fn on_time_fraction_of_idle_stream_is_one() {
        let s = StreamStats::default();
        assert_eq!(on_time_fraction_f64(&s), 1.0);
    }

    #[test]
    fn trace_bridges_convert_at_the_edge() {
        use nistream_trace::TraceEvent;
        let mut agg = Aggregate::new();
        assert_eq!(mean_lateness_ms_f64(&agg), 0.0);
        assert_eq!(trace_on_time_fraction_f64(&agg), 1.0);
        agg.fold_all(&[
            TraceEvent::Dispatch {
                at: 3_000_000,
                stream: 0,
                seq: 0,
                len: 100,
                deadline: 1_000_000,
                on_time: false,
            },
            TraceEvent::Dispatch {
                at: 4_000_000,
                stream: 0,
                seq: 1,
                len: 100,
                deadline: 4_000_000,
                on_time: true,
            },
        ]);
        // One dispatch 2 ms late, one on time.
        assert_eq!(mean_lateness_ms_f64(&agg), 1.0);
        assert_eq!(trace_on_time_fraction_f64(&agg), 0.5);
    }
}
