//! # nistream-core — the public API of the `nistream` system
//!
//! Reproduction of *"A Network Co-Processor-Based Approach to Scalable
//! Media Streaming in Servers"* (Krishnamurthy, Schwan, West, Rosu, ICPP
//! 2000): Dynamic Window-Constrained Scheduling of media frames, offloaded
//! to network-interface co-processors, inside the DVCM extensible
//! communication architecture.
//!
//! Two ways to use the system:
//!
//! * **For real** — [`engine::MediaServer`] runs the genuine DWCS
//!   scheduler on a dedicated thread: producers push frames through
//!   synchronization-free SPSC rings into per-stream queues backed by a
//!   preallocated [`pool::FramePool`] (the paper's pinned-NI-memory
//!   discipline), and dispatched frames flow to a pluggable
//!   [`engine::FrameSink`] (in-memory, discard, or UDP). This is the
//!   library a media server would embed today.
//! * **As the paper's testbed** — the simulation crates re-exported below
//!   reproduce every table and figure on calibrated models of the 2000-era
//!   hardware: `serversim::micro` (Tables 1–3), `serversim::paths`
//!   (Tables 4–5), `serversim::hostload` / `serversim::niload`
//!   (Figures 6–10), `serversim::cluster` (the Figure 1 topology).
//!
//! ## Quick start
//!
//! ```
//! use nistream_core::engine::{MediaServer, SinkKind};
//! use nistream_core::qos::StreamQos;
//!
//! let server = MediaServer::builder()
//!     .sink(SinkKind::Collect)
//!     .start()
//!     .expect("spawn scheduler thread");
//!
//! // 30 fps stream tolerating 2 late frames in every 8.
//! let mut stream = server.open_stream(StreamQos::new(33_333_333, 2, 8)).unwrap();
//! for seq in 0..10u64 {
//!     stream.send(&vec![0u8; 1000]).unwrap();
//!     let _ = seq;
//! }
//! assert_eq!(stream.produced(), 10);
//! // Service statistics are available once the scheduler thread has
//! // drained the ring: `server.stats(stream.id())`.
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod pool;
pub mod report;

/// QoS attribute types (re-exported from the scheduler crate).
pub mod qos {
    pub use dwcs::{LossPolicy, StreamQos, Window};
}

pub use dvcm;
pub use dwcs;
pub use engine::{MediaServer, MediaServerBuilder, ServerError, SinkKind, StreamHandle};
pub use fixedpt;
pub use hwsim;
pub use i2o;
pub use mpeg1;
pub use pool::FramePool;
pub use serversim;
pub use simkit;
pub use vxkit;
pub use workload;
