//! Preallocated frame buffers — the pinned-memory discipline.
//!
//! §3.1 of the paper: *"To conserve memory, we maintain a single copy of
//! frames in NI memory and allow scheduling analysis and dispatch to
//! manipulate addresses of frames."* [`FramePool`] is that store for the
//! real engine: fixed-size slots allocated once at construction, frames
//! copied in by producers, addressed by slot index through
//! `FrameDesc::addr`, read and released by the dispatch path. No
//! allocation happens on the streaming fast path.

use parking_lot::Mutex;
use std::sync::Arc;

/// A slot handle (what travels in `FrameDesc::addr`).
pub type SlotId = u32;

struct Slots {
    data: Vec<Box<[u8]>>,
    len: Vec<u32>,
    free: Vec<SlotId>,
}

/// Fixed-capacity pool of frame buffers, shared between producers and the
/// scheduler thread.
#[derive(Clone)]
pub struct FramePool {
    inner: Arc<Mutex<Slots>>,
    slot_size: usize,
}

impl FramePool {
    /// Pool of `slots` buffers of `slot_size` bytes each, allocated now.
    pub fn new(slots: usize, slot_size: usize) -> FramePool {
        FramePool {
            inner: Arc::new(Mutex::new(Slots {
                data: (0..slots).map(|_| vec![0u8; slot_size].into_boxed_slice()).collect(),
                len: vec![0; slots],
                free: (0..slots as u32).rev().collect(),
            })),
            slot_size,
        }
    }

    /// Slot payload capacity.
    pub fn slot_size(&self) -> usize {
        self.slot_size
    }

    /// Copy `payload` into a free slot. Returns `None` when the pool is
    /// exhausted (producer back-pressure) or the payload does not fit.
    pub fn store(&self, payload: &[u8]) -> Option<SlotId> {
        if payload.len() > self.slot_size {
            return None;
        }
        let mut s = self.inner.lock();
        let id = s.free.pop()?;
        s.data[id as usize][..payload.len()].copy_from_slice(payload);
        s.len[id as usize] = payload.len() as u32;
        Some(id)
    }

    /// Read a slot's payload through `f`, then release the slot.
    /// Returns `false` if the slot id is invalid.
    pub fn take<R>(&self, id: SlotId, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let mut s = self.inner.lock();
        let idx = id as usize;
        if idx >= s.data.len() || s.free.contains(&id) {
            return None;
        }
        let len = s.len[idx] as usize;
        // Split borrows: read the payload, then mutate the free list.
        let r = {
            let buf = &s.data[idx][..len];
            f(buf)
        };
        s.len[idx] = 0;
        s.free.push(id);
        Some(r)
    }

    /// Release a slot without reading (dropped frames).
    pub fn release(&self, id: SlotId) {
        let mut s = self.inner.lock();
        let idx = id as usize;
        if idx < s.data.len() && !s.free.contains(&id) {
            s.len[idx] = 0;
            s.free.push(id);
        }
    }

    /// Free slots remaining.
    pub fn free_slots(&self) -> usize {
        self.inner.lock().free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_take_round_trip() {
        let pool = FramePool::new(4, 1500);
        let id = pool.store(b"hello frame").unwrap();
        let read = pool.take(id, |b| b.to_vec()).unwrap();
        assert_eq!(read, b"hello frame");
        assert_eq!(pool.free_slots(), 4);
    }

    #[test]
    fn exhaustion_backpressures() {
        let pool = FramePool::new(2, 100);
        let a = pool.store(b"a").unwrap();
        let _b = pool.store(b"b").unwrap();
        assert!(pool.store(b"c").is_none(), "pool exhausted");
        pool.release(a);
        assert!(pool.store(b"c").is_some());
    }

    #[test]
    fn oversized_payload_rejected() {
        let pool = FramePool::new(2, 10);
        assert!(pool.store(&[0u8; 11]).is_none());
        assert_eq!(pool.free_slots(), 2, "no slot leaked");
    }

    #[test]
    fn double_take_and_bogus_ids_are_safe() {
        let pool = FramePool::new(2, 10);
        let id = pool.store(b"x").unwrap();
        assert!(pool.take(id, |_| ()).is_some());
        assert!(pool.take(id, |_| ()).is_none(), "already free");
        assert!(pool.take(99, |_| ()).is_none(), "bogus id");
        pool.release(99); // no-op
        pool.release(id); // already free: no-op
        assert_eq!(pool.free_slots(), 2);
    }

    #[test]
    fn shared_across_clones() {
        let pool = FramePool::new(1, 10);
        let clone = pool.clone();
        let id = pool.store(b"x").unwrap();
        assert_eq!(clone.free_slots(), 0);
        clone.release(id);
        assert_eq!(pool.free_slots(), 1);
    }
}
