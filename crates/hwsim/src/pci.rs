//! PCI bus cost model (Table 5, and the Path B peer-to-peer transfers).
//!
//! 32-bit/33 MHz PCI: theoretical 132 MB/s, measured card-to-card DMA
//! 66.27 MB/s (Table 5 — half the theoretical rate, consistent with
//! single-word-per-turnaround target latency on 1990s bridges). PIO reads
//! are non-posted (the CPU stalls for the full round trip, 3.6 µs); writes
//! post (3.1 µs).

use crate::calib;
use simkit::SimDuration;

/// PCI transfer kinds, priced separately.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PciOp {
    /// Programmed-I/O 32-bit read (non-posted).
    PioRead,
    /// Programmed-I/O 32-bit write (posted).
    PioWrite,
    /// DMA of `n` bytes (setup + streaming).
    Dma,
}

/// The shared bus cost model. Acquisition/queuing is handled by the
/// embedding (a `simkit::Resource` in `serversim`); this model prices the
/// occupancy.
#[derive(Clone, Debug)]
pub struct PciBus {
    /// Sustained DMA bandwidth.
    pub dma_bytes_per_sec: u64,
    /// Per-DMA setup cost.
    pub dma_setup: SimDuration,
    /// PIO read round trip.
    pub pio_read: SimDuration,
    /// PIO write (posted).
    pub pio_write: SimDuration,
    /// Arbitration latency to win the bus when contended.
    pub arbitration: SimDuration,
    /// Bytes moved by DMA so far (diagnostics).
    pub dma_bytes: u64,
    /// Transactions so far.
    pub transactions: u64,
}

impl PciBus {
    /// The measured 33 MHz/32-bit segment from the paper's server.
    pub fn new() -> PciBus {
        PciBus {
            dma_bytes_per_sec: calib::PCI_DMA_BYTES_PER_SEC,
            dma_setup: SimDuration::from_nanos(calib::PCI_DMA_SETUP_NS),
            pio_read: SimDuration::from_nanos(calib::PIO_READ_NS),
            pio_write: SimDuration::from_nanos(calib::PIO_WRITE_NS),
            arbitration: SimDuration::from_nanos(calib::PCI_ARBITRATION_NS),
            dma_bytes: 0,
            transactions: 0,
        }
    }

    /// Bus occupancy for a DMA of `bytes` (setup + streaming).
    pub fn dma_time(&mut self, bytes: u64) -> SimDuration {
        self.dma_bytes += bytes;
        self.transactions += 1;
        self.dma_setup + SimDuration::for_bytes_at_bps(bytes, self.dma_bytes_per_sec * 8)
    }

    /// Occupancy for `words` PIO reads.
    pub fn pio_read_time(&mut self, words: u64) -> SimDuration {
        self.transactions += words;
        self.pio_read * words
    }

    /// Occupancy for `words` PIO writes.
    pub fn pio_write_time(&mut self, words: u64) -> SimDuration {
        self.transactions += words;
        self.pio_write * words
    }

    /// Effective MB/s of a DMA of `bytes` including setup (what Table 5
    /// reports for the 773 665-byte file).
    pub fn dma_effective_mbps(&mut self, bytes: u64) -> f64 {
        let t = self.dma_time(bytes);
        bytes as f64 / t.as_secs_f64() / 1e6
    }
}

impl Default for PciBus {
    fn default() -> Self {
        PciBus::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_file_dma() {
        let mut bus = PciBus::new();
        let t = bus.dma_time(773_665);
        let us = t.as_micros_f64();
        assert!((11_600.0..=11_750.0).contains(&us), "paper: 11673.84 µs, got {us:.2}");
        let mbps = 773_665.0 / t.as_secs_f64() / 1e6;
        assert!((65.5..=66.5).contains(&mbps), "paper: 66.27 MB/s, got {mbps:.2}");
    }

    #[test]
    fn pio_word_costs() {
        let mut bus = PciBus::new();
        assert_eq!(bus.pio_read_time(1).as_nanos(), 3_600);
        assert_eq!(bus.pio_write_time(1).as_nanos(), 3_100);
        assert_eq!(bus.pio_read_time(10).as_micros(), 36);
    }

    #[test]
    fn frame_dma_is_15us() {
        let mut bus = PciBus::new();
        let us = bus.dma_time(1000).as_micros_f64();
        assert!((14.0..=16.5).contains(&us), "Table 4: ≈15 µs, got {us:.2}");
    }

    #[test]
    fn accounting_accumulates() {
        let mut bus = PciBus::new();
        bus.dma_time(100);
        bus.dma_time(200);
        bus.pio_write_time(3);
        assert_eq!(bus.dma_bytes, 300);
        assert_eq!(bus.transactions, 5);
    }

    #[test]
    fn dma_beats_pio_for_bulk() {
        let mut bus = PciBus::new();
        // Moving 1 KiB: DMA vs word-at-a-time PIO.
        let dma = bus.dma_time(1024);
        let pio = bus.pio_write_time(256);
        assert!(dma < pio / 10, "DMA {dma} ≪ PIO {pio}");
    }
}
