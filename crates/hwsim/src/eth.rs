//! 100 Mb/s Ethernet model.
//!
//! Calibration point (Table 4): a 1000-byte frame from NI to remote client
//! takes ≈ 1.2 ms end to end, "including traversal of network stacks at
//! either end and wire transmission time". The wire itself is only 80 µs
//! (plus preamble/IFG), so stack traversal dominates — we split the budget
//! between the sending NI (UDP/IP in firmware), the switch, and the
//! receiving host's kernel stack.
//!
//! The paper also notes "half an Ethernet frame time (≈ 120 µs)" for a
//! full-size 1500-byte frame at 100 Mb/s, matching the serialization
//! model exactly.

use simkit::SimDuration;

/// Ethernet + minimal UDP/IP encapsulation constants.
pub mod frame {
    /// Ethernet header + FCS.
    pub const ETH_OVERHEAD: u64 = 18;
    /// IP + UDP headers.
    pub const IP_UDP_OVERHEAD: u64 = 28;
    /// Preamble + start delimiter + inter-frame gap, in byte times.
    pub const SILENT_OVERHEAD: u64 = 20;
    /// Maximum payload per frame (MTU minus IP/UDP headers).
    pub const MAX_PAYLOAD: u64 = 1_472;
}

/// One switched 100 Mb/s segment with per-end stack costs.
#[derive(Clone, Debug)]
pub struct Ethernet {
    /// Link rate.
    pub bits_per_sec: u64,
    /// Sender-side stack + driver + DMA cost per packet.
    pub send_stack: SimDuration,
    /// Receiver-side stack cost per packet (interrupt, IP/UDP, socket
    /// delivery).
    pub recv_stack: SimDuration,
    /// Store-and-forward switch latency (forwarding decision; the frame is
    /// re-serialized on the output port).
    pub switch_latency: SimDuration,
    /// Packets carried.
    pub packets: u64,
    /// Payload bytes carried.
    pub payload_bytes: u64,
}

impl Ethernet {
    /// The experiment interconnect: NI firmware sender → switch → host
    /// client receiver; budget lands 1000-byte end-to-end at ≈ 1.2 ms.
    pub fn new() -> Ethernet {
        Ethernet {
            bits_per_sec: 100_000_000,
            send_stack: SimDuration::from_micros(520),
            recv_stack: SimDuration::from_micros(450),
            switch_latency: SimDuration::from_micros(15),
            packets: 0,
            payload_bytes: 0,
        }
    }

    /// Wire serialization time for a payload of `bytes` (one packet;
    /// headers and silent overhead included).
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        let on_wire = bytes + frame::ETH_OVERHEAD + frame::IP_UDP_OVERHEAD + frame::SILENT_OVERHEAD;
        SimDuration::for_bytes_at_bps(on_wire, self.bits_per_sec)
    }

    /// Packets needed for `bytes` of payload.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(frame::MAX_PAYLOAD).max(1)
    }

    /// End-to-end latency for a `bytes` payload (possibly fragmented):
    /// sender stack per packet, two serializations (host→switch,
    /// switch→client) pipelined per packet, receiver stack.
    pub fn end_to_end(&mut self, bytes: u64) -> SimDuration {
        let pkts = self.packets_for(bytes);
        self.packets += pkts;
        self.payload_bytes += bytes;
        let mut total = SimDuration::ZERO;
        let mut remaining = bytes;
        for _ in 0..pkts {
            let chunk = remaining.min(frame::MAX_PAYLOAD);
            remaining -= chunk;
            total +=
                self.send_stack + self.wire_time(chunk) + self.switch_latency + self.wire_time(chunk) + self.recv_stack;
        }
        total
    }

    /// Sender-side occupancy only (what the NI CPU/DMA pays per packet) —
    /// used when modelling pipelined streaming where the receiver is not
    /// the bottleneck.
    pub fn send_occupancy(&mut self, bytes: u64) -> SimDuration {
        let pkts = self.packets_for(bytes);
        self.packets += pkts;
        self.payload_bytes += bytes;
        let mut total = SimDuration::ZERO;
        let mut remaining = bytes;
        for _ in 0..pkts {
            let chunk = remaining.min(frame::MAX_PAYLOAD);
            remaining -= chunk;
            total += self.send_stack + self.wire_time(chunk);
        }
        total
    }
}

impl Default for Ethernet {
    fn default() -> Self {
        Ethernet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_frame_wire_time_is_about_120us() {
        let eth = Ethernet::new();
        // 1452-byte payload fills a 1500-byte IP packet + overheads.
        let t = eth.wire_time(frame::MAX_PAYLOAD);
        let us = t.as_micros_f64();
        assert!((118.0..=125.0).contains(&us), "paper: ≈120 µs, got {us:.1}");
    }

    #[test]
    fn thousand_byte_end_to_end_is_about_1_2ms() {
        let mut eth = Ethernet::new();
        let ms = eth.end_to_end(1000).as_millis_f64();
        assert!((1.1..=1.3).contains(&ms), "Table 4: ≈1.2 ms, got {ms:.3}");
    }

    #[test]
    fn fragmentation_counts_packets() {
        let mut eth = Ethernet::new();
        assert_eq!(eth.packets_for(1000), 1);
        assert_eq!(eth.packets_for(1_473), 2);
        assert_eq!(eth.packets_for(10_000), 7);
        let one = eth.end_to_end(1_000);
        let big = eth.end_to_end(10_000);
        assert!(big > one * 6);
        assert_eq!(eth.packets, 8);
        assert_eq!(eth.payload_bytes, 11_000);
    }

    #[test]
    fn send_occupancy_less_than_end_to_end() {
        let mut a = Ethernet::new();
        let mut b = Ethernet::new();
        assert!(a.send_occupancy(1000) < b.end_to_end(1000));
    }

    #[test]
    fn zero_byte_payload_still_one_packet() {
        let eth = Ethernet::new();
        assert_eq!(eth.packets_for(0), 1);
        assert!(eth.wire_time(0).as_micros() > 0);
    }
}
