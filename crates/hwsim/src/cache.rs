//! Data-cache pricing.
//!
//! Two behaviours the paper measures hinge on this model:
//!
//! * The i960's data cache can be globally enabled or disabled — "the
//!   VxWorks driver we have used currently supports disk accesses with
//!   data cache disabled" (§4.2) — flipping every descriptor touch between
//!   DRAM latency and near-free (Tables 1 vs 2).
//! * On the host, each context switch **pollutes** the cache: the first
//!   touches after a switch miss. The paper blames host-scheduler
//!   fragility partly on this (§1).

use crate::calib;
use simkit::SimDuration;

/// A touch-pricing data cache.
#[derive(Clone, Debug)]
pub struct DataCache {
    enabled: bool,
    hz: u64,
    hit_cycles: u64,
    miss_cycles: u64,
    /// Touches that miss after a context switch (pollution window).
    pollution_window: u64,
    /// Remaining cold touches in the current pollution window.
    cold_remaining: u64,
    hits: u64,
    misses: u64,
}

impl DataCache {
    /// The i960 on-chip data cache (pollution-free: the NI runs a handful
    /// of tasks and the paper's NI experiments don't switch mid-decision).
    pub fn i960(enabled: bool) -> DataCache {
        DataCache {
            enabled,
            hz: calib::I960_HZ,
            hit_cycles: calib::TOUCH_HIT_CYCLES,
            miss_cycles: calib::TOUCH_MISS_CYCLES,
            pollution_window: 0,
            cold_remaining: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The host CPU's cache view: always enabled, but polluted by context
    /// switches.
    pub fn host(pollution_window: u64) -> DataCache {
        DataCache {
            enabled: true,
            hz: calib::HOST_HZ,
            hit_cycles: 1,
            miss_cycles: 40, // DRAM over the P6 front-side bus
            pollution_window,
            cold_remaining: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether the cache is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable/disable (the i960 driver constraint: disk driver runs with
    /// cache disabled; the experiment re-enables it after loading frames).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Note a context switch: the next `pollution_window` touches miss.
    pub fn pollute(&mut self) {
        self.cold_remaining = self.pollution_window;
    }

    /// Cycles for `n` data touches under current state.
    pub fn touch_cycles(&mut self, n: u64) -> u64 {
        if !self.enabled {
            self.misses += n;
            return n * self.miss_cycles;
        }
        let cold = n.min(self.cold_remaining);
        self.cold_remaining -= cold;
        let warm = n - cold;
        self.hits += warm;
        self.misses += cold;
        cold * self.miss_cycles + warm * self.hit_cycles
    }

    /// Time for `n` data touches.
    pub fn touch_time(&mut self, n: u64) -> SimDuration {
        let cycles = self.touch_cycles(n);
        SimDuration::for_cycles_at_hz(cycles, self.hz)
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_charges_miss_for_everything() {
        let mut c = DataCache::i960(false);
        assert_eq!(c.touch_cycles(10), 10 * calib::TOUCH_MISS_CYCLES);
        assert_eq!(c.stats(), (0, 10));
    }

    #[test]
    fn enabled_cache_charges_hits() {
        let mut c = DataCache::i960(true);
        assert_eq!(c.touch_cycles(10), 10 * calib::TOUCH_HIT_CYCLES);
        assert_eq!(c.stats(), (10, 0));
    }

    #[test]
    fn toggle_matches_paper_scenario() {
        // Disk load with cache off, then enable for scheduling.
        let mut c = DataCache::i960(false);
        let off = c.touch_cycles(100);
        c.set_enabled(true);
        let on = c.touch_cycles(100);
        assert!(off > on * 5, "cache-on is much cheaper: {off} vs {on}");
    }

    #[test]
    fn pollution_window_decays() {
        let mut c = DataCache::host(8);
        c.pollute();
        // First 8 touches miss, rest hit.
        let cycles = c.touch_cycles(10);
        assert_eq!(cycles, 8 * 40 + 2);
        assert_eq!(c.stats(), (2, 8));
        // Window consumed: further touches hit.
        assert_eq!(c.touch_cycles(5), 5);
    }

    #[test]
    fn touch_time_scales_with_clock() {
        let mut ni = DataCache::i960(false);
        let t = ni.touch_time(66); // 66 × 13 cycles at 66 MHz = 13 µs
        assert_eq!(t.as_micros(), 13);
    }
}
