//! SCSI disk and filesystem models (Table 4's frame-fetch latencies).
//!
//! Table 4 gives three calibration points for fetching a 1000-byte frame:
//!
//! * **≈ 4.2 ms** from a disk attached to the i960 NI running dosFs with
//!   the data cache disabled — a raw seek+rotate+transfer every time.
//! * **≈ 1 ms** *total* (disk + host + net) when Solaris UFS serves the
//!   file: "UFS uses a logical block size of 8K, may cache and prefetch
//!   blocks for better performance" — most reads hit the buffer cache.
//! * **≈ 8 ms** total when the VxWorks dos filesystem is mounted on the
//!   host: no read-ahead, FAT chain walks, sector-sized transfers.
//!
//! The disk is a period-correct 5400 rpm SCSI unit; the filesystems are
//! request-stream models over it.

use simkit::rng::Pcg32;
use simkit::SimDuration;

/// Rotational/seek/transfer model of a mid-90s SCSI disk serving a media
/// stream. A frame stream is *mostly sequential*, so `avg_seek` and the
/// rotational spread are effective values for short head moves within the
/// file's extents — calibrated so a 1000-byte frame fetch averages the
/// 4.2 ms the paper measures, not the full-stroke random-access figure.
#[derive(Clone, Debug)]
pub struct ScsiDisk {
    /// Effective seek for intra-file head moves.
    pub avg_seek: SimDuration,
    /// Effective rotational + settle spread (uniform; mean = half).
    pub rotation: SimDuration,
    /// Media transfer rate, bytes/s.
    pub transfer_bps: u64,
    /// Controller + SCSI command overhead per request.
    pub command_overhead: SimDuration,
    /// Requests served.
    pub requests: u64,
}

impl ScsiDisk {
    /// Defaults that land a 1000-byte random read at ≈ 4.2 ms (Table 4).
    pub fn new() -> ScsiDisk {
        ScsiDisk {
            avg_seek: SimDuration::from_micros(1_200),
            rotation: SimDuration::from_micros(4_800),
            transfer_bps: 10_000_000,
            command_overhead: SimDuration::from_micros(200),
            requests: 0,
        }
    }

    /// Service time for a random-position read of `bytes`.
    ///
    /// `rng` supplies rotational-position variation (uniform half-rotation
    /// mean); pass a seeded RNG for deterministic experiments.
    pub fn random_read(&mut self, bytes: u64, rng: &mut Pcg32) -> SimDuration {
        self.requests += 1;
        let rot = SimDuration::from_nanos((self.rotation.as_nanos() as f64 * rng.f64()) as u64);
        self.command_overhead + self.avg_seek + rot + self.transfer_time(bytes)
    }

    /// Service time for a sequential read (head already positioned).
    pub fn sequential_read(&mut self, bytes: u64) -> SimDuration {
        self.requests += 1;
        self.command_overhead + self.transfer_time(bytes)
    }

    fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes_at_bps(bytes, self.transfer_bps * 8)
    }

    /// Expected (mean) random read time for `bytes` — deterministic
    /// closed form used by calibration tests.
    pub fn mean_random_read(&self, bytes: u64) -> SimDuration {
        self.command_overhead + self.avg_seek + self.rotation / 2 + self.transfer_time(bytes)
    }
}

impl Default for ScsiDisk {
    fn default() -> Self {
        ScsiDisk::new()
    }
}

/// Filesystem read-path models over the disk.
#[derive(Clone, Debug)]
pub enum Filesystem {
    /// VxWorks dosFs as used on the NI: no block cache (the disk driver
    /// forces the data cache off), sector-granular FAT walks.
    DosFs {
        /// Extra FAT/ metadata overhead per read.
        metadata_overhead: SimDuration,
    },
    /// Solaris UFS: 8 KB logical blocks, buffer cache with read-ahead; a
    /// sequential frame stream mostly hits the cache.
    Ufs {
        /// Logical block size (8192 for the paper's system).
        block_size: u64,
        /// Cache/read-ahead hit fraction for sequential streams.
        hit_rate: f64,
        /// Time to copy a cached block out of the page cache.
        cache_copy: SimDuration,
    },
    /// VxWorks dos filesystem *mounted on the host* (Table 4 Experiment I,
    /// 8 ms variant): FAT walks through generic host glue, no read-ahead.
    DosFsOnHost {
        /// Per-read FAT walk + syscall glue.
        metadata_overhead: SimDuration,
    },
}

impl Filesystem {
    /// The NI-local dosFs of Experiments II/III.
    pub fn dosfs() -> Filesystem {
        Filesystem::DosFs {
            metadata_overhead: SimDuration::from_micros(300),
        }
    }

    /// The host UFS of Experiment I (fast variant).
    pub fn ufs() -> Filesystem {
        Filesystem::Ufs {
            block_size: 8_192,
            hit_rate: 0.95,
            cache_copy: SimDuration::from_micros(80),
        }
    }

    /// The host-mounted VxWorks filesystem of Experiment I (slow variant).
    pub fn dosfs_on_host() -> Filesystem {
        Filesystem::DosFsOnHost {
            metadata_overhead: SimDuration::from_micros(2_900),
        }
    }

    /// Time to read one frame of `bytes` from a stream being consumed
    /// sequentially.
    pub fn read_frame(&self, disk: &mut ScsiDisk, bytes: u64, rng: &mut Pcg32) -> SimDuration {
        match *self {
            Filesystem::DosFs { metadata_overhead } => metadata_overhead + disk.random_read(bytes, rng),
            Filesystem::Ufs {
                block_size,
                hit_rate,
                cache_copy,
            } => {
                if rng.f64() < hit_rate {
                    cache_copy
                } else {
                    // Miss: fetch a whole logical block (read-ahead fills
                    // the cache for subsequent frames).
                    cache_copy + disk.random_read(block_size.max(bytes), rng)
                }
            }
            Filesystem::DosFsOnHost { metadata_overhead } => {
                // FAT-chain walk through host glue + the data read itself.
                metadata_overhead + disk.random_read(bytes, rng)
            }
        }
    }

    /// Expected frame-read time (closed form, for calibration tests).
    pub fn mean_read_frame(&self, disk: &ScsiDisk, bytes: u64) -> SimDuration {
        match *self {
            Filesystem::DosFs { metadata_overhead } => metadata_overhead + disk.mean_random_read(bytes),
            Filesystem::Ufs {
                block_size,
                hit_rate,
                cache_copy,
            } => {
                let miss = disk.mean_random_read(block_size.max(bytes));
                cache_copy + SimDuration::from_nanos((miss.as_nanos() as f64 * (1.0 - hit_rate)) as u64)
            }
            Filesystem::DosFsOnHost { metadata_overhead } => metadata_overhead + disk.mean_random_read(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ni_dosfs_frame_read_is_about_4_2ms() {
        let disk = ScsiDisk::new();
        let fs = Filesystem::dosfs();
        let ms = fs.mean_read_frame(&disk, 1000).as_millis_f64();
        assert!((3.9..=4.5).contains(&ms), "Table 4: ≈4.2 ms, got {ms:.2}");
    }

    #[test]
    fn ufs_frame_read_is_sub_millisecond() {
        let disk = ScsiDisk::new();
        let fs = Filesystem::ufs();
        let ms = fs.mean_read_frame(&disk, 1000).as_millis_f64();
        assert!(
            ms < 1.0,
            "UFS cached path must leave room for net in the 1 ms total, got {ms:.2}"
        );
    }

    #[test]
    fn host_dosfs_is_much_slower() {
        let disk = ScsiDisk::new();
        let fs = Filesystem::dosfs_on_host();
        let ms = fs.mean_read_frame(&disk, 1000).as_millis_f64();
        assert!(
            (6.0..=8.0).contains(&ms),
            "8 ms total minus net ≈ 6.8 ms disk-side, got {ms:.2}"
        );
    }

    #[test]
    fn sampled_reads_center_on_the_mean() {
        let mut disk = ScsiDisk::new();
        let fs = Filesystem::dosfs();
        let mut rng = Pcg32::seeded(7);
        let n = 2_000;
        let total: f64 = (0..n)
            .map(|_| fs.read_frame(&mut disk, 1000, &mut rng).as_millis_f64())
            .sum();
        let mean = total / n as f64;
        let closed = fs.mean_read_frame(&ScsiDisk::new(), 1000).as_millis_f64();
        assert!((mean - closed).abs() < 0.2, "sampled {mean:.2} vs closed {closed:.2}");
        assert_eq!(disk.requests, n);
    }

    #[test]
    fn sequential_beats_random() {
        let mut disk = ScsiDisk::new();
        let mut rng = Pcg32::seeded(1);
        let seq = disk.sequential_read(8192);
        let rnd = disk.random_read(8192, &mut rng);
        assert!(seq < rnd);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let disk = ScsiDisk::new();
        let small = disk.mean_random_read(1_000);
        let large = disk.mean_random_read(1_000_000);
        // 1 MB at 10 MB/s adds 100 ms of transfer.
        assert!(large.as_millis() >= small.as_millis() + 95);
    }
}
