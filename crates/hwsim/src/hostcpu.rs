//! The host-CPU side: a 200 MHz Pentium Pro under Solaris.
//!
//! What the load experiments (Figures 6–8) need from the host model:
//!
//! * a DWCS decision costs ≈ 50 µs of CPU (§4.2.3's comparison figure);
//! * context switches are expensive and pollute the cache (§1);
//! * the frame path crosses bus domains: filesystem buffer → kernel →
//!   NIC, consuming CPU per frame (Path A in Figure 3).
//!
//! CPU *allocation* under competing load is the job of
//! `serversim::hostos`; this model prices the work items themselves.

use crate::cache::DataCache;
use crate::calib;
use simkit::SimDuration;

/// Pentium Pro work-item cost model.
#[derive(Clone, Debug)]
pub struct HostCpu {
    /// Core clock.
    pub hz: u64,
    /// Cache with context-switch pollution.
    pub cache: DataCache,
    /// Cycles for one DWCS decision (hot cache).
    pub decision_cycles: u64,
    /// Cycles for a context switch (register state, kernel queues; the
    /// pollution surcharge is applied via the cache model).
    pub ctx_switch_cycles: u64,
    /// Cycles to shepherd one frame from filesystem buffer to NIC ring
    /// (copyout, protocol stack, driver) — Path A's host involvement.
    pub frame_send_cycles: u64,
    /// Context switches performed (diagnostics).
    pub switches: u64,
}

impl HostCpu {
    /// Defaults for the paper's server.
    pub fn new() -> HostCpu {
        HostCpu {
            hz: calib::HOST_HZ,
            cache: DataCache::host(64),
            decision_cycles: calib::HOST_DECISION_CYCLES,
            ctx_switch_cycles: calib::HOST_CTX_SWITCH_CYCLES,
            frame_send_cycles: 36_000, // 180 µs of stack+copy per frame
            switches: 0,
        }
    }

    /// Time for one DWCS decision, including the cold-cache surcharge for
    /// descriptor touches right after a switch.
    pub fn decision_time(&mut self, descriptor_touches: u64) -> SimDuration {
        let cycles = self.decision_cycles + self.cache.touch_cycles(descriptor_touches);
        SimDuration::for_cycles_at_hz(cycles, self.hz)
    }

    /// Time for a context switch; pollutes the cache.
    pub fn context_switch(&mut self) -> SimDuration {
        self.switches += 1;
        self.cache.pollute();
        SimDuration::for_cycles_at_hz(self.ctx_switch_cycles, self.hz)
    }

    /// CPU time to push one frame of `bytes` through the kernel to the NIC
    /// (scales mildly with size: copies).
    pub fn frame_send_time(&mut self, bytes: u64) -> SimDuration {
        // ~1 cycle per byte of copy on a P6 (two copies in the 90s stack),
        // plus the fixed path.
        let cycles = self.frame_send_cycles + bytes * 2;
        SimDuration::for_cycles_at_hz(cycles, self.hz)
    }

    /// Time for generic work expressed in cycles.
    pub fn cycles_time(&self, cycles: u64) -> SimDuration {
        SimDuration::for_cycles_at_hz(cycles, self.hz)
    }
}

impl Default for HostCpu {
    fn default() -> Self {
        HostCpu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_decision_is_about_50us() {
        let mut cpu = HostCpu::new();
        // Warm cache, few touches.
        let us = cpu.decision_time(8).as_micros_f64();
        assert!((49.0..=53.0).contains(&us), "got {us:.1}");
    }

    #[test]
    fn post_switch_decision_is_slower() {
        let mut cpu = HostCpu::new();
        let warm = cpu.decision_time(32);
        let _ = cpu.context_switch();
        let cold = cpu.decision_time(32);
        assert!(cold > warm, "pollution surcharge: {cold} vs {warm}");
    }

    #[test]
    fn context_switch_is_60us_plus_pollution() {
        let mut cpu = HostCpu::new();
        let us = cpu.context_switch().as_micros_f64();
        assert!((59.0..=61.0).contains(&us));
        assert_eq!(cpu.switches, 1);
    }

    #[test]
    fn frame_send_scales_with_size() {
        let mut cpu = HostCpu::new();
        let small = cpu.frame_send_time(1_000);
        let big = cpu.frame_send_time(100_000);
        assert!(big > small);
        // 1000-byte frame: ~190 µs of host CPU — the Path A tax.
        let us = cpu.frame_send_time(1_000).as_micros_f64();
        assert!((150.0..=250.0).contains(&us), "got {us:.0}");
    }
}
