//! Calibration constants, with the paper measurements they target.
//!
//! Every constant below traces to a number the paper reports. The
//! reproduction claim is about *shape* (orderings, deltas, crossovers), so
//! the constants are chosen to land the reference experiments on the
//! paper's values; sensitivity to them is explored by the ablation benches.
//!
//! | Paper measurement | Value | Source | Model constant(s) |
//! |---|---|---|---|
//! | i960RD clock | 66 MHz | §1, §4.2.3 | [`I960_HZ`] |
//! | Host CPUs | 4 × 200 MHz Pentium Pro | §4.1 | [`HOST_HZ`] |
//! | Scheduling overhead, fixed point, cache off | ≈ 78 µs (108.48 − 30.35) | Table 1 | decision budget below |
//! | Scheduling overhead, fixed point, cache on | ≈ 66.8 µs (94.60 − 27.78) | Table 2 | touch costs |
//! | Software-FP penalty per decision | ≈ 20 µs | §4.2 | [`SOFT_FP_RATIO_CYCLES`] |
//! | Cache-on saving per frame | ≈ 14 µs | §4.2 | [`TOUCH_MISS_CYCLES`] − [`TOUCH_HIT_CYCLES`] |
//! | Dispatch w/o scheduler, cache off | 30.35 µs/frame | Table 1 | [`NI_DISPATCH_CYCLES`] |
//! | PIO word read / write | 3.6 µs / 3.1 µs | Table 5 | [`PIO_READ_NS`], [`PIO_WRITE_NS`] |
//! | PCI DMA bandwidth | 66.27 MB/s | Table 5 | [`PCI_DMA_BYTES_PER_SEC`] |
//! | Card-to-card 1000-byte DMA | ≈ 15 µs | Table 4 | DMA setup + rate |
//! | Disk access per frame (NI, dosFs, no cache) | ≈ 4.2 ms | Table 4 | [`disk`] defaults |
//! | Host UFS cached frame fetch + send | ≈ 1 ms total | Table 4 Expt I | UFS cache params |
//! | Host with VxWorks dosFs | ≈ 8 ms total | Table 4 Expt I | dosFs host penalty |
//! | Net end-to-end, 1000-byte frame | ≈ 1.2 ms | Table 4 | [`eth`] stack costs |
//! | Host DWCS overhead (UltraSparc 300) | ≈ 50 µs | §1, §4.2.3 | [`HOST_DECISION_CYCLES`] |
//!
//! [`disk`]: crate::disk
//! [`eth`]: crate::eth

/// i960RD core clock.
pub const I960_HZ: u64 = 66_000_000;

/// Pentium Pro host core clock.
pub const HOST_HZ: u64 = 200_000_000;

/// Fixed overhead of one scheduling decision on the i960 (queue
/// bookkeeping, I2O doorbell handling, function-call spine) — cycles.
///
/// Derivation: Table 1/2 overheads minus the modelled variable parts. With
/// the microbenchmark's mean ring occupancy (~75 descriptors scanned per
/// decision, see `repro_table1`) and fixed-point ratio math:
/// `BASE + 75·TOUCH_MISS + 3·FIXED_RATIO ≈ 78 µs·66 MHz ≈ 5150 cycles`.
pub const NI_DECISION_BASE_CYCLES: u64 = 3_900;

/// Cycles for one fixed-point ratio operation (cross-multiply compare or
/// shift-divide) — a couple of integer multiplies on the i960.
pub const FIXED_RATIO_CYCLES: u64 = 20;

/// Cycles for one software-floating-point ratio operation through the
/// VxWorks FP library (unpack, emulate, repack — hundreds of cycles each).
/// Three ratio evaluations per decision × (440 − 20) ≈ 1260 cycles ≈ 19 µs:
/// the paper's "~20 µs" penalty.
pub const SOFT_FP_RATIO_CYCLES: u64 = 440;

/// Ratio evaluations per scheduling decision (priority computation +
/// window-constraint update + eligibility test).
pub const RATIO_EVALS_PER_DECISION: u64 = 3;

/// Memory touch with the data cache **disabled** (every descriptor access
/// goes to DRAM over the local bus).
pub const TOUCH_MISS_CYCLES: u64 = 13;

/// Memory touch with the data cache **enabled** (descriptors and priority
/// values stay resident: "stream priority values and descriptor addresses
/// to be cached and updated every scheduler cycle").
pub const TOUCH_HIT_CYCLES: u64 = 1;

/// Memory-mapped "hardware queue" register access: on-chip, "do not
/// generate any external bus cycles" — comparable to a cache hit.
pub const HWQUEUE_TOUCH_CYCLES: u64 = 2;

/// Frame dispatch path without the scheduler (descriptor fetch, Ethernet
/// DMA descriptor setup, doorbell): Table 1's 30.35 µs at 66 MHz.
pub const NI_DISPATCH_CYCLES: u64 = 2_000;

/// Cache-on dispatch saving (Table 2: 27.78 µs): ~170 fewer cycles.
pub const NI_DISPATCH_CACHED_CYCLES: u64 = 1_830;

/// One DWCS decision on the host CPU (UltraSparc-300 measured ≈ 50 µs; the
/// 200 MHz Pentium Pro with Solaris x86 is modelled at the same figure —
/// the paper calls the two "comparable").
pub const HOST_DECISION_CYCLES: u64 = 10_000; // 50 µs at 200 MHz

/// Host context switch, including the deep-cache-pollution aftermath the
/// paper blames for host-scheduler fragility (§1: switches are "expensive
/// due to the CPU's deep cache hierarchy and due to cache pollution").
pub const HOST_CTX_SWITCH_CYCLES: u64 = 12_000; // 60 µs at 200 MHz

/// PIO word read over PCI (Table 5: 3.6 µs).
pub const PIO_READ_NS: u64 = 3_600;

/// PIO word write over PCI (Table 5: 3.1 µs — posted, slightly cheaper).
pub const PIO_WRITE_NS: u64 = 3_100;

/// Sustained PCI card-to-card DMA bandwidth (Table 5: 773 665 bytes in
/// 11 673.84 µs = 66.27 MB/s).
pub const PCI_DMA_BYTES_PER_SEC: u64 = 66_270_000;

/// DMA engine setup/teardown per transfer (descriptor write + doorbell;
/// fits Table 4's 15 µs for a 1000-byte card-to-card move: 1000 B at
/// 66.27 MB/s ≈ 15.1 µs — setup is inside the measured figure, so small).
pub const PCI_DMA_SETUP_NS: u64 = 400;

/// PCI bus arbitration latency when the bus must be acquired.
pub const PCI_ARBITRATION_NS: u64 = 600;

/// Every calibration constant above, as a machine-readable name→value
/// table. `nistream-analysis` mirrors a subset of these in its static
/// cost model (`costmodel.rs`); the cycle-budget gate test cross-checks
/// the mirror against this table so the two can never drift silently.
pub const TABLE: &[(&str, u64)] = &[
    ("I960_HZ", I960_HZ),
    ("HOST_HZ", HOST_HZ),
    ("NI_DECISION_BASE_CYCLES", NI_DECISION_BASE_CYCLES),
    ("FIXED_RATIO_CYCLES", FIXED_RATIO_CYCLES),
    ("SOFT_FP_RATIO_CYCLES", SOFT_FP_RATIO_CYCLES),
    ("RATIO_EVALS_PER_DECISION", RATIO_EVALS_PER_DECISION),
    ("TOUCH_MISS_CYCLES", TOUCH_MISS_CYCLES),
    ("TOUCH_HIT_CYCLES", TOUCH_HIT_CYCLES),
    ("HWQUEUE_TOUCH_CYCLES", HWQUEUE_TOUCH_CYCLES),
    ("NI_DISPATCH_CYCLES", NI_DISPATCH_CYCLES),
    ("NI_DISPATCH_CACHED_CYCLES", NI_DISPATCH_CACHED_CYCLES),
    ("HOST_DECISION_CYCLES", HOST_DECISION_CYCLES),
    ("HOST_CTX_SWITCH_CYCLES", HOST_CTX_SWITCH_CYCLES),
    ("PIO_READ_NS", PIO_READ_NS),
    ("PIO_WRITE_NS", PIO_WRITE_NS),
    ("PCI_DMA_BYTES_PER_SEC", PCI_DMA_BYTES_PER_SEC),
    ("PCI_DMA_SETUP_NS", PCI_DMA_SETUP_NS),
    ("PCI_ARBITRATION_NS", PCI_ARBITRATION_NS),
];

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    #[test]
    fn decision_budget_lands_on_table1() {
        // Fixed point, cache off, mean ring occupancy 75:
        let cycles = NI_DECISION_BASE_CYCLES + RATIO_EVALS_PER_DECISION * FIXED_RATIO_CYCLES + 75 * TOUCH_MISS_CYCLES;
        let t = SimDuration::for_cycles_at_hz(cycles, I960_HZ);
        let us = t.as_micros_f64();
        assert!((70.0..=85.0).contains(&us), "fixed/cache-off ≈78 µs, got {us:.1}");
    }

    #[test]
    fn cache_saving_is_about_14us() {
        let delta_cycles = 75 * (TOUCH_MISS_CYCLES - TOUCH_HIT_CYCLES);
        let us = SimDuration::for_cycles_at_hz(delta_cycles, I960_HZ).as_micros_f64();
        assert!((12.0..=16.0).contains(&us), "cache saving ≈14 µs, got {us:.1}");
    }

    #[test]
    fn soft_fp_penalty_is_about_20us() {
        let delta = RATIO_EVALS_PER_DECISION * (SOFT_FP_RATIO_CYCLES - FIXED_RATIO_CYCLES);
        let us = SimDuration::for_cycles_at_hz(delta, I960_HZ).as_micros_f64();
        assert!((17.0..=22.0).contains(&us), "FP penalty ≈20 µs, got {us:.1}");
    }

    #[test]
    fn dispatch_path_matches_table1() {
        let us = SimDuration::for_cycles_at_hz(NI_DISPATCH_CYCLES, I960_HZ).as_micros_f64();
        assert!((29.0..=32.0).contains(&us), "dispatch ≈30.35 µs, got {us:.1}");
    }

    #[test]
    fn dma_of_the_table5_file_takes_11674us() {
        let t = SimDuration::for_bytes_at_bps(773_665, PCI_DMA_BYTES_PER_SEC * 8);
        let us = t.as_micros_f64();
        assert!((11_500.0..=11_800.0).contains(&us), "got {us:.1}");
    }

    #[test]
    fn card_to_card_1000b_is_about_15us() {
        let t =
            SimDuration::from_nanos(PCI_DMA_SETUP_NS) + SimDuration::for_bytes_at_bps(1000, PCI_DMA_BYTES_PER_SEC * 8);
        let us = t.as_micros_f64();
        assert!((14.0..=16.5).contains(&us), "got {us:.1}");
    }

    #[test]
    fn host_decision_is_50us() {
        let us = SimDuration::for_cycles_at_hz(HOST_DECISION_CYCLES, HOST_HZ).as_micros_f64();
        assert!((49.0..=51.0).contains(&us));
    }
}
