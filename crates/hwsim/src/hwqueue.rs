//! The i960RD "hardware queues" (Table 3).
//!
//! §4.2.1: *"The 'Hardware Queues' on the i960 RD I2O card are a set of
//! 1004 32-bit memory-mapped registers in local card address space.
//! Accesses to the memory-mapped registers do not generate any external bus
//! cycles."* The paper stores a circular buffer of frame descriptors in
//! them and finds performance comparable to pinned memory.
//!
//! [`HwQueueRegs`] models the register file: fixed 1004-word capacity,
//! index-register-driven circular head/tail, constant on-chip access cost
//! (no cache interaction, no external bus cycles). It is a real data
//! structure — the Table 3 reproduction actually stores descriptors in it.

use crate::calib;

/// Number of 32-bit registers in the file.
pub const HWQ_REGISTERS: usize = 1004;

/// The memory-mapped register file used as a circular descriptor queue.
#[derive(Clone, Debug)]
pub struct HwQueueRegs {
    regs: Box<[u32; HWQ_REGISTERS]>,
    head: usize,
    tail: usize,
    len: usize,
    /// Register accesses performed (each costs
    /// [`calib::HWQUEUE_TOUCH_CYCLES`], bus-cycle-free).
    pub accesses: u64,
}

impl HwQueueRegs {
    /// Empty register file.
    pub fn new() -> HwQueueRegs {
        HwQueueRegs {
            regs: Box::new([0; HWQ_REGISTERS]),
            head: 0,
            tail: 0,
            len: 0,
            accesses: 0,
        }
    }

    /// Push a descriptor word at the tail. Returns `false` when all 1004
    /// registers are occupied.
    pub fn push(&mut self, word: u32) -> bool {
        if self.len == HWQ_REGISTERS {
            return false;
        }
        self.accesses += 1;
        self.regs[self.tail] = word;
        self.tail = (self.tail + 1) % HWQ_REGISTERS;
        self.len += 1;
        true
    }

    /// Pop the head descriptor word.
    pub fn pop(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        self.accesses += 1;
        let w = self.regs[self.head];
        self.head = (self.head + 1) % HWQ_REGISTERS;
        self.len -= 1;
        Some(w)
    }

    /// Read the word at logical position `i` (0 = head) without consuming —
    /// the scheduler's descriptor scan.
    pub fn peek_at(&mut self, i: usize) -> Option<u32> {
        if i >= self.len {
            return None;
        }
        self.accesses += 1;
        Some(self.regs[(self.head + i) % HWQ_REGISTERS])
    }

    /// Overwrite the word at logical position `i` (descriptor update in
    /// place).
    pub fn write_at(&mut self, i: usize, word: u32) -> bool {
        if i >= self.len {
            return false;
        }
        self.accesses += 1;
        self.regs[(self.head + i) % HWQ_REGISTERS] = word;
        true
    }

    /// Occupied registers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free registers.
    pub fn free(&self) -> usize {
        HWQ_REGISTERS - self.len
    }

    /// Total access cycles accrued (all accesses × on-chip cost).
    pub fn access_cycles(&self) -> u64 {
        self.accesses * calib::HWQUEUE_TOUCH_CYCLES
    }
}

impl Default for HwQueueRegs {
    fn default() -> Self {
        HwQueueRegs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_semantics() {
        let mut q = HwQueueRegs::new();
        assert!(q.push(0xA000_0001));
        assert!(q.push(0xA000_0002));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(0xA000_0001));
        assert_eq!(q.pop(), Some(0xA000_0002));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_is_exactly_1004() {
        let mut q = HwQueueRegs::new();
        for i in 0..HWQ_REGISTERS as u32 {
            assert!(q.push(i), "register {i} should fit");
        }
        assert!(!q.push(9999), "register file exhausted at 1004");
        assert_eq!(q.free(), 0);
        assert_eq!(q.pop(), Some(0));
        assert!(q.push(9999), "space after pop");
    }

    #[test]
    fn wraps_around_many_times() {
        let mut q = HwQueueRegs::new();
        for round in 0..3_000u32 {
            assert!(q.push(round));
            assert_eq!(q.pop(), Some(round));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn peek_and_write_in_place() {
        let mut q = HwQueueRegs::new();
        q.push(10);
        q.push(20);
        q.push(30);
        assert_eq!(q.peek_at(1), Some(20));
        assert!(q.write_at(1, 21));
        assert_eq!(q.peek_at(1), Some(21));
        assert_eq!(q.peek_at(3), None);
        assert!(!q.write_at(3, 0));
    }

    #[test]
    fn access_accounting() {
        let mut q = HwQueueRegs::new();
        q.push(1); // 1
        q.peek_at(0); // 2
        q.pop(); // 3
        assert_eq!(q.accesses, 3);
        assert_eq!(q.access_cycles(), 3 * calib::HWQUEUE_TOUCH_CYCLES);
    }
}
