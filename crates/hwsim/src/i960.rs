//! The i960RD I/O co-processor cost model.
//!
//! Prices the two code paths the microbenchmarks measure:
//!
//! * **Scheduling decision** ([`I960Core::decision_time`]): fixed spine +
//!   ratio arithmetic (fixed-point vs software-FP build) + descriptor
//!   touches through the data cache (and the descriptor-ring scan the
//!   embedded firmware performs — §4.2.1 "the scheduler loops through the
//!   frame descriptors").
//! * **Dispatch without scheduler** ([`I960Core::dispatch_time`]): Table 1's
//!   "re-route execution in the code to a point where the address of the
//!   frame to be dispatched is readily available".
//!
//! The build flavour is [`MathMode`]; descriptor storage is either pinned
//! NI memory (cache-priced) or the MMIO hardware queues (fixed on-chip
//! cost, Table 3).

use crate::cache::DataCache;
use crate::calib;
use dwcs_work::Work;
use fixedpt::ops::MathMode;
use simkit::SimDuration;

/// Re-export target: `dwcs::repr::Work` without making hwsim depend on the
/// whole scheduler crate — structurally identical.
pub mod dwcs_work {
    /// Comparisons + memory touches performed by a schedule representation
    /// (mirror of `dwcs::repr::Work`; converted by the glue in `dvcm`).
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct Work {
        /// Key comparisons.
        pub compares: u64,
        /// Descriptor/node touches.
        pub touches: u64,
    }
}

/// Where frame descriptors live (Table 2 vs Table 3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DescriptorStore {
    /// Pinned NI memory, priced through the data cache.
    #[default]
    PinnedMemory,
    /// The 1004 memory-mapped hardware-queue registers: no external bus
    /// cycles, cache-independent.
    HwQueueRegs,
}

/// The co-processor model.
#[derive(Clone, Debug)]
pub struct I960Core {
    /// Core clock.
    pub hz: u64,
    /// Arithmetic build of the scheduler.
    pub math: MathMode,
    /// Data cache state.
    pub cache: DataCache,
    /// Descriptor storage.
    pub store: DescriptorStore,
}

impl I960Core {
    /// The paper's reference configuration: fixed-point build, cache
    /// disabled (the disk driver's constraint), descriptors in pinned
    /// memory.
    pub fn new() -> I960Core {
        I960Core {
            hz: calib::I960_HZ,
            math: MathMode::FixedPoint,
            cache: DataCache::i960(false),
            store: DescriptorStore::PinnedMemory,
        }
    }

    /// Builder: arithmetic mode.
    pub fn with_math(mut self, math: MathMode) -> I960Core {
        self.math = math;
        self
    }

    /// Builder: data cache enabled?
    pub fn with_cache(mut self, enabled: bool) -> I960Core {
        self.cache = DataCache::i960(enabled);
        self
    }

    /// Builder: descriptor store.
    pub fn with_store(mut self, store: DescriptorStore) -> I960Core {
        self.store = store;
        self
    }

    /// Cycles for one ratio operation under the current build.
    fn ratio_cycles(&self) -> u64 {
        match self.math {
            MathMode::FixedPoint => calib::FIXED_RATIO_CYCLES,
            MathMode::SoftFloat => calib::SOFT_FP_RATIO_CYCLES,
        }
    }

    /// Cycles for `n` descriptor touches under the current store/cache.
    fn touch_cycles(&mut self, n: u64) -> u64 {
        match self.store {
            DescriptorStore::PinnedMemory => self.cache.touch_cycles(n),
            DescriptorStore::HwQueueRegs => n * calib::HWQUEUE_TOUCH_CYCLES,
        }
    }

    /// Time for one scheduling decision.
    ///
    /// `work` — comparisons/touches the schedule representation reported;
    /// `ring_scan` — descriptors walked in the per-stream circular buffers
    /// (the firmware's linear descriptor loop; the microbenchmark's mean
    /// occupancy).
    pub fn decision_time(&mut self, work: Work, ring_scan: u64) -> SimDuration {
        let mut cycles = calib::NI_DECISION_BASE_CYCLES;
        cycles += calib::RATIO_EVALS_PER_DECISION * self.ratio_cycles();
        // Representation comparisons are ratio-flavoured too (priority
        // tests): priced per build.
        cycles += work.compares * self.ratio_cycles() / 4;
        cycles += self.touch_cycles(work.touches + ring_scan);
        SimDuration::for_cycles_at_hz(cycles, self.hz)
    }

    /// Time for the dispatch-only path (no scheduler rules).
    pub fn dispatch_time(&mut self) -> SimDuration {
        let cycles = if self.cache.is_enabled() || self.store == DescriptorStore::HwQueueRegs {
            calib::NI_DISPATCH_CACHED_CYCLES
        } else {
            calib::NI_DISPATCH_CYCLES
        };
        SimDuration::for_cycles_at_hz(cycles, self.hz)
    }

    /// Time for arbitrary task work measured in cycles (producer loops,
    /// protocol handling).
    pub fn cycles_time(&self, cycles: u64) -> SimDuration {
        SimDuration::for_cycles_at_hz(cycles, self.hz)
    }
}

impl Default for I960Core {
    fn default() -> Self {
        I960Core::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(touches: u64) -> Work {
        Work { compares: 2, touches }
    }

    #[test]
    fn fixed_point_cache_off_near_78us() {
        let mut c = I960Core::new(); // fixed, cache off
        let t = c.decision_time(work(3), 75);
        let us = t.as_micros_f64();
        assert!((70.0..=85.0).contains(&us), "got {us:.1} µs");
    }

    #[test]
    fn soft_float_costs_about_20us_more() {
        let mut fixed = I960Core::new();
        let mut float = I960Core::new().with_math(MathMode::SoftFloat);
        let a = fixed.decision_time(work(3), 75).as_micros_f64();
        let b = float.decision_time(work(3), 75).as_micros_f64();
        assert!((15.0..=25.0).contains(&(b - a)), "Δ = {:.1} µs", b - a);
    }

    #[test]
    fn cache_on_saves_about_14us() {
        let mut off = I960Core::new();
        let mut on = I960Core::new().with_cache(true);
        let a = off.decision_time(work(3), 75).as_micros_f64();
        let b = on.decision_time(work(3), 75).as_micros_f64();
        assert!((10.0..=18.0).contains(&(a - b)), "Δ = {:.1} µs", a - b);
    }

    #[test]
    fn hwqueue_store_is_cache_independent_and_fast() {
        let mut hw_off = I960Core::new().with_store(DescriptorStore::HwQueueRegs);
        let mut hw_on = I960Core::new()
            .with_cache(true)
            .with_store(DescriptorStore::HwQueueRegs);
        let a = hw_off.decision_time(work(3), 75).as_micros_f64();
        let b = hw_on.decision_time(work(3), 75).as_micros_f64();
        assert!(
            (a - b).abs() < 0.5,
            "register store ignores the cache: {a:.1} vs {b:.1}"
        );
        // And comparable to pinned memory with cache on (Table 3 ≈ Table 2).
        let mut pinned_on = I960Core::new().with_cache(true);
        let c = pinned_on.decision_time(work(3), 75).as_micros_f64();
        assert!((b - c).abs() < 5.0, "hwqueue ≈ cached memory: {b:.1} vs {c:.1}");
    }

    #[test]
    fn dispatch_times_match_tables() {
        let mut off = I960Core::new();
        let mut on = I960Core::new().with_cache(true);
        assert!((29.0..=32.0).contains(&off.dispatch_time().as_micros_f64()));
        assert!((26.0..=29.0).contains(&on.dispatch_time().as_micros_f64()));
    }

    #[test]
    fn decision_scales_with_ring_occupancy() {
        let mut c = I960Core::new();
        let small = c.decision_time(work(3), 5);
        let big = c.decision_time(work(3), 150);
        assert!(big > small);
    }
}
