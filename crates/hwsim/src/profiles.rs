//! Co-processor profiles: where else could the scheduler run?
//!
//! The DVCM lineage spans several offload targets: the FORE SBA-200's
//! 33 MHz i960CA (the authors' earlier ATM work, ref \[22\]), this paper's
//! 66 MHz i960RD, the UltraSparc/Pentium Pro hosts it is compared against,
//! and — for perspective — a modern superscalar core. Each profile is the
//! same cost structure as [`I960Core`](crate::I960Core) with
//! target-specific constants; [`decision_us`] evaluates the scheduling
//! decision under either arithmetic build, giving the offload-feasibility
//! table the paper's §1 comparison ("the i960 RD is a much slower
//! processor (factor of 4)" yet "these results are comparable") generalises
//! to.

use crate::calib;
use fixedpt::ops::MathMode;

/// Cost constants of one potential scheduler host.
#[derive(Clone, Copy, Debug)]
pub struct CoprocessorProfile {
    /// Display name.
    pub name: &'static str,
    /// Core clock.
    pub hz: u64,
    /// Fixed decision spine (cycles) — queue bookkeeping, call overhead.
    pub base_cycles: u64,
    /// One fixed-point ratio op (cycles).
    pub fixed_ratio_cycles: u64,
    /// One software-FP ratio op (cycles); hardware-FPU targets price it
    /// like a couple of pipelined FP ops.
    pub float_ratio_cycles: u64,
    /// A descriptor memory touch (cycles), cache-warm.
    pub touch_cycles: u64,
    /// Whether the target has a hardware FPU.
    pub has_fpu: bool,
}

/// The FORE SBA-200's i960CA at 33 MHz (the earlier DVCM host, ref \[22\]).
pub const I960CA_SBA200: CoprocessorProfile = CoprocessorProfile {
    name: "i960CA @33MHz (FORE SBA-200)",
    hz: 33_000_000,
    base_cycles: calib::NI_DECISION_BASE_CYCLES,
    fixed_ratio_cycles: calib::FIXED_RATIO_CYCLES,
    float_ratio_cycles: calib::SOFT_FP_RATIO_CYCLES,
    touch_cycles: calib::TOUCH_MISS_CYCLES, // no data cache on the CA's path
    has_fpu: false,
};

/// This paper's i960RD at 66 MHz, data cache on.
pub const I960RD: CoprocessorProfile = CoprocessorProfile {
    name: "i960RD @66MHz (I2O card)",
    hz: calib::I960_HZ,
    base_cycles: calib::NI_DECISION_BASE_CYCLES,
    fixed_ratio_cycles: calib::FIXED_RATIO_CYCLES,
    float_ratio_cycles: calib::SOFT_FP_RATIO_CYCLES,
    touch_cycles: calib::TOUCH_HIT_CYCLES,
    has_fpu: false,
};

/// The comparison host: 200 MHz Pentium Pro (hardware FPU, deep caches —
/// warm here; the *contention* costs are hostload's business).
pub const PENTIUM_PRO: CoprocessorProfile = CoprocessorProfile {
    name: "Pentium Pro @200MHz (host)",
    hz: calib::HOST_HZ,
    base_cycles: calib::HOST_DECISION_CYCLES,
    fixed_ratio_cycles: 8,
    float_ratio_cycles: 20, // pipelined x87
    touch_cycles: 2,
    has_fpu: true,
};

/// A modern core, for perspective: the decision effectively vanishes.
pub const MODERN_CORE: CoprocessorProfile = CoprocessorProfile {
    name: "modern core @3GHz",
    hz: 3_000_000_000,
    base_cycles: 600,
    fixed_ratio_cycles: 3,
    float_ratio_cycles: 4,
    touch_cycles: 1,
    has_fpu: true,
};

/// All profiles, oldest first.
pub const ALL: [CoprocessorProfile; 4] = [I960CA_SBA200, I960RD, PENTIUM_PRO, MODERN_CORE];

/// Scheduling-decision time (µs) on a profile under the given build, with
/// `touches` descriptor accesses.
pub fn decision_us(p: &CoprocessorProfile, mode: MathMode, touches: u64) -> f64 {
    let ratio = match mode {
        MathMode::FixedPoint => p.fixed_ratio_cycles,
        MathMode::SoftFloat => p.float_ratio_cycles,
    };
    let cycles = p.base_cycles + calib::RATIO_EVALS_PER_DECISION * ratio + touches * p.touch_cycles;
    cycles as f64 / p.hz as f64 * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slower_clock_means_slower_decision() {
        let ca = decision_us(&I960CA_SBA200, MathMode::FixedPoint, 40);
        let rd = decision_us(&I960RD, MathMode::FixedPoint, 40);
        assert!(ca > rd * 1.8, "CA {ca:.1} vs RD {rd:.1}");
    }

    #[test]
    fn fp_penalty_only_bites_fpu_less_targets() {
        for p in &ALL {
            let fixed = decision_us(p, MathMode::FixedPoint, 40);
            let float = decision_us(p, MathMode::SoftFloat, 40);
            let penalty = float - fixed;
            if p.has_fpu {
                assert!(penalty < 1.0, "{}: {penalty:.2} µs", p.name);
            } else {
                assert!(penalty > 10.0, "{}: {penalty:.2} µs", p.name);
            }
        }
    }

    #[test]
    fn paper_comparison_reproduced() {
        // "comparable, although the i960 RD is a much slower processor
        // (by a factor of 4)" — host ≈ 50 µs, i960RD ≈ 60-70 µs.
        let host = decision_us(&PENTIUM_PRO, MathMode::SoftFloat, 16);
        let ni = decision_us(&I960RD, MathMode::FixedPoint, 76);
        assert!((49.0..=52.0).contains(&host), "host {host:.1}");
        assert!((55.0..=75.0).contains(&ni), "NI {ni:.1}");
        assert!(ni < host * 1.6, "comparable despite the 3x clock gap");
    }

    #[test]
    fn modern_core_trivialises_the_decision() {
        let us = decision_us(&MODERN_CORE, MathMode::SoftFloat, 40);
        assert!(us < 0.5, "{us:.3} µs — the offload question is different today");
    }
}
