//! # hwsim — calibrated models of the paper's hardware
//!
//! The evaluation platform — Intel i960RD I2O network interfaces in a Quad
//! Pentium Pro running Solaris x86, 100 Mb/s switched Ethernet, SCSI disks —
//! is unobtainable; every component here is a *cost model* calibrated
//! against the paper's own measured primitives (see [`calib`] for the full
//! table with sources). The models are pure and deterministic: they map
//! operations (a scheduling decision's op counts, a DMA of n bytes, a disk
//! frame fetch) to [`simkit::SimDuration`]s, and the `serversim` crate
//! composes them into full experiment pipelines on the event kernel.
//!
//! Components:
//!
//! * [`i960::I960Core`] — the 66 MHz FPU-less co-processor: per-op cycle
//!   tables (fixed-point vs software-FP builds), data-cache on/off memory
//!   touch costs, scheduling-decision and dispatch-path costs (Tables 1–3).
//! * [`cache::DataCache`] — enable/disable + touch pricing, including the
//!   cold-after-context-switch pollution model used for the host CPU.
//! * [`pci::PciBus`] — 33 MHz/32-bit shared bus: PIO word read/write, DMA
//!   setup + streaming at the measured 66.27 MB/s, arbitration (Table 5).
//! * [`disk::ScsiDisk`] + [`disk::Filesystem`] — seek/rotate/transfer plus
//!   dosFs (uncached) vs UFS (8 KB blocks, cached/prefetching) behaviour
//!   (Table 4's 4.2 ms vs 1 ms vs 8 ms frame fetches).
//! * [`eth::Ethernet`] — 100 Mb/s serialization, per-end protocol-stack
//!   costs, switch latency (the measured ~1.2 ms end-to-end frame time).
//! * [`hostcpu::HostCpu`] — the 200 MHz Pentium Pro side: deep cache
//!   hierarchy context-switch costs that make host scheduling fragile.
//! * [`hwqueue::HwQueueRegs`] — the i960 "hardware queues": 1004 32-bit
//!   memory-mapped registers whose accesses generate no external bus
//!   cycles (Table 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod calib;
pub mod disk;
pub mod eth;
pub mod hostcpu;
pub mod hwqueue;
pub mod i960;
pub mod pci;
pub mod profiles;

pub use cache::DataCache;
pub use disk::{Filesystem, ScsiDisk};
pub use eth::Ethernet;
pub use hostcpu::HostCpu;
pub use hwqueue::HwQueueRegs;
pub use i960::I960Core;
pub use pci::PciBus;
