//! Exact unsigned rationals compared without division.
//!
//! The DWCS window-constraint `W' = x'/y'` is a ratio of two small counters.
//! The paper's fixed-point scheduler "simply store\[s\] arguments as fractions
//! with numerator and denominator"; comparisons then reduce to two integer
//! multiplications (cross-multiplication), and the few divisions that remain
//! are power-of-two scalings implemented as shifts. [`Frac`] is that type.

use core::cmp::Ordering;
use core::fmt;

/// An exact non-negative rational `num / den`.
///
/// `den == 0` encodes *infinity* (used for "no constraint"); `0/0` is not
/// representable — constructors normalise it to `0/1`.
///
/// Values are deliberately **not** auto-reduced on every operation: DWCS
/// fractions stay tiny (window numerators/denominators are per-stream packet
/// counters), and skipping the gcd keeps the hot path to two multiplications.
/// Equality and hashing are by *value* (`2/4 == 1/2`), consistent with the
/// cross-multiplication `Ord`; [`Frac::reduced`] gives the canonical form.
#[derive(Clone, Copy, Default)]
pub struct Frac {
    num: u32,
    den: u32,
}

impl PartialEq for Frac {
    #[inline]
    fn eq(&self, other: &Frac) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Frac {}

impl core::hash::Hash for Frac {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        // Hash the canonical form so value-equal fractions collide.
        let r = self.reduced();
        r.num.hash(state);
        r.den.hash(state);
    }
}

impl Frac {
    /// Zero (`0/1`).
    pub const ZERO: Frac = Frac { num: 0, den: 1 };
    /// One (`1/1`).
    pub const ONE: Frac = Frac { num: 1, den: 1 };
    /// Positive infinity (`1/0`): larger than every finite fraction.
    pub const INF: Frac = Frac { num: 1, den: 0 };

    /// Build `num/den`. A zero denominator with a zero numerator is
    /// normalised to [`Frac::ZERO`]; a zero denominator with a non-zero
    /// numerator yields [`Frac::INF`].
    #[inline]
    pub const fn new(num: u32, den: u32) -> Frac {
        if den == 0 {
            if num == 0 {
                Frac::ZERO
            } else {
                Frac::INF
            }
        } else {
            Frac { num, den }
        }
    }

    /// Numerator.
    #[inline]
    pub const fn num(self) -> u32 {
        self.num
    }

    /// Denominator (`0` means infinity).
    #[inline]
    pub const fn den(self) -> u32 {
        self.den
    }

    /// Whether this is the infinity sentinel.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.den == 0
    }

    /// Whether the value equals zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.num == 0 && self.den != 0
    }

    /// Canonical form: reduced by gcd; infinity normalises to `1/0`.
    pub fn reduced(self) -> Frac {
        if self.is_infinite() {
            return Frac::INF;
        }
        if self.num == 0 {
            return Frac::ZERO;
        }
        let g = gcd(self.num, self.den);
        Frac {
            num: self.num / g,
            den: self.den / g,
        }
    }

    /// Value as `f64` (infinity maps to `f64::INFINITY`). For reporting only —
    /// the scheduler itself never converts.
    // analysis: allow(ni-no-float) reason="host-side reporting bridge; NI-resident code never calls this"
    pub fn to_f64(self) -> f64 {
        if self.is_infinite() {
            f64::INFINITY
        } else {
            f64::from(self.num) / f64::from(self.den)
        }
    }

    /// Sum — exact, via cross multiplication in 64-bit then downscale by
    /// shifting if the exact result would overflow `u32` components.
    ///
    /// DWCS only ever adds small window fractions, so the shift branch is
    /// cold; it exists so the type is total. Deliberately *not* an
    /// `std::ops::Add` impl: these operations can lose precision at the
    /// representation edge, and a plain method keeps that visible.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Frac) -> Frac {
        if self.is_infinite() || rhs.is_infinite() {
            return Frac::INF;
        }
        let num = u64::from(self.num) * u64::from(rhs.den) + u64::from(rhs.num) * u64::from(self.den);
        let den = u64::from(self.den) * u64::from(rhs.den);
        Frac::from_u64_parts(num, den)
    }

    /// Saturating difference `max(self − rhs, 0)` — exact where representable.
    pub fn saturating_sub(self, rhs: Frac) -> Frac {
        if rhs.is_infinite() {
            return Frac::ZERO;
        }
        if self.is_infinite() {
            return Frac::INF;
        }
        let lhs = u64::from(self.num) * u64::from(rhs.den);
        let sub = u64::from(rhs.num) * u64::from(self.den);
        if sub >= lhs {
            return Frac::ZERO;
        }
        let den = u64::from(self.den) * u64::from(rhs.den);
        Frac::from_u64_parts(lhs - sub, den)
    }

    /// Product, downscaling by shifts on overflow (see [`Frac::add`] on
    /// why this is a method, not an operator impl).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Frac) -> Frac {
        if self.is_infinite() || rhs.is_infinite() {
            return if self.is_zero() || rhs.is_zero() {
                Frac::ZERO
            } else {
                Frac::INF
            };
        }
        let num = u64::from(self.num) * u64::from(rhs.num);
        let den = u64::from(self.den) * u64::from(rhs.den);
        Frac::from_u64_parts(num, den)
    }

    /// Halve the value with a denominator shift when possible, otherwise a
    /// numerator shift — this is the paper's "divisions implemented as
    /// shifts" idiom (used e.g. when decaying priorities).
    #[inline]
    pub fn half(self) -> Frac {
        if self.is_infinite() {
            return Frac::INF;
        }
        if self.den <= u32::MAX / 2 {
            Frac::new(self.num, self.den << 1)
        } else {
            Frac::new(self.num >> 1, self.den)
        }
    }

    /// Divide by `2^k` using shifts only (method, not `ops::Shr`: the
    /// result saturates at the representation edge).
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, k: u32) -> Frac {
        if self.is_infinite() {
            return Frac::INF;
        }
        let k = k.min(31);
        if self.den.leading_zeros() >= k {
            Frac::new(self.num, self.den << k)
        } else {
            let den_shift = self.den.leading_zeros();
            Frac::new(self.num >> (k - den_shift), self.den << den_shift)
        }
    }

    /// Fit exact 64-bit parts back into `u32/u32` by a common right-shift —
    /// precision loss only when components exceed 32 bits.
    fn from_u64_parts(mut num: u64, mut den: u64) -> Frac {
        debug_assert!(den != 0);
        let bits = 64 - num.max(den).leading_zeros();
        if bits > 32 {
            let shift = bits - 32;
            num >>= shift;
            den >>= shift;
            if den == 0 {
                // rhs underflowed to zero: value is effectively huge.
                return Frac::INF;
            }
        }
        Frac::new(num as u32, den as u32)
    }
}

impl PartialOrd for Frac {
    #[inline]
    fn partial_cmp(&self, other: &Frac) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Frac {
    /// Cross-multiplication compare: two 64-bit multiplies, no division.
    /// This is the DWCS priority-test fast path.
    #[inline]
    fn cmp(&self, other: &Frac) -> Ordering {
        match (self.is_infinite(), other.is_infinite()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => {
                let lhs = u64::from(self.num) * u64::from(other.den);
                let rhs = u64::from(other.num) * u64::from(self.den);
                lhs.cmp(&rhs)
            }
        }
    }
}

impl fmt::Debug for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for Frac {
    fn from(v: u32) -> Frac {
        Frac::new(v, 1)
    }
}

/// Binary GCD (Stein's algorithm) — branch/shift only, no division, matching
/// the i960-friendly arithmetic style.
pub fn gcd(mut a: u32, mut b: u32) -> u32 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_real_values() {
        let a = Frac::new(1, 3);
        let b = Frac::new(2, 5);
        assert!(a < b);
        assert!(Frac::new(2, 4) == Frac::new(2, 4));
        // Unreduced vs reduced compare AND test equal (value semantics).
        assert_eq!(Frac::new(2, 4).cmp(&Frac::new(1, 2)), Ordering::Equal);
        assert_eq!(Frac::new(2, 4), Frac::new(1, 2));
    }

    #[test]
    fn hash_is_consistent_with_value_equality() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |f: Frac| {
            let mut s = DefaultHasher::new();
            f.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(Frac::new(2, 4)), h(Frac::new(1, 2)));
        assert_eq!(h(Frac::new(0, 7)), h(Frac::ZERO));
        assert_eq!(h(Frac::new(9, 0)), h(Frac::INF));
    }

    #[test]
    fn infinity_dominates() {
        assert!(Frac::INF > Frac::new(u32::MAX, 1));
        assert_eq!(Frac::INF.cmp(&Frac::INF), Ordering::Equal);
        assert!(Frac::new(0, 7) < Frac::INF);
    }

    #[test]
    fn zero_forms() {
        assert!(Frac::new(0, 9).is_zero());
        assert_eq!(Frac::new(0, 0), Frac::ZERO);
        assert!(!Frac::INF.is_zero());
    }

    #[test]
    fn add_and_sub_are_exact_for_small_windows() {
        let w = Frac::new(2, 8).add(Frac::new(1, 8));
        assert_eq!(w.reduced(), Frac::new(3, 8));
        let d = Frac::new(3, 8).saturating_sub(Frac::new(1, 8));
        assert_eq!(d.reduced(), Frac::new(1, 4));
        assert_eq!(Frac::new(1, 8).saturating_sub(Frac::new(3, 8)), Frac::ZERO);
    }

    #[test]
    fn mul_reduces_magnitude() {
        let p = Frac::new(3, 4).mul(Frac::new(2, 3));
        assert_eq!(p.reduced(), Frac::new(1, 2));
        assert_eq!(Frac::INF.mul(Frac::ZERO), Frac::ZERO);
        assert_eq!(Frac::INF.mul(Frac::ONE), Frac::INF);
    }

    #[test]
    fn shift_division() {
        assert_eq!(Frac::new(3, 4).half().reduced(), Frac::new(3, 8));
        assert_eq!(Frac::new(5, 1).shr(2).reduced(), Frac::new(5, 4));
        // Denominator near the top: falls back to numerator shift without
        // changing the ordering relation direction.
        let tight = Frac::new(1024, u32::MAX - 1);
        assert!(tight.half() <= tight);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(48, 36), 12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Frac::new(3, 7)), "3/7");
        assert_eq!(format!("{:?}", Frac::INF), "inf");
    }
}
