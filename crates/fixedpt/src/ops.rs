//! Arithmetic operation metering.
//!
//! The paper compares two builds of the embedded scheduler: one using the
//! VxWorks **software floating-point library** and one using the authors'
//! **fixed-point** fraction representation. On the i960RD the difference is
//! ~20 µs per scheduling decision (Tables 1–2). To reproduce that on a
//! simulated i960 we count arithmetic operations by class as the scheduler
//! runs; the `hwsim::I960Core` model then charges a per-class cycle cost that
//! depends on the selected [math mode](crate::ops::MathMode).
//!
//! Metering is opt-in and zero-cost when unused: the scheduler takes an
//! `&OpMeter` only in its instrumented entry points, and [`OpMeter::record`]
//! is a handful of relaxed atomic adds.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Classes of arithmetic the scheduler performs, priced separately by the
/// co-processor cost model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Integer add/sub/compare (single-cycle class on i960).
    IntAlu,
    /// Integer multiply (cross-multiplication compares land here).
    IntMul,
    /// Integer divide (avoided by the fixed-point build; shifts used instead).
    IntDiv,
    /// Shift (the fixed-point division idiom).
    Shift,
    /// Software-emulated floating-point add/sub/compare.
    FloatAlu,
    /// Software-emulated floating-point multiply.
    FloatMul,
    /// Software-emulated floating-point divide.
    FloatDiv,
    /// Heap/queue pointer chasing — memory touch, priced by the cache model.
    MemTouch,
}

/// Number of [`OpKind`] variants (array-indexed counters).
pub const OP_KINDS: usize = 8;

impl OpKind {
    /// Dense index for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            OpKind::IntAlu => 0,
            OpKind::IntMul => 1,
            OpKind::IntDiv => 2,
            OpKind::Shift => 3,
            OpKind::FloatAlu => 4,
            OpKind::FloatMul => 5,
            OpKind::FloatDiv => 6,
            OpKind::MemTouch => 7,
        }
    }

    /// All variants in index order.
    pub const ALL: [OpKind; OP_KINDS] = [
        OpKind::IntAlu,
        OpKind::IntMul,
        OpKind::IntDiv,
        OpKind::Shift,
        OpKind::FloatAlu,
        OpKind::FloatMul,
        OpKind::FloatDiv,
        OpKind::MemTouch,
    ];
}

/// Which arithmetic build of the scheduler is being modelled.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MathMode {
    /// The authors' fraction/shift representation (fast on the i960RD).
    #[default]
    FixedPoint,
    /// `float` code through the VxWorks software floating-point library.
    SoftFloat,
}

impl MathMode {
    /// Map a *logical* scheduler operation to the physical op class this
    /// build executes. The fixed-point build turns divides into shifts and
    /// ratio compares into integer multiplies; the soft-float build performs
    /// every ratio operation in emulated floating point.
    #[inline]
    pub fn lower(self, logical: LogicalOp) -> OpKind {
        match (self, logical) {
            (_, LogicalOp::Counter) => OpKind::IntAlu,
            (_, LogicalOp::Touch) => OpKind::MemTouch,
            (MathMode::FixedPoint, LogicalOp::RatioCompare) => OpKind::IntMul,
            (MathMode::FixedPoint, LogicalOp::RatioUpdate) => OpKind::IntAlu,
            (MathMode::FixedPoint, LogicalOp::RatioDivide) => OpKind::Shift,
            (MathMode::SoftFloat, LogicalOp::RatioCompare) => OpKind::FloatAlu,
            (MathMode::SoftFloat, LogicalOp::RatioUpdate) => OpKind::FloatAlu,
            (MathMode::SoftFloat, LogicalOp::RatioDivide) => OpKind::FloatDiv,
        }
    }
}

/// Logical operations the scheduler issues, independent of the build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LogicalOp {
    /// Plain counter bookkeeping (x', y', indices).
    Counter,
    /// Priority test between two window-constraints.
    RatioCompare,
    /// Window-constraint adjustment after a service/drop.
    RatioUpdate,
    /// Explicit ratio evaluation (soft-float divides; fixed-point shifts).
    RatioDivide,
    /// A data-structure memory touch (heap node, descriptor).
    Touch,
}

/// Thread-safe operation counters, one per [`OpKind`].
#[derive(Debug, Default)]
pub struct OpMeter {
    counts: [AtomicU64; OP_KINDS],
    mode: MathMode,
}

impl OpMeter {
    /// New meter for the given build mode.
    pub fn new(mode: MathMode) -> OpMeter {
        OpMeter {
            counts: Default::default(),
            mode,
        }
    }

    /// The build mode this meter lowers logical ops with.
    pub fn mode(&self) -> MathMode {
        self.mode
    }

    /// Record `n` occurrences of a logical operation.
    #[inline]
    pub fn record(&self, logical: LogicalOp, n: u64) {
        let kind = self.mode.lower(logical);
        self.counts[kind.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Record a physical op class directly (used by data-structure code that
    /// knows its own access pattern).
    #[inline]
    pub fn record_kind(&self, kind: OpKind, n: u64) {
        self.counts[kind.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current count for one class.
    pub fn count(&self, kind: OpKind) -> u64 {
        self.counts[kind.index()].load(Ordering::Relaxed)
    }

    /// Snapshot all counters (index order of [`OpKind::ALL`]).
    pub fn snapshot(&self) -> [u64; OP_KINDS] {
        core::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Total ops across all classes.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().sum()
    }
}

/// Shared handle to a meter — what scheduler instances hold.
pub type SharedMeter = Arc<OpMeter>;

/// A disabled meter for un-instrumented runs (all records still occur but
/// callers can share one global sink; the cost is a relaxed add).
pub fn null_meter() -> SharedMeter {
    Arc::new(OpMeter::new(MathMode::FixedPoint))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_differs_by_mode() {
        assert_eq!(MathMode::FixedPoint.lower(LogicalOp::RatioCompare), OpKind::IntMul);
        assert_eq!(MathMode::SoftFloat.lower(LogicalOp::RatioCompare), OpKind::FloatAlu);
        assert_eq!(MathMode::FixedPoint.lower(LogicalOp::RatioDivide), OpKind::Shift);
        assert_eq!(MathMode::SoftFloat.lower(LogicalOp::RatioDivide), OpKind::FloatDiv);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let m = OpMeter::new(MathMode::SoftFloat);
        m.record(LogicalOp::RatioCompare, 3);
        m.record(LogicalOp::Counter, 2);
        m.record_kind(OpKind::MemTouch, 5);
        assert_eq!(m.count(OpKind::FloatAlu), 3);
        assert_eq!(m.count(OpKind::IntAlu), 2);
        assert_eq!(m.count(OpKind::MemTouch), 5);
        assert_eq!(m.total(), 10);
        m.reset();
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; OP_KINDS];
        for k in OpKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
