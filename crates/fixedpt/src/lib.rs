//! # fixedpt — fixed-point arithmetic for FPU-less co-processors
//!
//! The Intel i960RD I/O co-processor evaluated in the paper has **no floating
//! point unit**. The VxWorks software floating-point library makes `float`
//! code run, but each emulated operation costs tens of microseconds of 66 MHz
//! CPU time; the paper measures a ~20 µs penalty *per scheduling decision*
//! (Tables 1–2). The authors' remedy — reproduced by this crate — is to store
//! scheduler quantities as **fractions with explicit numerator and
//! denominator, with divisions implemented as shifts** (§4.2 of the paper).
//!
//! This crate provides:
//!
//! * [`Frac`] — an exact unsigned rational, compared by cross-multiplication
//!   (no division at all on the comparison fast path, which is the operation
//!   the DWCS scheduler performs per pairwise priority test).
//! * [`Q16`] — a Q16.16 fixed-point scalar for rate/bandwidth style
//!   arithmetic, with shift-based scaling.
//! * [`ops`] — an operation meter ([`OpMeter`], [`OpKind`]) that counts
//!   arithmetic by class so the `hwsim` i960 model can charge per-operation
//!   cycle costs for either the software-FP or the fixed-point build of the
//!   scheduler.
//!
//! Everything here is plain integer arithmetic (no allocation; the only
//! panicking paths are explicit zero-denominator constructions), suitable for
//! a hot scheduler loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frac;
pub mod ops;
pub mod q16;

pub use frac::Frac;
pub use ops::{OpKind, OpMeter, SharedMeter};
pub use q16::Q16;
