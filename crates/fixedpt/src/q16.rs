//! Q16.16 fixed-point scalar.
//!
//! Used where the NI code needs a *scalar* fixed-point quantity (bandwidth
//! estimates, utilization accumulators) rather than an exact ratio: 16
//! integer bits, 16 fractional bits, stored in an `i64` so intermediate
//! products never overflow for the magnitudes the scheduler handles.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Fractional bits in the representation.
pub const FRAC_BITS: u32 = 16;
const ONE_RAW: i64 = 1 << FRAC_BITS;

/// A Q16.16 fixed-point number backed by `i64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q16(i64);

impl Q16 {
    /// Zero.
    pub const ZERO: Q16 = Q16(0);
    /// One.
    pub const ONE: Q16 = Q16(ONE_RAW);

    /// From an integer.
    #[inline]
    pub const fn from_int(v: i32) -> Q16 {
        Q16((v as i64) << FRAC_BITS)
    }

    /// From a ratio `num/den` (`den != 0`), rounding toward zero.
    #[inline]
    pub const fn from_ratio(num: i64, den: i64) -> Q16 {
        Q16((((num as i128) << FRAC_BITS) / den as i128) as i64)
    }

    /// Raw fixed-point bits.
    #[inline]
    pub const fn raw(self) -> i64 {
        self.0
    }

    /// Construct from raw fixed-point bits.
    #[inline]
    pub const fn from_raw(raw: i64) -> Q16 {
        Q16(raw)
    }

    /// Truncated integer part.
    #[inline]
    pub const fn trunc(self) -> i64 {
        self.0 >> FRAC_BITS
    }

    /// Nearest-integer rounding.
    #[inline]
    pub const fn round(self) -> i64 {
        (self.0 + (ONE_RAW / 2)) >> FRAC_BITS
    }

    /// Lossy conversion for reporting.
    // analysis: allow(ni-no-float) reason="host-side reporting bridge; NI-resident code never calls this"
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / ONE_RAW as f64
    }

    /// Lossy construction from `f64` (test/report helper; the hot path never
    /// touches floats).
    // analysis: allow(ni-no-float) reason="host-side test/report helper; NI-resident code never calls this"
    pub fn from_f64(v: f64) -> Q16 {
        Q16((v * ONE_RAW as f64) as i64)
    }

    /// Multiply by `2^k` (shift — the paper's division/multiplication idiom).
    #[inline]
    pub const fn shl(self, k: u32) -> Q16 {
        Q16(self.0 << k)
    }

    /// Divide by `2^k` (arithmetic shift).
    #[inline]
    pub const fn shr(self, k: u32) -> Q16 {
        Q16(self.0 >> k)
    }

    /// Saturating clamp into `[lo, hi]`.
    pub fn clamp(self, lo: Q16, hi: Q16) -> Q16 {
        Q16(self.0.clamp(lo.0, hi.0))
    }

    /// Absolute value.
    #[inline]
    pub const fn abs(self) -> Q16 {
        Q16(self.0.abs())
    }

    /// Exponentially-weighted moving average step toward `sample` with weight
    /// `1/2^k` — shift-only, the classic embedded smoothing update.
    #[inline]
    pub fn ewma_toward(self, sample: Q16, k: u32) -> Q16 {
        Q16(self.0 + ((sample.0 - self.0) >> k))
    }
}

impl Add for Q16 {
    type Output = Q16;
    #[inline]
    fn add(self, rhs: Q16) -> Q16 {
        Q16(self.0 + rhs.0)
    }
}

impl AddAssign for Q16 {
    #[inline]
    fn add_assign(&mut self, rhs: Q16) {
        self.0 += rhs.0;
    }
}

impl Sub for Q16 {
    type Output = Q16;
    #[inline]
    fn sub(self, rhs: Q16) -> Q16 {
        Q16(self.0 - rhs.0)
    }
}

impl SubAssign for Q16 {
    #[inline]
    fn sub_assign(&mut self, rhs: Q16) {
        self.0 -= rhs.0;
    }
}

impl Mul for Q16 {
    type Output = Q16;
    #[inline]
    fn mul(self, rhs: Q16) -> Q16 {
        Q16((((self.0 as i128) * (rhs.0 as i128)) >> FRAC_BITS) as i64)
    }
}

impl Div for Q16 {
    type Output = Q16;
    #[inline]
    fn div(self, rhs: Q16) -> Q16 {
        Q16((((self.0 as i128) << FRAC_BITS) / rhs.0 as i128) as i64)
    }
}

impl Neg for Q16 {
    type Output = Q16;
    #[inline]
    fn neg(self) -> Q16 {
        Q16(-self.0)
    }
}

impl fmt::Debug for Q16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}q", self.to_f64())
    }
}

impl fmt::Display for Q16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.to_f64())
    }
}

impl From<i32> for Q16 {
    fn from(v: i32) -> Q16 {
        Q16::from_int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        for v in [-5, -1, 0, 1, 42, 30_000] {
            assert_eq!(Q16::from_int(v).trunc(), i64::from(v));
        }
    }

    #[test]
    fn ratio_and_rounding() {
        let third = Q16::from_ratio(1, 3);
        assert_eq!(third.trunc(), 0);
        assert_eq!((third + third + third).round(), 1);
        assert_eq!(Q16::from_ratio(7, 2).round(), 4); // 3.5 rounds up
    }

    #[test]
    fn mul_div_inverse() {
        let a = Q16::from_ratio(355, 113);
        let b = Q16::from_int(7);
        let q = (a * b) / b;
        assert!((q.to_f64() - a.to_f64()).abs() < 1e-3);
    }

    #[test]
    fn shifts_scale_by_powers_of_two() {
        let v = Q16::from_int(5);
        assert_eq!(v.shl(2).trunc(), 20);
        assert_eq!(v.shr(1).to_f64(), 2.5);
    }

    #[test]
    fn ewma_converges() {
        let mut est = Q16::ZERO;
        let target = Q16::from_int(100);
        for _ in 0..200 {
            est = est.ewma_toward(target, 3);
        }
        assert!((est.to_f64() - 100.0).abs() < 0.1);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Q16::from_ratio(1, 2) < Q16::ONE);
        assert!(Q16::from_int(-1) < Q16::ZERO);
        assert_eq!(Q16::from_int(3).clamp(Q16::ZERO, Q16::from_int(2)), Q16::from_int(2));
    }
}
