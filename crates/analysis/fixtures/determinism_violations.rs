//! Fixture: sim-determinism violations and exemptions.
//! Never compiled — scanned by `nistream-analysis` tests only.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::{Instant, SystemTime};

pub fn bad_clock() -> u64 {
    let _wall = SystemTime::now();
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn bad_collections() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    m.len() + s.len()
}

// Not a violation: mentioning the Instant *type* in a host-facing signature.
pub fn fine(epoch: std::time::Instant) -> std::time::Instant {
    epoch
}

pub fn annotated_ok() -> std::time::Instant {
    // analysis: allow(sim-determinism) reason="host boundary: epoch captured once at startup"
    std::time::Instant::now()
}
