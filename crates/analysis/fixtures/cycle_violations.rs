//! Fixture: ni-cycle-budget violations and exemptions.
//! Never compiled — scanned by `nistream-analysis` tests only.

pub struct Queue {
    head: u64,
    tail: u64,
}

// Clean: a counted range infers its own trip count.
// analysis: hot
pub fn hot_counted(acc: &mut u64) {
    for i in 0..16 {
        *acc += i;
    }
}

// Clean: data-dependent loop with an asserted worst case.
// analysis: hot
pub fn hot_annotated(q: &mut Queue) {
    // analysis: bound 64
    while q.head != q.tail {
        q.head += 1;
    }
}

// Violation: no bound at all — the loop and the root both fire.
// analysis: hot
pub fn hot_unbounded(q: &mut Queue) {
    while q.head != q.tail {
        q.head += 1;
    }
}

// Violation: honestly bounded, but the bound blows the cycle budget.
// analysis: hot
pub fn hot_over_budget(q: &mut Queue) {
    // analysis: bound 200000
    while q.head != q.tail {
        q.head = q.head * 31 + 7;
    }
}

// Violation: the annotation covers no loop or drain.
fn dangling(x: u64) -> u64 {
    // analysis: bound 8
    x + 1
}

// analysis: hot
pub fn hot_calls_dangling(x: u64) -> u64 {
    dangling(x)
}

// Exempt: an allowed drain contributes a single iteration, no finding.
// analysis: hot
pub fn hot_allowed_drain(v: &mut Vec<u64>) -> usize {
    // analysis: allow(ni-cycle-budget) reason="host-side maintenance path, not NI firmware"
    v.iter().position(|&x| x == 0).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    // analysis: hot
    fn probe(q: &mut Queue) {
        while q.head != 0 {
            q.head -= 1;
        }
    }
}
