//! Fixture: q16-overflow violations and exemptions.
//! Never compiled — scanned by `nistream-analysis` tests only.

impl Q16 {
    pub fn bad_mul(self, rhs: Q16) -> Q16 {
        Q16((self.0 * rhs.0) >> 16)
    }

    // Not a violation: widened through i128 before the multiply.
    pub fn good_mul(self, rhs: Q16) -> Q16 {
        Q16((((self.0 as i128) * (rhs.0 as i128)) >> 16) as i64)
    }
}

pub fn bad_shift(x: u32) -> u32 {
    x << 32
}

// Not a violation: in-range shift.
pub fn fine_shift(x: u64) -> u64 {
    x << 16
}

pub fn bad_ratio(r: Frac) -> u32 {
    r.num() / r.den()
}

pub fn bad_narrow(r: Frac) -> u16 {
    r.num() as u16
}

// Not a violation: the exact cross-multiply idiom.
pub fn fine_compare(x: u64, r: Frac) -> bool {
    x * r.num() as u64 <= r.den() as u64
}

pub fn annotated_ok(r: Frac) -> u16 {
    // analysis: allow(q16-overflow) reason="bounded by construction: num ≤ 1024"
    r.num() as u16
}

#[cfg(test)]
mod tests {
    #[test]
    fn raw_multiplies_are_fine_in_tests() {
        let q = Q16::from_int(3);
        assert_eq!((q.0 * q.0) >> 32, 9);
    }
}
