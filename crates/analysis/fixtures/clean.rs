//! Fixture: fully clean NI-style code — zero findings expected.
//! Never compiled — scanned by `nistream-analysis` tests only.

pub fn ratio_compare(an: u32, ad: u32, bn: u32, bd: u32) -> bool {
    // Cross-multiplication, the paper's fixed-point idiom; "1.5x faster"
    // in a string is fine, as is 2.5 in this comment.
    let msg = "1.5x faster";
    let _ = msg;
    u64::from(an) * u64::from(bd) <= u64::from(bn) * u64::from(ad)
}

pub fn checked_pop(q: &mut std::collections::VecDeque<u32>) -> Result<u32, &'static str> {
    q.pop_front().ok_or("queue empty")
}
