//! Fixture: ni-no-panic violations and exemptions.
//! Never compiled — scanned by `nistream-analysis` tests only.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn bad_macro(kind: u8) -> u8 {
    match kind {
        0 => todo!(),
        1 => unreachable!(),
        _ => panic!("boom"),
    }
}

// Not violations: the identifiers without the call/bang shape.
pub fn fine() {
    let expect = 1; // a binding named expect
    let _ = expect;
    // "x.unwrap() would panic!" — comment text never fires.
}

pub fn annotated_ok(v: Option<u32>) -> u32 {
    // analysis: allow(ni-no-panic) reason="invariant: caller checked is_some"
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
