//! Fixture: ni-no-float violations and the exemptions around them.
//! Never compiled — scanned by `nistream-analysis` tests only.

pub fn bad_type(x: f64) -> f64 {
    x
}

pub fn bad_literal() -> u64 {
    let rate = 1.5; // literal violation (and the f64 inference is implicit)
    rate as u64
}

pub fn bad_cast(x: u32) -> u32 {
    (x as f32) as u32
}

// Not violations: ranges, tuple indices, method calls on integers.
pub fn fine(t: (u32, u32)) -> u32 {
    let mut acc = 0;
    for i in 0..5 {
        acc += i.max(1) + t.0;
    }
    acc
}

// The words f64 and 1.5 inside strings/comments must not fire: "f64 1.5".
pub const DOC: &str = "uses f64 2.5 internally";

// analysis: allow(ni-no-float) reason="host-side reporting conversion"
pub fn annotated_ok(x: u32) -> f64 {
    x as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn floats_are_fine_in_tests() {
        assert!((1.5f64).fract() > 0.0);
    }
}
