//! Fixture: unsafe-hygiene violations and exemptions.
//! Never compiled — scanned by `nistream-analysis` tests only.

pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn documented_but_unlisted(p: *const u32) -> u32 {
    // SAFETY: caller guarantees p is valid and aligned for reads.
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_in_tests_is_exempt() {
        let x = 7u32;
        let r = unsafe { *(&x as *const u32) };
        assert_eq!(r, 7);
    }
}
