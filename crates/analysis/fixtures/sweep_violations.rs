//! Fixture: sweep-determinism violations and exemptions.
//! Never compiled — scanned by `nistream-analysis` tests only.

pub fn bad_arrival_order(rx: Receiver, n: usize) -> Vec<u64> {
    let mut out = Vec::new();
    for _ in 0..n {
        let v = rx.recv().unwrap();
        out.push(v);
    }
    out
}

pub fn bad_thread_identity() -> u64 {
    let id = thread::current().id();
    hash(id)
}

pub fn bad_shared_state(hits: &AtomicU64) -> u64 {
    hits.fetch_add(1, Ordering::Relaxed)
}

// Not a violation: the index-addressed publish pattern — the message's
// own cell index decides placement, not arrival order.
pub fn fine_gather(rx: Receiver, n: usize) -> Vec<Option<u64>> {
    let mut out = init_slots(n);
    for _ in 0..n {
        let (i, value) = rx.recv().unwrap();
        out[i] = Some(value);
    }
    out
}

pub fn annotated_ok(rx: Receiver, log: &mut Vec<u64>) {
    // analysis: allow(sweep-determinism) reason="progress log, not a published result"
    log.push(rx.recv().unwrap());
}
