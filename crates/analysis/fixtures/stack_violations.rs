//! Fixture: ni-stack-depth violations and exemptions.
//! Never compiled — scanned by `nistream-analysis` tests only.
//! The golden/config tests run this file with `max_call_depth = 4` so the
//! deep-chain case stays small.

// Violation: recursion has no static stack bound.
fn spin(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        spin(n - 1)
    }
}

// analysis: hot
pub fn hot_recursive(n: u64) -> u64 {
    spin(n)
}

// Violation: five frames from the root, over max_call_depth = 4.
fn d4(x: u64) -> u64 {
    x + 4
}
fn d3(x: u64) -> u64 {
    d4(x) + 3
}
fn d2(x: u64) -> u64 {
    d3(x) + 2
}
fn d1(x: u64) -> u64 {
    d2(x) + 1
}

// analysis: hot
pub fn hot_deep_chain(x: u64) -> u64 {
    d1(x)
}

// Violation: a 4 KiB scratch buffer on the NI interrupt stack.
// analysis: hot
pub fn hot_large_local(seed: u8) -> u8 {
    let scratch: [u8; 4096] = [seed; 4096];
    scratch[seed as usize & 4095]
}

// Violation: the whole frame blows max_stack_bytes (plus the local check).
// analysis: hot
pub fn hot_huge_frame(seed: u64) -> u64 {
    let big: [u64; 4000] = [seed; 4000];
    big[seed as usize & 3999]
}

// Exempt: an allowed function is summarized as one opaque frame, so the
// recursion inside it is out of scope.
// analysis: allow(ni-stack-depth) reason="host-side helper; depth bounded by admission control"
fn host_recurse(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        host_recurse(n - 1)
    }
}

// analysis: hot
pub fn hot_allowed_recursion(n: u64) -> u64 {
    host_recurse(n)
}

#[cfg(test)]
mod tests {
    // analysis: hot
    fn probe(n: u64) -> u64 {
        probe(n)
    }
}
