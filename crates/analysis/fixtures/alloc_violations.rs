//! Fixture: ni-no-alloc violations and exemptions.
//! Never compiled — scanned by `nistream-analysis` tests only.

pub struct Ring {
    buf: VecDeque<u64>,
}

// analysis: hot
pub fn service_once(ring: &mut Ring, scratch: &mut Vec<u64>) {
    scratch.push(1);
    let b = Box::new(7u64);
    let label = format!("slot {b}");
    helper(ring, label);
}

// Reachable from the hot root through the call graph.
fn helper(ring: &mut Ring, label: String) {
    ring.buf.push_back(label.len() as u64);
}

// Not a violation: never reachable from a hot root.
pub fn cold_setup(v: &mut Vec<u64>) {
    v.push(2);
}

impl Ring {
    // Not a violation: `new` is an init-time constructor, so the hot walk
    // never descends into it.
    pub fn new() -> Ring {
        Ring {
            buf: VecDeque::with_capacity(64),
        }
    }
}

// analysis: hot
pub fn hot_with_init() {
    let r = Ring::new();
    let _ = r;
}

// analysis: allow(ni-no-alloc) reason="admission-time growth, not steady state"
fn admit(ring: &mut Ring) {
    ring.buf.push_back(0);
}

// analysis: hot
pub fn hot_admitting(ring: &mut Ring) {
    admit(ring);
}

impl Ring {
    // A counter bump on `self` must not erase the receiver's type: the
    // `push_back` two statements later is still a violation.
    // analysis: hot
    pub fn push_counted(&mut self, v: u64) {
        self.pushed += 1;
        self.buf.push_back(v);
    }
}

#[cfg(test)]
mod tests {
    // analysis: hot
    fn probe() {
        let mut v = Vec::new();
        v.push(1u64);
    }
}
