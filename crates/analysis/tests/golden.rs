//! Golden test: the fixture corpus produces *exactly* these findings.
//!
//! `fixtures_trip_each_family` (in the crate) asserts every family fires
//! at least once; this test pins the complete finding set — lint, file,
//! position and message — so that any behavioural drift in the lexer,
//! parser, dataflow engine or lint passes shows up as a diff here.

use nistream_analysis::{lints, Config};
use std::path::Path;

fn fixture_config() -> Config {
    Config::parse(
        r#"
        [lint.ni-no-float]
        paths = ["float_violations.rs"]
        [lint.ni-no-panic]
        paths = ["panic_violations.rs"]
        [lint.sim-determinism]
        paths = ["determinism_violations.rs"]
        [lint.unsafe-hygiene]
        paths = ["unsafe_violations.rs"]
        allow_files = []
        [lint.ni-no-alloc]
        paths = ["alloc_violations.rs"]
        [lint.q16-overflow]
        paths = ["q16_violations.rs"]
        [lint.sweep-determinism]
        paths = ["sweep_violations.rs"]
        [lint.ni-cycle-budget]
        paths = ["cycle_violations.rs"]
        [lint.ni-stack-depth]
        paths = ["stack_violations.rs"]
        max_call_depth = 4
        "#,
    )
    .unwrap()
}

/// `(lint, file, line, col, message)` for every expected finding, in
/// report order (file, line, col, lint).
const EXPECTED: &[(&str, &str, u32, u32, &str)] = &[
    (
        "ni-no-alloc",
        "alloc_violations.rs",
        10,
        13,
        "`.push(…)` may grow a `Vec` in NI hot code",
    ),
    (
        "ni-no-alloc",
        "alloc_violations.rs",
        11,
        18,
        "`Box::new` allocates in NI hot code",
    ),
    (
        "ni-no-alloc",
        "alloc_violations.rs",
        12,
        17,
        "`format!` allocates in NI hot code",
    ),
    (
        "ni-no-alloc",
        "alloc_violations.rs",
        18,
        14,
        "`.push_back(…)` may grow a `VecDeque` in NI hot code",
    ),
    (
        "ni-no-alloc",
        "alloc_violations.rs",
        58,
        18,
        "`.push_back(…)` may grow a `VecDeque` in NI hot code",
    ),
    (
        "ni-cycle-budget",
        "cycle_violations.rs",
        28,
        8,
        "hot root `hot_unbounded` has no static cycle bound (see the unbounded-loop findings above)",
    ),
    (
        "ni-cycle-budget",
        "cycle_violations.rs",
        29,
        5,
        "`while` loop on an NI hot path has no static trip-count bound",
    ),
    (
        "ni-cycle-budget",
        "cycle_violations.rs",
        36,
        8,
        "hot root `hot_over_budget` may cost 15803929 cycles per decision — over the budget of 1000000 (15151 µs at 66 MHz)",
    ),
    (
        "ni-cycle-budget",
        "cycle_violations.rs",
        46,
        5,
        "`// analysis: bound 8` does not cover a loop or iterator drain",
    ),
    (
        "sim-determinism",
        "determinism_violations.rs",
        4,
        23,
        "`HashMap` in deterministic-simulation code",
    ),
    (
        "sim-determinism",
        "determinism_violations.rs",
        5,
        23,
        "`HashSet` in deterministic-simulation code",
    ),
    (
        "sim-determinism",
        "determinism_violations.rs",
        6,
        26,
        "`SystemTime` in deterministic-simulation code",
    ),
    (
        "sim-determinism",
        "determinism_violations.rs",
        9,
        17,
        "`SystemTime` in deterministic-simulation code",
    ),
    (
        "sim-determinism",
        "determinism_violations.rs",
        10,
        13,
        "`Instant::now` (wall clock) in deterministic-simulation code",
    ),
    (
        "sim-determinism",
        "determinism_violations.rs",
        15,
        12,
        "`HashMap` in deterministic-simulation code",
    ),
    (
        "sim-determinism",
        "determinism_violations.rs",
        15,
        32,
        "`HashMap` in deterministic-simulation code",
    ),
    (
        "sim-determinism",
        "determinism_violations.rs",
        16,
        12,
        "`HashSet` in deterministic-simulation code",
    ),
    (
        "sim-determinism",
        "determinism_violations.rs",
        16,
        27,
        "`HashSet` in deterministic-simulation code",
    ),
    (
        "ni-no-float",
        "float_violations.rs",
        4,
        20,
        "`f64` mentioned in NI-resident code",
    ),
    (
        "ni-no-float",
        "float_violations.rs",
        4,
        28,
        "`f64` mentioned in NI-resident code",
    ),
    (
        "ni-no-float",
        "float_violations.rs",
        9,
        16,
        "floating-point literal `1.5` in NI-resident code",
    ),
    (
        "ni-no-float",
        "float_violations.rs",
        14,
        11,
        "`f32` mentioned in NI-resident code",
    ),
    (
        "ni-no-panic",
        "panic_violations.rs",
        5,
        7,
        "`.unwrap(…)` in non-test NI code",
    ),
    (
        "ni-no-panic",
        "panic_violations.rs",
        9,
        7,
        "`.expect(…)` in non-test NI code",
    ),
    (
        "ni-no-panic",
        "panic_violations.rs",
        14,
        14,
        "`todo!` in non-test NI code",
    ),
    (
        "ni-no-panic",
        "panic_violations.rs",
        15,
        14,
        "`unreachable!` in non-test NI code",
    ),
    (
        "ni-no-panic",
        "panic_violations.rs",
        16,
        14,
        "`panic!` in non-test NI code",
    ),
    (
        "q16-overflow",
        "q16_violations.rs",
        6,
        21,
        "Q16×Q16 raw multiply without i128 widening",
    ),
    (
        "q16-overflow",
        "q16_violations.rs",
        16,
        7,
        "shift by 32 exceeds the 32-bit width of the shifted value",
    ),
    (
        "q16-overflow",
        "q16_violations.rs",
        25,
        13,
        "`Frac::num()` / `Frac::den()` floor-division truncates the exact rational",
    ),
    (
        "q16-overflow",
        "q16_violations.rs",
        29,
        13,
        "lossy cast of a `Frac` component to `u16`",
    ),
    (
        "ni-stack-depth",
        "stack_violations.rs",
        11,
        13,
        "recursive call into `spin` on an NI hot path",
    ),
    (
        "ni-stack-depth",
        "stack_violations.rs",
        35,
        8,
        "hot root `hot_deep_chain` may reach call depth 5 — over max_call_depth = 4",
    ),
    (
        "ni-stack-depth",
        "stack_violations.rs",
        42,
        5,
        "stack local of ~4096 bytes — over max_local_bytes = 1024",
    ),
    (
        "ni-stack-depth",
        "stack_violations.rs",
        48,
        8,
        "hot root `hot_huge_frame` may use 32040 stack bytes — over max_stack_bytes = 16384",
    ),
    (
        "ni-stack-depth",
        "stack_violations.rs",
        49,
        5,
        "stack local of ~32000 bytes — over max_local_bytes = 1024",
    ),
    (
        "sweep-determinism",
        "sweep_violations.rs",
        8,
        13,
        "channel arrival order flows into published results via `.push(…)`",
    ),
    (
        "sweep-determinism",
        "sweep_violations.rs",
        14,
        14,
        "`thread::current` (thread identity) in sweep code",
    ),
    (
        "sweep-determinism",
        "sweep_violations.rs",
        18,
        32,
        "`AtomicU64` (shared mutable state) in sweep code",
    ),
    (
        "unsafe-hygiene",
        "unsafe_violations.rs",
        5,
        5,
        "`unsafe` in a file not on the unsafe allowlist",
    ),
    (
        "unsafe-hygiene",
        "unsafe_violations.rs",
        5,
        5,
        "`unsafe` without a `// SAFETY:` comment",
    ),
    (
        "unsafe-hygiene",
        "unsafe_violations.rs",
        10,
        5,
        "`unsafe` in a file not on the unsafe allowlist",
    ),
];

#[test]
fn fixture_corpus_findings_are_pinned() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let findings = nistream_analysis::check(&root, &fixture_config()).unwrap();
    let actual: Vec<(String, String, u32, u32, String)> = findings
        .iter()
        .map(|f| {
            (
                f.lint.clone(),
                f.file.display().to_string(),
                f.line,
                f.col,
                f.message.clone(),
            )
        })
        .collect();
    let expected: Vec<(String, String, u32, u32, String)> = EXPECTED
        .iter()
        .map(|(l, f, ln, c, m)| (l.to_string(), f.to_string(), *ln, *c, m.to_string()))
        .collect();
    assert_eq!(actual, expected, "fixture findings drifted — actual list:\n{actual:#?}");
    // Sanity: all seven families are represented.
    for lint in lints::ALL_LINTS {
        assert!(actual.iter().any(|(l, ..)| l == lint), "no {lint} finding");
    }
}
