//! The nine lint families.
//!
//! Two kinds of pass coexist:
//!
//! * **Token scans** (`ni-no-float`, `unsafe-hygiene`, and the collection
//!   mentions of `sim-determinism`) — the property is lexical, so the
//!   token stream is the right abstraction and the diagnostics are
//!   byte-compatible with the original lexer-only analyzer.
//! * **AST / dataflow passes** (`ni-no-panic`, `Instant::now` detection,
//!   `ni-no-alloc`, `q16-overflow`, `sweep-determinism`) — shape- and
//!   type-dependent rules that walk [`crate::ast`] and run
//!   [`crate::dataflow`] domains. Tokens the parser could not model
//!   (macro bodies, attributes, recovered statements) are re-scanned with
//!   the original token heuristics over the AST's `lexical` spans, so no
//!   code escapes coverage.
//!
//! Each pass receives the exemption state ([`Scopes`]) and reports
//! [`Finding`]s for non-exempt tokens only. The mapping of lints to paths
//! lives in `analysis.toml`; these functions do not know which crates
//! they run over.

use crate::ast::{self, for_each_expr_in_block, for_each_fn, BinOp, Expr, LitKind, Param, TypeRef};
use crate::callgraph::CallGraph;
use crate::dataflow::{abs_from_typeref, flow_fn, AbsTy, Domain, Env, Prov, StructTable, TyCx, TypeDomain};
use crate::diag::Finding;
use crate::lexer::{Tok, TokKind};
use crate::scope::Scopes;
use crate::FileAnalysis;
use std::path::Path;

/// `ni-no-float`: the paper's i960RD has no FPU — NI-resident code must not
/// mention `f32`/`f64` (types, `as` casts, suffixed literals) or spell a
/// float literal. Fixed-point (`fixedpt::{Q16, Frac}`) carries all ratios.
pub const NI_NO_FLOAT: &str = "ni-no-float";
/// `ni-no-panic`: firmware must degrade, not die — no `unwrap()`,
/// `expect(…)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` outside
/// tests. Invariants may be annotated with an allow + reason.
pub const NI_NO_PANIC: &str = "ni-no-panic";
/// `sim-determinism`: simulation crates must be replayable — no wall-clock
/// (`Instant::now`, `SystemTime`) and no iteration-order-unstable
/// collections (`HashMap`, `HashSet`).
pub const SIM_DETERMINISM: &str = "sim-determinism";
/// `unsafe-hygiene`: `unsafe` only in allowlisted files, and every use must
/// carry a `// SAFETY:` comment.
pub const UNSAFE_HYGIENE: &str = "unsafe-hygiene";
/// `ni-no-alloc`: no heap allocation reachable from functions marked
/// `// analysis: hot` — the steady-state service pass on a 4 MB card must
/// never touch an allocator. Init-time constructors (`new`,
/// `with_capacity`, `default`) are allowlisted call-graph boundaries.
pub const NI_NO_ALLOC: &str = "ni-no-alloc";
/// `q16-overflow`: dataflow over `fixedpt::{Q16, Frac}` — raw Q16×Q16
/// multiplies must widen through i128, shifts must stay inside the value's
/// width, and `Frac` components must not be truncated back to integers.
pub const Q16_OVERFLOW: &str = "q16-overflow";
/// `sweep-determinism`: in the parallel sweep runner and its callers,
/// published results must not depend on thread identity or channel-recv
/// arrival order; index-addressed publication is the blessed pattern.
pub const SWEEP_DETERMINISM: &str = "sweep-determinism";
/// `ni-cycle-budget`: WCET-style cost analysis — every loop reachable
/// from a `// analysis: hot` root must have a static trip-count bound
/// (counted range or `// analysis: bound N`), and the root's worst-case
/// cycles (the [`crate::costmodel`] interval, i960-calibrated) must fit
/// the configured per-decision budget at 66 MHz.
pub const NI_CYCLE_BUDGET: &str = "ni-cycle-budget";
/// `ni-stack-depth`: hot roots must have bounded call depth, no
/// recursion, no oversized stack locals — NI firmware runs on a small
/// fixed interrupt stack.
pub const NI_STACK_DEPTH: &str = "ni-stack-depth";

/// All lint names, for config validation.
pub const ALL_LINTS: [&str; 9] = [
    NI_NO_FLOAT,
    NI_NO_PANIC,
    SIM_DETERMINISM,
    UNSAFE_HYGIENE,
    NI_NO_ALLOC,
    Q16_OVERFLOW,
    SWEEP_DETERMINISM,
    NI_CYCLE_BUDGET,
    NI_STACK_DEPTH,
];

/// CLI metadata for one lint family (`list-lints`, numeric-key
/// validation).
pub struct LintInfo {
    /// Family name as spelled in `analysis.toml`.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Extra config keys beyond `paths`: `(key, meaning)`.
    pub keys: &'static [(&'static str, &'static str)],
}

/// One entry per family, in [`ALL_LINTS`] order.
pub const LINT_INFO: [LintInfo; 9] = [
    LintInfo {
        name: NI_NO_FLOAT,
        summary: "no f32/f64 types, casts or literals in NI-resident code (i960 has no FPU)",
        keys: &[],
    },
    LintInfo {
        name: NI_NO_PANIC,
        summary: "no unwrap/expect/panic!-family outside tests — firmware degrades, never dies",
        keys: &[],
    },
    LintInfo {
        name: SIM_DETERMINISM,
        summary: "no wall clock or hash-ordered collections in simulation crates",
        keys: &[],
    },
    LintInfo {
        name: UNSAFE_HYGIENE,
        summary: "unsafe only in allowlisted files, always with a // SAFETY: comment",
        keys: &[("allow_files", "files permitted to contain unsafe blocks")],
    },
    LintInfo {
        name: NI_NO_ALLOC,
        summary: "no heap allocation reachable from // analysis: hot roots",
        keys: &[],
    },
    LintInfo {
        name: Q16_OVERFLOW,
        summary: "Q16/Frac arithmetic must widen multiplies and keep shifts in width",
        keys: &[],
    },
    LintInfo {
        name: SWEEP_DETERMINISM,
        summary: "published sweep results independent of thread identity and arrival order",
        keys: &[],
    },
    LintInfo {
        name: NI_CYCLE_BUDGET,
        summary: "worst-case cycles per hot root bounded and within the per-decision budget",
        keys: &[(
            "budget_cycles",
            "worst-case cycles allowed per decision (default 1_000_000)",
        )],
    },
    LintInfo {
        name: NI_STACK_DEPTH,
        summary: "hot roots: bounded call depth, no recursion, no large stack locals",
        keys: &[
            ("max_call_depth", "deepest call chain from a hot root (default 24)"),
            (
                "max_stack_bytes",
                "worst-case stack bytes from a hot root (default 16_384)",
            ),
            ("max_local_bytes", "largest single stack local (default 1_024)"),
        ],
    },
];

fn finding(lint: &str, file: &Path, tok: &Tok, message: String, note: &str) -> Finding {
    Finding {
        lint: lint.to_string(),
        file: file.to_path_buf(),
        line: tok.line,
        col: tok.col,
        message,
        note: (!note.is_empty()).then(|| note.to_string()),
    }
}

/// Mask of tokens the parser left unmodelled (macro bodies, attributes,
/// where clauses, recovered statements): the token-heuristic fallbacks
/// run over exactly these.
fn lexical_mask(toks_len: usize, ast: &ast::File) -> Vec<bool> {
    let mut mask = vec![false; toks_len];
    if toks_len == 0 {
        return mask;
    }
    for sp in &ast.lexical {
        for m in mask.iter_mut().take(sp.end.min(toks_len - 1) + 1).skip(sp.start) {
            *m = true;
        }
    }
    mask
}

/// Visit every expression in every function body of the file.
fn each_body_expr<'a>(ast: &'a ast::File, f: &mut impl FnMut(&'a Expr)) {
    for_each_fn(ast, &mut |func, _| {
        if let Some(b) = &func.body {
            for_each_expr_in_block(b, f);
        }
    });
}

/// Run `ni-no-float` over one file. Purely lexical: a float literal or an
/// `f32`/`f64` mention is a violation wherever it appears.
pub fn ni_no_float(file: &Path, toks: &[Tok], scopes: &Scopes, out: &mut Vec<Finding>) {
    const NOTE: &str = "NI-resident code runs on an FPU-less i960-class core; \
                        use fixedpt::Q16 or fixedpt::Frac (see DESIGN.md, Static invariants)";
    for (i, t) in toks.iter().enumerate() {
        if scopes.is_exempt(NI_NO_FLOAT, i) {
            continue;
        }
        match t.kind {
            TokKind::Float => out.push(finding(
                NI_NO_FLOAT,
                file,
                t,
                format!("floating-point literal `{}` in NI-resident code", t.text),
                NOTE,
            )),
            TokKind::Ident if t.text == "f32" || t.text == "f64" => out.push(finding(
                NI_NO_FLOAT,
                file,
                t,
                format!("`{}` mentioned in NI-resident code", t.text),
                NOTE,
            )),
            _ => {}
        }
    }
}

/// Run `ni-no-panic` over one file: panicking macros and
/// `.unwrap()`/`.expect(…)` calls, found as AST shapes in modelled code
/// and by the original token heuristic inside unmodelled spans.
pub fn ni_no_panic(file: &Path, toks: &[Tok], scopes: &Scopes, ast: &ast::File, out: &mut Vec<Finding>) {
    const NOTE: &str = "NI firmware must degrade rather than die: return a typed error, \
                        or justify the invariant with `// analysis: allow(ni-no-panic) reason=\"…\"`";
    each_body_expr(ast, &mut |e| match e {
        Expr::MacroCall { name, tok, .. }
            if matches!(name.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                && !scopes.is_exempt(NI_NO_PANIC, *tok) =>
        {
            out.push(finding(
                NI_NO_PANIC,
                file,
                &toks[*tok],
                format!("`{name}!` in non-test NI code"),
                NOTE,
            ));
        }
        Expr::MethodCall { method, tok, .. }
            if matches!(method.as_str(), "unwrap" | "expect") && !scopes.is_exempt(NI_NO_PANIC, *tok) =>
        {
            out.push(finding(
                NI_NO_PANIC,
                file,
                &toks[*tok],
                format!("`.{method}(…)` in non-test NI code"),
                NOTE,
            ));
        }
        _ => {}
    });

    // Fallback over unmodelled spans (macro arguments, attributes,
    // recovered statements).
    let mask = lexical_mask(toks.len(), ast);
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    for (ci, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if !mask[i] || t.kind != TokKind::Ident || scopes.is_exempt(NI_NO_PANIC, i) {
            continue;
        }
        let next = code.get(ci + 1).map(|&j| &toks[j]);
        let prev = ci.checked_sub(1).map(|p| &toks[code[p]]);
        match t.text.as_str() {
            "panic" | "unreachable" | "todo" | "unimplemented" if next.is_some_and(|n| n.is_punct('!')) => {
                out.push(finding(
                    NI_NO_PANIC,
                    file,
                    t,
                    format!("`{}!` in non-test NI code", t.text),
                    NOTE,
                ));
            }
            "unwrap" | "expect" if prev.is_some_and(|p| p.is_punct('.')) && next.is_some_and(|n| n.is_punct('(')) => {
                out.push(finding(
                    NI_NO_PANIC,
                    file,
                    t,
                    format!("`.{}(…)` in non-test NI code", t.text),
                    NOTE,
                ));
            }
            _ => {}
        }
    }
}

/// Run `sim-determinism` over one file. Collection/wall-clock *mentions*
/// stay token scans; `Instant::now` is recognised as an AST path (plus
/// the token heuristic inside unmodelled spans) so that mentioning the
/// `Instant` type stays legal.
pub fn sim_determinism(file: &Path, toks: &[Tok], scopes: &Scopes, ast: &ast::File, out: &mut Vec<Finding>) {
    const NOTE: &str = "simulation crates must be replayable from a seed: use the simulated \
                        clock for time and BTreeMap/BTreeSet (stable iteration) for collections";
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || scopes.is_exempt(SIM_DETERMINISM, i) {
            continue;
        }
        if matches!(t.text.as_str(), "HashMap" | "HashSet" | "SystemTime") {
            out.push(finding(
                SIM_DETERMINISM,
                file,
                t,
                format!("`{}` in deterministic-simulation code", t.text),
                NOTE,
            ));
        }
    }
    each_body_expr(ast, &mut |e| {
        if let Expr::Path { segs } = e {
            for w in segs.windows(2) {
                if w[0].text == "Instant" && w[1].text == "now" && !scopes.is_exempt(SIM_DETERMINISM, w[0].tok) {
                    out.push(finding(
                        SIM_DETERMINISM,
                        file,
                        &toks[w[0].tok],
                        "`Instant::now` (wall clock) in deterministic-simulation code".to_string(),
                        NOTE,
                    ));
                }
            }
        }
    });
    let mask = lexical_mask(toks.len(), ast);
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    for (ci, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if !mask[i] || !t.is_ident("Instant") || scopes.is_exempt(SIM_DETERMINISM, i) {
            continue;
        }
        let is_now = code.get(ci + 1).is_some_and(|&j| toks[j].is_punct(':'))
            && code.get(ci + 2).is_some_and(|&j| toks[j].is_punct(':'))
            && code.get(ci + 3).is_some_and(|&j| toks[j].is_ident("now"));
        if is_now {
            out.push(finding(
                SIM_DETERMINISM,
                file,
                t,
                "`Instant::now` (wall clock) in deterministic-simulation code".to_string(),
                NOTE,
            ));
        }
    }
}

/// Run `unsafe-hygiene` over one file. `allowed` — is this file on the
/// unsafe allowlist?
pub fn unsafe_hygiene(file: &Path, toks: &[Tok], scopes: &Scopes, allowed: bool, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") || scopes.is_exempt(UNSAFE_HYGIENE, i) {
            continue;
        }
        if !allowed {
            out.push(finding(
                UNSAFE_HYGIENE,
                file,
                t,
                "`unsafe` in a file not on the unsafe allowlist".to_string(),
                "add the file to `allow_files` under [lint.unsafe-hygiene] in analysis.toml \
                 (with review) or remove the unsafe code",
            ));
        }
        // A `// SAFETY:` comment must appear on the same line or the
        // immediately preceding comment lines.
        let mut documented = false;
        for other in toks.iter() {
            if other.kind != TokKind::LineComment && other.kind != TokKind::BlockComment {
                continue;
            }
            let dist_ok = other.line <= t.line && t.line - other.line <= 3;
            if dist_ok && other.text.contains("SAFETY:") {
                documented = true;
                break;
            }
        }
        if !documented {
            out.push(finding(
                UNSAFE_HYGIENE,
                file,
                t,
                "`unsafe` without a `// SAFETY:` comment".to_string(),
                "document why this block is sound in a `// SAFETY:` comment directly above it",
            ));
        }
    }
}

// ---------------------------------------------------------------------
// q16-overflow
// ---------------------------------------------------------------------

struct Q16Dom<'a, 'o> {
    ty: TypeDomain<'a>,
    scopes: &'a Scopes,
    file: &'a Path,
    out: &'o mut Vec<Finding>,
}

impl Q16Dom<'_, '_> {
    fn emit(&mut self, tok: usize, message: String) {
        const NOTE: &str = "Q16 is an i64 with 16 fractional bits: widen raw values through i128 \
                            before multiplying, and keep `Frac` arithmetic exact \
                            (see DESIGN.md, Static invariants)";
        if self.scopes.is_exempt(Q16_OVERFLOW, tok) {
            return;
        }
        if let Some(t) = self.ty.cx.toks.get(tok) {
            self.out.push(finding(Q16_OVERFLOW, self.file, t, message, NOTE));
        }
    }
}

impl Domain for Q16Dom<'_, '_> {
    type V = AbsTy;

    fn bottom(&self) -> AbsTy {
        self.ty.bottom()
    }
    fn join(&self, a: &AbsTy, b: &AbsTy) -> AbsTy {
        self.ty.join(a, b)
    }
    fn param_value(&mut self, p: &Param, self_ty: Option<&str>) -> AbsTy {
        self.ty.param_value(p, self_ty)
    }
    fn bind_split(&self, v: &AbsTy) -> AbsTy {
        self.ty.bind_split(v)
    }
    fn iter_elem(&self, v: &AbsTy) -> AbsTy {
        self.ty.iter_elem(v)
    }
    fn let_decl(&mut self, ty: &TypeRef, inferred: AbsTy) -> AbsTy {
        self.ty.let_decl(ty, inferred)
    }
    fn assign_field(&mut self, old: &AbsTy, value: &AbsTy) -> AbsTy {
        self.ty.assign_field(old, value)
    }

    fn transfer(&mut self, e: &Expr, children: &[AbsTy], env: &Env<AbsTy>) -> AbsTy {
        let first = children.first().cloned().unwrap_or(AbsTy::Unknown);
        match e {
            Expr::Binary {
                op: BinOp::Mul, tok, ..
            } if first == AbsTy::RawQ16 && children.get(1) == Some(&AbsTy::RawQ16) => {
                self.emit(*tok, "Q16×Q16 raw multiply without i128 widening".to_string());
            }
            Expr::Binary {
                op: BinOp::Shl | BinOp::Shr,
                rhs,
                tok,
                ..
            } => {
                if let Expr::Lit {
                    kind: LitKind::Int(Some(k)),
                    ..
                } = rhs.as_ref()
                {
                    if let Some(w) = first.width() {
                        if *k >= u128::from(w) {
                            self.emit(
                                *tok,
                                format!("shift by {k} exceeds the {w}-bit width of the shifted value"),
                            );
                        }
                    }
                }
            }
            Expr::Binary {
                op: BinOp::Div, tok, ..
            } if first.prov() == Prov::FracNum && children.get(1).map(AbsTy::prov) == Some(Prov::FracDen) => {
                self.emit(
                    *tok,
                    "`Frac::num()` / `Frac::den()` floor-division truncates the exact rational".to_string(),
                );
            }
            Expr::Cast { ty, tok, .. } if first.prov() != Prov::None => {
                if let AbsTy::Int { bits, signed, .. } = abs_from_typeref(ty) {
                    // num()/den() are u32: anything under 32 bits, or i32,
                    // cannot hold the full component.
                    if bits < 32 || (bits == 32 && signed) {
                        self.emit(
                            *tok,
                            format!("lossy cast of a `Frac` component to `{}`", ty.head().unwrap_or("?")),
                        );
                    }
                }
            }
            _ => {}
        }
        self.ty.transfer(e, children, env)
    }
}

/// Run `q16-overflow` over one file.
pub fn q16_overflow(
    file: &Path,
    toks: &[Tok],
    scopes: &Scopes,
    ast: &ast::File,
    structs: &StructTable,
    out: &mut Vec<Finding>,
) {
    let mut dom = Q16Dom {
        ty: TypeDomain {
            cx: TyCx { structs, toks },
        },
        scopes,
        file,
        out,
    };
    for_each_fn(ast, &mut |f, self_ty| flow_fn(f, self_ty, &mut dom));
}

// ---------------------------------------------------------------------
// ni-no-alloc
// ---------------------------------------------------------------------

struct AllocDom<'a, 'o> {
    ty: TypeDomain<'a>,
    scopes: &'a Scopes,
    file: &'a Path,
    root: &'a str,
    out: &'o mut Vec<Finding>,
}

impl AllocDom<'_, '_> {
    fn emit(&mut self, tok: usize, message: String) {
        if self.scopes.is_exempt(NI_NO_ALLOC, tok) {
            return;
        }
        let note = format!(
            "reachable from `// analysis: hot` root `{}`: the steady-state pass on the 4 MB card must \
             not allocate — move the allocation to init time or annotate \
             `// analysis: allow(ni-no-alloc) reason=\"…\"`",
            self.root
        );
        if let Some(t) = self.ty.cx.toks.get(tok) {
            self.out.push(Finding {
                lint: NI_NO_ALLOC.to_string(),
                file: self.file.to_path_buf(),
                line: t.line,
                col: t.col,
                message,
                note: Some(note),
            });
        }
    }
}

impl Domain for AllocDom<'_, '_> {
    type V = AbsTy;

    fn bottom(&self) -> AbsTy {
        self.ty.bottom()
    }
    fn join(&self, a: &AbsTy, b: &AbsTy) -> AbsTy {
        self.ty.join(a, b)
    }
    fn param_value(&mut self, p: &Param, self_ty: Option<&str>) -> AbsTy {
        self.ty.param_value(p, self_ty)
    }
    fn bind_split(&self, v: &AbsTy) -> AbsTy {
        self.ty.bind_split(v)
    }
    fn iter_elem(&self, v: &AbsTy) -> AbsTy {
        self.ty.iter_elem(v)
    }
    fn let_decl(&mut self, ty: &TypeRef, inferred: AbsTy) -> AbsTy {
        self.ty.let_decl(ty, inferred)
    }
    fn assign_field(&mut self, old: &AbsTy, value: &AbsTy) -> AbsTy {
        self.ty.assign_field(old, value)
    }

    fn transfer(&mut self, e: &Expr, children: &[AbsTy], env: &Env<AbsTy>) -> AbsTy {
        match e {
            Expr::MacroCall { name, tok, .. } if matches!(name.as_str(), "vec" | "format") => {
                self.emit(*tok, format!("`{name}!` allocates in NI hot code"));
            }
            Expr::Call { callee, .. } => {
                if let Expr::Path { segs } = callee.as_ref() {
                    if segs.len() >= 2 {
                        let qual = segs[segs.len() - 2].text.as_str();
                        let last = &segs[segs.len() - 1];
                        let allocates = matches!(
                            (qual, last.text.as_str()),
                            ("Box" | "Rc" | "Arc", "new") | ("String", "from")
                        ) || (crate::dataflow::GROWABLE.contains(&qual)
                            && last.text == "with_capacity");
                        if allocates {
                            self.emit(last.tok, format!("`{qual}::{}` allocates in NI hot code", last.text));
                        }
                    }
                }
            }
            Expr::MethodCall { method, tok, .. } => {
                let recv = children.first();
                match method.as_str() {
                    "to_string" | "to_owned" | "to_vec" | "into_owned" | "collect" => {
                        self.emit(*tok, format!("`.{method}(…)` allocates in NI hot code"));
                    }
                    "clone" if !matches!(recv, Some(AbsTy::Q16 | AbsTy::Frac | AbsTy::RawQ16 | AbsTy::Int { .. })) => {
                        self.emit(*tok, "`.clone()` in NI hot code may allocate".to_string());
                    }
                    "push" | "push_back" | "push_front" | "insert" | "extend" | "append" | "reserve"
                    | "reserve_exact" | "resize" | "resize_with" => {
                        if let Some(AbsTy::Coll { head, .. }) = recv {
                            self.emit(*tok, format!("`.{method}(…)` may grow a `{head}` in NI hot code"));
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        self.ty.transfer(e, children, env)
    }
}

/// Run `ni-no-alloc` over its whole file set at once: build the
/// name-keyed call graph, walk reachability from every `// analysis: hot`
/// root, and scan each reachable function with the allocation domain.
pub fn ni_no_alloc(files: &[&FileAnalysis], structs: &StructTable, out: &mut Vec<Finding>) {
    let pairs: Vec<(&ast::File, &Scopes)> = files.iter().map(|fa| (&fa.ast, &fa.scopes)).collect();
    let graph = CallGraph::build(&pairs, NI_NO_ALLOC);
    let hot = graph.hot_reachable();
    for (i, node) in graph.nodes.iter().enumerate() {
        let Some(root) = hot.root_of(i) else { continue };
        let fa = files[node.file];
        let root = root.to_string();
        let mut dom = AllocDom {
            ty: TypeDomain {
                cx: TyCx {
                    structs,
                    toks: &fa.toks,
                },
            },
            scopes: &fa.scopes,
            file: &fa.rel,
            root: &root,
            out,
        };
        flow_fn(node.item, node.self_ty, &mut dom);
    }
}

// ---------------------------------------------------------------------
// ni-cycle-budget / ni-stack-depth
// ---------------------------------------------------------------------

/// Run `ni-cycle-budget` over a whole file set: the interprocedural
/// cost analysis ([`crate::costmodel`]) from every hot root, keeping the
/// cycle-family findings.
pub fn ni_cycle_budget(
    files: &[&FileAnalysis],
    structs: &StructTable,
    cfg: Option<&crate::config::LintConfig>,
    out: &mut Vec<Finding>,
) {
    let opts = crate::costmodel::CostModel::from_config(cfg);
    let report = crate::costmodel::analyze(files, structs, &opts, NI_CYCLE_BUDGET);
    out.extend(report.findings.into_iter().filter(|f| f.lint == NI_CYCLE_BUDGET));
}

/// Run `ni-stack-depth` over a whole file set: same analysis, pruned by
/// this family's allows, keeping the stack-family findings.
pub fn ni_stack_depth(
    files: &[&FileAnalysis],
    structs: &StructTable,
    cfg: Option<&crate::config::LintConfig>,
    out: &mut Vec<Finding>,
) {
    let opts = crate::costmodel::CostModel::from_config(cfg);
    let report = crate::costmodel::analyze(files, structs, &opts, NI_STACK_DEPTH);
    out.extend(report.findings.into_iter().filter(|f| f.lint == NI_STACK_DEPTH));
}

// ---------------------------------------------------------------------
// sweep-determinism
// ---------------------------------------------------------------------

/// Channel-receive methods: their results are ordered by arrival.
const ARRIVAL_SOURCES: [&str; 4] = ["recv", "try_recv", "recv_timeout", "recv_deadline"];
/// Publishing sinks: appending arrival-ordered values bakes the order in.
const PUBLISH_SINKS: [&str; 6] = ["push", "push_back", "push_front", "insert", "extend", "append"];

struct TaintDom<'a, 'o> {
    toks: &'a [Tok],
    scopes: &'a Scopes,
    file: &'a Path,
    out: &'o mut Vec<Finding>,
}

const SWEEP_NOTE: &str = "sweep output must be byte-identical at every thread count: publish \
                          results by cell index, never by arrival order or thread identity";

impl TaintDom<'_, '_> {
    fn emit(&mut self, tok: usize, message: String) {
        if self.scopes.is_exempt(SWEEP_DETERMINISM, tok) {
            return;
        }
        if let Some(t) = self.toks.get(tok) {
            self.out
                .push(finding(SWEEP_DETERMINISM, self.file, t, message, SWEEP_NOTE));
        }
    }
}

impl Domain for TaintDom<'_, '_> {
    /// `true` — the value derives from channel arrival order.
    type V = bool;

    fn bottom(&self) -> bool {
        false
    }
    fn join(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn param_value(&mut self, _p: &Param, _self_ty: Option<&str>) -> bool {
        false
    }

    fn transfer(&mut self, e: &Expr, children: &[bool], _env: &Env<bool>) -> bool {
        if let Expr::MethodCall { method, tok, .. } = e {
            if ARRIVAL_SOURCES.contains(&method.as_str()) {
                return true;
            }
            if PUBLISH_SINKS.contains(&method.as_str()) && children.iter().skip(1).any(|t| *t) {
                self.emit(
                    *tok,
                    format!("channel arrival order flows into published results via `.{method}(…)`"),
                );
                return false;
            }
        }
        // Everything else propagates taint from any operand.
        children.iter().any(|t| *t)
    }

    // `out[i] = value` is the blessed pattern: the slot index, not the
    // arrival order, decides placement. No check, no re-taint.
    fn assign_index(&mut self, _target: &Expr, _value: &bool) {}
}

/// Run `sweep-determinism` over one file: direct thread-identity /
/// shared-state mentions as token scans, plus the arrival-order taint
/// pass over every function.
pub fn sweep_determinism(file: &Path, toks: &[Tok], scopes: &Scopes, ast: &ast::File, out: &mut Vec<Finding>) {
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    for (ci, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || scopes.is_exempt(SWEEP_DETERMINISM, i) {
            continue;
        }
        match t.text.as_str() {
            "ThreadId" => out.push(finding(
                SWEEP_DETERMINISM,
                file,
                t,
                "`ThreadId` in sweep code".to_string(),
                SWEEP_NOTE,
            )),
            "Mutex" | "RwLock" => out.push(finding(
                SWEEP_DETERMINISM,
                file,
                t,
                format!("`{}` (shared mutable state) in sweep code", t.text),
                SWEEP_NOTE,
            )),
            name if name.starts_with("Atomic") && name.len() > 6 => out.push(finding(
                SWEEP_DETERMINISM,
                file,
                t,
                format!("`{name}` (shared mutable state) in sweep code"),
                SWEEP_NOTE,
            )),
            "thread" => {
                let is_current = code.get(ci + 1).is_some_and(|&j| toks[j].is_punct(':'))
                    && code.get(ci + 2).is_some_and(|&j| toks[j].is_punct(':'))
                    && code.get(ci + 3).is_some_and(|&j| toks[j].is_ident("current"));
                if is_current {
                    out.push(finding(
                        SWEEP_DETERMINISM,
                        file,
                        t,
                        "`thread::current` (thread identity) in sweep code".to_string(),
                        SWEEP_NOTE,
                    ));
                }
            }
            _ => {}
        }
    }
    let mut dom = TaintDom {
        toks,
        scopes,
        file,
        out,
    };
    for_each_fn(ast, &mut |f, self_ty| flow_fn(f, self_ty, &mut dom));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::analyze;
    use std::path::PathBuf;

    fn run(lint: &str, src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let scopes = analyze(&toks);
        let ast = crate::parser::parse(&toks);
        let file = PathBuf::from("x.rs");
        let structs = StructTable::new();
        let mut out = Vec::new();
        match lint {
            NI_NO_FLOAT => ni_no_float(&file, &toks, &scopes, &mut out),
            NI_NO_PANIC => ni_no_panic(&file, &toks, &scopes, &ast, &mut out),
            SIM_DETERMINISM => sim_determinism(&file, &toks, &scopes, &ast, &mut out),
            UNSAFE_HYGIENE => unsafe_hygiene(&file, &toks, &scopes, false, &mut out),
            Q16_OVERFLOW => q16_overflow(&file, &toks, &scopes, &ast, &structs, &mut out),
            SWEEP_DETERMINISM => sweep_determinism(&file, &toks, &scopes, &ast, &mut out),
            NI_NO_ALLOC | NI_CYCLE_BUDGET | NI_STACK_DEPTH => {
                let fa = FileAnalysis {
                    rel: file.clone(),
                    toks,
                    scopes,
                    ast,
                };
                match lint {
                    NI_NO_ALLOC => ni_no_alloc(&[&fa], &structs, &mut out),
                    NI_CYCLE_BUDGET => ni_cycle_budget(&[&fa], &structs, None, &mut out),
                    _ => ni_stack_depth(&[&fa], &structs, None, &mut out),
                }
            }
            _ => unreachable!(),
        }
        out.sort_by(|a, b| (a.line, a.col, &a.lint).cmp(&(b.line, b.col, &b.lint)));
        out.dedup();
        out
    }

    #[test]
    fn float_lint_catches_types_literals_and_casts() {
        let hits = run(NI_NO_FLOAT, "fn f(x: f64) -> f32 { (x * 1.5) as f32 as f64 as _ }");
        assert_eq!(hits.len(), 5, "{hits:?}"); // f64, f32, 1.5, f32, f64
        assert!(run(NI_NO_FLOAT, "let s = \"f64 1.5\"; // f64\nlet r = 0..5; let t = x.0;").is_empty());
    }

    #[test]
    fn panic_lint_needs_call_shape() {
        let hits = run(NI_NO_PANIC, "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); }");
        assert_eq!(hits.len(), 3, "{hits:?}");
        // Idents alone (a fn named unwrap, a field expect) do not fire.
        assert!(run(NI_NO_PANIC, "fn unwrap() {} fn g() { let expect = 3; let p = expect; }").is_empty());
    }

    #[test]
    fn panic_lint_reaches_into_macro_arguments() {
        let hits = run(NI_NO_PANIC, "fn f() { log!(\"x\", v.unwrap()); }");
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn determinism_lint_allows_instant_type_but_not_now() {
        let hits = run(
            SIM_DETERMINISM,
            "fn f() { use std::collections::HashMap; let t = Instant::now(); }",
        );
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(run(
            SIM_DETERMINISM,
            "fn sig(epoch: Instant) { use std::collections::BTreeMap; }"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_lint_flags_undocumented_and_unlisted() {
        let hits = run(
            UNSAFE_HYGIENE,
            "fn f() { unsafe { core::hint::unreachable_unchecked() } }",
        );
        assert_eq!(hits.len(), 2, "allowlist + SAFETY: {hits:?}");
        // With a SAFETY comment, only the allowlist finding remains.
        let hits = run(UNSAFE_HYGIENE, "// SAFETY: caller checked bounds\nunsafe { go() }");
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn q16_lint_wants_widening_and_bounded_shifts() {
        let hits = run(
            Q16_OVERFLOW,
            "impl Q16 { fn bad(self, rhs: Q16) -> i64 { self.0 * rhs.0 } }",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("i128"));
        // Widened through casts: clean.
        assert!(run(
            Q16_OVERFLOW,
            "impl Q16 { fn good(self, rhs: Q16) -> i64 { ((self.0 as i128) * (rhs.0 as i128)) as i64 } }",
        )
        .is_empty());
        let hits = run(Q16_OVERFLOW, "fn f(x: u32) -> u32 { x << 32 }");
        assert_eq!(hits.len(), 1, "{hits:?}");
        let hits = run(Q16_OVERFLOW, "fn f(r: Frac) -> u32 { r.num() / r.den() }");
        assert_eq!(hits.len(), 1, "{hits:?}");
        // The exact cross-multiply idiom is clean.
        assert!(run(
            Q16_OVERFLOW,
            "fn f(x: u64, r: Frac) -> u64 { x * r.num() as u64 / r.den() as u64 }",
        )
        .is_empty());
    }

    #[test]
    fn alloc_lint_is_reachability_scoped_and_type_aware() {
        // Not hot: nothing fires.
        assert!(run(NI_NO_ALLOC, "fn cold(v: &mut Vec<u32>) { v.push(1); }").is_empty());
        // Hot + collection growth fires; scalar method names on
        // non-collections do not.
        let hits = run(
            NI_NO_ALLOC,
            "// analysis: hot\nfn service(v: &mut Vec<u32>, s: Scheduler) { v.push(1); s.push(2); }",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("Vec"));
        // Reachability through helpers, stopped by constructors.
        let hits = run(
            NI_NO_ALLOC,
            "// analysis: hot\nfn service() { helper(); }\n\
             fn helper() { let b = Box::new(1); }\n\
             fn new() { let v = vec![1]; }",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("Box::new"));
    }

    #[test]
    fn sweep_lint_blesses_index_publication_only() {
        // The slot-vector pattern: clean.
        assert!(run(
            SWEEP_DETERMINISM,
            "fn gather(rx: Receiver, n: usize) { let mut out = init(n); for _ in 0..n { \
             let (i, value) = rx.recv().expect(\"worker\"); out[i] = Some(value); } }",
        )
        .is_empty());
        // Pushing in arrival order: flagged.
        let hits = run(
            SWEEP_DETERMINISM,
            "fn gather(rx: Receiver, n: usize) { let mut out = init(n); for _ in 0..n { \
             let v = rx.recv().expect(\"worker\"); out.push(v); } }",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("arrival order"));
        // Thread identity mentions.
        let hits = run(SWEEP_DETERMINISM, "fn f() -> u64 { hash(thread::current().id()) }");
        assert_eq!(hits.len(), 1, "{hits:?}");
    }
}
