//! The four lint families, as scans over one file's token stream.
//!
//! Each pass receives the tokens plus the [`Scopes`] exemption state and
//! reports [`Finding`]s for non-exempt tokens only. The mapping of lints to
//! paths lives in `analysis.toml`; these functions do not know which crates
//! they run over.

use crate::diag::Finding;
use crate::lexer::{Tok, TokKind};
use crate::scope::Scopes;
use std::path::Path;

/// `ni-no-float`: the paper's i960RD has no FPU — NI-resident code must not
/// mention `f32`/`f64` (types, `as` casts, suffixed literals) or spell a
/// float literal. Fixed-point (`fixedpt::{Q16, Frac}`) carries all ratios.
pub const NI_NO_FLOAT: &str = "ni-no-float";
/// `ni-no-panic`: firmware must degrade, not die — no `unwrap()`,
/// `expect(…)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` outside
/// tests. Invariants may be annotated with an allow + reason.
pub const NI_NO_PANIC: &str = "ni-no-panic";
/// `sim-determinism`: simulation crates must be replayable — no wall-clock
/// (`Instant::now`, `SystemTime`) and no iteration-order-unstable
/// collections (`HashMap`, `HashSet`).
pub const SIM_DETERMINISM: &str = "sim-determinism";
/// `unsafe-hygiene`: `unsafe` only in allowlisted files, and every use must
/// carry a `// SAFETY:` comment.
pub const UNSAFE_HYGIENE: &str = "unsafe-hygiene";

/// All lint names, for config validation.
pub const ALL_LINTS: [&str; 4] = [NI_NO_FLOAT, NI_NO_PANIC, SIM_DETERMINISM, UNSAFE_HYGIENE];

fn finding(lint: &str, file: &Path, tok: &Tok, message: String, note: &str) -> Finding {
    Finding {
        lint: lint.to_string(),
        file: file.to_path_buf(),
        line: tok.line,
        col: tok.col,
        message,
        note: (!note.is_empty()).then(|| note.to_string()),
    }
}

/// Run `ni-no-float` over one file.
pub fn ni_no_float(file: &Path, toks: &[Tok], scopes: &Scopes, out: &mut Vec<Finding>) {
    const NOTE: &str = "NI-resident code runs on an FPU-less i960-class core; \
                        use fixedpt::Q16 or fixedpt::Frac (see DESIGN.md, Static invariants)";
    for (i, t) in toks.iter().enumerate() {
        if scopes.is_exempt(NI_NO_FLOAT, i) {
            continue;
        }
        match t.kind {
            TokKind::Float => out.push(finding(
                NI_NO_FLOAT,
                file,
                t,
                format!("floating-point literal `{}` in NI-resident code", t.text),
                NOTE,
            )),
            TokKind::Ident if t.text == "f32" || t.text == "f64" => out.push(finding(
                NI_NO_FLOAT,
                file,
                t,
                format!("`{}` mentioned in NI-resident code", t.text),
                NOTE,
            )),
            _ => {}
        }
    }
}

/// Run `ni-no-panic` over one file.
pub fn ni_no_panic(file: &Path, toks: &[Tok], scopes: &Scopes, out: &mut Vec<Finding>) {
    const NOTE: &str = "NI firmware must degrade rather than die: return a typed error, \
                        or justify the invariant with `// analysis: allow(ni-no-panic) reason=\"…\"`";
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    for (ci, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || scopes.is_exempt(NI_NO_PANIC, i) {
            continue;
        }
        let next = code.get(ci + 1).map(|&j| &toks[j]);
        let prev = ci.checked_sub(1).map(|p| &toks[code[p]]);
        match t.text.as_str() {
            // Panicking macros.
            "panic" | "unreachable" | "todo" | "unimplemented" if next.is_some_and(|n| n.is_punct('!')) => {
                out.push(finding(
                    NI_NO_PANIC,
                    file,
                    t,
                    format!("`{}!` in non-test NI code", t.text),
                    NOTE,
                ));
            }
            // `.unwrap()` / `.expect(…)` method calls.
            "unwrap" | "expect" if prev.is_some_and(|p| p.is_punct('.')) && next.is_some_and(|n| n.is_punct('(')) => {
                out.push(finding(
                    NI_NO_PANIC,
                    file,
                    t,
                    format!("`.{}(…)` in non-test NI code", t.text),
                    NOTE,
                ));
            }
            _ => {}
        }
    }
}

/// Run `sim-determinism` over one file.
pub fn sim_determinism(file: &Path, toks: &[Tok], scopes: &Scopes, out: &mut Vec<Finding>) {
    const NOTE: &str = "simulation crates must be replayable from a seed: use the simulated \
                        clock for time and BTreeMap/BTreeSet (stable iteration) for collections";
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    for (ci, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || scopes.is_exempt(SIM_DETERMINISM, i) {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" | "SystemTime" => out.push(finding(
                SIM_DETERMINISM,
                file,
                t,
                format!("`{}` in deterministic-simulation code", t.text),
                NOTE,
            )),
            "Instant" => {
                // Only `Instant::now(…)` is wall-clock; mentioning the type
                // (e.g. in a host-facing signature) is fine.
                let is_now = code.get(ci + 1).is_some_and(|&j| toks[j].is_punct(':'))
                    && code.get(ci + 2).is_some_and(|&j| toks[j].is_punct(':'))
                    && code.get(ci + 3).is_some_and(|&j| toks[j].is_ident("now"));
                if is_now {
                    out.push(finding(
                        SIM_DETERMINISM,
                        file,
                        t,
                        "`Instant::now` (wall clock) in deterministic-simulation code".to_string(),
                        NOTE,
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Run `unsafe-hygiene` over one file. `allowed` — is this file on the
/// unsafe allowlist?
pub fn unsafe_hygiene(file: &Path, toks: &[Tok], scopes: &Scopes, allowed: bool, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") || scopes.is_exempt(UNSAFE_HYGIENE, i) {
            continue;
        }
        if !allowed {
            out.push(finding(
                UNSAFE_HYGIENE,
                file,
                t,
                "`unsafe` in a file not on the unsafe allowlist".to_string(),
                "add the file to `allow_files` under [lint.unsafe-hygiene] in analysis.toml \
                 (with review) or remove the unsafe code",
            ));
        }
        // A `// SAFETY:` comment must appear on the same line or the
        // immediately preceding comment lines.
        let mut documented = false;
        for other in toks.iter() {
            if other.kind != TokKind::LineComment && other.kind != TokKind::BlockComment {
                continue;
            }
            let dist_ok = other.line <= t.line && t.line - other.line <= 3;
            if dist_ok && other.text.contains("SAFETY:") {
                documented = true;
                break;
            }
        }
        if !documented {
            out.push(finding(
                UNSAFE_HYGIENE,
                file,
                t,
                "`unsafe` without a `// SAFETY:` comment".to_string(),
                "document why this block is sound in a `// SAFETY:` comment directly above it",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::analyze;
    use std::path::PathBuf;

    fn run(lint: &str, src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let scopes = analyze(&toks);
        let file = PathBuf::from("x.rs");
        let mut out = Vec::new();
        match lint {
            NI_NO_FLOAT => ni_no_float(&file, &toks, &scopes, &mut out),
            NI_NO_PANIC => ni_no_panic(&file, &toks, &scopes, &mut out),
            SIM_DETERMINISM => sim_determinism(&file, &toks, &scopes, &mut out),
            UNSAFE_HYGIENE => unsafe_hygiene(&file, &toks, &scopes, false, &mut out),
            _ => unreachable!(),
        }
        out
    }

    #[test]
    fn float_lint_catches_types_literals_and_casts() {
        let hits = run(NI_NO_FLOAT, "fn f(x: f64) -> f32 { (x * 1.5) as f32 as f64 as _ }");
        assert_eq!(hits.len(), 5, "{hits:?}"); // f64, f32, 1.5, f32, f64
        assert!(run(NI_NO_FLOAT, "let s = \"f64 1.5\"; // f64\nlet r = 0..5; let t = x.0;").is_empty());
    }

    #[test]
    fn panic_lint_needs_call_shape() {
        let hits = run(NI_NO_PANIC, "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); }");
        assert_eq!(hits.len(), 3, "{hits:?}");
        // Idents alone (a fn named unwrap, a field expect) do not fire.
        assert!(run(NI_NO_PANIC, "fn unwrap() {} let expect = 3; let p = panic; ").is_empty());
    }

    #[test]
    fn determinism_lint_allows_instant_type_but_not_now() {
        let hits = run(
            SIM_DETERMINISM,
            "use std::collections::HashMap; let t = Instant::now();",
        );
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(run(
            SIM_DETERMINISM,
            "fn sig(epoch: Instant) {} use std::collections::BTreeMap;"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_lint_flags_undocumented_and_unlisted() {
        let hits = run(
            UNSAFE_HYGIENE,
            "fn f() { unsafe { core::hint::unreachable_unchecked() } }",
        );
        assert_eq!(hits.len(), 2, "allowlist + SAFETY: {hits:?}");
        // With a SAFETY comment, only the allowlist finding remains.
        let hits = run(UNSAFE_HYGIENE, "// SAFETY: caller checked bounds\nunsafe { go() }");
        assert_eq!(hits.len(), 1, "{hits:?}");
    }
}
