//! Crate-local call graph for hot-path reachability.
//!
//! `ni-no-alloc` needs to know which functions run on the steady-state
//! service path. Roots are the functions marked `// analysis: hot`
//! (`dwcs::svc`'s service pass, `trace::TraceRing::push`); edges are
//! call/method-call *names* — a deliberate over-approximation, since the
//! analyzer has no trait resolution. Two pruning rules keep the
//! over-approximation honest:
//!
//! * callees named like init-time constructors (`new`, `with_capacity`,
//!   `default`) are not traversed — allocation at construction time is
//!   the allowlist the issue calls for;
//! * functions whose definition is covered by an
//!   `// analysis: allow(ni-no-alloc)` annotation are neither traversed
//!   nor scanned.
//!
//! Test-region functions never enter the table, so `#[cfg(test)]` probe
//! platforms cannot poison reachability.

use crate::ast::{for_each_expr_in_block, Expr, File, FnItem, Item};
use crate::scope::Scopes;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Constructor names whose bodies are init-time by convention and
/// therefore excluded from the hot walk.
pub const INIT_CTORS: [&str; 3] = ["new", "with_capacity", "default"];

/// One function in the graph.
pub struct FnNode<'a> {
    /// Index of the file (caller-defined order) the function lives in.
    pub file: usize,
    /// The function item.
    pub item: &'a FnItem,
    /// Surrounding `impl`/`trait` type name, if any.
    pub self_ty: Option<&'a str>,
    /// Marked `// analysis: hot`.
    pub hot: bool,
    /// Covered by an `allow(ni-no-alloc)` annotation.
    pub allowed: bool,
}

/// Name-keyed call graph over one lint's file set.
pub struct CallGraph<'a> {
    /// All non-test functions.
    pub nodes: Vec<FnNode<'a>>,
    by_name: BTreeMap<&'a str, Vec<usize>>,
}

/// Reachability result: for each node, the name of the hot root that
/// reaches it (if any).
pub struct HotSet {
    roots: Vec<Option<String>>,
}

impl HotSet {
    /// The hot root that reaches node `idx`, if any.
    pub fn root_of(&self, idx: usize) -> Option<&str> {
        self.roots.get(idx).and_then(|r| r.as_deref())
    }
}

impl<'a> CallGraph<'a> {
    /// Build the graph over `(file AST, its scopes)` pairs, in file-set
    /// order. `lint` is the lint whose allow annotations prune the walk.
    pub fn build(files: &[(&'a File, &'a Scopes)], lint: &str) -> Self {
        let mut nodes = Vec::new();
        for (file_idx, (file, scopes)) in files.iter().enumerate() {
            collect_fns(&file.items, None, &mut |f, self_ty| {
                if scopes.in_test.get(f.name_tok).copied().unwrap_or(false) {
                    return; // test-only code never joins the graph
                }
                let hot = scopes.hot_marks.iter().any(|&m| f.span.start <= m && m <= f.name_tok);
                let allowed = scopes.is_exempt(lint, f.name_tok);
                nodes.push(FnNode {
                    file: file_idx,
                    item: f,
                    self_ty,
                    hot,
                    allowed,
                });
            });
        }
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.item.name.as_str()).or_default().push(i);
        }
        CallGraph { nodes, by_name }
    }

    /// Callee names mentioned in node `idx`'s body.
    fn callees(&self, idx: usize) -> BTreeSet<&'a str> {
        let mut out = BTreeSet::new();
        let Some(body) = &self.nodes[idx].item.body else {
            return out;
        };
        for_each_expr_in_block(body, &mut |e| match e {
            Expr::Call { callee, .. } => {
                if let Expr::Path { segs } = callee.as_ref() {
                    if let Some(last) = segs.last() {
                        out.insert(last.text.as_str());
                    }
                }
            }
            Expr::MethodCall { method, .. } => {
                out.insert(method.as_str());
            }
            _ => {}
        });
        out
    }

    /// BFS from every hot root, skipping init constructors and allowed
    /// functions. Returns, per node, which root reaches it.
    pub fn hot_reachable(&self) -> HotSet {
        let mut roots: Vec<Option<String>> = vec![None; self.nodes.len()];
        let mut queue = VecDeque::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.hot && !n.allowed {
                let label = match n.self_ty {
                    Some(ty) => format!("{ty}::{}", n.item.name),
                    None => n.item.name.clone(),
                };
                roots[i] = Some(label);
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            let root = roots[i].clone();
            for callee in self.callees(i) {
                if INIT_CTORS.contains(&callee) {
                    continue;
                }
                for &j in self.by_name.get(callee).into_iter().flatten() {
                    if roots[j].is_none() && !self.nodes[j].allowed {
                        roots[j] = root.clone();
                        queue.push_back(j);
                    }
                }
            }
        }
        HotSet { roots }
    }
}

/// Visit every function in `items` (including those nested in impls,
/// traits and mods) with its surrounding type name.
fn collect_fns<'a>(items: &'a [Item], self_ty: Option<&'a str>, f: &mut impl FnMut(&'a FnItem, Option<&'a str>)) {
    for item in items {
        match item {
            Item::Fn(func) => f(func, self_ty),
            Item::Impl(ib) => collect_fns(&ib.items, Some(ib.self_ty.as_str()), f),
            Item::Trait(tb) => collect_fns(&tb.items, Some(tb.name.as_str()), f),
            Item::Mod(mb) => collect_fns(&mb.items, None, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, parser, scope};

    fn graph_of(src: &str) -> (File, Scopes) {
        let toks = lexer::lex(src);
        let scopes = scope::analyze(&toks);
        let file = parser::parse(&toks);
        (file, scopes)
    }

    fn reaches(files: &[(File, Scopes)], name: &str) -> Option<String> {
        let pairs: Vec<(&File, &Scopes)> = files.iter().map(|(f, s)| (f, s)).collect();
        let g = CallGraph::build(&pairs, "ni-no-alloc");
        let hot = g.hot_reachable();
        g.nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.item.name == name)
            .and_then(|(i, _)| hot.root_of(i).map(str::to_string))
    }

    #[test]
    fn hot_roots_reach_transitive_callees_by_name() {
        let files = [graph_of(
            "// analysis: hot\npub fn service_once() { step(); }\nfn step() { emit(); }\nfn emit() {}\nfn cold() {}",
        )];
        assert_eq!(reaches(&files, "service_once").as_deref(), Some("service_once"));
        assert_eq!(reaches(&files, "emit").as_deref(), Some("service_once"));
        assert_eq!(reaches(&files, "cold"), None);
    }

    #[test]
    fn init_constructors_stop_the_walk() {
        let files = [graph_of(
            "// analysis: hot\nfn run() { let x = Thing::new(); x.go(); }\nimpl Thing { fn new() { grow(); } fn go() {} }\nfn grow() {}",
        )];
        assert_eq!(reaches(&files, "go").as_deref(), Some("run"));
        assert_eq!(reaches(&files, "new"), None, "constructors are init-time");
        assert_eq!(reaches(&files, "grow"), None);
    }

    #[test]
    fn allowed_and_test_fns_are_pruned() {
        let files = [graph_of(
            "// analysis: hot\nfn run() { waived(); }\n\
             // analysis: allow(ni-no-alloc) reason=\"admission-time growth\"\nfn waived() { deeper(); }\n\
             fn deeper() {}\n\
             #[cfg(test)]\nmod tests { fn run() {} }",
        )];
        assert_eq!(reaches(&files, "waived"), None);
        assert_eq!(reaches(&files, "deeper"), None, "the walk stops at allowed fns");
    }

    #[test]
    fn method_roots_are_labelled_with_their_type() {
        let files = [graph_of(
            "impl TraceRing { // analysis: hot\n fn push(&mut self) { self.advance(); } fn advance(&mut self) {} }",
        )];
        assert_eq!(reaches(&files, "advance").as_deref(), Some("TraceRing::push"));
    }
}
