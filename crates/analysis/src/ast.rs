//! The abstract syntax tree the parser produces and the lints walk.
//!
//! This is a *tolerant* AST: it models exactly the shapes the lint
//! families reason about (items, function signatures, statement
//! sequencing, the expression forms that carry calls, casts, arithmetic
//! and control flow) and collapses everything else into [`Span`]s of raw
//! tokens. Spans that the parser could not (or deliberately does not)
//! model are collected on [`File::lexical`] so that token-level lints
//! keep full coverage — no token ever silently escapes analysis just
//! because the grammar around it was exotic.
//!
//! All positions are indices into the *full* token stream produced by
//! [`crate::lexer::lex`] (comments included), so exemption masks from
//! [`crate::scope`] apply directly.

/// Inclusive token range `[start, end]` in the full token stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First token index.
    pub start: usize,
    /// Last token index (inclusive).
    pub end: usize,
}

impl Span {
    /// A span covering exactly one token.
    pub fn tok(i: usize) -> Span {
        Span { start: i, end: i }
    }
}

/// One parsed source file.
#[derive(Debug, Default)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Token ranges the AST does not model (attributes, generics, where
    /// clauses, macro bodies, unparsed statements, opaque items). Token
    /// lints scan these to retain full coverage.
    pub lexical: Vec<Span>,
}

/// A top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// A function (free, method, or trait default).
    Fn(FnItem),
    /// An `impl` block and its items.
    Impl(ImplBlock),
    /// A `trait` block and its items (default bodies included).
    Trait(TraitBlock),
    /// An inline `mod name { … }`.
    Mod(ModBlock),
    /// A `struct` definition (field names and types captured).
    Struct(StructDef),
    /// Anything else (`use`, `enum`, `const`, `static`, `type`,
    /// `macro_rules!`, …) — covered lexically.
    Other(Span),
}

impl Item {
    /// The token span of this item.
    pub fn span(&self) -> Span {
        match self {
            Item::Fn(f) => f.span,
            Item::Impl(i) => i.span,
            Item::Trait(t) => t.span,
            Item::Mod(m) => m.span,
            Item::Struct(s) => s.span,
            Item::Other(s) => *s,
        }
    }
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Token index of the name (diagnostic anchor).
    pub name_tok: usize,
    /// Span of the whole item, attributes and visibility included.
    pub span: Span,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Return type, if declared.
    pub ret: Option<TypeRef>,
    /// Body; `None` for trait method declarations without a default.
    pub body: Option<Block>,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// Names bound by the parameter pattern.
    pub pat: Pat,
    /// Declared type (absent for `self` receivers).
    pub ty: Option<TypeRef>,
    /// Whether this is a `self` / `&self` / `&mut self` receiver.
    pub is_self: bool,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplBlock {
    /// Head identifier of the implemented-for type (`Q16`, `SchedService`).
    pub self_ty: String,
    /// Head identifier of the trait for trait impls.
    pub trait_name: Option<String>,
    /// Items inside the block.
    pub items: Vec<Item>,
    /// Whole-block span.
    pub span: Span,
}

/// A `trait` block.
#[derive(Debug)]
pub struct TraitBlock {
    /// Trait name.
    pub name: String,
    /// Items (method declarations and defaults).
    pub items: Vec<Item>,
    /// Whole-block span.
    pub span: Span,
}

/// An inline module.
#[derive(Debug)]
pub struct ModBlock {
    /// Module name.
    pub name: String,
    /// Items inside.
    pub items: Vec<Item>,
    /// Whole-block span.
    pub span: Span,
}

/// A struct definition with captured field types (tuple-struct fields
/// are named `"0"`, `"1"`, …).
#[derive(Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// `(field name, declared type)` pairs.
    pub fields: Vec<(String, TypeRef)>,
    /// Whole-item span.
    pub span: Span,
}

/// A type as written in the source: its raw tokens, normalised for the
/// abstract-type queries the dataflow passes make.
#[derive(Clone, Debug)]
pub struct TypeRef {
    /// Token texts in order (`["&", "mut", "Vec", "<", "T", ">"]`).
    pub toks: Vec<String>,
    /// Token span of the type.
    pub span: Span,
}

impl TypeRef {
    /// The head identifier: the first path-worthy identifier, skipping
    /// references, `mut`, `dyn`, `impl` and lifetimes — and skipping
    /// *qualifying* path segments, so `std::collections::VecDeque<T>`
    /// heads at `VecDeque`.
    pub fn head(&self) -> Option<&str> {
        let mut head: Option<&str> = None;
        for (i, t) in self.toks.iter().enumerate() {
            let c = t.chars().next().unwrap_or(' ');
            if !(c.is_alphabetic() || c == '_') || t == "mut" || t == "dyn" || t == "impl" {
                if head.is_some() {
                    break; // `<`, `(`, `,` … — the path is over
                }
                continue;
            }
            // A segment followed by `::` qualifies the next one.
            if self.toks.get(i + 1).is_some_and(|n| n == ":") {
                head = None;
                continue;
            }
            head = Some(t);
            break;
        }
        head
    }

    /// Head identifier of the first generic argument (`T` in `Vec<T>`,
    /// `Option<T>`), if any.
    pub fn first_arg(&self) -> Option<TypeRef> {
        let lt = self.toks.iter().position(|t| t == "<")?;
        let mut depth = 0usize;
        let mut end = self.toks.len();
        for (i, t) in self.toks.iter().enumerate().skip(lt) {
            match t.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        end = i;
                        break;
                    }
                }
                "," if depth == 1 => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        Some(TypeRef {
            toks: self.toks[lt + 1..end].to_vec(),
            span: self.span,
        })
    }
}

/// Names bound by a pattern (a tolerant approximation: lowercase-initial
/// identifiers in binding position).
#[derive(Clone, Debug, Default)]
pub struct Pat {
    /// `(name, token index)` of each binding.
    pub names: Vec<(String, usize)>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let pat (: ty)? (= init)? (else { … })?;`
    Let {
        /// Bound pattern.
        pat: Pat,
        /// Declared type annotation.
        ty: Option<TypeRef>,
        /// Initialiser.
        init: Option<Expr>,
        /// `let … else` diverging block.
        els: Option<Block>,
        /// Statement span.
        span: Span,
    },
    /// An expression statement (with or without `;`).
    Expr(Expr),
    /// A nested item.
    Item(Box<Item>),
    /// Tokens the statement parser could not model (scanned lexically).
    Opaque(Span),
}

/// A `{ … }` block.
#[derive(Debug)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Span including the braces.
    pub span: Span,
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Arm pattern bindings.
    pub pat: Pat,
    /// Optional `if` guard.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
}

/// A path segment with its anchor token.
#[derive(Clone, Debug)]
pub struct PathSeg {
    /// Segment text.
    pub text: String,
    /// Token index.
    pub tok: usize,
}

/// Binary operators the dataflow passes distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `==` `!=` `<` `>` `<=` `>=`
    Cmp,
}

/// Literal kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LitKind {
    /// Integer literal with its parsed value when representable.
    Int(Option<u128>),
    /// Float literal.
    Float,
    /// String / char / byte literal.
    Str,
}

/// An expression.
#[derive(Debug)]
pub enum Expr {
    /// `a::b::c` (turbofish arguments skipped).
    Path {
        /// Segments in order.
        segs: Vec<PathSeg>,
    },
    /// A literal.
    Lit {
        /// Kind (and value for integers).
        kind: LitKind,
        /// Token index.
        tok: usize,
    },
    /// `-x`, `!x`, `*x`.
    Unary {
        /// Operator character.
        op: char,
        /// Operand.
        expr: Box<Expr>,
        /// Operator token.
        tok: usize,
    },
    /// `&x` / `&mut x`.
    Ref {
        /// Referent.
        expr: Box<Expr>,
        /// `&` token.
        tok: usize,
    },
    /// `lhs op rhs`.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Operator token (first token of multi-char ops).
        tok: usize,
    },
    /// `target = value` and compound assignments.
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
        /// `=` token.
        tok: usize,
    },
    /// `expr as Ty`.
    Cast {
        /// Source expression.
        expr: Box<Expr>,
        /// Target type.
        ty: TypeRef,
        /// `as` token.
        tok: usize,
    },
    /// `callee(args)`.
    Call {
        /// Callee (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// `(` token.
        tok: usize,
    },
    /// `recv.method(args)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Method-name token.
        tok: usize,
    },
    /// `base.field` / `base.0`.
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// Field-name token.
        tok: usize,
    },
    /// `base[index]`.
    Index {
        /// Base expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// `[` token.
        tok: usize,
    },
    /// `name!( … )` — body retained as a lexical span.
    MacroCall {
        /// Macro name (last path segment).
        name: String,
        /// Token span of the delimited body.
        inner: Span,
        /// Name token.
        tok: usize,
    },
    /// `Path { field: expr, … }`.
    StructLit {
        /// Struct path segments.
        path: Vec<PathSeg>,
        /// Field initialisers (shorthand fields repeat the name).
        fields: Vec<(String, Expr)>,
        /// `{` token.
        tok: usize,
    },
    /// `(a, b, …)` — 1-tuples are unwrapped to the inner expression.
    Tuple {
        /// Elements.
        elems: Vec<Expr>,
        /// `(` token.
        tok: usize,
    },
    /// `[a, b]` / `[x; n]`.
    Array {
        /// Elements (repeat syntax contributes element and count).
        elems: Vec<Expr>,
        /// `[` token.
        tok: usize,
    },
    /// A block in expression position.
    BlockExpr(Box<Block>),
    /// `if (let pat =)? cond { … } (else …)?`.
    If {
        /// `if let` pattern.
        pat: Option<Pat>,
        /// Condition or scrutinee.
        cond: Box<Expr>,
        /// Then block.
        then: Box<Block>,
        /// `else` expression (block or chained if).
        alt: Option<Box<Expr>>,
        /// `if` token.
        tok: usize,
    },
    /// `while (let pat =)? cond { … }`.
    While {
        /// `while let` pattern.
        pat: Option<Pat>,
        /// Condition or scrutinee.
        cond: Box<Expr>,
        /// Body.
        body: Box<Block>,
        /// `while` token.
        tok: usize,
    },
    /// `loop { … }`.
    Loop {
        /// Body.
        body: Box<Block>,
        /// `loop` token.
        tok: usize,
    },
    /// `for pat in iter { … }`.
    For {
        /// Loop pattern.
        pat: Pat,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body.
        body: Box<Block>,
        /// `for` token.
        tok: usize,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms.
        arms: Vec<Arm>,
        /// `match` token.
        tok: usize,
    },
    /// `|params| body` (`move` included).
    Closure {
        /// Parameter bindings.
        params: Vec<Pat>,
        /// Body expression.
        body: Box<Expr>,
        /// `|` token.
        tok: usize,
    },
    /// `return (expr)?`.
    Return {
        /// Returned value.
        value: Option<Box<Expr>>,
        /// `return` token.
        tok: usize,
    },
    /// `break (expr)?` / `continue`.
    Jump {
        /// Optional break value.
        value: Option<Box<Expr>>,
        /// Keyword token.
        tok: usize,
    },
    /// `expr?`.
    Try {
        /// Inner expression.
        expr: Box<Expr>,
        /// `?` token.
        tok: usize,
    },
    /// `lo .. hi` (either side optional).
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
        /// `..` token.
        tok: usize,
    },
    /// Tokens the expression parser could not model (scanned lexically).
    Opaque(Span),
}

impl Expr {
    /// A representative token index for diagnostics.
    pub fn anchor(&self) -> usize {
        match self {
            Expr::Path { segs } => segs.first().map_or(0, |s| s.tok),
            Expr::Lit { tok, .. }
            | Expr::Unary { tok, .. }
            | Expr::Ref { tok, .. }
            | Expr::Binary { tok, .. }
            | Expr::Assign { tok, .. }
            | Expr::Cast { tok, .. }
            | Expr::Call { tok, .. }
            | Expr::MethodCall { tok, .. }
            | Expr::Field { tok, .. }
            | Expr::Index { tok, .. }
            | Expr::MacroCall { tok, .. }
            | Expr::StructLit { tok, .. }
            | Expr::Tuple { tok, .. }
            | Expr::Array { tok, .. }
            | Expr::If { tok, .. }
            | Expr::While { tok, .. }
            | Expr::Loop { tok, .. }
            | Expr::For { tok, .. }
            | Expr::Match { tok, .. }
            | Expr::Closure { tok, .. }
            | Expr::Return { tok, .. }
            | Expr::Jump { tok, .. }
            | Expr::Try { tok, .. }
            | Expr::Range { tok, .. } => *tok,
            Expr::BlockExpr(b) => b.span.start,
            Expr::Opaque(s) => s.start,
        }
    }

    /// Last path segment text, for `Path` expressions.
    pub fn path_last(&self) -> Option<&str> {
        match self {
            Expr::Path { segs } => segs.last().map(|s| s.text.as_str()),
            _ => None,
        }
    }
}

/// Visit every function item in a file (free functions, impl methods,
/// trait defaults, nested modules), with the impl self-type context.
pub fn for_each_fn<'a>(file: &'a File, f: &mut impl FnMut(&'a FnItem, Option<&'a str>)) {
    fn items<'a>(list: &'a [Item], self_ty: Option<&'a str>, f: &mut impl FnMut(&'a FnItem, Option<&'a str>)) {
        for item in list {
            match item {
                Item::Fn(func) => f(func, self_ty),
                Item::Impl(i) => items(&i.items, Some(&i.self_ty), f),
                Item::Trait(t) => items(&t.items, self_ty.or(Some(&t.name)), f),
                Item::Mod(m) => items(&m.items, None, f),
                Item::Struct(_) | Item::Other(_) => {}
            }
        }
    }
    items(&file.items, None, f);
}

/// Visit every struct definition in a file, nested modules included.
pub fn for_each_struct<'a>(file: &'a File, f: &mut impl FnMut(&'a StructDef)) {
    fn items<'a>(list: &'a [Item], f: &mut impl FnMut(&'a StructDef)) {
        for item in list {
            match item {
                Item::Struct(s) => f(s),
                Item::Impl(i) => items(&i.items, f),
                Item::Trait(t) => items(&t.items, f),
                Item::Mod(m) => items(&m.items, f),
                _ => {}
            }
        }
    }
    items(&file.items, f);
}

/// Visit every expression node under `e`, parents before children.
pub fn for_each_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Path { .. } | Expr::Lit { .. } | Expr::MacroCall { .. } | Expr::Opaque(_) => {}
        Expr::Unary { expr, .. } | Expr::Ref { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
            for_each_expr(expr, f)
        }
        Expr::Binary { lhs, rhs, .. } => {
            for_each_expr(lhs, f);
            for_each_expr(rhs, f);
        }
        Expr::Assign { target, value, .. } => {
            for_each_expr(target, f);
            for_each_expr(value, f);
        }
        Expr::Call { callee, args, .. } => {
            for_each_expr(callee, f);
            args.iter().for_each(|a| for_each_expr(a, f));
        }
        Expr::MethodCall { recv, args, .. } => {
            for_each_expr(recv, f);
            args.iter().for_each(|a| for_each_expr(a, f));
        }
        Expr::Field { base, .. } => for_each_expr(base, f),
        Expr::Index { base, index, .. } => {
            for_each_expr(base, f);
            for_each_expr(index, f);
        }
        Expr::StructLit { fields, .. } => fields.iter().for_each(|(_, v)| for_each_expr(v, f)),
        Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => elems.iter().for_each(|a| for_each_expr(a, f)),
        Expr::BlockExpr(b) => for_each_expr_in_block(b, f),
        Expr::If { cond, then, alt, .. } => {
            for_each_expr(cond, f);
            for_each_expr_in_block(then, f);
            if let Some(a) = alt {
                for_each_expr(a, f);
            }
        }
        Expr::While { cond, body, .. } => {
            for_each_expr(cond, f);
            for_each_expr_in_block(body, f);
        }
        Expr::Loop { body, .. } => for_each_expr_in_block(body, f),
        Expr::For { iter, body, .. } => {
            for_each_expr(iter, f);
            for_each_expr_in_block(body, f);
        }
        Expr::Match { scrutinee, arms, .. } => {
            for_each_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    for_each_expr(g, f);
                }
                for_each_expr(&arm.body, f);
            }
        }
        Expr::Closure { body, .. } => for_each_expr(body, f),
        Expr::Return { value, .. } | Expr::Jump { value, .. } => {
            if let Some(v) = value {
                for_each_expr(v, f);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(l) = lo {
                for_each_expr(l, f);
            }
            if let Some(h) = hi {
                for_each_expr(h, f);
            }
        }
    }
}

/// Visit every expression in a block, statement by statement.
pub fn for_each_expr_in_block<'a>(b: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    for_each_expr(e, f);
                }
            }
            Stmt::Expr(e) => for_each_expr(e, f),
            Stmt::Item(item) => {
                if let Item::Fn(func) = item.as_ref() {
                    if let Some(body) = &func.body {
                        for_each_expr_in_block(body, f);
                    }
                }
            }
            Stmt::Opaque(_) => {}
        }
    }
}
