//! A small Rust lexer, just deep enough for token-level lints.
//!
//! This is deliberately **not** a full Rust grammar: the lints only need a
//! faithful token stream where string/char literals, comments, lifetimes and
//! numeric literals are classified correctly (so that `"f64"` in a string or
//! `// no f64 here` in a comment never fires a lint, and `0..5`, `x.0` and
//! `1.max(2)` are not mistaken for float literals). Everything else is a
//! one-character punctuation token.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`s, without the `r#`).
    Ident,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Integer literal (any radix, with or without suffix).
    Int,
    /// Float literal (`1.5`, `1.`, `2e9`, `3f64`, `1.5e-3`).
    Float,
    /// String-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`, `'x'`, `b'x'`.
    Str,
    /// `// …` comment (text includes the slashes; doc comments too).
    LineComment,
    /// `/* … */` comment (nesting handled; text includes delimiters).
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text of the token.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Tok {
    /// Whether this is a punctuation token for character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenise `src`. Unterminated literals/comments are tolerated (the rest of
/// the file becomes part of the open token) — the analyzer must never panic
/// on weird input, only classify conservatively.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            toks.push(Tok {
                kind: TokKind::LineComment,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(ch) = cur.peek(0) {
                if ch == '/' && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    cur.bump();
                    cur.bump();
                } else if ch == '*' && cur.peek(1) == Some('/') {
                    depth -= 1;
                    text.push_str("*/");
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text,
                line,
                col,
            });
            continue;
        }

        // String-like literals with prefixes: r"", r#""#, b"", br#""#, c"",
        // cr#""#, b''. Check before identifier lexing so the prefix letters
        // are not consumed as an ident.
        if matches!(c, 'r' | 'b' | 'c') {
            if let Some(tok) = try_prefixed_literal(&mut cur, line, col) {
                toks.push(tok);
                continue;
            }
        }

        if c == '"' {
            toks.push(lex_plain_string(&mut cur, line, col));
            continue;
        }

        if c == '\'' {
            toks.push(lex_quote(&mut cur, line, col));
            continue;
        }

        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if is_ident_continue(ch) {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }

        if c.is_ascii_digit() {
            toks.push(lex_number(&mut cur, line, col));
            continue;
        }

        // Raw identifier r#name is handled above via try_prefixed_literal
        // falling through; everything else is one punctuation char.
        cur.bump();
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    toks
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `b'x'`, and raw idents
/// `r#name`. Returns `None` when the cursor is on a plain identifier that
/// merely starts with r/b/c.
fn try_prefixed_literal(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    // Longest literal prefix is two letters (`br`, `cr`, `rb` is invalid but
    // harmless to reject). Scan: letters from {r,b,c}, then #*, then a quote.
    let mut ahead = 0usize;
    let mut prefix = String::new();
    while ahead < 2 {
        match cur.peek(ahead) {
            Some(ch @ ('r' | 'b' | 'c')) => {
                prefix.push(ch);
                ahead += 1;
            }
            _ => break,
        }
    }
    let mut hashes = 0usize;
    while cur.peek(ahead + hashes) == Some('#') {
        hashes += 1;
    }
    let raw = prefix.contains('r');
    let quote = cur.peek(ahead + hashes)?;

    // Raw identifier: r#name (one hash, no quote, ident follows).
    if prefix == "r" && hashes == 1 && is_ident_start(quote) {
        cur.bump(); // r
        cur.bump(); // #
        let mut text = String::new();
        while let Some(ch) = cur.peek(0) {
            if is_ident_continue(ch) {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        return Some(Tok {
            kind: TokKind::Ident,
            text,
            line,
            col,
        });
    }

    if hashes > 0 && !raw {
        return None; // `b#` is not a literal prefix
    }
    match quote {
        '"' => {}
        '\'' if prefix == "b" && hashes == 0 => {
            // Byte char literal b'x'.
            cur.bump(); // b
            let mut t = lex_quote(cur, line, col);
            t.text.insert(0, 'b');
            return Some(t);
        }
        _ => return None,
    }

    // Commit: consume prefix, hashes and the opening quote.
    let mut text = String::new();
    for _ in 0..(ahead + hashes + 1) {
        text.push(cur.bump().expect("scanned above"));
    }
    if raw {
        // Ends at `"` followed by `hashes` hashes; no escapes.
        while let Some(ch) = cur.peek(0) {
            if ch == '"' {
                let mut ok = true;
                for i in 0..hashes {
                    if cur.peek(1 + i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        text.push(cur.bump().expect("scanned above"));
                    }
                    break;
                }
            }
            text.push(ch);
            cur.bump();
        }
    } else {
        finish_escaped_string(cur, &mut text);
    }
    Some(Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    })
}

fn lex_plain_string(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    text.push(cur.bump().expect("caller saw the quote"));
    finish_escaped_string(cur, &mut text);
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

/// Consume an escape-aware double-quoted string body including the closing
/// quote (cursor is just past the opening quote).
fn finish_escaped_string(cur: &mut Cursor, text: &mut String) {
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(ch);
        cur.bump();
        if ch == '"' {
            break;
        }
    }
}

/// `'` opens either a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    text.push(cur.bump().expect("caller saw the quote"));
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume through the closing quote.
            while let Some(ch) = cur.peek(0) {
                if ch == '\\' {
                    text.push(ch);
                    cur.bump();
                    if let Some(esc) = cur.bump() {
                        text.push(esc);
                    }
                    continue;
                }
                text.push(ch);
                cur.bump();
                if ch == '\'' {
                    break;
                }
            }
            Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            }
        }
        Some(ch) if is_ident_start(ch) || ch.is_ascii_digit() => {
            if cur.peek(1) == Some('\'') {
                // 'a' — plain char literal.
                text.push(cur.bump().expect("peeked"));
                text.push(cur.bump().expect("peeked"));
                Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                }
            } else {
                // 'lifetime — no closing quote.
                while let Some(c2) = cur.peek(0) {
                    if is_ident_continue(c2) {
                        text.push(c2);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                }
            }
        }
        Some(ch) => {
            // Punctuation char literal like '(' .
            text.push(ch);
            cur.bump();
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            }
        }
        None => Tok {
            kind: TokKind::Str,
            text,
            line,
            col,
        },
    }
}

/// Numeric literal, with the disambiguation the float lint depends on:
/// `0..5` and `1.max(2)` and tuple access `x.0` stay integers, while `1.`,
/// `1.5`, `2e9` and `3f64` are floats.
fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    let mut kind = TokKind::Int;

    // Radix prefixes: the body may contain e/E (hex digits), so exponent
    // logic must not apply.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
        text.push(cur.bump().expect("peeked"));
        text.push(cur.bump().expect("peeked"));
        while let Some(ch) = cur.peek(0) {
            if ch.is_ascii_alphanumeric() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        return Tok { kind, text, line, col };
    }

    while let Some(ch) = cur.peek(0) {
        if ch.is_ascii_digit() || ch == '_' {
            text.push(ch);
            cur.bump();
        } else {
            break;
        }
    }

    // Fractional part?
    if cur.peek(0) == Some('.') {
        match cur.peek(1) {
            Some('.') => {}                      // range `0..5`
            Some(ch) if is_ident_start(ch) => {} // method `1.max(2)`
            _ => {
                // `1.`, `1.5`, `1.5e3` — a float.
                kind = TokKind::Float;
                text.push(cur.bump().expect("peeked"));
                while let Some(ch) = cur.peek(0) {
                    if ch.is_ascii_digit() || ch == '_' {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
    }

    // Exponent (valid on both `1e3` and `1.5e-3`).
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let sign = matches!(cur.peek(1), Some('+' | '-'));
        let digit_at = if sign { 2 } else { 1 };
        if matches!(cur.peek(digit_at), Some(d) if d.is_ascii_digit()) {
            kind = TokKind::Float;
            text.push(cur.bump().expect("peeked"));
            if sign {
                text.push(cur.bump().expect("peeked"));
            }
            while let Some(ch) = cur.peek(0) {
                if ch.is_ascii_digit() || ch == '_' {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }

    // Suffix: `3f64` is a float; `3u32` stays an integer.
    if matches!(cur.peek(0), Some(ch) if is_ident_start(ch)) {
        let mut suffix = String::new();
        while let Some(ch) = cur.peek(0) {
            if is_ident_continue(ch) {
                suffix.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        if suffix == "f32" || suffix == "f64" {
            kind = TokKind::Float;
        }
        text.push_str(&suffix);
    }

    Tok { kind, text, line, col }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn float_disambiguation() {
        // Ranges, method calls and tuple indices are not floats.
        let toks = kinds("let a = 0..5; let b = 1.max(2); let c = x.0; let d = 3u64;");
        assert!(toks.iter().all(|(k, _)| *k != TokKind::Float), "{toks:?}");
        // Real float spellings are.
        for src in ["1.5", "1.", "2e9", "1.5e-3", "3f64", "4f32", "1_000.5"] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].0, TokKind::Float, "{src}");
        }
        // Hex digits that look like exponents/suffixes stay integers.
        for src in ["0x1E", "0x1f64", "0b1010", "0o17", "5usize"] {
            assert_eq!(kinds(src)[0].0, TokKind::Int, "{src}");
        }
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"let s = "f64 1.5 unwrap()"; // f64 in comment
            /* 2.5e3 unsafe */ let r = r#"panic!("1.0")"#;"##;
        let toks = lex(src);
        assert!(toks.iter().all(|t| t.kind != TokKind::Float));
        assert!(!toks.iter().any(|t| t.is_ident("f64")));
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].text.starts_with("r#\""));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner 1.5 */ still comment */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "after".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let p = '('; }");
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(chars.len(), 3, "{chars:?}"); // 'x', '\n', '(' — `str` itself is an Ident
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_strings_with_multi_hash_fences() {
        // The embedded `"#` must not close a `##`-fenced raw string.
        let toks = kinds(r###"let s = r##"a"#b"##;"###);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1, "{toks:?}");
        assert_eq!(strs[0].1, r###"r##"a"#b"##"###);
        // Zero-hash raw string: closes at the first quote, no escapes.
        let toks = kinds(r#"r"c:\dir" x"#);
        assert_eq!(toks[0], (TokKind::Str, r#"r"c:\dir""#.into()));
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
        // An f64 inside the fence never leaks as an identifier.
        let toks = lex(r###"r##"uses f64 and 1.5"##"###);
        assert_eq!(toks.len(), 1);
        assert!(!toks.iter().any(|t| t.is_ident("f64")));
    }

    #[test]
    fn deeply_nested_block_comments() {
        let toks = kinds("/* a /* b /* c 1.5 */ b */ a */ after");
        assert_eq!(toks.len(), 2, "{toks:?}");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "after".into()));
        // `/*/` opens a nesting level rather than closing the comment.
        let toks = kinds("/* x /*/ y */ z */ tail");
        assert_eq!(toks.last().unwrap(), &(TokKind::Ident, "tail".into()), "{toks:?}");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn lifetime_vs_char_in_every_position() {
        // `'a` (lifetime) and `'a'` (char) differ only in lookahead.
        let toks = kinds("fn f<'a>(x: &'a u8) { match c { 'a' => 1, '0'..='9' => 2, '\\'' => 3, _ => 4 }; }");
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert!(lifetimes.iter().all(|(_, t)| t == "'a"));
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(chars.len(), 4, "{chars:?}"); // 'a', '0', '9', '\''
        assert_eq!(chars[3].1, "'\\''");
        // Loop labels are lifetimes, and `'_` can be either.
        let toks = kinds("'outer: loop { break 'outer; } fn g(x: &'_ u8) { let u = '_'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 3, "{toks:?}"); // 'outer ×2, '_
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].1, "'_'");
    }

    #[test]
    fn raw_idents_and_byte_chars() {
        let toks = lex("let r#type = b'x'; br#\"raw \"bytes\"\"#");
        assert!(toks.iter().any(|t| t.is_ident("type")));
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].text, "b'x'");
        assert!(strs[1].text.starts_with("br#"));
    }
}
