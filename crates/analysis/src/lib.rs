//! Repo-specific static analysis for the nistream workspace.
//!
//! The paper's scheduler runs as firmware on an FPU-less i960RD network
//! interface; this crate mechanically enforces the coding invariants that
//! fact imposes on the NI-resident crates, plus determinism rules for the
//! simulation crates and hygiene rules for `unsafe`. See DESIGN.md,
//! "Static invariants", for the rationale of each family:
//!
//! * [`lints::NI_NO_FLOAT`] — no `f32`/`f64`, float literals or casts in
//!   NI-resident code.
//! * [`lints::NI_NO_PANIC`] — no `unwrap()`/`expect(…)`/`panic!`-family
//!   macros outside tests.
//! * [`lints::SIM_DETERMINISM`] — no wall clock or hash-order-dependent
//!   collections in the simulation crates.
//! * [`lints::UNSAFE_HYGIENE`] — `unsafe` only in allowlisted files and
//!   only with a `// SAFETY:` comment.
//! * [`lints::NI_NO_ALLOC`] — no heap allocation reachable from functions
//!   marked `// analysis: hot` (call-graph reachability, init-time
//!   constructors excluded).
//! * [`lints::Q16_OVERFLOW`] — `Q16`/`Frac` arithmetic must widen raw
//!   multiplies through `i128`, keep shifts inside the value's width, and
//!   never truncate `Frac` components back to bare integers.
//! * [`lints::SWEEP_DETERMINISM`] — published sweep results must not
//!   depend on thread identity or channel arrival order.
//! * [`lints::NI_CYCLE_BUDGET`] — interprocedural worst-case cycle bound
//!   for every `// analysis: hot` root ([`costmodel`]) must fit the
//!   configured per-frame budget at 66 MHz; unbounded loops on the hot
//!   path are findings.
//! * [`lints::NI_STACK_DEPTH`] — hot paths must have bounded call depth,
//!   no recursion, and no large stack locals.
//!
//! The pipeline parses each file once — lex ([`lexer`]) → exemptions
//! ([`scope`]) → tolerant AST ([`parser`]/[`ast`]) — then runs token
//! scans, AST walks and dataflow passes ([`dataflow`], [`callgraph`])
//! per configured lint. Run from the workspace root:
//!
//! ```text
//! cargo run -p nistream-analysis -- check [--format=json|sarif] [--baseline=FILE]
//! cargo run -p nistream-analysis -- update-baseline
//! ```
//!
//! Exemptions: `#[cfg(test)]` items and `mod tests` blocks are skipped
//! wholesale; individual violations can be waived with
//! `// analysis: allow(<lint>) reason="…"` (the reason is mandatory).

#![forbid(unsafe_code)]

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod costmodel;
pub mod dataflow;
pub mod diag;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod sarif;
pub mod scope;

pub use config::Config;
pub use diag::{to_json, Finding};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Everything the lints need to know about one parsed source file.
pub struct FileAnalysis {
    /// Repo-relative path (diagnostic form).
    pub rel: PathBuf,
    /// Full token stream, comments included.
    pub toks: Vec<lexer::Tok>,
    /// Exemption state (test regions, allow annotations, hot marks).
    pub scopes: scope::Scopes,
    /// Tolerant AST.
    pub ast: ast::File,
}

/// Recursively collect `.rs` files under `path` (which may itself be a
/// file). Hidden directories and `target/` are skipped.
fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort(); // deterministic scan order → deterministic report order
    for entry in entries {
        let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if entry.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&entry, out)?;
        } else if name.ends_with(".rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Resolve a lint's configured path set to concrete repo-relative files.
fn lint_files(root: &Path, cfg: &config::LintConfig) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for rel in &cfg.paths {
        let abs = root.join(rel);
        if !abs.exists() {
            return Err(format!(
                "[lint.{}] path `{}` does not exist under {}",
                cfg.name,
                rel.display(),
                root.display()
            ));
        }
        collect_rs_files(&abs, &mut files)
            .map_err(|e| format!("[lint.{}] scanning `{}`: {e}", cfg.name, rel.display()))?;
    }
    files.sort();
    files.dedup();
    Ok(files)
}

/// Check the repository at `root` against `cfg`. Findings are sorted by
/// (file, line, col). `Err` is reserved for configuration/IO problems —
/// rule violations are `Ok` findings.
pub fn check(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    for lint in &cfg.lints {
        if !lints::ALL_LINTS.contains(&lint.name.as_str()) {
            return Err(format!(
                "analysis.toml names unknown lint `{}` (known: {})",
                lint.name,
                lints::ALL_LINTS.join(", ")
            ));
        }
        // Numeric knobs are only meaningful on lints that declare them.
        let info = lints::LINT_INFO.iter().find(|i| i.name == lint.name);
        for (key, _) in &lint.nums {
            let known = info.is_some_and(|i| i.keys.iter().any(|(k, _)| k == key));
            if !known {
                return Err(format!(
                    "[lint.{}] does not accept key `{key}` (see `list-lints` for each lint's keys)",
                    lint.name
                ));
            }
        }
    }

    // Union of every lint's file set; each file is read, lexed and
    // parsed exactly once.
    let mut per_lint: Vec<(String, Vec<PathBuf>)> = Vec::new();
    let mut all_files: Vec<PathBuf> = Vec::new();
    for lint in &cfg.lints {
        let files = lint_files(root, lint)?;
        all_files.extend(files.iter().cloned());
        per_lint.push((lint.name.clone(), files));
    }
    all_files.sort();
    all_files.dedup();

    let mut findings = Vec::new();
    let mut analyses: Vec<FileAnalysis> = Vec::with_capacity(all_files.len());
    let mut index: BTreeMap<&Path, usize> = BTreeMap::new();
    for file in &all_files {
        let src = std::fs::read_to_string(file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        let toks = lexer::lex(&src);
        let scopes = scope::analyze(&toks);
        let ast = parser::parse(&toks);
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();

        // Malformed allow annotations are findings wherever they appear.
        for (line, col, msg) in &scopes.bad_annotations {
            findings.push(Finding {
                lint: "malformed-allow".into(),
                file: rel.clone(),
                line: *line,
                col: *col,
                message: msg.clone(),
                note: Some(
                    "the escape hatch is `// analysis: allow(<lint>) reason=\"…\"` — \
                     the reason is mandatory"
                        .into(),
                ),
            });
        }

        index.insert(file.as_path(), analyses.len());
        analyses.push(FileAnalysis { rel, toks, scopes, ast });
    }

    // Struct table over every parsed file (test-region structs excluded;
    // first definition of a name wins).
    let mut structs = dataflow::StructTable::new();
    for fa in &analyses {
        ast::for_each_struct(&fa.ast, &mut |s| {
            if fa.scopes.in_test.get(s.span.start).copied().unwrap_or(false) {
                return;
            }
            structs.entry(s.name.clone()).or_insert_with(|| {
                s.fields
                    .iter()
                    .map(|(n, t)| (n.clone(), dataflow::abs_from_typeref(t)))
                    .collect()
            });
        });
    }

    for (name, files) in &per_lint {
        if name == lints::NI_NO_ALLOC || name == lints::NI_CYCLE_BUDGET || name == lints::NI_STACK_DEPTH {
            // Whole-set passes: reachability and cost summarization cross
            // file boundaries.
            let set: Vec<&FileAnalysis> = files.iter().map(|f| &analyses[index[f.as_path()]]).collect();
            match name.as_str() {
                lints::NI_NO_ALLOC => lints::ni_no_alloc(&set, &structs, &mut findings),
                lints::NI_CYCLE_BUDGET => lints::ni_cycle_budget(&set, &structs, cfg.lint(name), &mut findings),
                _ => lints::ni_stack_depth(&set, &structs, cfg.lint(name), &mut findings),
            }
            continue;
        }
        for file in files {
            let fa = &analyses[index[file.as_path()]];
            match name.as_str() {
                lints::NI_NO_FLOAT => lints::ni_no_float(&fa.rel, &fa.toks, &fa.scopes, &mut findings),
                lints::NI_NO_PANIC => lints::ni_no_panic(&fa.rel, &fa.toks, &fa.scopes, &fa.ast, &mut findings),
                lints::SIM_DETERMINISM => lints::sim_determinism(&fa.rel, &fa.toks, &fa.scopes, &fa.ast, &mut findings),
                lints::UNSAFE_HYGIENE => {
                    let allowed = cfg
                        .lint(lints::UNSAFE_HYGIENE)
                        .is_some_and(|l| l.allow_files.contains(&fa.rel));
                    lints::unsafe_hygiene(&fa.rel, &fa.toks, &fa.scopes, allowed, &mut findings)
                }
                lints::Q16_OVERFLOW => {
                    lints::q16_overflow(&fa.rel, &fa.toks, &fa.scopes, &fa.ast, &structs, &mut findings)
                }
                lints::SWEEP_DETERMINISM => {
                    lints::sweep_determinism(&fa.rel, &fa.toks, &fa.scopes, &fa.ast, &mut findings)
                }
                _ => unreachable!("validated above"),
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.col, &a.lint).cmp(&(&b.file, b.line, b.col, &b.lint)));
    // Loop bodies are walked twice by the dataflow engine; identical
    // findings from the second walk collapse here.
    findings.dedup();
    Ok(findings)
}

/// Convenience: load `analysis.toml` from `root` and run [`check`].
pub fn check_root(root: &Path) -> Result<Vec<Finding>, String> {
    let cfg_path = root.join("analysis.toml");
    let text = std::fs::read_to_string(&cfg_path).map_err(|e| format!("reading {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&text)?;
    check(root, &cfg)
}

/// Produce the worst-case cost report for every hot root in the
/// `ni-cycle-budget` file set of `cfg` (the CLI `budget` subcommand).
/// Returns the per-root reports plus the effective [`costmodel::CostModel`]
/// so callers can show budget margins.
pub fn budget_report(root: &Path, cfg: &Config) -> Result<(Vec<costmodel::RootReport>, costmodel::CostModel), String> {
    let lint = cfg
        .lint(lints::NI_CYCLE_BUDGET)
        .ok_or_else(|| format!("analysis.toml has no [lint.{}] section", lints::NI_CYCLE_BUDGET))?;
    let files = lint_files(root, lint)?;
    let mut analyses: Vec<FileAnalysis> = Vec::with_capacity(files.len());
    for file in &files {
        let src = std::fs::read_to_string(file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        let toks = lexer::lex(&src);
        let scopes = scope::analyze(&toks);
        let ast = parser::parse(&toks);
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        analyses.push(FileAnalysis { rel, toks, scopes, ast });
    }
    let mut structs = dataflow::StructTable::new();
    for fa in &analyses {
        ast::for_each_struct(&fa.ast, &mut |s| {
            if fa.scopes.in_test.get(s.span.start).copied().unwrap_or(false) {
                return;
            }
            structs.entry(s.name.clone()).or_insert_with(|| {
                s.fields
                    .iter()
                    .map(|(n, t)| (n.clone(), dataflow::abs_from_typeref(t)))
                    .collect()
            });
        });
    }
    let set: Vec<&FileAnalysis> = analyses.iter().collect();
    let opts = costmodel::CostModel::from_config(Some(lint));
    let report = costmodel::analyze(&set, &structs, &opts, lints::NI_CYCLE_BUDGET);
    Ok((report.roots, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The checked-in fixtures under `fixtures/` each violate exactly one
    /// lint family; running the checker over them exercises the whole
    /// pipeline (config → walk → lex → scope → parse → lint → sort).
    #[test]
    fn fixtures_trip_each_family() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let cfg = Config::parse(
            r#"
            [lint.ni-no-float]
            paths = ["float_violations.rs"]
            [lint.ni-no-panic]
            paths = ["panic_violations.rs"]
            [lint.sim-determinism]
            paths = ["determinism_violations.rs"]
            [lint.unsafe-hygiene]
            paths = ["unsafe_violations.rs"]
            allow_files = []
            [lint.ni-no-alloc]
            paths = ["alloc_violations.rs"]
            [lint.q16-overflow]
            paths = ["q16_violations.rs"]
            [lint.sweep-determinism]
            paths = ["sweep_violations.rs"]
            [lint.ni-cycle-budget]
            paths = ["cycle_violations.rs"]
            [lint.ni-stack-depth]
            paths = ["stack_violations.rs"]
            max_call_depth = 4
            "#,
        )
        .unwrap();
        let findings = check(&root, &cfg).unwrap();
        for lint in lints::ALL_LINTS {
            assert!(
                findings.iter().any(|f| f.lint == lint),
                "expected at least one {lint} finding, got {findings:?}"
            );
        }
        // The fixtures also demonstrate every exemption: annotated and
        // test-region lines must NOT fire.
        assert!(
            !findings.iter().any(|f| f.lint == "malformed-allow"),
            "fixture allows are well-formed: {findings:?}"
        );
        for f in &findings {
            assert_ne!(f.line, 0);
            assert_ne!(f.col, 0);
        }
    }

    #[test]
    fn clean_fixture_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let cfg =
            Config::parse("[lint.ni-no-float]\npaths = [\"clean.rs\"]\n[lint.ni-no-panic]\npaths = [\"clean.rs\"]")
                .unwrap();
        assert_eq!(check(&root, &cfg).unwrap(), vec![]);
    }

    #[test]
    fn unknown_lint_is_a_config_error() {
        let cfg = Config::parse("[lint.no-such-lint]\npaths = [\"src\"]").unwrap();
        let err = check(Path::new(env!("CARGO_MANIFEST_DIR")), &cfg).unwrap_err();
        assert!(err.contains("no-such-lint"));
    }

    #[test]
    fn missing_path_is_a_config_error() {
        let cfg = Config::parse("[lint.ni-no-float]\npaths = [\"no/such/dir\"]").unwrap();
        let err = check(Path::new(env!("CARGO_MANIFEST_DIR")), &cfg).unwrap_err();
        assert!(err.contains("does not exist"));
    }
}
