//! Token-region analysis: which tokens are exempt from which lints.
//!
//! Two exemption mechanisms exist:
//!
//! * **Test regions** — tokens under a `#[cfg(test)]` attribute (the
//!   attached item, brace-matched) or inside a `mod tests { … }` block are
//!   exempt from every lint: test code may use floats, `unwrap()` and
//!   wall-clock freely.
//! * **Allow annotations** — `// analysis: allow(<lint>) reason="…"`
//!   exempts the rest of its own line, or (when the comment stands alone on
//!   a line) the following statement/item. The reason is mandatory; an
//!   annotation without one is itself reported.
//!
//! A third annotation, `// analysis: hot`, grants nothing — it *marks* the
//! next item as a steady-state entry point, seeding the `ni-no-alloc` and
//! cost-analysis call-graph walks.
//!
//! A fourth, `// analysis: bound N`, asserts a worst-case iteration count
//! for the data-dependent loop (or iterator drain) it precedes — the input
//! the `ni-cycle-budget` cost walk needs where counted-loop inference
//! fails. Like `allow`, it covers the rest of its own line, or the
//! following statement when the comment stands alone.

use crate::lexer::{Tok, TokKind};

/// Exemption state for one file's token stream.
pub struct Scopes {
    /// `in_test[i]` — token `i` sits in test-only code.
    pub in_test: Vec<bool>,
    /// `(lint-name, mask)`: tokens covered by an allow annotation for that lint.
    pub allows: Vec<(String, Vec<bool>)>,
    /// Malformed annotations: `(line, col, message)`.
    pub bad_annotations: Vec<(u32, u32, String)>,
    /// First code token after each standalone `// analysis: hot` comment;
    /// the item starting there is a `ni-no-alloc` root.
    pub hot_marks: Vec<usize>,
    /// `(token, count)` for each `// analysis: bound N` annotation: the
    /// first code token of the line/statement it covers, and the asserted
    /// worst-case iteration count. Consumed by the `ni-cycle-budget` cost
    /// walk; a mark no loop claims is itself a finding.
    pub bounds: Vec<(usize, u64)>,
}

impl Scopes {
    /// Whether token `i` is allowed to violate `lint`.
    pub fn is_exempt(&self, lint: &str, i: usize) -> bool {
        if self.in_test.get(i).copied().unwrap_or(false) {
            return true;
        }
        self.allows
            .iter()
            .any(|(name, mask)| name == lint && mask.get(i).copied().unwrap_or(false))
    }
}

/// Is `toks[i]` a code token (not a comment)?
fn is_code(toks: &[Tok], i: usize) -> bool {
    !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment)
}

/// From a code token index, find the end (inclusive) of the statement or
/// item that starts there: the matching `}` of the first top-level `{`, or
/// the first `;` at nesting depth zero, whichever comes first.
fn item_extent(toks: &[Tok], start: usize) -> usize {
    let mut depth = 0i32; // (), [] nesting — a `;` inside parens ends nothing
    let mut i = start;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'(') | Some(b'[') => depth += 1,
                Some(b')') | Some(b']') => depth -= 1,
                Some(b'{') if depth == 0 => {
                    // Brace-match from here.
                    let mut braces = 0i32;
                    while i < toks.len() {
                        if toks[i].is_punct('{') {
                            braces += 1;
                        } else if toks[i].is_punct('}') {
                            braces -= 1;
                            if braces == 0 {
                                return i;
                            }
                        }
                        i += 1;
                    }
                    return toks.len() - 1;
                }
                Some(b';') if depth == 0 => return i,
                // Closing brace of the *enclosing* block: the extent was a
                // tail expression; it ends here.
                Some(b'}') if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Mark `mask[from..=to] = true`.
fn mark(mask: &mut [bool], from: usize, to: usize) {
    for m in mask.iter_mut().take(to + 1).skip(from) {
        *m = true;
    }
}

/// Does the attribute body `toks[open..close]` (exclusive bracket indices)
/// mention `cfg … test`? Matches `#[cfg(test)]` and `#[cfg(any(test, …))]`.
fn attr_is_cfg_test(toks: &[Tok], open: usize, close: usize) -> bool {
    let mut saw_cfg = false;
    for t in &toks[open..close] {
        if t.is_ident("cfg") {
            saw_cfg = true;
        }
        if saw_cfg && t.is_ident("test") {
            return true;
        }
    }
    false
}

/// Compute test regions: `#[cfg(test)]`-attached items and `mod tests`
/// blocks.
fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        // `#[ … ]` (outer) or `#![ … ]` (inner).
        if toks[i].is_punct('#') {
            let inner = i + 1 < toks.len() && toks[i + 1].is_punct('!');
            let lb = if inner { i + 2 } else { i + 1 };
            if lb < toks.len() && toks[lb].is_punct('[') {
                // Find the matching `]`.
                let mut depth = 0i32;
                let mut j = lb;
                while j < toks.len() {
                    if toks[j].is_punct('[') {
                        depth += 1;
                    } else if toks[j].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                if j < toks.len() && attr_is_cfg_test(toks, lb + 1, j) {
                    if inner {
                        // `#![cfg(test)]`: the whole enclosing scope (for
                        // our purposes, the rest of the file) is test-only.
                        mark(&mut mask, i, toks.len() - 1);
                        return mask;
                    }
                    // Attach to the next item: skip further attributes.
                    let mut k = j + 1;
                    while k < toks.len() {
                        if toks[k].is_punct('#') && k + 1 < toks.len() && toks[k + 1].is_punct('[') {
                            let mut d = 0i32;
                            while k < toks.len() {
                                if toks[k].is_punct('[') {
                                    d += 1;
                                } else if toks[k].is_punct(']') {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                k += 1;
                            }
                            k += 1;
                        } else if !is_code(toks, k) {
                            k += 1;
                        } else {
                            break;
                        }
                    }
                    if k < toks.len() {
                        let end = item_extent(toks, k);
                        mark(&mut mask, i, end);
                        i = end + 1;
                        continue;
                    }
                }
                i = j + 1;
                continue;
            }
        }
        // `mod tests { … }` — belt and braces for test modules whose
        // `#[cfg(test)]` is spelled in a way the attribute scan missed.
        if toks[i].is_ident("mod") && i + 2 < toks.len() && toks[i + 1].is_ident("tests") && toks[i + 2].is_punct('{') {
            let end = item_extent(toks, i);
            mark(&mut mask, i, end);
            i = end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// A recognised `// analysis: …` annotation.
enum Annotation {
    /// `allow(<lint>) reason="…"` — exemption for one lint.
    Allow(String),
    /// `hot` — marks the next item as a `ni-no-alloc` root.
    Hot,
    /// `bound N` — asserts a worst-case iteration count for the loop or
    /// iterator drain on the covered line/statement.
    Bound(u64),
}

/// Parse one `// analysis: …` comment. Returns `Ok(Some(_))` for a
/// well-formed annotation, `Ok(None)` for a comment that is not an
/// annotation at all, and `Err(msg)` for a malformed one.
fn parse_allow(text: &str) -> Result<Option<Annotation>, String> {
    let body = text.trim_start_matches('/').trim();
    let Some(rest) = body.strip_prefix("analysis:") else {
        return Ok(None);
    };
    let rest = rest.trim();
    if rest == "hot" {
        return Ok(Some(Annotation::Hot));
    }
    if let Some(n) = rest.strip_prefix("bound") {
        let n = n.trim();
        if n.is_empty() {
            return Err("analysis: bound requires an iteration count: `// analysis: bound N`".into());
        }
        return match n.replace('_', "").parse::<u64>() {
            Ok(v) if v > 0 => Ok(Some(Annotation::Bound(v))),
            _ => Err(format!("analysis: bound expects a positive integer, got `{n}`")),
        };
    }
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err(format!("unrecognised analysis annotation: `{body}`"));
    };
    let Some(close) = rest.find(')') else {
        return Err("analysis: allow(...) is missing its closing parenthesis".into());
    };
    let lint = rest[..close].trim().to_string();
    if lint.is_empty() {
        return Err("analysis: allow() names no lint".into());
    }
    let tail = rest[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("reason=\"") else {
        return Err(format!("analysis: allow({lint}) requires a reason: `reason=\"…\"`"));
    };
    if reason.trim_end_matches('"').trim().is_empty() {
        return Err(format!("analysis: allow({lint}) has an empty reason"));
    }
    Ok(Some(Annotation::Allow(lint)))
}

/// Build the full exemption state for a token stream.
pub fn analyze(toks: &[Tok]) -> Scopes {
    let in_test = test_regions(toks);
    let mut allows: Vec<(String, Vec<bool>)> = Vec::new();
    let mut bad = Vec::new();
    let mut hot_marks = Vec::new();
    let mut bounds = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let lint = match parse_allow(&t.text) {
            Ok(Some(Annotation::Allow(l))) => l,
            Ok(Some(Annotation::Hot)) => {
                let mut k = i + 1;
                while k < toks.len() && !is_code(toks, k) {
                    k += 1;
                }
                if k < toks.len() {
                    hot_marks.push(k);
                }
                continue;
            }
            Ok(Some(Annotation::Bound(n))) => {
                // Trailing form anchors at the first code token of its own
                // line; standalone form at the first code token after it.
                let anchor = toks
                    .iter()
                    .position(|o| o.line == t.line && !matches!(o.kind, TokKind::LineComment | TokKind::BlockComment))
                    .or_else(|| (i + 1..toks.len()).find(|&k| is_code(toks, k)));
                if let Some(k) = anchor {
                    bounds.push((k, n));
                }
                continue;
            }
            Ok(None) => continue,
            Err(msg) => {
                bad.push((t.line, t.col, msg));
                continue;
            }
        };
        let idx = match allows.iter().position(|(n, _)| *n == lint) {
            Some(p) => p,
            None => {
                allows.push((lint.clone(), vec![false; toks.len()]));
                allows.len() - 1
            }
        };
        let mask = &mut allows[idx].1;
        // Trailing form: exempt earlier tokens on the same line.
        let mut covered_same_line = false;
        for (j, other) in toks.iter().enumerate() {
            if j != i && other.line == t.line {
                mask[j] = true;
                if j < i && is_code(toks, j) {
                    covered_same_line = true;
                }
            }
        }
        // Standalone form: exempt the following statement/item.
        if !covered_same_line {
            let mut k = i + 1;
            while k < toks.len() && !is_code(toks, k) {
                k += 1;
            }
            if k < toks.len() {
                let end = item_extent(toks, k);
                mark(mask, k, end);
            }
        }
    }

    Scopes {
        in_test,
        allows,
        bad_annotations: bad,
        hot_marks,
        bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_region_is_exempt() {
        let toks = lex("fn live() {}\n#[cfg(test)]\nmod t { fn x() { let f = 1.5; } }\nfn tail() {}");
        let s = analyze(&toks);
        let float_at = toks.iter().position(|t| t.text == "1.5").unwrap();
        let tail_at = toks.iter().position(|t| t.is_ident("tail")).unwrap();
        assert!(s.in_test[float_at]);
        assert!(!s.in_test[tail_at]);
        assert!(!s.in_test[0]);
    }

    #[test]
    fn cfg_test_skips_interleaved_attributes() {
        let toks = lex("#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { 2.5 }\nfn live() {}");
        let s = analyze(&toks);
        let float_at = toks.iter().position(|t| t.text == "2.5").unwrap();
        let live_at = toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(s.in_test[float_at]);
        assert!(!s.in_test[live_at]);
    }

    #[test]
    fn mod_tests_block_is_exempt() {
        let toks = lex("mod tests { fn a() { x.unwrap() } }\nfn live() {}");
        let s = analyze(&toks);
        let unwrap_at = toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(s.in_test[unwrap_at]);
        let live_at = toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!s.in_test[live_at]);
    }

    #[test]
    fn trailing_allow_covers_its_line_only() {
        let toks = lex("let a = x.to_f64(); // analysis: allow(ni-no-float) reason=\"reporting\"\nlet b = 1.5;");
        let s = analyze(&toks);
        let a_at = toks.iter().position(|t| t.is_ident("a")).unwrap();
        let b_float = toks.iter().position(|t| t.text == "1.5").unwrap();
        assert!(s.is_exempt("ni-no-float", a_at));
        assert!(!s.is_exempt("ni-no-float", b_float));
        assert!(!s.is_exempt("ni-no-panic", a_at), "only the named lint");
    }

    #[test]
    fn standalone_allow_covers_next_item() {
        let toks = lex(
            "// analysis: allow(ni-no-float) reason=\"conversion helper\"\npub fn to_f64(x: u32) -> f64 { x as f64 }\nfn after() { 1.0; }",
        );
        let s = analyze(&toks);
        let inside = toks.iter().position(|t| t.is_ident("as")).unwrap();
        assert!(s.is_exempt("ni-no-float", inside));
        let after_float = toks.iter().position(|t| t.text == "1.0").unwrap();
        assert!(!s.is_exempt("ni-no-float", after_float));
    }

    #[test]
    fn reason_is_mandatory() {
        let toks = lex("// analysis: allow(ni-no-float)\nlet x = 1.5;");
        let s = analyze(&toks);
        assert_eq!(s.bad_annotations.len(), 1);
        assert!(s.bad_annotations[0].2.contains("reason"));
        let float_at = toks.iter().position(|t| t.text == "1.5").unwrap();
        assert!(!s.is_exempt("ni-no-float", float_at), "malformed allow grants nothing");
    }

    #[test]
    fn hot_annotation_marks_the_next_item() {
        let toks = lex("// analysis: hot\npub fn service_once() {}\nfn other() {}");
        let s = analyze(&toks);
        assert!(s.bad_annotations.is_empty(), "{:?}", s.bad_annotations);
        let pub_at = toks.iter().position(|t| t.is_ident("pub")).unwrap();
        assert_eq!(s.hot_marks, vec![pub_at]);
        assert!(!s.is_exempt("ni-no-alloc", pub_at), "hot is a mark, not an exemption");
    }

    #[test]
    fn bound_annotation_standalone_and_trailing() {
        let toks = lex("// analysis: bound 64\nwhile x { y(); }\nloop { z(); } // analysis: bound 1_000\n");
        let s = analyze(&toks);
        assert!(s.bad_annotations.is_empty(), "{:?}", s.bad_annotations);
        let while_at = toks.iter().position(|t| t.is_ident("while")).unwrap();
        let loop_at = toks.iter().position(|t| t.is_ident("loop")).unwrap();
        assert_eq!(s.bounds, vec![(while_at, 64), (loop_at, 1000)]);
    }

    #[test]
    fn bound_annotation_rejects_garbage() {
        let toks = lex("// analysis: bound\nwhile x {}\n// analysis: bound lots\nloop {}");
        let s = analyze(&toks);
        assert_eq!(s.bad_annotations.len(), 2);
        assert!(s.bounds.is_empty());
        assert!(s.bad_annotations[0].2.contains("iteration count"));
        assert!(s.bad_annotations[1].2.contains("positive integer"));
    }

    #[test]
    fn statement_extent_stops_at_semicolon() {
        let toks = lex(
            "// analysis: allow(ni-no-panic) reason=\"invariant: ring non-empty\"\nlet v = q.pop().unwrap();\nlet w = r.pop().unwrap();",
        );
        let s = analyze(&toks);
        let first = toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        let second = toks.iter().rposition(|t| t.is_ident("unwrap")).unwrap();
        assert!(s.is_exempt("ni-no-panic", first));
        assert!(!s.is_exempt("ni-no-panic", second));
    }
}
