//! `analysis.toml` — which lints run over which paths.
//!
//! A deliberately small TOML subset (this crate takes no dependencies):
//! `[lint.<name>]` tables, `key = "string"`, `key = ["a", "b"]` and
//! `key = 123` (bare integer, `_` separators allowed) entries, `#`
//! comments. That is all the checked-in config uses.

use std::path::PathBuf;

/// Configuration for one lint family.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Lint name (`ni-no-float`, …).
    pub name: String,
    /// Root-relative files or directories this lint scans.
    pub paths: Vec<PathBuf>,
    /// Files permitted to contain `unsafe` (unsafe-hygiene only).
    pub allow_files: Vec<PathBuf>,
    /// Numeric knobs (`budget_cycles = 1_000_000`, …), in file order.
    /// Which keys a lint accepts is validated against `lints::LINT_INFO`
    /// when a check runs, not at parse time.
    pub nums: Vec<(String, u64)>,
}

impl LintConfig {
    /// Look up a numeric knob by key.
    pub fn num(&self, key: &str) -> Option<u64> {
        self.nums.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Parsed `analysis.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// All configured lints, in file order.
    pub lints: Vec<LintConfig>,
}

impl Config {
    /// Look up a lint's configuration by name.
    pub fn lint(&self, name: &str) -> Option<&LintConfig> {
        self.lints.iter().find(|l| l.name == name)
    }

    /// Parse from TOML text. Errors carry a 1-based line number.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut current: Option<usize> = None;

        // Join multi-line arrays into logical lines first: a line whose
        // value opens `[` without closing it absorbs subsequent lines until
        // the bracket balances.
        let mut logical: Vec<(usize, String)> = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let piece = strip_comment(raw).trim().to_string();
            if let Some((_, buf)) = logical.last_mut() {
                let open = buf.matches('[').count() > buf.matches(']').count();
                if open && buf.contains('=') {
                    buf.push(' ');
                    buf.push_str(&piece);
                    continue;
                }
            }
            logical.push((ln, piece));
        }

        for (ln, line) in logical {
            let line = line.as_str();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let section = section
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: unterminated section header", ln + 1))?
                    .trim();
                let name = section
                    .strip_prefix("lint.")
                    .ok_or_else(|| format!("line {}: expected [lint.<name>], got [{section}]", ln + 1))?;
                cfg.lints.push(LintConfig {
                    name: name.trim().to_string(),
                    ..LintConfig::default()
                });
                current = Some(cfg.lints.len() - 1);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", ln + 1))?;
            let idx = current.ok_or_else(|| format!("line {}: entry outside any [lint.*] section", ln + 1))?;
            match key.trim() {
                "paths" => {
                    let values = parse_value(value.trim()).map_err(|e| format!("line {}: {e}", ln + 1))?;
                    cfg.lints[idx].paths = values.into_iter().map(PathBuf::from).collect();
                }
                "allow_files" => {
                    let values = parse_value(value.trim()).map_err(|e| format!("line {}: {e}", ln + 1))?;
                    cfg.lints[idx].allow_files = values.into_iter().map(PathBuf::from).collect();
                }
                other => match parse_int(value.trim()) {
                    Some(v) => cfg.lints[idx].nums.push((other.to_string(), v)),
                    None => {
                        return Err(format!(
                            "line {}: unknown key `{other}` (string keys: paths, allow_files; other keys take a bare integer)",
                            ln + 1
                        ))
                    }
                },
            }
        }
        Ok(cfg)
    }
}

/// Drop a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A `"string"` or `["a", "b", …]` value (multi-line arrays are joined into
/// one logical line before this is called).
fn parse_value(v: &str) -> Result<Vec<String>, String> {
    if let Some(body) = v.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or("unterminated array")?;
        let mut out = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            out.push(parse_string(part)?);
        }
        return Ok(out);
    }
    Ok(vec![parse_string(v)?])
}

/// A bare integer value, with optional `_` group separators.
fn parse_int(v: &str) -> Option<u64> {
    let digits = v.replace('_', "");
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn parse_string(v: &str) -> Result<String, String> {
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a double-quoted string, got `{v}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_shape() {
        let cfg = Config::parse(
            r#"
            # NI-resident invariants
            [lint.ni-no-float]
            paths = ["crates/dwcs/src", "crates/fixedpt/src"]

            [lint.unsafe-hygiene]
            paths = ["crates"]
            allow_files = []  # nothing may use unsafe today
            "#,
        )
        .unwrap();
        assert_eq!(cfg.lints.len(), 2);
        let f = cfg.lint("ni-no-float").unwrap();
        assert_eq!(f.paths.len(), 2);
        assert_eq!(f.paths[0], PathBuf::from("crates/dwcs/src"));
        let u = cfg.lint("unsafe-hygiene").unwrap();
        assert!(u.allow_files.is_empty());
        assert_eq!(u.paths, vec![PathBuf::from("crates")]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert!(Config::parse("[weird.section]").unwrap_err().contains("line 1"));
        assert!(Config::parse("[lint.x]\npaths = [\"a\"")
            .unwrap_err()
            .contains("line 2"));
        assert!(Config::parse("paths = [\"a\"]").unwrap_err().contains("outside"));
    }

    #[test]
    fn multi_line_arrays_join() {
        let cfg = Config::parse(
            "[lint.ni-no-float]\npaths = [\n    \"a\",  # trailing comment\n    \"b\",\n]\n[lint.ni-no-panic]\npaths = [\"c\"]",
        )
        .unwrap();
        assert_eq!(cfg.lints[0].paths, vec![PathBuf::from("a"), PathBuf::from("b")]);
        assert_eq!(cfg.lints[1].paths, vec![PathBuf::from("c")]);
    }

    #[test]
    fn numeric_keys_parse_with_separators() {
        let cfg = Config::parse("[lint.ni-cycle-budget]\npaths = [\"a\"]\nbudget_cycles = 1_000_000\n").unwrap();
        let l = cfg.lint("ni-cycle-budget").unwrap();
        assert_eq!(l.num("budget_cycles"), Some(1_000_000));
        assert_eq!(l.num("missing"), None);
        assert!(
            Config::parse("[lint.x]\nbudget_cycles = \"many\"").is_err(),
            "strings are not integers"
        );
        assert!(
            Config::parse("[lint.x]\nwhatever = maybe").is_err(),
            "bare words are not integers"
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[lint.x]\npaths = [\"dir#1\"] # real comment").unwrap();
        assert_eq!(cfg.lints[0].paths[0], PathBuf::from("dir#1"));
    }
}
