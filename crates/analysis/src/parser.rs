//! Tolerant recursive-descent parser: token stream → [`crate::ast`].
//!
//! Design rules, in priority order:
//!
//! 1. **Terminate.** Every loop provably consumes a token or exits; a
//!    stall-failsafe `bump` backs up each loop besides.
//! 2. **Never lose tokens.** Anything the grammar subset cannot model
//!    (attributes, generics, macro bodies, exotic statements) becomes an
//!    `Opaque` node or a [`crate::ast::File::lexical`] span so token-level
//!    lints retain full coverage.
//! 3. **Model what lints need.** Calls, method calls, casts, arithmetic,
//!    field/index access, control flow, `let` bindings, signatures and
//!    struct field types. Everything else may be approximate.
//!
//! The lexer emits *single-character* punctuation, so multi-character
//! operators (`::`, `->`, `<<`, `..=`, …) are reassembled here by source
//! adjacency (same line, contiguous columns).

use crate::ast::*;
use crate::lexer::{Tok, TokKind};

/// Parse one file's token stream (comments included) into an AST.
pub fn parse(toks: &[Tok]) -> File {
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut p = Parser {
        toks,
        code,
        i: 0,
        lexical: Vec::new(),
    };
    let mut items = Vec::new();
    while !p.eof() {
        let before = p.i;
        items.push(p.parse_item());
        if p.i == before {
            let t = p.bump();
            items.push(Item::Other(Span::tok(t)));
        }
    }
    File {
        items,
        lexical: p.lexical,
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    /// Indices of non-comment tokens.
    code: Vec<usize>,
    /// Cursor into `code`.
    i: usize,
    lexical: Vec<Span>,
}

const ITEM_KWS: [&str; 12] = [
    "fn",
    "struct",
    "enum",
    "impl",
    "trait",
    "mod",
    "use",
    "static",
    "const",
    "type",
    "union",
    "macro_rules",
];

impl Parser<'_> {
    // ----- cursor primitives -------------------------------------------

    fn eof(&self) -> bool {
        self.i >= self.code.len()
    }

    fn peek(&self, k: usize) -> Option<&Tok> {
        self.code.get(self.i + k).map(|&j| &self.toks[j])
    }

    fn peek_text(&self, k: usize) -> Option<&str> {
        self.peek(k).map(|t| t.text.as_str())
    }

    /// Full-stream token index of `code[i + k]` (clamped at the last token).
    fn tokidx(&self, k: usize) -> usize {
        self.code
            .get(self.i + k)
            .copied()
            .unwrap_or_else(|| self.toks.len().saturating_sub(1))
    }

    /// Full-stream index of the most recently consumed code token.
    fn prev_tokidx(&self) -> usize {
        self.i
            .checked_sub(1)
            .and_then(|p| self.code.get(p).copied())
            .unwrap_or(0)
    }

    fn bump(&mut self) -> usize {
        let j = self.tokidx(0);
        if self.i < self.code.len() {
            self.i += 1;
        }
        j
    }

    fn advance(&mut self, n: usize) {
        self.i = (self.i + n).min(self.code.len());
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(c))
    }

    fn at_kw(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(s))
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Are code tokens `i+k-1` and `i+k` adjacent in the source (no
    /// whitespace/comment between them)?
    fn adjacent(&self, k: usize) -> bool {
        let (Some(a), Some(b)) = (self.peek(k - 1), self.peek(k)) else {
            return false;
        };
        a.line == b.line && b.col == a.col + a.text.chars().count() as u32
    }

    /// The multi-character operator starting at the cursor, if any,
    /// longest match first. Returns `(text, token count)`.
    fn op_at(&self) -> Option<(&'static str, usize)> {
        const OPS: [&str; 24] = [
            "<<=", ">>=", "..=", "...", "<<", ">>", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=",
            "&=", "|=", "^=", "->", "=>", "::", "..",
        ];
        let t0 = self.peek(0)?;
        if t0.kind != TokKind::Punct {
            return None;
        }
        'op: for op in OPS {
            let n = op.len();
            for (k, want) in op.chars().enumerate() {
                if k > 0 && !self.adjacent(k) {
                    continue 'op;
                }
                if !self.peek(k).is_some_and(|t| t.is_punct(want)) {
                    continue 'op;
                }
            }
            return Some((op, n));
        }
        None
    }

    fn at_op(&self, s: &str) -> bool {
        self.op_at().is_some_and(|(op, _)| op == s)
    }

    fn eat_op(&mut self, s: &str) -> bool {
        if let Some((op, n)) = self.op_at() {
            if op == s {
                self.advance(n);
                return true;
            }
        }
        false
    }

    /// Consume a balanced `open … close` group (other delimiters pass
    /// through freely). Assumes the cursor is at `open`. Returns the span.
    fn skip_group(&mut self, open: char, close: char) -> Span {
        let start = self.tokidx(0);
        let mut depth = 0i32;
        while !self.eof() {
            if self.at_punct(open) {
                depth += 1;
            } else if self.at_punct(close) {
                depth -= 1;
                if depth == 0 {
                    let end = self.bump();
                    return Span { start, end };
                }
            }
            self.bump();
        }
        Span {
            start,
            end: self.prev_tokidx(),
        }
    }

    /// Consume a generics/turbofish group starting at `<`, tolerating
    /// `->` inside (`Fn() -> T` bounds) and nested groups.
    fn skip_angles(&mut self) -> Span {
        let start = self.tokidx(0);
        let mut depth = 0i32;
        while !self.eof() {
            if self.at_punct('-') && self.adjacent(1) && self.peek(1).is_some_and(|t| t.is_punct('>')) {
                self.advance(2);
                continue;
            }
            if self.at_punct('<') {
                depth += 1;
            } else if self.at_punct('>') {
                depth -= 1;
                if depth == 0 {
                    let end = self.bump();
                    return Span { start, end };
                }
            }
            self.bump();
        }
        Span {
            start,
            end: self.prev_tokidx(),
        }
    }

    /// Skip `#[ … ]` / `#![ … ]` attributes, recording them lexically.
    fn skip_attrs(&mut self) {
        while self.at_punct('#') {
            let start = self.tokidx(0);
            self.bump();
            self.eat_punct('!');
            if self.at_punct('[') {
                self.skip_group('[', ']');
            }
            self.lexical.push(Span {
                start,
                end: self.prev_tokidx(),
            });
        }
    }

    // ----- items --------------------------------------------------------

    fn parse_item(&mut self) -> Item {
        let start = self.tokidx(0);
        self.skip_attrs();
        if self.at_kw("pub") {
            self.bump();
            if self.at_punct('(') {
                self.skip_group('(', ')');
            }
        }
        // Modifiers that may precede fn / impl / trait.
        let mut k = 0usize;
        loop {
            match self.peek(k) {
                Some(t) if t.kind == TokKind::Str => k += 1, // extern ABI string
                Some(t)
                    if t.kind == TokKind::Ident
                        && matches!(t.text.as_str(), "default" | "const" | "async" | "unsafe" | "extern") =>
                {
                    k += 1
                }
                _ => break,
            }
        }
        match self.peek_text(k) {
            Some("fn") => {
                self.advance(k + 1);
                return self.parse_fn(start);
            }
            Some("impl") => {
                self.advance(k + 1);
                return self.parse_impl(start);
            }
            Some("trait") => {
                self.advance(k + 1);
                return self.parse_trait(start);
            }
            _ => {}
        }
        match self.peek_text(0) {
            Some("mod") => self.parse_mod(start),
            Some("struct") => self.parse_struct(start),
            _ => self.parse_other(start),
        }
    }

    /// Consume an unmodelled item: up to a depth-0 `;`, or through a
    /// depth-0 `{ … }` group (plus a directly trailing `;`).
    fn parse_other(&mut self, start: usize) -> Item {
        let mut depth = 0i32;
        while !self.eof() {
            if depth == 0 && self.at_punct('}') {
                break; // enclosing block's closer — not ours
            }
            let t = self.tokidx(0);
            let tok = &self.toks[t];
            if tok.is_punct('(') || tok.is_punct('[') {
                depth += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') {
                depth -= 1;
            } else if tok.is_punct('{') && depth == 0 {
                self.skip_group('{', '}');
                self.eat_punct(';');
                break;
            } else if tok.is_punct(';') && depth == 0 {
                self.bump();
                break;
            }
            if tok.is_punct('{') || tok.is_punct('}') {
                // inside parens/brackets: plain nesting
                depth += if tok.is_punct('{') { 1 } else { -1 };
            }
            self.bump();
        }
        let span = Span {
            start,
            end: self.prev_tokidx().max(start),
        };
        self.lexical.push(span);
        Item::Other(span)
    }

    /// Cursor is just past `fn`.
    fn parse_fn(&mut self, start: usize) -> Item {
        let (name, name_tok) = match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                (n, self.bump())
            }
            _ => ("<anon>".to_string(), self.prev_tokidx()),
        };
        if self.at_punct('<') {
            let g = self.skip_angles();
            self.lexical.push(g);
        }
        let params = if self.at_punct('(') {
            self.parse_params()
        } else {
            Vec::new()
        };
        let ret = if self.eat_op("->") {
            Some(self.collect_type(&["{", ";", "where", ","]))
        } else {
            None
        };
        if self.at_kw("where") {
            let wstart = self.tokidx(0);
            let mut depth = 0i32;
            while !self.eof() {
                if depth == 0 && (self.at_punct('{') || self.at_punct(';')) {
                    break;
                }
                if self.at_punct('(') || self.at_punct('[') || self.at_punct('<') {
                    depth += 1;
                } else if self.at_punct(')') || self.at_punct(']') || self.at_punct('>') {
                    depth -= 1;
                }
                self.bump();
            }
            self.lexical.push(Span {
                start: wstart,
                end: self.prev_tokidx(),
            });
        }
        let body = if self.at_punct('{') {
            Some(self.parse_block())
        } else {
            self.eat_punct(';');
            None
        };
        Item::Fn(FnItem {
            name,
            name_tok,
            span: Span {
                start,
                end: self.prev_tokidx(),
            },
            params,
            ret,
            body,
        })
    }

    /// Cursor is at `(`.
    fn parse_params(&mut self) -> Vec<Param> {
        self.bump(); // '('
        let mut params = Vec::new();
        while !self.eof() && !self.at_punct(')') {
            let before = self.i;
            self.skip_attrs();
            // Receiver forms: self | mut self | &self | &mut self | &'a self…
            let mut k = 0usize;
            if self.peek(k).is_some_and(|t| t.is_punct('&')) {
                k += 1;
                if self.peek(k).is_some_and(|t| t.kind == TokKind::Lifetime) {
                    k += 1;
                }
            }
            if self.peek(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if self.peek(k).is_some_and(|t| t.is_ident("self")) {
                self.advance(k + 1);
                let ty = if self.eat_punct(':') {
                    Some(self.collect_type(&[",", ")"]))
                } else {
                    None
                };
                params.push(Param {
                    pat: Pat::default(),
                    ty,
                    is_self: true,
                });
            } else {
                let pat = self.parse_pattern(&[":", ",", ")"]);
                let ty = if self.eat_punct(':') {
                    Some(self.collect_type(&[",", ")"]))
                } else {
                    None
                };
                params.push(Param {
                    pat,
                    ty,
                    is_self: false,
                });
            }
            self.eat_punct(',');
            if self.i == before {
                self.bump(); // stall failsafe
            }
        }
        self.eat_punct(')');
        params
    }

    /// Collect a type as raw tokens, stopping at any depth-0 occurrence of
    /// a stop string (single-char puncts or keywords). Angle depth counts;
    /// `->` inside function types passes through.
    fn collect_type(&mut self, stops: &[&str]) -> TypeRef {
        let start = self.tokidx(0);
        let mut toks = Vec::new();
        let mut depth = 0i32;
        while !self.eof() {
            if self.at_punct('-') && self.adjacent(1) && self.peek(1).is_some_and(|t| t.is_punct('>')) {
                toks.push("->".to_string());
                self.advance(2);
                continue;
            }
            let t = self.peek(0).expect("not eof");
            let text = t.text.clone();
            if depth == 0 && stops.contains(&text.as_str()) {
                break;
            }
            match text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => {
                    if depth == 0 {
                        break; // closer of an enclosing group
                    }
                    depth -= 1;
                }
                "{" | "}" | ";" | "=" if depth == 0 => break,
                _ => {}
            }
            toks.push(text);
            self.bump();
        }
        TypeRef {
            toks,
            span: Span {
                start,
                end: self.prev_tokidx().max(start),
            },
        }
    }

    /// Cursor is just past `impl`.
    fn parse_impl(&mut self, start: usize) -> Item {
        if self.at_punct('<') {
            let g = self.skip_angles();
            self.lexical.push(g);
        }
        let first = self.collect_type(&["{", "where", "for"]);
        let (trait_name, self_ty) = if self.at_kw("for") {
            self.bump();
            let second = self.collect_type(&["{", "where"]);
            (
                first.head().map(str::to_string),
                second.head().unwrap_or("<unknown>").to_string(),
            )
        } else {
            (None, first.head().unwrap_or("<unknown>").to_string())
        };
        if self.at_kw("where") {
            let wstart = self.tokidx(0);
            while !self.eof() && !self.at_punct('{') {
                self.bump();
            }
            self.lexical.push(Span {
                start: wstart,
                end: self.prev_tokidx(),
            });
        }
        let items = self.parse_braced_items();
        Item::Impl(ImplBlock {
            self_ty,
            trait_name,
            items,
            span: Span {
                start,
                end: self.prev_tokidx(),
            },
        })
    }

    /// Cursor is just past `trait`.
    fn parse_trait(&mut self, start: usize) -> Item {
        let name = match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => "<anon>".to_string(),
        };
        if self.at_punct('<') {
            let g = self.skip_angles();
            self.lexical.push(g);
        }
        if self.at_punct(':') || self.at_kw("where") {
            let bstart = self.tokidx(0);
            let mut depth = 0i32;
            while !self.eof() {
                if depth == 0 && self.at_punct('{') {
                    break;
                }
                if self.at_punct('(') || self.at_punct('[') || self.at_punct('<') {
                    depth += 1;
                } else if self.at_punct(')') || self.at_punct(']') || self.at_punct('>') {
                    depth -= 1;
                }
                self.bump();
            }
            self.lexical.push(Span {
                start: bstart,
                end: self.prev_tokidx(),
            });
        }
        let items = self.parse_braced_items();
        Item::Trait(TraitBlock {
            name,
            items,
            span: Span {
                start,
                end: self.prev_tokidx(),
            },
        })
    }

    /// Cursor is at `mod`.
    fn parse_mod(&mut self, start: usize) -> Item {
        self.bump(); // 'mod'
        let name = match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => "<anon>".to_string(),
        };
        if self.at_punct('{') {
            let items = self.parse_braced_items();
            Item::Mod(ModBlock {
                name,
                items,
                span: Span {
                    start,
                    end: self.prev_tokidx(),
                },
            })
        } else {
            self.eat_punct(';');
            let span = Span {
                start,
                end: self.prev_tokidx(),
            };
            self.lexical.push(span);
            Item::Other(span)
        }
    }

    /// `{ item* }` — consumes both braces.
    fn parse_braced_items(&mut self) -> Vec<Item> {
        let mut items = Vec::new();
        if !self.eat_punct('{') {
            return items;
        }
        while !self.eof() && !self.at_punct('}') {
            let before = self.i;
            items.push(self.parse_item());
            if self.i == before {
                let t = self.bump();
                items.push(Item::Other(Span::tok(t)));
            }
        }
        self.eat_punct('}');
        items
    }

    /// Cursor is at `struct`.
    fn parse_struct(&mut self, start: usize) -> Item {
        self.bump(); // 'struct'
        let name = match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => "<anon>".to_string(),
        };
        if self.at_punct('<') {
            let g = self.skip_angles();
            self.lexical.push(g);
        }
        let mut fields = Vec::new();
        if self.at_punct('(') {
            // Tuple struct: fields named "0", "1", …
            self.bump();
            let mut idx = 0usize;
            while !self.eof() && !self.at_punct(')') {
                let before = self.i;
                self.skip_attrs();
                if self.at_kw("pub") {
                    self.bump();
                    if self.at_punct('(') {
                        self.skip_group('(', ')');
                    }
                }
                let ty = self.collect_type(&[",", ")"]);
                fields.push((idx.to_string(), ty));
                idx += 1;
                self.eat_punct(',');
                if self.i == before {
                    self.bump();
                }
            }
            self.eat_punct(')');
            // Optional where clause, then `;`.
            while !self.eof() && !self.at_punct(';') && !self.at_punct('}') {
                self.bump();
            }
            self.eat_punct(';');
        } else {
            if self.at_kw("where") {
                while !self.eof() && !self.at_punct('{') && !self.at_punct(';') {
                    self.bump();
                }
            }
            if self.at_punct('{') {
                self.bump();
                while !self.eof() && !self.at_punct('}') {
                    let before = self.i;
                    self.skip_attrs();
                    if self.at_kw("pub") {
                        self.bump();
                        if self.at_punct('(') {
                            self.skip_group('(', ')');
                        }
                    }
                    if let Some(t) = self.peek(0) {
                        if t.kind == TokKind::Ident {
                            let fname = t.text.clone();
                            self.bump();
                            if self.eat_punct(':') {
                                let ty = self.collect_type(&[",", "}"]);
                                fields.push((fname, ty));
                            }
                        }
                    }
                    self.eat_punct(',');
                    if self.i == before {
                        self.bump();
                    }
                }
                self.eat_punct('}');
            } else {
                self.eat_punct(';'); // unit struct
            }
        }
        Item::Struct(StructDef {
            name,
            fields,
            span: Span {
                start,
                end: self.prev_tokidx(),
            },
        })
    }

    // ----- statements ---------------------------------------------------

    /// Cursor is at `{`.
    fn parse_block(&mut self) -> Block {
        let start = self.tokidx(0);
        self.eat_punct('{');
        let mut stmts = Vec::new();
        while !self.eof() && !self.at_punct('}') {
            let before = self.i;
            stmts.push(self.parse_stmt());
            if self.i == before {
                let t = self.bump();
                let s = Span::tok(t);
                self.lexical.push(s);
                stmts.push(Stmt::Opaque(s));
            }
        }
        self.eat_punct('}');
        Block {
            stmts,
            span: Span {
                start,
                end: self.prev_tokidx(),
            },
        }
    }

    fn parse_stmt(&mut self) -> Stmt {
        let start = self.tokidx(0);
        self.skip_attrs();
        if self.eof() || self.at_punct('}') {
            let s = Span {
                start,
                end: self.prev_tokidx().max(start),
            };
            return Stmt::Opaque(s);
        }
        if self.at_punct(';') {
            let t = self.bump();
            return Stmt::Opaque(Span::tok(t));
        }
        if self.at_kw("let") {
            return self.parse_let(start);
        }
        if let Some(t) = self.peek(0) {
            if t.kind == TokKind::Ident && ITEM_KWS.contains(&t.text.as_str()) {
                return Stmt::Item(Box::new(self.parse_item()));
            }
            // `pub` / `unsafe fn` etc. at statement level start items too.
            if t.is_ident("pub") || (t.is_ident("unsafe") && self.peek(1).is_some_and(|n| n.is_ident("fn"))) {
                return Stmt::Item(Box::new(self.parse_item()));
            }
        }
        // Block-leading statements must not take binary continuations
        // (`} *x` is a new statement, not a multiplication).
        let blocky = self.at_punct('{')
            || self
                .peek(0)
                .is_some_and(|t| matches!(t.text.as_str(), "if" | "match" | "while" | "loop" | "for" | "unsafe"));
        let e = if blocky {
            self.parse_prefix(true)
        } else {
            self.parse_expr(0, true)
        };
        if self.eat_punct(';') || self.at_punct('}') || self.eof() {
            return Stmt::Expr(e);
        }
        if blocky
            || matches!(
                e,
                Expr::If { .. }
                    | Expr::Match { .. }
                    | Expr::While { .. }
                    | Expr::Loop { .. }
                    | Expr::For { .. }
                    | Expr::BlockExpr(_)
            )
        {
            return Stmt::Expr(e);
        }
        // Trailing tokens we don't understand: degrade the statement to an
        // opaque span through the next sync point.
        self.sync();
        let span = Span {
            start,
            end: self.prev_tokidx().max(start),
        };
        self.lexical.push(span);
        Stmt::Opaque(span)
    }

    /// Consume up to and including a depth-0 `;`, or stop before a
    /// depth-0 closer.
    fn sync(&mut self) {
        let mut depth = 0i32;
        while !self.eof() {
            if depth == 0 && (self.at_punct('}') || self.at_punct(')') || self.at_punct(']')) {
                return;
            }
            if self.at_punct('(') || self.at_punct('[') || self.at_punct('{') {
                depth += 1;
            } else if self.at_punct(')') || self.at_punct(']') || self.at_punct('}') {
                depth -= 1;
            } else if self.at_punct(';') && depth == 0 {
                self.bump();
                return;
            }
            self.bump();
        }
    }

    /// Cursor is at `let`.
    fn parse_let(&mut self, start: usize) -> Stmt {
        self.bump(); // 'let'
        let pat = self.parse_pattern(&[":", "=", ";"]);
        let ty = if self.at_punct(':') && !self.at_op("::") {
            self.bump();
            Some(self.collect_type(&["=", ";"]))
        } else {
            None
        };
        let init = if self.at_punct('=') && !self.at_op("==") && !self.at_op("=>") {
            self.bump();
            Some(self.parse_expr(0, true))
        } else {
            None
        };
        let els = if self.at_kw("else") {
            self.bump();
            if self.at_punct('{') {
                Some(self.parse_block())
            } else {
                None
            }
        } else {
            None
        };
        if !self.eat_punct(';') {
            self.sync();
        }
        Stmt::Let {
            pat,
            ty,
            init,
            els,
            span: Span {
                start,
                end: self.prev_tokidx(),
            },
        }
    }

    /// Collect a pattern, stopping at a depth-0 stop string, recording
    /// bound names (lowercase-initial identifiers in binding position).
    fn parse_pattern(&mut self, stops: &[&str]) -> Pat {
        let mut names = Vec::new();
        let mut depth = 0i32;
        while !self.eof() {
            // Multi-char operators inside patterns (`..=`, `..`, `::`) are
            // consumed whole so their pieces don't match stop strings.
            if let Some((op, n)) = self.op_at() {
                if depth == 0 && stops.contains(&op) {
                    break;
                }
                if matches!(op, "..=" | "..." | ".." | "::") {
                    self.advance(n);
                    continue;
                }
            }
            let t = self.peek(0).expect("not eof");
            let text = t.text.clone();
            if depth == 0 && stops.contains(&text.as_str()) {
                break;
            }
            match text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            if t.kind == TokKind::Ident {
                let first = text.chars().next().unwrap_or('_');
                let kw = matches!(
                    text.as_str(),
                    "ref" | "mut" | "box" | "self" | "Self" | "true" | "false" | "if" | "in"
                );
                let binds = (first.is_lowercase() || first == '_') && text != "_" && !kw && {
                    // Not a path segment / call / struct / macro head, and
                    // not a struct field name (`f: pat`).
                    match self.peek(1) {
                        Some(n) if n.is_punct('(') || n.is_punct('{') || n.is_punct('!') => false,
                        Some(n) if n.is_punct(':') => {
                            // `path::seg` never binds and `f: pat` inside
                            // braces is a field label, but a name right
                            // before a depth-0 `:` stop is a typed
                            // binding (`q: Q16`).
                            !self.peek(2).is_some_and(|m| m.is_punct(':')) && depth == 0 && stops.contains(&":")
                        }
                        _ => true,
                    }
                };
                if binds {
                    names.push((text.clone(), self.tokidx(0)));
                }
            }
            self.bump();
        }
        Pat { names }
    }

    // ----- expressions --------------------------------------------------

    /// Pratt parser. `min_bp` — minimum binding power to continue;
    /// `allow_struct` — whether `Path { … }` parses as a struct literal
    /// (false in `if`/`while`/`match`-header positions).
    fn parse_expr(&mut self, min_bp: u8, allow_struct: bool) -> Expr {
        let mut lhs = self.parse_prefix(allow_struct);
        loop {
            if self.at_kw("as") {
                let tok = self.bump();
                let ty = self.take_cast_type();
                lhs = Expr::Cast {
                    expr: Box::new(lhs),
                    ty,
                    tok,
                };
                continue;
            }
            let Some((op_text, ntoks, bp, right_bp, kind)) = self.peek_binop() else {
                break;
            };
            if bp < min_bp {
                break;
            }
            let tok = self.tokidx(0);
            self.advance(ntoks);
            match kind {
                OpKind::Range => {
                    let hi = if self.range_hi_follows(allow_struct) {
                        Some(Box::new(self.parse_expr(right_bp, allow_struct)))
                    } else {
                        None
                    };
                    lhs = Expr::Range {
                        lo: Some(Box::new(lhs)),
                        hi,
                        tok,
                    };
                }
                OpKind::Assign => {
                    let value = self.parse_expr(right_bp, allow_struct);
                    lhs = Expr::Assign {
                        target: Box::new(lhs),
                        value: Box::new(value),
                        tok,
                    };
                }
                OpKind::Bin(op) => {
                    let _ = op_text;
                    let rhs = self.parse_expr(right_bp, allow_struct);
                    lhs = Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        tok,
                    };
                }
            }
        }
        lhs
    }

    fn peek_binop(&self) -> Option<(&'static str, usize, u8, u8, OpKind)> {
        use BinOp::*;
        // Multi-char first.
        if let Some((op, n)) = self.op_at() {
            let (bp, rbp, kind) = match op {
                "<<" => (60, 61, OpKind::Bin(Shl)),
                ">>" => (60, 61, OpKind::Bin(Shr)),
                "==" | "!=" | "<=" | ">=" => (30, 31, OpKind::Bin(Cmp)),
                "&&" => (20, 21, OpKind::Bin(And)),
                "||" => (15, 16, OpKind::Bin(Or)),
                ".." | "..=" => (10, 11, OpKind::Range),
                "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=" => (5, 5, OpKind::Assign),
                _ => return None, // "->", "=>", "::", "..."
            };
            return Some((op, n, bp, rbp, kind));
        }
        let t = self.peek(0)?;
        if t.kind != TokKind::Punct {
            return None;
        }
        let c = t.text.chars().next()?;
        let (bp, rbp, kind) = match c {
            '*' => (80, 81, OpKind::Bin(Mul)),
            '/' => (80, 81, OpKind::Bin(Div)),
            '%' => (80, 81, OpKind::Bin(Rem)),
            '+' => (70, 71, OpKind::Bin(Add)),
            '-' => (70, 71, OpKind::Bin(Sub)),
            '&' => (50, 51, OpKind::Bin(BitAnd)),
            '^' => (45, 46, OpKind::Bin(BitXor)),
            '|' => (40, 41, OpKind::Bin(BitOr)),
            '<' | '>' => (30, 31, OpKind::Bin(Cmp)),
            '=' => (5, 5, OpKind::Assign),
            _ => return None,
        };
        Some(("", 1, bp, rbp, kind))
    }

    /// After `..`: does an upper bound follow?
    fn range_hi_follows(&self, allow_struct: bool) -> bool {
        match self.peek(0) {
            None => false,
            Some(t) => {
                if t.is_punct(']') || t.is_punct(')') || t.is_punct('}') || t.is_punct(',') || t.is_punct(';') {
                    return false;
                }
                if t.is_punct('{') && !allow_struct {
                    return false;
                }
                if self.at_op("=>") {
                    return false;
                }
                if t.is_punct('=') {
                    return false;
                }
                true
            }
        }
    }

    /// A cast target type: `&`/`*const`/`*mut` prefixes, then a path with
    /// optional generics, or a parenthesised/bracketed type.
    fn take_cast_type(&mut self) -> TypeRef {
        let start = self.tokidx(0);
        let mut toks = Vec::new();
        loop {
            if self.at_punct('&') || self.at_punct('*') {
                toks.push(self.toks[self.bump()].text.clone());
                continue;
            }
            if self.at_kw("mut") || self.at_kw("const") || self.at_kw("dyn") {
                toks.push(self.toks[self.bump()].text.clone());
                continue;
            }
            break;
        }
        if self.at_punct('(') {
            let g = self.skip_group('(', ')');
            for j in g.start..=g.end {
                if !matches!(self.toks[j].kind, TokKind::LineComment | TokKind::BlockComment) {
                    toks.push(self.toks[j].text.clone());
                }
            }
        } else if self.at_punct('[') {
            let g = self.skip_group('[', ']');
            for j in g.start..=g.end {
                if !matches!(self.toks[j].kind, TokKind::LineComment | TokKind::BlockComment) {
                    toks.push(self.toks[j].text.clone());
                }
            }
        } else {
            // Path with optional `::` segments and generics. `as _` too.
            while let Some(t) = self.peek(0) {
                if t.kind == TokKind::Ident {
                    toks.push(t.text.clone());
                    self.bump();
                    if self.at_op("::") {
                        toks.push("::".into());
                        self.advance(2);
                        continue;
                    }
                    if self.at_punct('<') {
                        let g = self.skip_angles();
                        for j in g.start..=g.end {
                            if !matches!(self.toks[j].kind, TokKind::LineComment | TokKind::BlockComment) {
                                toks.push(self.toks[j].text.clone());
                            }
                        }
                    }
                }
                break;
            }
        }
        TypeRef {
            toks,
            span: Span {
                start,
                end: self.prev_tokidx().max(start),
            },
        }
    }

    fn parse_prefix(&mut self, allow_struct: bool) -> Expr {
        let Some(t) = self.peek(0) else {
            return Expr::Opaque(Span::tok(self.prev_tokidx()));
        };
        match t.kind {
            TokKind::Int => {
                let v = int_value(&t.text);
                let tok = self.bump();
                let e = Expr::Lit {
                    kind: LitKind::Int(v),
                    tok,
                };
                self.parse_postfix(e, allow_struct)
            }
            TokKind::Float => {
                let tok = self.bump();
                let e = Expr::Lit {
                    kind: LitKind::Float,
                    tok,
                };
                self.parse_postfix(e, allow_struct)
            }
            TokKind::Str => {
                let tok = self.bump();
                let e = Expr::Lit {
                    kind: LitKind::Str,
                    tok,
                };
                self.parse_postfix(e, allow_struct)
            }
            TokKind::Lifetime => {
                // Loop label: `'outer: loop { … }`.
                if self.peek(1).is_some_and(|n| n.is_punct(':')) {
                    self.advance(2);
                    return self.parse_prefix(allow_struct);
                }
                Expr::Opaque(Span::tok(self.bump()))
            }
            TokKind::Punct => self.parse_prefix_punct(allow_struct),
            TokKind::Ident => self.parse_prefix_ident(allow_struct),
            TokKind::LineComment | TokKind::BlockComment => {
                // Unreachable: `code` filters comments. Consume defensively.
                Expr::Opaque(Span::tok(self.bump()))
            }
        }
    }

    fn parse_prefix_punct(&mut self, allow_struct: bool) -> Expr {
        // Prefix ranges: `..hi`, `..`, `..=hi`.
        if let Some((op @ (".." | "..="), n)) = self.op_at() {
            let _ = op;
            let tok = self.tokidx(0);
            self.advance(n);
            let hi = if self.range_hi_follows(allow_struct) {
                Some(Box::new(self.parse_expr(11, allow_struct)))
            } else {
                None
            };
            return Expr::Range { lo: None, hi, tok };
        }
        let t = self.peek(0).expect("caller checked");
        let c = t.text.chars().next().unwrap_or(' ');
        match c {
            '(' => {
                self.bump();
                let mut elems = Vec::new();
                let mut trailing = false;
                while !self.eof() && !self.at_punct(')') {
                    let before = self.i;
                    elems.push(self.parse_expr(0, true));
                    trailing = self.eat_punct(',');
                    if self.i == before {
                        self.bump();
                    }
                }
                let tok = self.tokidx(0);
                self.eat_punct(')');
                let e = if elems.len() == 1 && !trailing {
                    elems.pop().expect("len checked")
                } else {
                    Expr::Tuple { elems, tok }
                };
                self.parse_postfix(e, allow_struct)
            }
            '[' => {
                let tok = self.bump();
                let mut elems = Vec::new();
                if !self.at_punct(']') {
                    let first = self.parse_expr(0, true);
                    elems.push(first);
                    if self.eat_punct(';') {
                        elems.push(self.parse_expr(0, true));
                    } else {
                        while self.eat_punct(',') {
                            if self.at_punct(']') {
                                break;
                            }
                            let before = self.i;
                            elems.push(self.parse_expr(0, true));
                            if self.i == before {
                                self.bump();
                            }
                        }
                    }
                }
                self.eat_punct(']');
                self.parse_postfix(Expr::Array { elems, tok }, allow_struct)
            }
            '{' => {
                let b = self.parse_block();
                self.parse_postfix(Expr::BlockExpr(Box::new(b)), allow_struct)
            }
            '&' => {
                let tok = self.bump(); // one '&' — `&&x` recurses
                if self.at_kw("mut") {
                    self.bump();
                }
                let inner = self.parse_expr(81, allow_struct);
                Expr::Ref {
                    expr: Box::new(inner),
                    tok,
                }
            }
            '*' | '-' | '!' => {
                let tok = self.bump();
                let inner = self.parse_expr(81, allow_struct);
                Expr::Unary {
                    op: c,
                    expr: Box::new(inner),
                    tok,
                }
            }
            '|' => self.parse_closure(),
            '#' => {
                self.skip_attrs();
                self.parse_prefix(allow_struct)
            }
            _ => Expr::Opaque(Span::tok(self.bump())),
        }
    }

    fn parse_closure(&mut self) -> Expr {
        let tok = self.tokidx(0);
        let mut params = Vec::new();
        if self.at_op("||") {
            self.advance(2);
        } else {
            self.bump(); // '|'
            while !self.eof() && !self.at_punct('|') {
                let before = self.i;
                let pat = self.parse_pattern(&[":", ",", "|"]);
                if self.at_punct(':') && !self.at_op("::") {
                    self.bump();
                    self.collect_type(&[",", "|"]);
                }
                params.push(pat);
                self.eat_punct(',');
                if self.i == before {
                    self.bump();
                }
            }
            self.eat_punct('|');
        }
        if self.eat_op("->") {
            self.collect_type(&["{"]);
        }
        let body = self.parse_expr(0, true);
        Expr::Closure {
            params,
            body: Box::new(body),
            tok,
        }
    }

    fn parse_prefix_ident(&mut self, allow_struct: bool) -> Expr {
        let text = self.peek_text(0).expect("caller checked").to_string();
        match text.as_str() {
            "if" => self.parse_if(),
            "match" => self.parse_match(),
            "while" => self.parse_while(),
            "loop" => {
                let tok = self.bump();
                let body = if self.at_punct('{') {
                    self.parse_block()
                } else {
                    Block {
                        stmts: Vec::new(),
                        span: Span::tok(tok),
                    }
                };
                self.parse_postfix(
                    Expr::Loop {
                        body: Box::new(body),
                        tok,
                    },
                    allow_struct,
                )
            }
            "for" => {
                let tok = self.bump();
                let pat = self.parse_pattern(&["in"]);
                self.at_kw("in").then(|| self.bump());
                let iter = self.parse_expr(0, false);
                let body = if self.at_punct('{') {
                    self.parse_block()
                } else {
                    Block {
                        stmts: Vec::new(),
                        span: Span::tok(tok),
                    }
                };
                Expr::For {
                    pat,
                    iter: Box::new(iter),
                    body: Box::new(body),
                    tok,
                }
            }
            "unsafe" => {
                let tok = self.bump();
                if self.at_punct('{') {
                    let b = self.parse_block();
                    self.parse_postfix(Expr::BlockExpr(Box::new(b)), allow_struct)
                } else {
                    Expr::Opaque(Span::tok(tok))
                }
            }
            "move" => {
                self.bump();
                self.parse_prefix(allow_struct) // expect a closure next
            }
            "return" => {
                let tok = self.bump();
                let value = if self.expr_can_start() {
                    Some(Box::new(self.parse_expr(0, allow_struct)))
                } else {
                    None
                };
                Expr::Return { value, tok }
            }
            "break" => {
                let tok = self.bump();
                if self.peek(0).is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.bump(); // label
                }
                let value = if self.expr_can_start() {
                    Some(Box::new(self.parse_expr(0, allow_struct)))
                } else {
                    None
                };
                Expr::Jump { value, tok }
            }
            "continue" => {
                let tok = self.bump();
                if self.peek(0).is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.bump(); // label
                }
                Expr::Jump { value: None, tok }
            }
            "let" | "else" | "in" | "where" => Expr::Opaque(Span::tok(self.bump())),
            _ => self.parse_path_like(allow_struct),
        }
    }

    /// Can the current token start an expression? (Used after `return`,
    /// `break` to decide whether a value follows.)
    fn expr_can_start(&self) -> bool {
        match self.peek(0) {
            None => false,
            Some(t) => !(t.is_punct(';') || t.is_punct('}') || t.is_punct(')') || t.is_punct(']') || t.is_punct(',')),
        }
    }

    fn parse_if(&mut self) -> Expr {
        let tok = self.bump(); // 'if'
        let pat = if self.at_kw("let") {
            self.bump();
            let p = self.parse_pattern(&["="]);
            self.eat_punct('=');
            Some(p)
        } else {
            None
        };
        let cond = self.parse_expr(0, false);
        let then = if self.at_punct('{') {
            self.parse_block()
        } else {
            Block {
                stmts: Vec::new(),
                span: Span::tok(tok),
            }
        };
        let alt = if self.at_kw("else") {
            self.bump();
            if self.at_kw("if") {
                Some(Box::new(self.parse_if()))
            } else if self.at_punct('{') {
                Some(Box::new(Expr::BlockExpr(Box::new(self.parse_block()))))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            pat,
            cond: Box::new(cond),
            then: Box::new(then),
            alt,
            tok,
        }
    }

    fn parse_while(&mut self) -> Expr {
        let tok = self.bump(); // 'while'
        let pat = if self.at_kw("let") {
            self.bump();
            let p = self.parse_pattern(&["="]);
            self.eat_punct('=');
            Some(p)
        } else {
            None
        };
        let cond = self.parse_expr(0, false);
        let body = if self.at_punct('{') {
            self.parse_block()
        } else {
            Block {
                stmts: Vec::new(),
                span: Span::tok(tok),
            }
        };
        Expr::While {
            pat,
            cond: Box::new(cond),
            body: Box::new(body),
            tok,
        }
    }

    fn parse_match(&mut self) -> Expr {
        let tok = self.bump(); // 'match'
        let scrutinee = self.parse_expr(0, false);
        let mut arms = Vec::new();
        if self.eat_punct('{') {
            while !self.eof() && !self.at_punct('}') {
                let before = self.i;
                self.skip_attrs();
                self.eat_punct('|'); // leading alternation pipe
                let pat = self.parse_pattern(&["=>", "if"]);
                let guard = if self.at_kw("if") {
                    self.bump();
                    Some(self.parse_expr(0, false))
                } else {
                    None
                };
                if self.eat_op("=>") {
                    let body = self.parse_expr(0, true);
                    self.eat_punct(',');
                    arms.push(Arm { pat, guard, body });
                } else {
                    // Recovery: drop to the next arm boundary.
                    let rstart = self.tokidx(0);
                    let mut depth = 0i32;
                    while !self.eof() {
                        if depth == 0 && (self.at_punct(',') || self.at_punct('}')) {
                            break;
                        }
                        if self.at_punct('(') || self.at_punct('[') || self.at_punct('{') {
                            depth += 1;
                        } else if self.at_punct(')') || self.at_punct(']') || self.at_punct('}') {
                            depth -= 1;
                        }
                        self.bump();
                    }
                    self.eat_punct(',');
                    if self.prev_tokidx() >= rstart {
                        self.lexical.push(Span {
                            start: rstart,
                            end: self.prev_tokidx(),
                        });
                    }
                }
                if self.i == before {
                    self.bump();
                }
            }
            self.eat_punct('}');
        }
        let e = Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            tok,
        };
        self.parse_postfix(e, true)
    }

    fn parse_path_like(&mut self, allow_struct: bool) -> Expr {
        let mut segs = Vec::new();
        let first = self.peek(0).expect("caller checked");
        segs.push(PathSeg {
            text: first.text.clone(),
            tok: self.tokidx(0),
        });
        self.bump();
        loop {
            if self.at_op("::") {
                self.advance(2);
                if self.at_punct('<') {
                    // Turbofish: `Vec::<u8>::new`.
                    let g = self.skip_angles();
                    self.lexical.push(g);
                    continue;
                }
                if let Some(t) = self.peek(0) {
                    if t.kind == TokKind::Ident {
                        segs.push(PathSeg {
                            text: t.text.clone(),
                            tok: self.tokidx(0),
                        });
                        self.bump();
                        continue;
                    }
                }
                break;
            }
            break;
        }
        // Macro call: `name!(…)` / `name![…]` / `name!{…}`.
        if self.at_punct('!') && !self.at_op("!=") {
            if let Some(d) = self.peek(1) {
                let open = d.text.chars().next().unwrap_or(' ');
                if matches!(open, '(' | '[' | '{') {
                    self.bump(); // '!'
                    let close = match open {
                        '(' => ')',
                        '[' => ']',
                        _ => '}',
                    };
                    let inner = self.skip_group(open, close);
                    self.lexical.push(inner);
                    let name = segs.last().map(|s| s.text.clone()).unwrap_or_default();
                    let tok = segs.last().map(|s| s.tok).unwrap_or(inner.start);
                    let e = Expr::MacroCall { name, inner, tok };
                    return self.parse_postfix(e, allow_struct);
                }
            }
        }
        // Struct literal: `Path { field: …, .. }`.
        if self.at_punct('{') && allow_struct && self.looks_like_struct_lit() {
            let tok = self.bump(); // '{'
            let mut fields = Vec::new();
            while !self.eof() && !self.at_punct('}') {
                let before = self.i;
                if self.at_op("..") {
                    self.advance(2);
                    let rest = self.parse_expr(0, true);
                    fields.push(("..".to_string(), rest));
                } else if let Some(t) = self.peek(0) {
                    if t.kind == TokKind::Ident || t.kind == TokKind::Int {
                        let fname = t.text.clone();
                        let ftok = self.tokidx(0);
                        self.bump();
                        if self.at_punct(':') && !self.at_op("::") {
                            self.bump();
                            let v = self.parse_expr(0, true);
                            fields.push((fname, v));
                        } else {
                            // Shorthand `Foo { x }` — the field reads `x`.
                            fields.push((
                                fname.clone(),
                                Expr::Path {
                                    segs: vec![PathSeg { text: fname, tok: ftok }],
                                },
                            ));
                        }
                    }
                }
                self.eat_punct(',');
                if self.i == before {
                    self.bump();
                }
            }
            self.eat_punct('}');
            let e = Expr::StructLit {
                path: segs,
                fields,
                tok,
            };
            return self.parse_postfix(e, allow_struct);
        }
        self.parse_postfix(Expr::Path { segs }, allow_struct)
    }

    /// At `{` after a path: is this a struct literal body?
    fn looks_like_struct_lit(&self) -> bool {
        match self.peek(1) {
            Some(n) if n.is_punct('}') => true,
            Some(n) if n.is_punct('.') => true, // `S { ..default }`
            Some(n) if n.kind == TokKind::Ident || n.kind == TokKind::Int => match self.peek(2) {
                Some(m) if m.is_punct(':') => {
                    // Exclude paths in block position: `S { x::y() }` is not
                    // a struct literal — but `x: :` is impossible, so a
                    // single `:` means a field. Check it isn't `::`.
                    !(self.peek(3).is_some_and(|o| o.is_punct(':'))
                        && self.peek(2).map(|m2| m2.line) == self.peek(3).map(|o| o.line))
                }
                Some(m) if m.is_punct(',') || m.is_punct('}') => true,
                _ => false,
            },
            _ => false,
        }
    }

    fn parse_postfix(&mut self, mut e: Expr, allow_struct: bool) -> Expr {
        loop {
            if self.at_punct('.') && !self.at_op("..") && !self.at_op("..=") && !self.at_op("...") {
                let Some(n) = self.peek(1) else { break };
                if n.kind == TokKind::Ident {
                    let name = n.text.clone();
                    let ntok = self.tokidx(1);
                    // Method call if `(` or turbofish follows the name.
                    let calls = self.peek(2).is_some_and(|m| m.is_punct('('))
                        || (self.peek(2).is_some_and(|m| m.is_punct(':'))
                            && self.peek(3).is_some_and(|m| m.is_punct(':')));
                    self.advance(2); // '.' name
                    if calls {
                        if self.at_op("::") {
                            self.advance(2);
                            if self.at_punct('<') {
                                let g = self.skip_angles();
                                self.lexical.push(g);
                            }
                        }
                        if self.at_punct('(') {
                            let args = self.parse_args();
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                method: name,
                                args,
                                tok: ntok,
                            };
                            continue;
                        }
                    }
                    e = Expr::Field {
                        base: Box::new(e),
                        name,
                        tok: ntok,
                    };
                    continue;
                }
                if n.kind == TokKind::Int {
                    let name = n.text.clone();
                    let ntok = self.tokidx(1);
                    self.advance(2);
                    e = Expr::Field {
                        base: Box::new(e),
                        name,
                        tok: ntok,
                    };
                    continue;
                }
                if n.kind == TokKind::Float {
                    // `x.0.1` lexes the trailing `0.1` as a float: split it
                    // into two tuple-index field accesses.
                    let ntok = self.tokidx(1);
                    let parts: Vec<String> = n.text.split('.').map(str::to_string).collect();
                    self.advance(2);
                    for part in parts {
                        e = Expr::Field {
                            base: Box::new(e),
                            name: part,
                            tok: ntok,
                        };
                    }
                    continue;
                }
                break;
            }
            if self.at_punct('(') {
                let tok = self.tokidx(0);
                let args = self.parse_args();
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                    tok,
                };
                continue;
            }
            if self.at_punct('[') {
                let tok = self.bump();
                let index = self.parse_expr(0, true);
                self.eat_punct(']');
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                    tok,
                };
                continue;
            }
            if self.at_punct('?') {
                let tok = self.bump();
                e = Expr::Try { expr: Box::new(e), tok };
                continue;
            }
            let _ = allow_struct;
            break;
        }
        e
    }

    /// Cursor is at `(`: parse a comma-separated argument list.
    fn parse_args(&mut self) -> Vec<Expr> {
        self.bump(); // '('
        let mut args = Vec::new();
        while !self.eof() && !self.at_punct(')') {
            let before = self.i;
            args.push(self.parse_expr(0, true));
            self.eat_punct(',');
            if self.i == before {
                self.bump();
            }
        }
        self.eat_punct(')');
        args
    }
}

enum OpKind {
    Bin(BinOp),
    Assign,
    Range,
}

/// Parse an integer literal's value: radix prefixes, `_` separators and
/// type suffixes handled. `None` when out of `u128` range.
pub fn int_value(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = if let Some(rest) = clean.strip_prefix("0x").or_else(|| clean.strip_prefix("0X")) {
        (16u32, rest)
    } else if let Some(rest) = clean.strip_prefix("0o").or_else(|| clean.strip_prefix("0O")) {
        (8, rest)
    } else if let Some(rest) = clean.strip_prefix("0b").or_else(|| clean.strip_prefix("0B")) {
        (2, rest)
    } else {
        (10, clean.as_str())
    };
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(digits.len());
    u128::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> File {
        parse(&lex(src))
    }

    fn first_fn(file: &File) -> &FnItem {
        let mut out: Option<&FnItem> = None;
        for_each_fn(file, &mut |f, _| {
            if out.is_none() {
                out = Some(f);
            }
        });
        out.expect("a fn")
    }

    fn count_exprs(file: &File, pred: impl Fn(&Expr) -> bool) -> usize {
        let mut n = 0;
        for_each_fn(file, &mut |f, _| {
            if let Some(b) = &f.body {
                for_each_expr_in_block(b, &mut |e| {
                    if pred(e) {
                        n += 1;
                    }
                });
            }
        });
        n
    }

    #[test]
    fn parses_items_and_signatures() {
        let f = parse_src(
            "pub struct S { a: u32, b: Vec<Q16> }\n\
             impl S { pub fn get(&self, i: usize) -> Q16 { self.b[i] } }\n\
             pub trait T { fn hook(&self) {} }\n\
             mod inner { pub fn leaf(x: i64) -> i64 { x } }\n\
             const K: u32 = 3;\n",
        );
        assert_eq!(f.items.len(), 5);
        let mut fns = Vec::new();
        for_each_fn(&f, &mut |func, self_ty| {
            fns.push((func.name.clone(), self_ty.map(str::to_string)));
        });
        assert_eq!(
            fns,
            vec![
                ("get".into(), Some("S".into())),
                ("hook".into(), Some("T".into())),
                ("leaf".into(), None),
            ]
        );
        let mut structs = Vec::new();
        for_each_struct(&f, &mut |s| structs.push(s.name.clone()));
        assert_eq!(structs, vec!["S"]);
        if let Item::Struct(s) = &f.items[0] {
            assert_eq!(s.fields[1].0, "b");
            assert_eq!(s.fields[1].1.head(), Some("Vec"));
            assert_eq!(s.fields[1].1.first_arg().unwrap().head(), Some("Q16"));
        } else {
            panic!("expected struct");
        }
    }

    #[test]
    fn parses_method_chains_calls_and_casts() {
        let f = parse_src(
            "fn f(x: Q16, v: Vec<u8>) -> i64 { let y = (x.raw() as i128 * 2) as i64; v.iter().count() as i64 + y }",
        );
        assert_eq!(
            count_exprs(&f, |e| matches!(e, Expr::MethodCall { method, .. } if method == "raw")),
            1
        );
        assert_eq!(count_exprs(&f, |e| matches!(e, Expr::Cast { .. })), 3);
        assert_eq!(count_exprs(&f, |e| matches!(e, Expr::Binary { op: BinOp::Mul, .. })), 1);
    }

    #[test]
    fn struct_literal_vs_block_disambiguation() {
        let f = parse_src("fn f() -> S { if cond { return S { a: 1 }; } S { a: 2 } }");
        assert_eq!(count_exprs(&f, |e| matches!(e, Expr::StructLit { .. })), 2);
        assert_eq!(count_exprs(&f, |e| matches!(e, Expr::If { .. })), 1);
    }

    #[test]
    fn match_arms_guards_and_bindings() {
        let f =
            parse_src("fn f(x: Option<u32>) -> u32 { match x { Some(v) if v > 3 => v, Some(v) => v + 1, None => 0 } }");
        let mut arms = 0;
        for_each_fn(&f, &mut |func, _| {
            if let Some(b) = &func.body {
                for_each_expr_in_block(b, &mut |e| {
                    if let Expr::Match { arms: a, .. } = e {
                        arms = a.len();
                        assert_eq!(a[0].pat.names, vec![("v".to_string(), a[0].pat.names[0].1)]);
                        assert!(a[0].guard.is_some());
                    }
                });
            }
        });
        assert_eq!(arms, 3);
    }

    #[test]
    fn macros_become_lexical_spans() {
        let f = parse_src("fn f() { vec![1, 2]; format!(\"{x}\"); assert_eq!(a, b); }");
        assert_eq!(count_exprs(&f, |e| matches!(e, Expr::MacroCall { .. })), 3);
        // Macro bodies are recorded for token-level fallback scanning.
        assert!(f.lexical.len() >= 3);
    }

    #[test]
    fn closures_loops_and_let_else() {
        let f = parse_src(
            "fn f(v: &[u32]) -> u32 { \
               let Some(first) = v.first() else { return 0; }; \
               let mut acc = 0; \
               for (i, x) in v.iter().enumerate() { acc += i as u32 + *x; } \
               let g = |a: u32, b| a + b; \
               while acc > 100 { acc /= 2; } \
               g(acc, *first) }",
        );
        assert_eq!(count_exprs(&f, |e| matches!(e, Expr::Closure { .. })), 1);
        assert_eq!(count_exprs(&f, |e| matches!(e, Expr::For { .. })), 1);
        assert_eq!(count_exprs(&f, |e| matches!(e, Expr::While { .. })), 1);
        let func = first_fn(&f);
        assert_eq!(func.params.len(), 1);
        assert_eq!(func.params[0].pat.names[0].0, "v");
    }

    #[test]
    fn generics_where_clauses_and_trait_impls() {
        let f = parse_src(
            "impl<R: Repr, P: Platform> Service<R, P> where R: Sized { fn tick(&mut self) {} }\n\
             impl Platform for Probe { fn now(&self) -> u64 { 0 } }",
        );
        let mut pairs = Vec::new();
        for_each_fn(&f, &mut |func, self_ty| {
            pairs.push((func.name.clone(), self_ty.unwrap_or("?").to_string()));
        });
        assert_eq!(
            pairs,
            vec![("tick".into(), "Service".into()), ("now".into(), "Probe".into())]
        );
        if let Item::Impl(i) = &f.items[1] {
            assert_eq!(i.trait_name.as_deref(), Some("Platform"));
        } else {
            panic!("expected impl");
        }
    }

    #[test]
    fn opaque_recovery_never_loses_the_rest_of_the_file() {
        // A deliberately weird statement followed by a normal one: the
        // parser must recover and still see the later method call.
        let f = parse_src("fn f() { yield 3 ; x.unwrap(); }");
        assert_eq!(
            count_exprs(
                &f,
                |e| matches!(e, Expr::MethodCall { method, .. } if method == "unwrap")
            ),
            1
        );
    }

    #[test]
    fn int_values_parse_all_radices() {
        assert_eq!(int_value("64"), Some(64));
        assert_eq!(int_value("1_000u32"), Some(1000));
        assert_eq!(int_value("0xFFi64"), Some(255));
        assert_eq!(int_value("0b1010"), Some(10));
        assert_eq!(int_value("0o17"), Some(15));
        assert_eq!(int_value("16"), Some(16));
    }

    #[test]
    fn shifts_and_ranges_do_not_confuse_the_op_merger() {
        let f = parse_src("fn f(x: i64) -> i64 { let r = 0..5; let s = x << 16 >> 2; s + r.start }");
        assert_eq!(count_exprs(&f, |e| matches!(e, Expr::Binary { op: BinOp::Shl, .. })), 1);
        assert_eq!(count_exprs(&f, |e| matches!(e, Expr::Binary { op: BinOp::Shr, .. })), 1);
        assert_eq!(count_exprs(&f, |e| matches!(e, Expr::Range { .. })), 1);
    }
}
