//! WCET-style interprocedural cost analysis for NI hot paths.
//!
//! The paper's feasibility argument is that a DWCS decision fits a
//! 66 MHz i960 between frame deadlines (§5, ≈78 µs per decision). The
//! dynamic model (`hwsim::calib`, `OpMeter`) *observes* that; this
//! module *proves a bound*: an abstract interpretation over the tolerant
//! AST that assigns every statement an **interval of cycles**
//! `[best, worst]` and summarises the call graph bottom-up from each
//! `// analysis: hot` root.
//!
//! Three inputs make loops finite:
//!
//! * **Counted loops** — `for _ in a..b` with literal bounds is inferred.
//! * **`// analysis: bound N`** — asserts a worst-case trip count for a
//!   data-dependent loop or iterator drain (`.position(…)`, `.retain(…)`,
//!   …). The annotation covers its own line, or the next statement when
//!   standalone; one no loop claims is itself a finding.
//! * **`// analysis: allow(ni-cycle-budget)`** — excludes a function or
//!   loop from the budget (it contributes one opaque-call charge /
//!   single iteration). Used for host-side code the name-keyed graph
//!   reaches spuriously.
//!
//! Calls resolve name-keyed like [`crate::callgraph`], refined by a
//! receiver-type probe (the [`TypeDomain`] run over each body): a method
//! on a receiver of known struct type prefers candidates in that type's
//! `impl`; a method on a known non-struct receiver (collection, integer)
//! is a std call and gets a default interval; an unknown receiver takes
//! the worst case over every same-name candidate — sound for WCET.
//! Recursion (a call back into an in-progress summary) is a
//! `ni-stack-depth` finding and the back edge is charged as opaque.
//!
//! Cycle weights mirror `hwsim::calib` (the gate test
//! `tests/cycle_budget_gate.rs` cross-checks them against
//! `calib::TABLE`); purely syntactic defaults (branch, call, iterator
//! step) are this module's own, documented on each constant.

use crate::ast::{self, Block, Expr, LitKind, Stmt, TypeRef};
use crate::callgraph::{CallGraph, FnNode, INIT_CTORS};
use crate::config::LintConfig;
use crate::dataflow::{abs_join, AbsTy, Domain, Env, StructTable, TyCx, TypeDomain};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::lints::{NI_CYCLE_BUDGET, NI_STACK_DEPTH};
use crate::FileAnalysis;
use std::collections::BTreeMap;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// Constants mirrored from `hwsim::calib` (keep in sync; the gate test
// asserts equality against `calib::TABLE`).

/// i960RD core clock (Hz) — paper §4.
pub const I960_HZ: u64 = 66_000_000;
/// Fixed per-decision overhead outside modelled code (doorbell, I2O
/// descriptor handling) — added once to every hot root's total.
pub const NI_DECISION_BASE_CYCLES: u64 = 3_900;
/// One Q16 cross-multiply compare macro-op.
pub const FIXED_RATIO_CYCLES: u64 = 20;
/// One software-emulated FP macro-op (soft-float build only; NI code is
/// float-free by `ni-no-float`, mirrored for the gate test's pricing).
pub const SOFT_FP_RATIO_CYCLES: u64 = 440;
/// Local-RAM touch, cache hit.
pub const TOUCH_HIT_CYCLES: u64 = 1;
/// Local-RAM touch, cache miss.
pub const TOUCH_MISS_CYCLES: u64 = 13;

// ---------------------------------------------------------------------------
// Analysis-local defaults (syntactic weights, not calibrated by the paper).

/// Integer ALU op (add/sub/shift/bit/compare).
pub const ALU_CYCLES: u64 = 1;
/// Integer multiply (half a cross-multiply compare macro-op).
pub const MUL_CYCLES: u64 = 10;
/// Integer divide / remainder.
pub const DIV_CYCLES: u64 = 40;
/// Taken-or-not conditional branch.
pub const BRANCH_CYCLES: u64 = 2;
/// Call + return + frame setup for a resolved callee.
pub const CALL_CYCLES: u64 = 12;
/// Loop-iterator advance + test per iteration.
pub const ITER_STEP_CYCLES: u64 = 4;
/// A memory access: hit..miss.
pub const TOUCH: CycleInterval = CycleInterval {
    lo: TOUCH_HIT_CYCLES,
    hi: TOUCH_MISS_CYCLES,
};
/// A call whose body the analyzer cannot see (std, out-of-set, allowed,
/// init-time constructor): assumed O(1) within this envelope.
pub const OPAQUE_CALL: CycleInterval = CycleInterval { lo: 4, hi: 160 };
/// A method on a known machine-integer receiver (`saturating_add`, …).
pub const INT_METHOD: CycleInterval = CycleInterval { lo: 1, hi: 8 };
/// Stack charged to a call the analyzer cannot see into.
pub const OPAQUE_FRAME_BYTES: u64 = 64;
/// Per-frame bookkeeping bytes (return address, saved registers).
pub const FRAME_BASE_BYTES: u64 = 32;

/// Iterator drains: consume the chain, per-element work × trip count —
/// need a bound on a hot path.
const DRAIN_ADAPTERS: [&str; 24] = [
    "all",
    "any",
    "collect",
    "count",
    "find",
    "find_map",
    "fold",
    "for_each",
    "last",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
    "position",
    "product",
    "retain",
    "rposition",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sum",
];

/// Std combinators that are a compare and a branch, not a full opaque
/// call: `Ordering::then_with`, `Option::is_some`, `u64::min`, … Closure
/// arguments are still priced once by the caller; only the dispatch
/// itself is charged at [`INT_METHOD`] instead of [`OPAQUE_CALL`].
const CHEAP_STD_METHODS: [&str; 24] = [
    "clamp",
    "is_eq",
    "is_err",
    "is_ge",
    "is_gt",
    "is_le",
    "is_lt",
    "is_ne",
    "is_none",
    "is_none_or",
    "is_ok",
    "is_some",
    "is_some_and",
    "map_or",
    "map_or_else",
    "max",
    "min",
    "ok_or",
    "ok_or_else",
    "reverse",
    "then",
    "then_with",
    "unwrap_or",
    "unwrap_or_else",
];

/// Lazy adapters: O(1) setup; closure arguments are deferred to the
/// drain that eventually consumes the chain.
const LAZY_ADAPTERS: [&str; 25] = [
    "as_mut",
    "as_ref",
    "by_ref",
    "chain",
    "cloned",
    "copied",
    "drain",
    "enumerate",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "into_iter",
    "iter",
    "iter_mut",
    "keys",
    "map",
    "peekable",
    "rev",
    "skip",
    "skip_while",
    "take",
    "take_while",
    "values",
    "zip",
];

// ---------------------------------------------------------------------------
// The cost domain.

/// A saturating interval of i960 cycles. `hi == u64::MAX` means
/// *unbounded* (an unannotated data-dependent loop).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleInterval {
    /// Best case.
    pub lo: u64,
    /// Worst case (`u64::MAX` = unbounded).
    pub hi: u64,
}

impl CycleInterval {
    /// The zero-cost interval.
    pub const ZERO: CycleInterval = CycleInterval { lo: 0, hi: 0 };

    /// `[n, n]`.
    pub const fn exact(n: u64) -> CycleInterval {
        CycleInterval { lo: n, hi: n }
    }

    /// `[lo, hi]` (callers keep `lo <= hi`).
    pub const fn new(lo: u64, hi: u64) -> CycleInterval {
        CycleInterval { lo, hi }
    }

    /// Sequential composition (saturating).
    #[allow(clippy::should_implement_trait)] // interval algebra, not operator sugar
    pub fn add(self, o: CycleInterval) -> CycleInterval {
        CycleInterval {
            lo: self.lo.saturating_add(o.lo),
            hi: self.hi.saturating_add(o.hi),
        }
    }

    /// Repeat this cost `iters` times (saturating).
    pub fn scale(self, iters: CycleInterval) -> CycleInterval {
        CycleInterval {
            lo: self.lo.saturating_mul(iters.lo),
            hi: self.hi.saturating_mul(iters.hi),
        }
    }

    /// Either-branch join: the smallest interval containing both.
    pub fn join(self, o: CycleInterval) -> CycleInterval {
        CycleInterval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Whether the worst case failed to bound.
    pub fn is_unbounded(&self) -> bool {
        self.hi == u64::MAX
    }
}

/// Tunable limits, loaded from `analysis.toml` numeric keys.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// `ni-cycle-budget`: worst-case cycles a hot root may cost per
    /// decision. Default ≈15 ms at 66 MHz — under half the 33 ms NTSC
    /// frame period the paper schedules against.
    pub budget_cycles: u64,
    /// `ni-stack-depth`: deepest permitted call chain from a hot root.
    pub max_call_depth: u64,
    /// `ni-stack-depth`: worst-case stack bytes from a hot root.
    pub max_stack_bytes: u64,
    /// `ni-stack-depth`: largest single stack local (arrays).
    pub max_local_bytes: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            budget_cycles: 1_000_000,
            max_call_depth: 24,
            max_stack_bytes: 16_384,
            max_local_bytes: 1_024,
        }
    }
}

impl CostModel {
    /// Defaults overridden by a lint section's numeric keys.
    pub fn from_config(cfg: Option<&LintConfig>) -> CostModel {
        let mut m = CostModel::default();
        if let Some(c) = cfg {
            if let Some(v) = c.num("budget_cycles") {
                m.budget_cycles = v;
            }
            if let Some(v) = c.num("max_call_depth") {
                m.max_call_depth = v;
            }
            if let Some(v) = c.num("max_stack_bytes") {
                m.max_stack_bytes = v;
            }
            if let Some(v) = c.num("max_local_bytes") {
                m.max_local_bytes = v;
            }
        }
        m
    }
}

/// Bottom-up summary of one function.
#[derive(Clone, Debug)]
pub struct FnSummary {
    /// Body cost, callees included (excludes the caller's `CALL_CYCLES`).
    pub cycles: CycleInterval,
    /// Worst-case frames on the stack, this function included.
    pub depth: u64,
    /// Worst-case stack bytes, this frame included.
    pub stack: u64,
}

/// Per-root result, for the CLI `budget` report and the gate test.
#[derive(Clone, Debug)]
pub struct RootReport {
    /// `Type::name` label of the hot root.
    pub root: String,
    /// Repo-relative file of the root.
    pub file: PathBuf,
    /// 1-based position of the root's name token.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Worst-case decision cost, [`NI_DECISION_BASE_CYCLES`] included.
    pub cycles: CycleInterval,
    /// Worst-case call depth (frames).
    pub call_depth: u64,
    /// Worst-case stack bytes.
    pub stack_bytes: u64,
}

/// Everything one analysis run produced.
#[derive(Debug, Default)]
pub struct CostReport {
    /// One entry per hot root, in file/definition order.
    pub roots: Vec<RootReport>,
    /// `ni-cycle-budget` and `ni-stack-depth` findings (callers filter
    /// by family).
    pub findings: Vec<Finding>,
}

// ---------------------------------------------------------------------------
// The analyzer.

enum St {
    Unvisited,
    InProgress,
    Done(FnSummary),
}

/// Accumulated per-function walk state.
struct FnCx {
    /// Index into the file set of the function's file.
    file: usize,
    /// The enclosing impl/trait type, for `Self::…` call resolution.
    self_ty: Option<String>,
    /// Method-name token → receiver abstract type (from the probe).
    recv: BTreeMap<usize, AbsTy>,
    /// `(anchor token, bound, consumed)` for in-span bound annotations.
    marks: Vec<(usize, u64, bool)>,
    /// Estimated own-frame bytes.
    frame_bytes: u64,
    /// Deepest callee chain seen at any call site.
    callee_depth: u64,
    /// Largest callee stack seen at any call site.
    callee_stack: u64,
}

/// An expression's cost: `total` is charged where it stands; `pending`
/// is per-element work deferred along a lazy iterator chain, multiplied
/// by the drain that consumes it (or folded in once if never drained).
#[derive(Clone, Copy)]
struct Cost {
    total: CycleInterval,
    pending: CycleInterval,
}

impl Cost {
    const ZERO: Cost = Cost {
        total: CycleInterval::ZERO,
        pending: CycleInterval::ZERO,
    };

    fn of(total: CycleInterval) -> Cost {
        Cost {
            total,
            pending: CycleInterval::ZERO,
        }
    }

    /// Consume: an undrained chain's deferred work counts once.
    fn fold(self) -> CycleInterval {
        self.total.add(self.pending)
    }
}

struct Analyzer<'a> {
    files: &'a [&'a FileAnalysis],
    opts: &'a CostModel,
    fns: Vec<FnNode<'a>>,
    by_name: BTreeMap<&'a str, Vec<usize>>,
    state: Vec<St>,
    structs: &'a StructTable,
    findings: Vec<Finding>,
    /// The in-progress summarization chain: `(fn, entering edge was a
    /// refined resolution)`. A recursion finding requires *every* edge of
    /// the detected cycle to be refined — a cycle that exists only
    /// through a name-keyed fallback join is a resolution artifact.
    active: Vec<(usize, bool)>,
}

/// Run the cost analysis over one lint's file set. `lint` names the
/// family whose `allow` annotations exclude functions from traversal
/// (`ni-cycle-budget` or `ni-stack-depth`); findings for *both* families
/// are produced and exemption-checked individually.
pub fn analyze(files: &[&FileAnalysis], structs: &StructTable, opts: &CostModel, lint: &str) -> CostReport {
    let pairs: Vec<(&ast::File, &crate::scope::Scopes)> = files.iter().map(|fa| (&fa.ast, &fa.scopes)).collect();
    let graph = CallGraph::build(&pairs, lint);
    let fns = graph.nodes;
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in fns.iter().enumerate() {
        by_name.entry(n.item.name.as_str()).or_default().push(i);
    }
    let state = fns.iter().map(|_| St::Unvisited).collect();
    let mut a = Analyzer {
        files,
        opts,
        fns,
        by_name,
        state,
        structs,
        findings: Vec::new(),
        active: Vec::new(),
    };
    let mut report = CostReport::default();
    for idx in 0..a.fns.len() {
        if !a.fns[idx].hot || a.fns[idx].allowed {
            continue;
        }
        let summary = a.summarize(idx, true);
        let n = &a.fns[idx];
        let label = match n.self_ty {
            Some(ty) => format!("{ty}::{}", n.item.name),
            None => n.item.name.clone(),
        };
        let fa = a.files[n.file];
        let tok = &fa.toks[n.item.name_tok];
        let cycles = summary.cycles.add(CycleInterval::exact(NI_DECISION_BASE_CYCLES));
        report.roots.push(RootReport {
            root: label.clone(),
            file: fa.rel.clone(),
            line: tok.line,
            col: tok.col,
            cycles,
            call_depth: summary.depth,
            stack_bytes: summary.stack,
        });
        a.root_findings(idx, &label, cycles, &summary);
    }
    report.findings = std::mem::take(&mut a.findings);
    report
}

impl<'a> Analyzer<'a> {
    fn emit(&mut self, family: &str, file: usize, tok_idx: usize, message: String, note: &str) {
        let fa = self.files[file];
        if fa.scopes.is_exempt(family, tok_idx) {
            return;
        }
        let t = &fa.toks[tok_idx.min(fa.toks.len().saturating_sub(1))];
        self.findings.push(Finding {
            lint: family.to_string(),
            file: fa.rel.clone(),
            line: t.line,
            col: t.col,
            message,
            note: (!note.is_empty()).then(|| note.to_string()),
        });
    }

    fn root_findings(&mut self, idx: usize, label: &str, cycles: CycleInterval, s: &FnSummary) {
        let (file, name_tok) = (self.fns[idx].file, self.fns[idx].item.name_tok);
        if cycles.is_unbounded() {
            self.emit(
                NI_CYCLE_BUDGET,
                file,
                name_tok,
                format!("hot root `{label}` has no static cycle bound (see the unbounded-loop findings above)"),
                "every loop reachable from a hot root needs a counted range or `// analysis: bound N`",
            );
        } else if cycles.hi > self.opts.budget_cycles {
            self.emit(
                NI_CYCLE_BUDGET,
                file,
                name_tok,
                format!(
                    "hot root `{label}` may cost {} cycles per decision — over the budget of {} ({} µs at 66 MHz)",
                    cycles.hi,
                    self.opts.budget_cycles,
                    self.opts.budget_cycles / (I960_HZ / 1_000_000)
                ),
                "tighten loop bounds, move work off the hot path, or raise budget_cycles in analysis.toml",
            );
        }
        if s.depth > self.opts.max_call_depth {
            self.emit(
                NI_STACK_DEPTH,
                file,
                name_tok,
                format!(
                    "hot root `{label}` may reach call depth {} — over max_call_depth = {}",
                    s.depth, self.opts.max_call_depth
                ),
                "NI firmware runs on a fixed-size interrupt stack; flatten the call chain",
            );
        }
        if s.stack > self.opts.max_stack_bytes {
            self.emit(
                NI_STACK_DEPTH,
                file,
                name_tok,
                format!(
                    "hot root `{label}` may use {} stack bytes — over max_stack_bytes = {}",
                    s.stack, self.opts.max_stack_bytes
                ),
                "NI firmware runs on a fixed-size interrupt stack; shrink locals or the call chain",
            );
        }
    }

    fn summarize(&mut self, idx: usize, edge_refined: bool) -> FnSummary {
        if let St::Done(s) = &self.state[idx] {
            return s.clone();
        }
        self.state[idx] = St::InProgress;
        self.active.push((idx, edge_refined));
        let item = self.fns[idx].item;
        let file = self.fns[idx].file;
        let self_ty = self.fns[idx].self_ty;
        let summary = match &item.body {
            Some(body) if !self.fns[idx].allowed => {
                let mut cx = FnCx {
                    file,
                    self_ty: self_ty.map(str::to_string),
                    recv: self.recv_types(idx),
                    marks: self.bound_marks(idx),
                    frame_bytes: FRAME_BASE_BYTES + 8 * item.params.len() as u64,
                    callee_depth: 0,
                    callee_stack: 0,
                };
                let cycles = self.cost_block(&mut cx, body).fold();
                for &(tok, n, used) in &cx.marks.clone() {
                    if !used {
                        self.emit(
                            NI_CYCLE_BUDGET,
                            file,
                            tok,
                            format!("`// analysis: bound {n}` does not cover a loop or iterator drain"),
                            "the annotation binds to the loop on its line or the next statement; delete or move it",
                        );
                    }
                }
                FnSummary {
                    cycles,
                    depth: 1 + cx.callee_depth,
                    stack: cx.frame_bytes.saturating_add(cx.callee_stack),
                }
            }
            // Allowed bodies and bodiless trait declarations are opaque:
            // one default call charge, one frame.
            _ => FnSummary {
                cycles: OPAQUE_CALL,
                depth: 1,
                stack: OPAQUE_FRAME_BYTES,
            },
        };
        self.active.pop();
        self.state[idx] = St::Done(summary.clone());
        summary
    }

    /// Receiver types for every method call in `idx`'s body, keyed by
    /// method-name token (a [`TypeDomain`] run that records receivers).
    fn recv_types(&self, idx: usize) -> BTreeMap<usize, AbsTy> {
        struct Probe<'x, 'a> {
            inner: TypeDomain<'a>,
            seen: &'x mut BTreeMap<usize, AbsTy>,
        }
        impl Domain for Probe<'_, '_> {
            type V = AbsTy;
            fn bottom(&self) -> AbsTy {
                self.inner.bottom()
            }
            fn join(&self, a: &AbsTy, b: &AbsTy) -> AbsTy {
                self.inner.join(a, b)
            }
            fn param_value(&mut self, p: &ast::Param, self_ty: Option<&str>) -> AbsTy {
                self.inner.param_value(p, self_ty)
            }
            fn transfer(&mut self, e: &Expr, children: &[AbsTy], env: &Env<AbsTy>) -> AbsTy {
                if let Expr::MethodCall { tok, .. } = e {
                    let old = self.seen.get(tok).cloned().unwrap_or(AbsTy::Unknown);
                    let joined = if matches!(old, AbsTy::Unknown) {
                        children[0].clone()
                    } else {
                        abs_join(&old, &children[0])
                    };
                    self.seen.insert(*tok, joined);
                }
                self.inner.transfer(e, children, env)
            }
            fn bind_split(&self, v: &AbsTy) -> AbsTy {
                self.inner.bind_split(v)
            }
            fn iter_elem(&self, v: &AbsTy) -> AbsTy {
                self.inner.iter_elem(v)
            }
            fn let_decl(&mut self, ty: &TypeRef, inferred: AbsTy) -> AbsTy {
                self.inner.let_decl(ty, inferred)
            }
            fn assign_field(&mut self, old: &AbsTy, value: &AbsTy) -> AbsTy {
                self.inner.assign_field(old, value)
            }
        }
        let mut seen = BTreeMap::new();
        let fa = self.files[self.fns[idx].file];
        let mut probe = Probe {
            inner: TypeDomain {
                cx: TyCx {
                    structs: self.structs,
                    toks: &fa.toks,
                },
            },
            seen: &mut seen,
        };
        crate::dataflow::flow_fn(self.fns[idx].item, self.fns[idx].self_ty, &mut probe);
        seen
    }

    /// Bound annotations whose anchor falls inside `idx`'s span.
    fn bound_marks(&self, idx: usize) -> Vec<(usize, u64, bool)> {
        let span = self.fns[idx].item.span;
        let mut marks: Vec<(usize, u64, bool)> = self.files[self.fns[idx].file]
            .scopes
            .bounds
            .iter()
            .filter(|&&(tok, _)| span.start <= tok && tok <= span.end)
            .map(|&(tok, n)| (tok, n, false))
            .collect();
        marks.sort_unstable();
        marks
    }

    /// Trip-count interval for the loop/drain anchored at `tok`:
    /// annotation > counted inference > allow exemption > unbounded
    /// (finding). Must be called *before* walking the loop body so inner
    /// loops cannot steal the outer annotation.
    fn loop_bound(&mut self, cx: &mut FnCx, tok: usize, counted: Option<u64>, what: &str) -> CycleInterval {
        let mark = cx
            .marks
            .iter_mut()
            .rev()
            .find(|&&mut (anchor, _, used)| !used && anchor <= tok);
        if let Some(m) = mark {
            m.2 = true;
            return CycleInterval::new(0, m.1);
        }
        if let Some(n) = counted {
            return CycleInterval::exact(n);
        }
        if self.files[cx.file].scopes.is_exempt(NI_CYCLE_BUDGET, tok) {
            // An allowed loop contributes a single iteration.
            return CycleInterval::new(0, 1);
        }
        self.emit(
            NI_CYCLE_BUDGET,
            cx.file,
            tok,
            format!("{what} on an NI hot path has no static trip-count bound"),
            "use a counted range, annotate `// analysis: bound N`, or allow(ni-cycle-budget) with a reason",
        );
        CycleInterval::new(0, u64::MAX)
    }

    fn cost_block(&mut self, cx: &mut FnCx, b: &Block) -> Cost {
        let mut total = CycleInterval::ZERO;
        for st in &b.stmts {
            total = total.add(match st {
                Stmt::Let {
                    pat,
                    ty,
                    init,
                    els,
                    span,
                } => {
                    self.note_local(cx, pat, ty.as_ref(), init.as_ref(), span.start);
                    let mut c = init
                        .as_ref()
                        .map(|e| self.cost_expr(cx, e).fold())
                        .unwrap_or(CycleInterval::ZERO);
                    if let Some(eb) = els {
                        let eb = self.cost_block(cx, eb).fold();
                        c = c
                            .add(CycleInterval::exact(BRANCH_CYCLES))
                            .add(CycleInterval::ZERO.join(eb));
                    }
                    c.add(CycleInterval::exact(ALU_CYCLES))
                }
                Stmt::Expr(e) => self.cost_expr(cx, e).fold(),
                Stmt::Item(_) => CycleInterval::ZERO,
                Stmt::Opaque(sp) => self.opaque_span(cx, sp.start, sp.end),
            });
        }
        Cost::of(total)
    }

    /// Frame accounting for one `let`, with the large-local check.
    fn note_local(&mut self, cx: &mut FnCx, pat: &ast::Pat, ty: Option<&TypeRef>, init: Option<&Expr>, at: usize) {
        let mut bytes = 8u64.saturating_mul(pat.names.len().max(1) as u64);
        if let Some(sz) = ty.and_then(array_type_bytes) {
            bytes = sz;
        } else if let Some(Expr::Array { elems, .. }) = init {
            // `[x; N]` parses as element + count; a literal count sizes
            // the local (element size unknown → 8-byte estimate).
            let n = match elems.last() {
                Some(e) if elems.len() == 2 => int_lit(e).unwrap_or(elems.len() as u64),
                _ => elems.len() as u64,
            };
            bytes = n.saturating_mul(8);
        }
        if bytes > self.opts.max_local_bytes {
            self.emit(
                NI_STACK_DEPTH,
                cx.file,
                at,
                format!(
                    "stack local of ~{bytes} bytes — over max_local_bytes = {}",
                    self.opts.max_local_bytes
                ),
                "large buffers belong in pre-allocated stream state, not on the NI interrupt stack",
            );
        }
        cx.frame_bytes = cx.frame_bytes.saturating_add(bytes);
    }

    /// Price unmodelled tokens one ALU cycle per code token; a loop
    /// keyword hiding in there defeats bound analysis and is reported.
    fn opaque_span(&mut self, cx: &mut FnCx, start: usize, end: usize) -> CycleInterval {
        let fa = self.files[cx.file];
        let mut n = 0u64;
        let mut loop_tok = None;
        for (i, t) in fa
            .toks
            .iter()
            .enumerate()
            .take(end.min(fa.toks.len().saturating_sub(1)) + 1)
            .skip(start)
        {
            if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            n += 1;
            if matches!(t.text.as_str(), "for" | "while" | "loop") && loop_tok.is_none() {
                loop_tok = Some(i);
            }
        }
        if let Some(i) = loop_tok {
            if !self.files[cx.file].scopes.is_exempt(NI_CYCLE_BUDGET, i) {
                self.emit(
                    NI_CYCLE_BUDGET,
                    cx.file,
                    i,
                    "a loop inside a statement the analyzer could not model cannot be cycle-bounded".into(),
                    "simplify the statement so the tolerant parser models the loop, or allow(ni-cycle-budget)",
                );
                return CycleInterval::new(n, u64::MAX);
            }
        }
        CycleInterval::exact(n)
    }

    fn cost_expr(&mut self, cx: &mut FnCx, e: &Expr) -> Cost {
        let alu = CycleInterval::exact(ALU_CYCLES);
        let branch = CycleInterval::exact(BRANCH_CYCLES);
        match e {
            Expr::Path { .. } | Expr::Lit { .. } => Cost::ZERO,
            Expr::Unary { expr, .. } | Expr::Ref { expr, .. } | Expr::Cast { expr, .. } => {
                Cost::of(self.cost_expr(cx, expr).fold().add(alu))
            }
            Expr::Try { expr, .. } => Cost::of(self.cost_expr(cx, expr).fold().add(branch)),
            Expr::Binary { op, lhs, rhs, .. } => {
                let c = self.cost_expr(cx, lhs).fold().add(self.cost_expr(cx, rhs).fold());
                let w = match op {
                    ast::BinOp::Mul => MUL_CYCLES,
                    ast::BinOp::Div | ast::BinOp::Rem => DIV_CYCLES,
                    ast::BinOp::And | ast::BinOp::Or => BRANCH_CYCLES,
                    _ => ALU_CYCLES,
                };
                Cost::of(c.add(CycleInterval::exact(w)))
            }
            Expr::Assign { target, value, .. } => {
                let store = match target.as_ref() {
                    Expr::Field { .. } | Expr::Index { .. } => TOUCH,
                    _ => alu,
                };
                Cost::of(
                    self.cost_expr(cx, target)
                        .fold()
                        .add(self.cost_expr(cx, value).fold())
                        .add(store),
                )
            }
            Expr::Field { base, .. } => Cost::of(self.cost_expr(cx, base).fold().add(TOUCH)),
            Expr::Index { base, index, .. } => Cost::of(
                self.cost_expr(cx, base)
                    .fold()
                    .add(self.cost_expr(cx, index).fold())
                    .add(TOUCH)
                    .add(branch),
            ),
            Expr::Call { callee, args, tok } => {
                let mut c = self.cost_expr(cx, callee).fold();
                for a in args {
                    c = c.add(self.cost_expr(cx, a).fold());
                }
                let (name, qual) = match callee.as_ref() {
                    Expr::Path { segs } => (
                        segs.last().map(|s| s.text.as_str()),
                        (segs.len() >= 2).then(|| segs[segs.len() - 2].text.as_str()),
                    ),
                    _ => (None, None),
                };
                Cost::of(c.add(self.call_cost(cx, name, qual, *tok)))
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                tok,
            } => self.method_cost(cx, recv, method, args, *tok),
            Expr::MacroCall { name, inner, .. } => {
                if name.starts_with("debug_assert") {
                    // Compiled out of release firmware.
                    Cost::ZERO
                } else {
                    Cost::of(self.opaque_span(cx, inner.start, inner.end).add(branch))
                }
            }
            Expr::StructLit { fields, .. } => {
                let mut c = CycleInterval::exact(ALU_CYCLES * fields.len().max(1) as u64);
                for (_, f) in fields {
                    c = c.add(self.cost_expr(cx, f).fold());
                }
                Cost::of(c)
            }
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                let mut c = CycleInterval::exact(ALU_CYCLES * elems.len() as u64);
                for el in elems {
                    c = c.add(self.cost_expr(cx, el).fold());
                }
                Cost::of(c)
            }
            Expr::BlockExpr(b) => self.cost_block(cx, b),
            Expr::If { cond, then, alt, .. } => {
                let c = self.cost_expr(cx, cond).fold().add(branch);
                let t = self.cost_block(cx, then).fold();
                let a = alt
                    .as_ref()
                    .map(|a| self.cost_expr(cx, a).fold())
                    .unwrap_or(CycleInterval::ZERO);
                Cost::of(c.add(t.join(a)))
            }
            Expr::Match { scrutinee, arms, .. } => {
                let c = self
                    .cost_expr(cx, scrutinee)
                    .fold()
                    .add(CycleInterval::exact(BRANCH_CYCLES * arms.len().max(1) as u64));
                let mut joined: Option<CycleInterval> = None;
                for arm in arms {
                    let mut ac = arm
                        .guard
                        .as_ref()
                        .map(|g| self.cost_expr(cx, g).fold())
                        .unwrap_or(CycleInterval::ZERO);
                    ac = ac.add(self.cost_expr(cx, &arm.body).fold());
                    joined = Some(joined.map_or(ac, |j| j.join(ac)));
                }
                Cost::of(c.add(joined.unwrap_or(CycleInterval::ZERO)))
            }
            Expr::While { cond, body, tok, .. } => {
                let iters = self.loop_bound(cx, *tok, None, "`while` loop");
                let c = self.cost_expr(cx, cond).fold().add(branch);
                let b = self.cost_block(cx, body).fold();
                Cost::of(c.add(c.add(b).scale(iters)))
            }
            Expr::Loop { body, tok } => {
                let iters = self.loop_bound(cx, *tok, None, "`loop`");
                let b = self.cost_block(cx, body).fold().add(branch);
                Cost::of(b.scale(iters))
            }
            Expr::For { iter, body, tok, .. } => {
                let counted = counted_range(iter, &self.files[cx.file].toks);
                let iters = self.loop_bound(cx, *tok, counted, "`for` loop");
                let ic = self.cost_expr(cx, iter);
                let b = self.cost_block(cx, body).fold();
                Cost::of(
                    ic.total.add(
                        b.add(ic.pending)
                            .add(CycleInterval::exact(ITER_STEP_CYCLES))
                            .scale(iters),
                    ),
                )
            }
            Expr::Closure { body, .. } => self.cost_expr(cx, body),
            Expr::Return { value, .. } | Expr::Jump { value, .. } => Cost::of(
                value
                    .as_ref()
                    .map(|v| self.cost_expr(cx, v).fold())
                    .unwrap_or(CycleInterval::ZERO)
                    .add(branch),
            ),
            Expr::Range { lo, hi, .. } => {
                let mut c = CycleInterval::ZERO;
                if let Some(l) = lo {
                    c = c.add(self.cost_expr(cx, l).fold());
                }
                if let Some(h) = hi {
                    c = c.add(self.cost_expr(cx, h).fold());
                }
                Cost::of(c)
            }
            Expr::Opaque(sp) => Cost::of(self.opaque_span(cx, sp.start, sp.end)),
        }
    }

    /// A method call: an exact impl match on the receiver's type outranks
    /// everything (`SortedList::position` is a binary search, not
    /// `Iterator::position`); then lazy adapters defer, drains multiply,
    /// cheap std combinators cost an integer method, and the rest resolve
    /// through the call graph with receiver-type refinement.
    fn method_cost(&mut self, cx: &mut FnCx, recv: &Expr, method: &str, args: &[Expr], tok: usize) -> Cost {
        let r = self.cost_expr(cx, recv);
        let recv_ty = cx.recv.get(&tok).cloned().unwrap_or(AbsTy::Unknown);
        let cands: Vec<usize> = self.by_name.get(method).cloned().unwrap_or_default();
        let exact: Vec<usize> = match &recv_ty {
            AbsTy::Q16 | AbsTy::Frac | AbsTy::Named(_) => {
                let tyname = match &recv_ty {
                    AbsTy::Q16 => "Q16",
                    AbsTy::Frac => "Frac",
                    AbsTy::Named(t) => t.as_str(),
                    _ => unreachable!(),
                };
                cands
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].self_ty == Some(tyname))
                    .collect()
            }
            _ => Vec::new(),
        };
        if exact.is_empty() {
            if LAZY_ADAPTERS.contains(&method) {
                let mut pending = r.pending;
                for a in args {
                    pending = pending.add(self.cost_expr(cx, a).fold());
                }
                return Cost {
                    total: r.total.add(CycleInterval::exact(ALU_CYCLES)),
                    pending,
                };
            }
            if DRAIN_ADAPTERS.contains(&method) {
                let iters = self.loop_bound(cx, tok, None, &format!("iterator drain `.{method}(…)`"));
                let mut per = r.pending.add(CycleInterval::exact(ITER_STEP_CYCLES));
                for a in args {
                    per = per.add(self.cost_expr(cx, a).fold());
                }
                return Cost::of(r.total.add(per.scale(iters)).add(CycleInterval::exact(CALL_CYCLES)));
            }
        }
        let mut c = r.fold();
        for a in args {
            c = c.add(self.cost_expr(cx, a).fold());
        }
        if exact.is_empty() && CHEAP_STD_METHODS.contains(&method) {
            // `Ordering::then_with`, `Option::is_some`, … — a compare and
            // a branch, not a full opaque call (closure args were just
            // priced once above, which is what these combinators do).
            return Cost::of(c.add(INT_METHOD));
        }
        // `(candidates, refined)`: refined resolution (an exact impl
        // match) is the only method dispatch trusted enough to *report*
        // recursion on; fallback joins still charge the back edge as an
        // opaque call but stay silent — a `.cmp()` on a scalar alias or a
        // tuple must not accuse the same-named user impl.
        let chosen: Option<(Vec<usize>, bool)> = if !exact.is_empty() {
            Some((exact, true))
        } else {
            match &recv_ty {
                AbsTy::Named(t) if is_type_param(t) || self.structs.contains_key(t.as_str()) => {
                    // Generic receivers (`R: ScheduleRepr`) resolve to no
                    // impl by name alone: worst-case over every candidate.
                    (!cands.is_empty()).then_some((cands, false))
                }
                AbsTy::Unknown => (!cands.is_empty()).then_some((cands, false)),
                // Known scalars/collections and scalar aliases: std call.
                _ => None,
            }
        };
        let call = match chosen {
            Some((cand, refined)) => self.candidates_cost(cx, &cand, tok, refined),
            None => {
                let scalar_alias = matches!(&recv_ty, AbsTy::Named(t)
                    if !is_type_param(t) && !self.structs.contains_key(t.as_str()));
                let w = if scalar_alias || matches!(recv_ty, AbsTy::Int { .. } | AbsTy::RawQ16) {
                    INT_METHOD
                } else {
                    OPAQUE_CALL
                };
                self.note_opaque_callee(cx);
                w
            }
        };
        Cost::of(c.add(call))
    }

    fn call_cost(&mut self, cx: &mut FnCx, name: Option<&str>, qual: Option<&str>, tok: usize) -> CycleInterval {
        let Some(name) = name else {
            self.note_opaque_callee(cx);
            return OPAQUE_CALL;
        };
        if qual.is_some_and(is_primitive_ty) {
            // `u64::from(x)`, `u32::try_from(n)`, `i64::max(a, b)` — a
            // width change or compare on a machine scalar.
            return INT_METHOD;
        }
        let all: Vec<usize> = self.by_name.get(name).cloned().unwrap_or_default();
        // `Type::method(…)` / `Self::method(…)` qualifiers narrow by impl.
        let exact: Vec<usize> = match qual {
            Some(q) if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) => {
                let q = if q == "Self" {
                    cx.self_ty.clone()
                } else {
                    Some(q.to_string())
                };
                match q {
                    Some(q) => all
                        .iter()
                        .copied()
                        .filter(|&i| self.fns[i].self_ty == Some(q.as_str()))
                        .collect(),
                    None => Vec::new(),
                }
            }
            _ => Vec::new(),
        };
        if INIT_CTORS.contains(&name) && exact.is_empty() {
            // Init-time constructor boundary, same as the alloc lint. An
            // exactly-resolved user ctor (`Frac::new` on the precedence
            // path) is walked for real instead — the hot path pays its
            // actual body, not a pessimistic opaque interval.
            self.note_opaque_callee(cx);
            return OPAQUE_CALL;
        }
        if all.is_empty() {
            self.note_opaque_callee(cx);
            return OPAQUE_CALL;
        }
        let chosen = if exact.is_empty() { all } else { exact };
        self.candidates_cost(cx, &chosen, tok, true)
    }

    /// Worst case over resolved candidates, with recursion detection
    /// (reported only when the resolution was `refined` — an exact impl
    /// match or a direct path call; fallback joins charge the back edge
    /// silently).
    fn candidates_cost(&mut self, cx: &mut FnCx, cands: &[usize], tok: usize, refined: bool) -> CycleInterval {
        let mut joined: Option<CycleInterval> = None;
        let mut depth = 0u64;
        let mut stack = 0u64;
        for &i in cands {
            let (cy, d, s) = if matches!(self.state[i], St::InProgress) {
                let cycle_refined = refined
                    && self
                        .active
                        .iter()
                        .rposition(|&(f, _)| f == i)
                        .is_some_and(|p| self.active[p + 1..].iter().all(|&(_, r)| r));
                if cycle_refined {
                    let label = match self.fns[i].self_ty {
                        Some(ty) => format!("{ty}::{}", self.fns[i].item.name),
                        None => self.fns[i].item.name.clone(),
                    };
                    self.emit(
                        NI_STACK_DEPTH,
                        cx.file,
                        tok,
                        format!("recursive call into `{label}` on an NI hot path"),
                        "recursion has no static stack bound; rewrite as a bounded loop",
                    );
                }
                (OPAQUE_CALL, 1, OPAQUE_FRAME_BYTES)
            } else {
                let s = self.summarize(i, refined);
                (s.cycles, s.depth, s.stack)
            };
            joined = Some(joined.map_or(cy, |j| j.join(cy)));
            depth = depth.max(d);
            stack = stack.max(s);
        }
        cx.callee_depth = cx.callee_depth.max(depth);
        cx.callee_stack = cx.callee_stack.max(stack);
        joined.unwrap_or(OPAQUE_CALL).add(CycleInterval::exact(CALL_CYCLES))
    }

    fn note_opaque_callee(&mut self, cx: &mut FnCx) {
        cx.callee_depth = cx.callee_depth.max(1);
        cx.callee_stack = cx.callee_stack.max(OPAQUE_FRAME_BYTES);
    }
}

/// A generic type parameter by convention (`R`, `T`, `K1`): one ASCII
/// uppercase letter, optionally followed by digits. Anything longer is a
/// concrete name — and one the struct table does not know is a scalar
/// alias (`Time` = u64), whose methods are std calls.
fn is_type_param(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_uppercase()) && name.len() <= 2 && chars.all(|c| c.is_ascii_digit())
}

/// A machine-scalar path qualifier: `u64::from(…)` is a width change, not
/// an opaque call.
fn is_primitive_ty(name: &str) -> bool {
    matches!(
        name,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "bool"
            | "char"
    )
}

/// `for _ in a..b` / `a..=b` with integer-literal ends.
fn counted_range(iter: &Expr, toks: &[crate::lexer::Tok]) -> Option<u64> {
    if let Expr::Range {
        lo: Some(l),
        hi: Some(h),
        tok,
    } = iter
    {
        let (a, b) = (int_lit(l)?, int_lit(h)?);
        // The lexer emits single-char puncts, so `..=` spans three tokens
        // starting at `tok`; the `=` (when present) is the third.
        let inclusive = toks.get(*tok).is_some_and(|t| t.text.contains('='))
            || toks
                .get(*tok + 2)
                .is_some_and(|t| t.text == "=" && toks[*tok].line == t.line && t.col == toks[*tok].col + 2);
        let n = b.saturating_sub(a);
        return Some(if inclusive { n + 1 } else { n });
    }
    None
}

fn int_lit(e: &Expr) -> Option<u64> {
    match e {
        Expr::Lit {
            kind: LitKind::Int(Some(v)),
            ..
        } => u64::try_from(*v).ok(),
        _ => None,
    }
}

/// Size in bytes of a `[T; N]` type annotation, when statically evident.
fn array_type_bytes(t: &TypeRef) -> Option<u64> {
    let semi = t.toks.iter().position(|s| s == ";")?;
    let elem = t.toks[..semi].iter().find(|s| {
        let c = s.chars().next().unwrap_or(' ');
        c.is_alphabetic() || c == '_'
    })?;
    let count: u64 = t.toks[semi + 1..]
        .iter()
        .find(|s| s.chars().next().is_some_and(|c| c.is_ascii_digit()))?
        .replace('_', "")
        .parse()
        .ok()?;
    Some(count.saturating_mul(scalar_bytes(elem)))
}

/// Byte size of a scalar type name (8 when unknown).
fn scalar_bytes(name: &str) -> u64 {
    match name {
        "bool" | "u8" | "i8" => 1,
        "u16" | "i16" => 2,
        "u32" | "i32" | "f32" | "char" => 4,
        "u128" | "i128" => 16,
        _ => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileAnalysis;

    // -- interval arithmetic ------------------------------------------------

    #[test]
    fn add_and_scale_saturate_instead_of_wrapping() {
        let big = CycleInterval::new(u64::MAX - 1, u64::MAX);
        let sum = big.add(CycleInterval::exact(10));
        assert_eq!(sum.lo, u64::MAX);
        assert_eq!(sum.hi, u64::MAX);
        let prod = big.scale(CycleInterval::exact(3));
        assert!(prod.is_unbounded());
        // Unbounded absorbs through every composition.
        let unb = CycleInterval::new(0, u64::MAX);
        assert!(unb.add(CycleInterval::exact(1)).is_unbounded());
        assert!(CycleInterval::exact(2).scale(unb).is_unbounded());
    }

    #[test]
    fn join_is_the_containing_hull() {
        let a = CycleInterval::new(5, 10);
        let b = CycleInterval::new(2, 7);
        let j = a.join(b);
        assert_eq!((j.lo, j.hi), (2, 10));
        assert_eq!(a.join(a), a);
        // Commutative.
        let k = b.join(a);
        assert_eq!((k.lo, k.hi), (2, 10));
    }

    #[test]
    fn zero_is_the_additive_identity_and_scale_annihilator() {
        let c = CycleInterval::new(3, 9);
        assert_eq!(c.add(CycleInterval::ZERO), c);
        let z = c.scale(CycleInterval::ZERO);
        assert_eq!((z.lo, z.hi), (0, 0));
    }

    // -- name classification ------------------------------------------------

    #[test]
    fn type_param_convention_is_one_letter_plus_digits() {
        for p in ["T", "R", "K1"] {
            assert!(is_type_param(p), "{p}");
        }
        for n in ["Time", "Q16", "Frac", "x", "TB"] {
            assert!(!is_type_param(n), "{n}");
        }
    }

    #[test]
    fn primitive_qualifiers_are_recognised() {
        assert!(is_primitive_ty("u64"));
        assert!(is_primitive_ty("bool"));
        assert!(!is_primitive_ty("Time"));
        assert!(!is_primitive_ty("Frac"));
    }

    #[test]
    fn scalar_sizes_match_layout() {
        assert_eq!(scalar_bytes("u8"), 1);
        assert_eq!(scalar_bytes("i16"), 2);
        assert_eq!(scalar_bytes("u32"), 4);
        assert_eq!(scalar_bytes("u64"), 8);
        assert_eq!(scalar_bytes("u128"), 16);
        assert_eq!(scalar_bytes("SomeStruct"), 8);
    }

    // -- whole-analysis behaviour ------------------------------------------

    fn report(src: &str) -> CostReport {
        let fa = FileAnalysis {
            rel: std::path::PathBuf::from("t.rs"),
            toks: crate::lexer::lex(src),
            scopes: crate::scope::analyze(&crate::lexer::lex(src)),
            ast: crate::parser::parse(&crate::lexer::lex(src)),
        };
        let structs = crate::dataflow::StructTable::new();
        analyze(&[&fa], &structs, &CostModel::default(), crate::lints::NI_CYCLE_BUDGET)
    }

    #[test]
    fn counted_loop_needs_no_annotation() {
        let r = report("// analysis: hot\nfn f(mut x: u64) -> u64 { for i in 0..16 { x += i; } x }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.roots.len(), 1);
        assert!(!r.roots[0].cycles.is_unbounded());
    }

    #[test]
    fn inclusive_range_counts_the_extra_iteration() {
        let half = report("// analysis: hot\nfn f(mut x: u64) { for _ in 0..8 { x += 1; } }");
        let incl = report("// analysis: hot\nfn f(mut x: u64) { for _ in 0..=8 { x += 1; } }");
        assert!(incl.roots[0].cycles.hi > half.roots[0].cycles.hi);
    }

    #[test]
    fn annotated_while_is_bounded() {
        let r = report(
            "// analysis: hot\nfn f(mut x: u64) -> u64 {\n    // analysis: bound 4\n    while x > 0 { x -= 1; }\n    x\n}",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(!r.roots[0].cycles.is_unbounded());
    }

    #[test]
    fn unbounded_loop_flags_loop_and_root() {
        let r = report("// analysis: hot\nfn f(mut x: u64) -> u64 { while x > 0 { x -= 1; } x }");
        assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
        assert!(r.roots[0].cycles.is_unbounded());
    }

    #[test]
    fn exact_impl_match_outranks_iterator_adapter_names() {
        // `self.position(…)` resolves to the user method (a bounded body),
        // not to `Iterator::position` (which would demand a drain bound).
        let r = report(
            "struct S { n: u64 }\nimpl S {\n    fn position(&self) -> u64 { self.n + 1 }\n    // analysis: hot\n    fn f(&self) -> u64 { self.position() }\n}",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(!r.roots[0].cycles.is_unbounded());
    }

    #[test]
    fn direct_recursion_is_reported_once() {
        let r = report("// analysis: hot\nfn f(n: u64) -> u64 { if n == 0 { 0 } else { f(n - 1) } }");
        let rec: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.message.contains("recursive call"))
            .collect();
        assert_eq!(rec.len(), 1, "{:?}", r.findings);
    }

    #[test]
    fn name_join_cycles_stay_silent() {
        // `x.helper()` joins by name only (unknown receiver); the cycle
        // f -> helper -> f exists only through that fallback edge, so no
        // recursion is reported — but the cost still terminates.
        let r = report(
            "struct A;\nstruct B;\nimpl A { fn helper(&self) -> u64 { 1 } }\nimpl B { fn helper(&self) -> u64 { f() } }\n// analysis: hot\nfn f() -> u64 { x.helper() }",
        );
        let rec: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.message.contains("recursive call"))
            .collect();
        assert!(rec.is_empty(), "{:?}", r.findings);
        assert_eq!(r.roots.len(), 1);
    }

    #[test]
    fn large_stack_local_and_frame_are_flagged() {
        let r = report("// analysis: hot\nfn f(seed: u8) -> u8 { let big: [u8; 4096] = [seed; 4096]; big[0] }");
        assert!(
            r.findings
                .iter()
                .any(|f| f.lint == crate::lints::NI_STACK_DEPTH && f.message.contains("~4096 bytes")),
            "{:?}",
            r.findings
        );
        assert!(r.roots[0].stack_bytes >= 4096);
    }

    #[test]
    fn allowed_functions_are_opaque_frames() {
        let r = report(
            "// analysis: allow(ni-cycle-budget) reason=\"host-side\"\nfn spin(mut n: u64) -> u64 { while n > 0 { n -= 1; } n }\n// analysis: hot\nfn f() -> u64 { spin(9) }",
        );
        assert!(
            r.findings.iter().all(|f| f.lint != crate::lints::NI_CYCLE_BUDGET),
            "{:?}",
            r.findings
        );
        assert!(!r.roots[0].cycles.is_unbounded());
    }
}
