//! Findings and their rendering (rustc-style text, or JSON for tooling).

use std::fmt;
use std::path::PathBuf;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Lint family that fired (`ni-no-float`, …).
    pub lint: String,
    /// Repo-relative file.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What went wrong.
    pub message: String,
    /// Optional remediation note.
    pub note: Option<String>,
}

impl fmt::Display for Finding {
    /// rustc-style: `error[lint]: message` + `  --> file:line:col`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.lint, self.message)?;
        write!(f, "  --> {}:{}:{}", self.file.display(), self.line, self.col)?;
        if let Some(note) = &self.note {
            write!(f, "\n   = note: {note}")?;
        }
        Ok(())
    }
}

/// Render findings as a JSON array (hand-rolled: this crate takes no
/// dependencies, and the schema is four scalar fields).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"lint\": \"{}\", ", escape(&f.lint)));
        out.push_str(&format!("\"file\": \"{}\", ", escape(&f.file.display().to_string())));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"col\": {}, ", f.col));
        out.push_str(&format!("\"message\": \"{}\"", escape(&f.message)));
        if let Some(note) = &f.note {
            out.push_str(&format!(", \"note\": \"{}\"", escape(note)));
        }
        out.push('}');
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            lint: "ni-no-float".into(),
            file: PathBuf::from("crates/dwcs/src/admission.rs"),
            line: 35,
            col: 9,
            message: "f64 in NI-resident code".into(),
            note: Some("use fixedpt::Q16 or Frac".into()),
        }
    }

    #[test]
    fn display_is_rustc_shaped() {
        let text = sample().to_string();
        assert!(text.starts_with("error[ni-no-float]: "));
        assert!(text.contains("--> crates/dwcs/src/admission.rs:35:9"));
        assert!(text.contains("note: use fixedpt"));
    }

    #[test]
    fn json_escapes_and_structures() {
        let mut f = sample();
        f.message = "contains \"quotes\" and \\slash".into();
        f.note = None;
        let json = to_json(&[f]);
        assert!(json.contains(r#"\"quotes\""#));
        assert!(json.contains(r#""line": 35"#));
        assert!(!json.contains("note"));
        assert_eq!(to_json(&[]), "[]");
    }
}
