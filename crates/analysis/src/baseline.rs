//! The findings baseline: CI fails only on *new* findings.
//!
//! A baseline entry is the fingerprint `(lint, file, message)` — no line
//! numbers, so unrelated edits that shift code do not invalidate it.
//! Matching is multiset-style: a baseline entry absorbs at most one live
//! finding, so a *second* identical violation in the same file is still
//! new.
//!
//! The expected steady state of this repository is an **empty** baseline
//! (`check` exits clean); the mechanism exists so that a future PR which
//! knowingly introduces debt can land it without disabling the gate, and
//! so the gate distinguishes inherited debt from regressions.

use crate::diag::{escape, Finding};
use crate::json::{self, Value};

/// One suppressed fingerprint.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Lint family.
    pub lint: String,
    /// Repo-relative file, forward slashes.
    pub file: String,
    /// Exact finding message.
    pub message: String,
}

impl Entry {
    fn of(f: &Finding) -> Entry {
        Entry {
            lint: f.lint.clone(),
            file: f.file.display().to_string(),
            message: f.message.clone(),
        }
    }
}

/// Serialize findings into baseline form (sorted, deduplicated only by
/// full identity — multiset semantics keep repeated fingerprints).
pub fn write(findings: &[Finding]) -> String {
    let mut entries: Vec<Entry> = findings.iter().map(Entry::of).collect();
    entries.sort();
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"lint\": \"{}\", \"file\": \"{}\", \"message\": \"{}\"}}",
            escape(&e.lint),
            escape(&e.file),
            escape(&e.message)
        ));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parse a baseline document.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let doc = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    match doc.get("version") {
        Some(Value::Num(n)) if n == "1" => {}
        _ => return Err("baseline version must be 1".into()),
    }
    let items = doc
        .get("findings")
        .and_then(|v| v.as_arr())
        .ok_or("baseline has no `findings` array")?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let field = |k: &str| {
            item.get(k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or(format!("baseline finding #{i} lacks string field `{k}`"))
        };
        out.push(Entry {
            lint: field("lint")?,
            file: field("file")?,
            message: field("message")?,
        });
    }
    Ok(out)
}

/// Split findings into `(new, suppressed)` against the baseline.
/// Multiset matching: each baseline entry absorbs at most one finding.
pub fn partition(findings: Vec<Finding>, baseline: &[Entry]) -> (Vec<Finding>, Vec<Finding>) {
    let mut budget: std::collections::BTreeMap<Entry, usize> = std::collections::BTreeMap::new();
    for e in baseline {
        *budget.entry(e.clone()).or_insert(0) += 1;
    }
    let mut fresh = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let key = Entry::of(&f);
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                suppressed.push(f);
            }
            _ => fresh.push(f),
        }
    }
    (fresh, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(lint: &str, file: &str, msg: &str) -> Finding {
        Finding {
            lint: lint.into(),
            file: PathBuf::from(file),
            line: 1,
            col: 1,
            message: msg.into(),
            note: None,
        }
    }

    #[test]
    fn round_trips_through_text() {
        let fs = vec![
            finding("ni-no-alloc", "a.rs", "x"),
            finding("q16-overflow", "b.rs", "y \"quoted\""),
        ];
        let parsed = parse(&write(&fs)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].message, "y \"quoted\"");
    }

    #[test]
    fn empty_baseline_round_trips() {
        assert_eq!(parse(&write(&[])).unwrap(), vec![]);
    }

    #[test]
    fn partition_is_multiset() {
        let baseline = parse(&write(&[finding("l", "f.rs", "m")])).unwrap();
        // Two identical live findings, one baseline entry: one suppressed,
        // one new.
        let live = vec![finding("l", "f.rs", "m"), finding("l", "f.rs", "m")];
        let (fresh, suppressed) = partition(live, &baseline);
        assert_eq!(fresh.len(), 1);
        assert_eq!(suppressed.len(), 1);
    }

    #[test]
    fn line_moves_do_not_invalidate_the_baseline() {
        let baseline = parse(&write(&[finding("l", "f.rs", "m")])).unwrap();
        let mut moved = finding("l", "f.rs", "m");
        moved.line = 999;
        let (fresh, suppressed) = partition(vec![moved], &baseline);
        assert!(fresh.is_empty());
        assert_eq!(suppressed.len(), 1);
    }
}
