//! Intra-procedural dataflow over the tolerant AST.
//!
//! One generic engine walks a function body in execution order,
//! maintaining an environment of per-variable abstract values, and defers
//! the meaning of values to a [`Domain`]:
//!
//! * the **type domain** ([`abs_transfer`] / [`TypeDomain`]) computes
//!   [`AbsTy`] — enough Rust typing to know that `self.buf` is a
//!   `VecDeque`, that `q.raw()` is the bare `i64` behind a `Q16`, and
//!   that `f.num()` carries `Frac`-numerator provenance. `q16-overflow`
//!   and `ni-no-alloc` build on it;
//! * the **taint domain** (in `lints.rs`) tracks which values derive
//!   from channel-receive arrival order for `sweep-determinism`.
//!
//! The engine is deliberately simple: flow-sensitive straight-line
//! execution, branch-join at `if`/`match`, loop bodies walked twice (one
//! join iteration reaches the fixpoint for these flat lattices). Domains
//! emit findings from `transfer`; because loop bodies are walked twice,
//! callers de-duplicate identical findings afterwards.

use crate::ast::*;
use crate::lexer::Tok;
use std::collections::BTreeMap;

/// Variable environment: name → abstract value.
pub type Env<V> = BTreeMap<String, V>;

/// Provenance of an integer value, for `Frac` truncation checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Prov {
    /// No tracked provenance.
    None,
    /// Came from `Frac::num()` (possibly through casts).
    FracNum,
    /// Came from `Frac::den()` (possibly through casts).
    FracDen,
}

/// The abstract types the lints reason about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsTy {
    /// `fixedpt::Q16` (Q16.16 fixed point backed by `i64`).
    Q16,
    /// `fixedpt::Frac` (exact `u32/u32` rational).
    Frac,
    /// The raw `i64` bits of a `Q16` (`.raw()` or `.0`): multiplying two
    /// of these without widening overflows the fractional headroom.
    RawQ16,
    /// A machine integer.
    Int {
        /// Bit width (usize/isize count as 64).
        bits: u16,
        /// Signedness.
        signed: bool,
        /// `Frac` component provenance.
        prov: Prov,
    },
    /// A growable std collection (`Vec`, `VecDeque`, `String`, `BTreeMap`,
    /// `BTreeSet`, `BinaryHeap`, `HashMap`, `HashSet`).
    Coll {
        /// Collection head name.
        head: String,
        /// Element type.
        elem: Box<AbsTy>,
    },
    /// A named struct (fields resolvable through the struct table).
    Named(String),
    /// Anything else.
    Unknown,
}

impl AbsTy {
    /// Bit width of the value, when meaningful for shift checks.
    pub fn width(&self) -> Option<u16> {
        match self {
            AbsTy::RawQ16 => Some(64),
            AbsTy::Int { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    /// `Frac` component provenance, if any.
    pub fn prov(&self) -> Prov {
        match self {
            AbsTy::Int { prov, .. } => *prov,
            _ => Prov::None,
        }
    }

    fn strip_prov(self) -> AbsTy {
        match self {
            AbsTy::Int { bits, signed, .. } => AbsTy::Int {
                bits,
                signed,
                prov: Prov::None,
            },
            t => t,
        }
    }
}

/// Struct table: struct name → (field name, abstract field type).
pub type StructTable = BTreeMap<String, Vec<(String, AbsTy)>>;

/// Shared context for type evaluation.
pub struct TyCx<'a> {
    /// Known struct definitions (from every parsed file, test regions
    /// excluded).
    pub structs: &'a StructTable,
    /// The file's full token stream (for literal suffixes).
    pub toks: &'a [Tok],
}

/// Collection heads whose insertion methods can grow the heap.
pub const GROWABLE: [&str; 8] = [
    "Vec",
    "VecDeque",
    "String",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
];

/// Wrappers that are transparent for our purposes (the interesting type
/// is the first generic argument).
const TRANSPARENT: [&str; 6] = ["Option", "Box", "Rc", "Arc", "RefCell", "Cell"];

fn int_ty(name: &str) -> Option<(u16, bool)> {
    Some(match name {
        "i8" => (8, true),
        "i16" => (16, true),
        "i32" => (32, true),
        "i64" => (64, true),
        "i128" => (128, true),
        "isize" => (64, true),
        "u8" => (8, false),
        "u16" => (16, false),
        "u32" => (32, false),
        "u64" => (64, false),
        "u128" => (128, false),
        "usize" => (64, false),
        _ => return None,
    })
}

/// Abstract type for a bare type name (used for `self` receivers).
pub fn abs_from_name(name: &str) -> AbsTy {
    match name {
        "Q16" => AbsTy::Q16,
        "Frac" => AbsTy::Frac,
        _ => {
            if let Some((bits, signed)) = int_ty(name) {
                AbsTy::Int {
                    bits,
                    signed,
                    prov: Prov::None,
                }
            } else {
                AbsTy::Named(name.to_string())
            }
        }
    }
}

/// Abstract type of a syntactic type reference.
pub fn abs_from_typeref(t: &TypeRef) -> AbsTy {
    abs_from_head(t, 0)
}

fn abs_from_head(t: &TypeRef, depth: u8) -> AbsTy {
    if depth > 4 {
        return AbsTy::Unknown;
    }
    let Some(head) = t.head() else {
        return AbsTy::Unknown;
    };
    if TRANSPARENT.contains(&head) {
        return match t.first_arg() {
            Some(inner) => abs_from_head(&inner, depth + 1),
            None => AbsTy::Unknown,
        };
    }
    if GROWABLE.contains(&head) {
        let elem = t
            .first_arg()
            .map(|a| abs_from_head(&a, depth + 1))
            .unwrap_or(AbsTy::Unknown);
        return AbsTy::Coll {
            head: head.to_string(),
            elem: Box::new(elem),
        };
    }
    abs_from_name(head)
}

/// Join for the flat [`AbsTy`] lattice.
pub fn abs_join(a: &AbsTy, b: &AbsTy) -> AbsTy {
    if a == b {
        return a.clone();
    }
    match (a, b) {
        (AbsTy::Unknown, x) | (x, AbsTy::Unknown) => x.clone(),
        (
            AbsTy::Int { bits, signed, .. },
            AbsTy::Int {
                bits: b2, signed: s2, ..
            },
        ) if bits == b2 && signed == s2 => AbsTy::Int {
            bits: *bits,
            signed: *signed,
            prov: Prov::None,
        },
        (AbsTy::Coll { head, elem }, AbsTy::Coll { head: h2, elem: e2 }) if head == h2 => AbsTy::Coll {
            head: head.clone(),
            elem: Box::new(abs_join(elem, e2)),
        },
        _ => AbsTy::Unknown,
    }
}

/// The shared type-transfer function: abstract type of `e` given its
/// children's types (engine child order). Control-flow nodes never reach
/// here — the engine joins them itself.
pub fn abs_transfer(e: &Expr, children: &[AbsTy], cx: &TyCx) -> AbsTy {
    match e {
        Expr::Lit {
            kind: LitKind::Int(_),
            tok,
        } => {
            // The suffix decides the width; unsuffixed literals default
            // to i32, like rustc's fallback.
            let text = cx.toks.get(*tok).map(|t| t.text.as_str()).unwrap_or("");
            for (suffix, bits, signed) in [
                ("i128", 128u16, true),
                ("u128", 128, false),
                ("i64", 64, true),
                ("u64", 64, false),
                ("usize", 64, false),
                ("isize", 64, true),
                ("i32", 32, true),
                ("u32", 32, false),
                ("i16", 16, true),
                ("u16", 16, false),
                ("i8", 8, true),
                ("u8", 8, false),
            ] {
                if text.ends_with(suffix) {
                    return AbsTy::Int {
                        bits,
                        signed,
                        prov: Prov::None,
                    };
                }
            }
            AbsTy::Int {
                bits: 32,
                signed: true,
                prov: Prov::None,
            }
        }
        Expr::Lit { .. } => AbsTy::Unknown,
        Expr::Path { segs } => match segs.len() {
            0 | 1 => AbsTy::Unknown, // single-segment env hits are resolved by the engine
            _ => {
                // `Q16::ZERO`, `Frac::ONE`, … — associated consts.
                match segs[segs.len() - 2].text.as_str() {
                    "Q16" => AbsTy::Q16,
                    "Frac" => AbsTy::Frac,
                    _ => AbsTy::Unknown,
                }
            }
        },
        Expr::Unary { .. } | Expr::Ref { .. } | Expr::Try { .. } => children.first().cloned().unwrap_or(AbsTy::Unknown),
        Expr::Binary { op, .. } => match op {
            BinOp::Cmp | BinOp::And | BinOp::Or => AbsTy::Unknown,
            _ => {
                // Arithmetic keeps the operand type but drops Frac
                // provenance: `x * f.num() / f.den()` is the exact
                // cross-multiply idiom, not a lossy truncation.
                let l = children.first().cloned().unwrap_or(AbsTy::Unknown);
                let r = children.get(1).cloned().unwrap_or(AbsTy::Unknown);
                if l != AbsTy::Unknown {
                    l.strip_prov()
                } else {
                    r.strip_prov()
                }
            }
        },
        Expr::Assign { .. } => AbsTy::Unknown,
        Expr::Cast { ty, .. } => {
            let src = children.first().cloned().unwrap_or(AbsTy::Unknown);
            match abs_from_typeref(ty) {
                AbsTy::Int { bits, signed, .. } => AbsTy::Int {
                    bits,
                    signed,
                    prov: src.prov(), // casts preserve Frac provenance
                },
                t => t,
            }
        }
        Expr::Call { callee, .. } => {
            if let Expr::Path { segs } = callee.as_ref() {
                let last = segs.last().map(|s| s.text.as_str()).unwrap_or("");
                let qual = if segs.len() >= 2 {
                    Some(segs[segs.len() - 2].text.as_str())
                } else {
                    None
                };
                match (qual, last) {
                    (Some("Q16"), _) | (None, "Q16") => return AbsTy::Q16,
                    (Some("Frac"), _) | (None, "Frac") => return AbsTy::Frac,
                    // `Some(x)` / `Ok(x)` are transparent wrappers.
                    (None, "Some") | (None, "Ok") => {
                        return children.get(1).cloned().unwrap_or(AbsTy::Unknown);
                    }
                    (Some(q), "from") => {
                        if let Some((bits, signed)) = int_ty(q) {
                            return AbsTy::Int {
                                bits,
                                signed,
                                prov: Prov::None,
                            };
                        }
                    }
                    _ => {}
                }
                // Tuple-struct constructor of a known struct.
                if cx.structs.contains_key(last) {
                    return AbsTy::Named(last.to_string());
                }
            }
            AbsTy::Unknown
        }
        Expr::MethodCall { method, .. } => {
            let recv = children.first().cloned().unwrap_or(AbsTy::Unknown);
            match (&recv, method.as_str()) {
                (AbsTy::Q16, "raw") => AbsTy::RawQ16,
                (AbsTy::Q16, "trunc" | "round" | "ceil") => AbsTy::Int {
                    bits: 64,
                    signed: true,
                    prov: Prov::None,
                },
                (
                    AbsTy::Q16,
                    "min" | "max" | "clamp" | "abs" | "shl" | "shr" | "ewma_toward" | "saturating_add"
                    | "saturating_sub",
                ) => AbsTy::Q16,
                (AbsTy::Frac, "num") => AbsTy::Int {
                    bits: 32,
                    signed: false,
                    prov: Prov::FracNum,
                },
                (AbsTy::Frac, "den") => AbsTy::Int {
                    bits: 32,
                    signed: false,
                    prov: Prov::FracDen,
                },
                (AbsTy::Frac, "add" | "mul" | "half" | "shr" | "reduced" | "saturating_sub" | "min" | "max") => {
                    AbsTy::Frac
                }
                (
                    AbsTy::Coll { elem, .. },
                    "pop" | "pop_front" | "pop_back" | "remove" | "front" | "back" | "get" | "first" | "last" | "take",
                ) => elem.as_ref().clone(),
                (AbsTy::Coll { .. }, "iter" | "iter_mut" | "drain" | "into_iter") => recv,
                (AbsTy::Coll { .. }, "len" | "capacity") => AbsTy::Int {
                    bits: 64,
                    signed: false,
                    prov: Prov::None,
                },
                (_, "clone" | "to_owned") => recv,
                (
                    AbsTy::Int { .. } | AbsTy::RawQ16,
                    "min" | "max" | "clamp" | "abs" | "pow" | "wrapping_add" | "wrapping_sub" | "wrapping_mul"
                    | "saturating_add" | "saturating_sub" | "saturating_mul" | "rotate_left" | "rotate_right",
                ) => recv,
                _ => AbsTy::Unknown,
            }
        }
        Expr::Field { name, .. } => {
            let b = children.first().cloned().unwrap_or(AbsTy::Unknown);
            match &b {
                // `.0` of a Q16 is its raw i64 — same hazard as `.raw()`.
                AbsTy::Q16 if name == "0" => AbsTy::RawQ16,
                AbsTy::Named(s) => cx
                    .structs
                    .get(s)
                    .and_then(|fields| fields.iter().find(|(f, _)| f == name))
                    .map(|(_, t)| t.clone())
                    .unwrap_or(AbsTy::Unknown),
                _ => AbsTy::Unknown,
            }
        }
        Expr::Index { .. } => match children.first() {
            Some(AbsTy::Coll { elem, .. }) => elem.as_ref().clone(),
            _ => AbsTy::Unknown,
        },
        Expr::StructLit { path, .. } => {
            let name = path.last().map(|s| s.text.clone()).unwrap_or_default();
            AbsTy::Named(name)
        }
        _ => AbsTy::Unknown,
    }
}

/// A dataflow domain: the value lattice plus the transfer function.
/// Lint domains carry finding sinks and emit from `transfer`.
pub trait Domain {
    /// Abstract value.
    type V: Clone;
    /// The no-information value.
    fn bottom(&self) -> Self::V;
    /// Lattice join.
    fn join(&self, a: &Self::V, b: &Self::V) -> Self::V;
    /// Initial value of a parameter (`self_ty` is the surrounding `impl`
    /// type for receivers).
    fn param_value(&mut self, p: &Param, self_ty: Option<&str>) -> Self::V;
    /// Value of expression `e` given its children's values, in the
    /// engine's child order (callee/receiver/base/operands first, then
    /// arguments). Control-flow nodes are joined by the engine and never
    /// reach `transfer`.
    fn transfer(&mut self, e: &Expr, children: &[Self::V], env: &Env<Self::V>) -> Self::V;
    /// Value bound to each name of a multi-name pattern destructuring `v`.
    fn bind_split(&self, v: &Self::V) -> Self::V {
        v.clone()
    }
    /// Value of one element when iterating `v` in a `for` loop.
    fn iter_elem(&self, v: &Self::V) -> Self::V {
        self.bind_split(v)
    }
    /// `base[index] = value` — the index-addressed publish pattern. The
    /// engine does not re-taint `base`; domains may check or bless it.
    fn assign_index(&mut self, _target: &Expr, _value: &Self::V) {}
    /// New value of `x` after `x.f = value`. The default joins the stored
    /// value into the base (a taint domain wants `x` tainted); type-like
    /// domains override to keep `old` — a field store never changes the
    /// base's type, and joining would dissolve `Named(_)` into `Unknown`
    /// the first time a counter field is bumped.
    fn assign_field(&mut self, old: &Self::V, value: &Self::V) -> Self::V {
        self.join(old, value)
    }
    /// Refine a `let x: T = …` binding with its declared type.
    fn let_decl(&mut self, _ty: &TypeRef, inferred: Self::V) -> Self::V {
        inferred
    }
}

/// Run a domain over one function.
pub fn flow_fn<D: Domain>(func: &FnItem, self_ty: Option<&str>, dom: &mut D) {
    let mut env: Env<D::V> = Env::new();
    for p in &func.params {
        let v = dom.param_value(p, self_ty);
        if p.is_self {
            env.insert("self".to_string(), v);
        } else if p.pat.names.len() == 1 {
            env.insert(p.pat.names[0].0.clone(), v);
        } else {
            for (name, _) in &p.pat.names {
                env.insert(name.clone(), dom.bind_split(&v));
            }
        }
    }
    if let Some(body) = &func.body {
        flow_block(body, &mut env, dom, self_ty);
    }
}

fn flow_block<D: Domain>(b: &Block, env: &mut Env<D::V>, dom: &mut D, self_ty: Option<&str>) -> D::V {
    let mut last = dom.bottom();
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { pat, ty, init, els, .. } => {
                let mut v = match init {
                    Some(e) => eval(e, env, dom, self_ty),
                    None => dom.bottom(),
                };
                if let Some(t) = ty {
                    v = dom.let_decl(t, v);
                }
                if pat.names.len() == 1 {
                    env.insert(pat.names[0].0.clone(), v);
                } else {
                    for (name, _) in &pat.names {
                        env.insert(name.clone(), dom.bind_split(&v));
                    }
                }
                if let Some(e) = els {
                    flow_block(e, &mut env.clone(), dom, self_ty);
                }
                last = dom.bottom();
            }
            Stmt::Expr(e) => {
                last = eval(e, env, dom, self_ty);
            }
            Stmt::Item(item) => {
                if let Item::Fn(f2) = item.as_ref() {
                    flow_fn(f2, self_ty, dom);
                }
                last = dom.bottom();
            }
            Stmt::Opaque(_) => {
                last = dom.bottom();
            }
        }
    }
    last
}

fn join_env<D: Domain>(mut a: Env<D::V>, b: Env<D::V>, dom: &D) -> Env<D::V> {
    for (k, v) in b {
        match a.get(&k) {
            Some(av) => {
                let j = dom.join(av, &v);
                a.insert(k, j);
            }
            None => {
                a.insert(k, v);
            }
        }
    }
    a
}

fn merge_into<D: Domain>(env: &mut Env<D::V>, other: Env<D::V>, dom: &D) {
    let joined = join_env::<D>(std::mem::take(env), other, dom);
    *env = joined;
}

fn eval<D: Domain>(e: &Expr, env: &mut Env<D::V>, dom: &mut D, self_ty: Option<&str>) -> D::V {
    match e {
        Expr::Path { segs } if segs.len() == 1 => match env.get(&segs[0].text) {
            Some(v) => v.clone(),
            None => dom.transfer(e, &[], env),
        },
        Expr::Path { .. } | Expr::Lit { .. } | Expr::MacroCall { .. } | Expr::Opaque(_) => dom.transfer(e, &[], env),
        Expr::Unary { expr, .. } | Expr::Ref { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
            let v = eval(expr, env, dom, self_ty);
            dom.transfer(e, &[v], env)
        }
        Expr::Binary { lhs, rhs, .. } => {
            let l = eval(lhs, env, dom, self_ty);
            let r = eval(rhs, env, dom, self_ty);
            dom.transfer(e, &[l, r], env)
        }
        Expr::Assign { target, value, .. } => {
            let v = eval(value, env, dom, self_ty);
            match target.as_ref() {
                Expr::Path { segs } if segs.len() == 1 => {
                    let name = segs[0].text.clone();
                    let nv = match env.get(&name) {
                        Some(old) => dom.join(old, &v),
                        None => v,
                    };
                    env.insert(name, nv);
                }
                Expr::Index { base, index, .. } => {
                    eval(index, env, dom, self_ty);
                    eval(base, env, dom, self_ty);
                    dom.assign_index(target, &v);
                }
                Expr::Field { base, .. } => {
                    eval(base, env, dom, self_ty);
                    // `x.f = v` updates `x` itself through the domain.
                    if let Expr::Path { segs } = base.as_ref() {
                        if segs.len() == 1 {
                            let name = segs[0].text.clone();
                            if let Some(old) = env.get(&name).cloned() {
                                let nv = dom.assign_field(&old, &v);
                                env.insert(name, nv);
                            }
                        }
                    }
                }
                other => {
                    eval(other, env, dom, self_ty);
                }
            }
            dom.bottom()
        }
        Expr::Call { callee, args, .. } => {
            let mut vs = vec![eval(callee, env, dom, self_ty)];
            for a in args {
                vs.push(eval(a, env, dom, self_ty));
            }
            dom.transfer(e, &vs, env)
        }
        Expr::MethodCall { recv, args, .. } => {
            let mut vs = vec![eval(recv, env, dom, self_ty)];
            for a in args {
                vs.push(eval(a, env, dom, self_ty));
            }
            dom.transfer(e, &vs, env)
        }
        Expr::Field { base, .. } => {
            let v = eval(base, env, dom, self_ty);
            dom.transfer(e, &[v], env)
        }
        Expr::Index { base, index, .. } => {
            let b = eval(base, env, dom, self_ty);
            let i = eval(index, env, dom, self_ty);
            dom.transfer(e, &[b, i], env)
        }
        Expr::StructLit { fields, .. } => {
            let vs: Vec<D::V> = fields.iter().map(|(_, fe)| eval(fe, env, dom, self_ty)).collect();
            dom.transfer(e, &vs, env)
        }
        Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
            let vs: Vec<D::V> = elems.iter().map(|el| eval(el, env, dom, self_ty)).collect();
            dom.transfer(e, &vs, env)
        }
        Expr::Range { lo, hi, .. } => {
            let mut vs = Vec::new();
            if let Some(l) = lo {
                vs.push(eval(l, env, dom, self_ty));
            }
            if let Some(h) = hi {
                vs.push(eval(h, env, dom, self_ty));
            }
            dom.transfer(e, &vs, env)
        }
        Expr::BlockExpr(b) => flow_block(b, env, dom, self_ty),
        Expr::If {
            pat, cond, then, alt, ..
        } => {
            let cv = eval(cond, env, dom, self_ty);
            let mut env_then = env.clone();
            if let Some(p) = pat {
                for (name, _) in &p.names {
                    env_then.insert(name.clone(), dom.bind_split(&cv));
                }
            }
            let v1 = flow_block(then, &mut env_then, dom, self_ty);
            let mut env_alt = env.clone();
            let v2 = match alt {
                Some(a) => eval(a, &mut env_alt, dom, self_ty),
                None => dom.bottom(),
            };
            *env = join_env::<D>(env_then, env_alt, dom);
            dom.join(&v1, &v2)
        }
        Expr::While { pat, cond, body, .. } => {
            for _ in 0..2 {
                let cv = eval(cond, env, dom, self_ty);
                let mut env_b = env.clone();
                if let Some(p) = pat {
                    for (name, _) in &p.names {
                        env_b.insert(name.clone(), dom.bind_split(&cv));
                    }
                }
                flow_block(body, &mut env_b, dom, self_ty);
                merge_into::<D>(env, env_b, dom);
            }
            dom.bottom()
        }
        Expr::Loop { body, .. } => {
            for _ in 0..2 {
                let mut env_b = env.clone();
                flow_block(body, &mut env_b, dom, self_ty);
                merge_into::<D>(env, env_b, dom);
            }
            dom.bottom()
        }
        Expr::For { pat, iter, body, .. } => {
            let it = eval(iter, env, dom, self_ty);
            for _ in 0..2 {
                let mut env_b = env.clone();
                for (name, _) in &pat.names {
                    env_b.insert(name.clone(), dom.iter_elem(&it));
                }
                flow_block(body, &mut env_b, dom, self_ty);
                merge_into::<D>(env, env_b, dom);
            }
            dom.bottom()
        }
        Expr::Match { scrutinee, arms, .. } => {
            let sv = eval(scrutinee, env, dom, self_ty);
            let mut out_env: Option<Env<D::V>> = None;
            let mut val = dom.bottom();
            for arm in arms {
                let mut env_a = env.clone();
                for (name, _) in &arm.pat.names {
                    env_a.insert(name.clone(), dom.bind_split(&sv));
                }
                if let Some(g) = &arm.guard {
                    eval(g, &mut env_a, dom, self_ty);
                }
                let v = eval(&arm.body, &mut env_a, dom, self_ty);
                val = dom.join(&val, &v);
                out_env = Some(match out_env {
                    Some(prev) => join_env::<D>(prev, env_a, dom),
                    None => env_a,
                });
            }
            if let Some(oe) = out_env {
                *env = oe;
            }
            val
        }
        Expr::Closure { params, body, .. } => {
            let mut env_c = env.clone();
            for p in params {
                for (name, _) in &p.names {
                    env_c.insert(name.clone(), dom.bottom());
                }
            }
            let v = eval(body, &mut env_c, dom, self_ty);
            dom.transfer(e, &[v], env)
        }
        Expr::Return { value, .. } | Expr::Jump { value, .. } => {
            if let Some(v) = value {
                eval(v, env, dom, self_ty);
            }
            dom.bottom()
        }
    }
}

/// The pure type domain: computes [`AbsTy`] with no findings. Lint
/// domains embed the same logic via [`abs_transfer`] and add checks.
pub struct TypeDomain<'a> {
    /// Type evaluation context.
    pub cx: TyCx<'a>,
}

impl Domain for TypeDomain<'_> {
    type V = AbsTy;

    fn bottom(&self) -> AbsTy {
        AbsTy::Unknown
    }

    fn join(&self, a: &AbsTy, b: &AbsTy) -> AbsTy {
        abs_join(a, b)
    }

    fn param_value(&mut self, p: &Param, self_ty: Option<&str>) -> AbsTy {
        if p.is_self {
            self_ty.map(abs_from_name).unwrap_or(AbsTy::Unknown)
        } else {
            p.ty.as_ref().map(abs_from_typeref).unwrap_or(AbsTy::Unknown)
        }
    }

    fn assign_field(&mut self, old: &AbsTy, _value: &AbsTy) -> AbsTy {
        // Storing into `x.f` leaves `x`'s type alone.
        old.clone()
    }

    fn transfer(&mut self, e: &Expr, children: &[AbsTy], _env: &Env<AbsTy>) -> AbsTy {
        abs_transfer(e, children, &self.cx)
    }

    fn bind_split(&self, _v: &AbsTy) -> AbsTy {
        AbsTy::Unknown // destructuring loses the element types
    }

    fn iter_elem(&self, v: &AbsTy) -> AbsTy {
        match v {
            AbsTy::Coll { elem, .. } => elem.as_ref().clone(),
            _ => AbsTy::Unknown,
        }
    }

    fn let_decl(&mut self, ty: &TypeRef, inferred: AbsTy) -> AbsTy {
        match abs_from_typeref(ty) {
            AbsTy::Unknown => inferred,
            t => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::for_each_fn;
    use crate::{lexer, parser};

    /// Collect the types inferred for every method-call receiver in
    /// `src`, keyed by method name.
    fn recv_types(src: &str, structs: &StructTable) -> BTreeMap<String, AbsTy> {
        struct Probe<'a, 'b> {
            inner: TypeDomain<'a>,
            seen: &'b mut BTreeMap<String, AbsTy>,
        }
        impl Domain for Probe<'_, '_> {
            type V = AbsTy;
            fn bottom(&self) -> AbsTy {
                self.inner.bottom()
            }
            fn join(&self, a: &AbsTy, b: &AbsTy) -> AbsTy {
                self.inner.join(a, b)
            }
            fn param_value(&mut self, p: &Param, self_ty: Option<&str>) -> AbsTy {
                self.inner.param_value(p, self_ty)
            }
            fn transfer(&mut self, e: &Expr, children: &[AbsTy], env: &Env<AbsTy>) -> AbsTy {
                if let Expr::MethodCall { method, .. } = e {
                    self.seen.insert(method.clone(), children[0].clone());
                }
                self.inner.transfer(e, children, env)
            }
            fn bind_split(&self, v: &AbsTy) -> AbsTy {
                self.inner.bind_split(v)
            }
            fn iter_elem(&self, v: &AbsTy) -> AbsTy {
                self.inner.iter_elem(v)
            }
            fn let_decl(&mut self, ty: &TypeRef, inferred: AbsTy) -> AbsTy {
                self.inner.let_decl(ty, inferred)
            }
            fn assign_field(&mut self, old: &AbsTy, value: &AbsTy) -> AbsTy {
                self.inner.assign_field(old, value)
            }
        }
        let toks = lexer::lex(src);
        let file = parser::parse(&toks);
        let mut seen = BTreeMap::new();
        let mut probe = Probe {
            inner: TypeDomain {
                cx: TyCx { structs, toks: &toks },
            },
            seen: &mut seen,
        };
        for_each_fn(&file, &mut |f, self_ty| flow_fn(f, self_ty, &mut probe));
        seen
    }

    #[test]
    fn field_types_resolve_through_the_struct_table() {
        let mut structs = StructTable::new();
        structs.insert(
            "Ring".to_string(),
            vec![(
                "buf".to_string(),
                AbsTy::Coll {
                    head: "VecDeque".to_string(),
                    elem: Box::new(AbsTy::Unknown),
                },
            )],
        );
        let seen = recv_types(
            "impl Ring { fn push(&mut self, ev: u32) { self.buf.push_back(ev); } }",
            &structs,
        );
        assert!(matches!(seen.get("push_back"), Some(AbsTy::Coll { head, .. }) if head == "VecDeque"));
    }

    /// Regression: bumping a counter field (`self.pushed += 1`) must not
    /// dissolve the receiver's type — `self.buf` still resolves after it.
    #[test]
    fn field_store_keeps_the_base_type() {
        let mut structs = StructTable::new();
        structs.insert(
            "Ring".to_string(),
            vec![(
                "buf".to_string(),
                AbsTy::Coll {
                    head: "VecDeque".to_string(),
                    elem: Box::new(AbsTy::Unknown),
                },
            )],
        );
        let seen = recv_types(
            "impl Ring { fn push(&mut self, ev: u32) { self.pushed += 1; self.buf.push_back(ev); } }",
            &structs,
        );
        assert!(matches!(seen.get("push_back"), Some(AbsTy::Coll { head, .. }) if head == "VecDeque"));
    }

    #[test]
    fn q16_raw_and_frac_components_are_tracked() {
        let structs = StructTable::new();
        let seen = recv_types(
            "fn f(q: Q16, r: Frac) -> i64 { let a = q.raw(); let n = r.num(); let lhs = a.wrapping_mul(1); lhs }",
            &structs,
        );
        assert_eq!(seen.get("raw"), Some(&AbsTy::Q16));
        assert_eq!(seen.get("num"), Some(&AbsTy::Frac));
        assert_eq!(seen.get("wrapping_mul"), Some(&AbsTy::RawQ16));
    }

    #[test]
    fn branches_join_and_loops_converge() {
        let structs = StructTable::new();
        let seen = recv_types(
            "fn f(q: Q16, flag: bool) { let mut x = q; if flag { x = q; } else { x = q; } x.raw(); \
             let mut v: Vec<u32> = Vec::new(); while flag { v.push(1); } v.len(); }",
            &structs,
        );
        assert_eq!(seen.get("raw"), Some(&AbsTy::Q16));
        assert!(matches!(seen.get("push"), Some(AbsTy::Coll { head, .. }) if head == "Vec"));
        assert!(matches!(seen.get("len"), Some(AbsTy::Coll { head, .. }) if head == "Vec"));
    }

    #[test]
    fn declared_let_types_beat_unknown_inits() {
        let structs = StructTable::new();
        let seen = recv_types(
            "fn f() { let out: Vec<Option<u64>> = mystery(); out.push(None); }",
            &structs,
        );
        assert!(matches!(seen.get("push"), Some(AbsTy::Coll { head, .. }) if head == "Vec"));
    }

    #[test]
    fn casts_carry_frac_provenance_and_widths() {
        let structs = StructTable::new();
        let seen = recv_types("fn f(r: Frac) { let n = r.num() as u64; n.min(1); }", &structs);
        assert_eq!(
            seen.get("min"),
            Some(&AbsTy::Int {
                bits: 64,
                signed: false,
                prov: Prov::FracNum
            })
        );
    }
}
