//! SARIF 2.1.0 output, for code-scanning UIs and the CI baseline gate.
//!
//! The emitter produces one run with a fully populated
//! `tool.driver.rules` table (all seven lint families plus the
//! `malformed-allow` meta-rule) and one `result` per finding. When the
//! checker ran against a baseline, each result also carries a
//! `baselineState` of `"new"` or `"unchanged"`.

use crate::diag::{escape, Finding};

/// `(rule id, short description)` for every rule that can appear in a
/// report.
pub const RULES: [(&str, &str); 8] = [
    (
        "ni-no-float",
        "No floating point in NI-resident code (the i960 target has no FPU)",
    ),
    ("ni-no-panic", "No panicking constructs in non-test NI code"),
    (
        "sim-determinism",
        "No wall clock or hash-order iteration in simulation crates",
    ),
    (
        "unsafe-hygiene",
        "`unsafe` only in allowlisted files, with a `// SAFETY:` comment",
    ),
    (
        "ni-no-alloc",
        "No heap allocation reachable from `// analysis: hot` service paths",
    ),
    (
        "q16-overflow",
        "Q16/Frac arithmetic must widen before multiplying and never truncate",
    ),
    (
        "sweep-determinism",
        "Published sweep results must not depend on thread identity or arrival order",
    ),
    ("malformed-allow", "`// analysis:` annotations must be well-formed"),
];

/// Render findings as a SARIF 2.1.0 document. `states`, when present,
/// holds one `baselineState` string (`"new"` / `"unchanged"`) per
/// finding, in order.
pub fn to_sarif(findings: &[Finding], states: Option<&[&str]>) -> String {
    let mut out = String::with_capacity(findings.len() * 256 + 2048);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"nistream-analysis\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            escape(id),
            escape(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let mut message = f.message.clone();
        if let Some(note) = &f.note {
            message.push_str(" — ");
            message.push_str(note);
        }
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", escape(&f.lint)));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            escape(&message)
        ));
        if let Some(states) = states {
            if let Some(state) = states.get(i) {
                out.push_str(&format!("          \"baselineState\": \"{}\",\n", escape(state)));
            }
        }
        out.push_str("          \"locations\": [\n");
        out.push_str("            {\"physicalLocation\": {\n");
        out.push_str(&format!(
            "              \"artifactLocation\": {{\"uri\": \"{}\"}},\n",
            escape(&f.file.display().to_string())
        ));
        out.push_str(&format!(
            "              \"region\": {{\"startLine\": {}, \"startColumn\": {}}}\n",
            f.line, f.col
        ));
        out.push_str("            }}\n          ]\n");
        out.push_str(&format!(
            "        }}{}\n",
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use std::path::PathBuf;

    fn sample() -> Finding {
        Finding {
            lint: "ni-no-alloc".into(),
            file: PathBuf::from("crates/dwcs/src/svc.rs"),
            line: 42,
            col: 9,
            message: "`.push(…)` may grow a `Vec` in NI hot code".into(),
            note: Some("hot via service_once".into()),
        }
    }

    #[test]
    fn emits_valid_sarif_210() {
        let text = to_sarif(&[sample()], Some(&["new"]));
        let doc = json::parse(&text).expect("SARIF must be valid JSON");
        assert_eq!(doc.get("version").unwrap().as_str(), Some("2.1.0"));
        let run = &doc.get("runs").unwrap().as_arr().unwrap()[0];
        let rules = run.get("tool").unwrap().get("driver").unwrap().get("rules").unwrap();
        assert_eq!(rules.as_arr().unwrap().len(), RULES.len());
        let result = &run.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(result.get("ruleId").unwrap().as_str(), Some("ni-no-alloc"));
        assert_eq!(result.get("baselineState").unwrap().as_str(), Some("new"));
        let loc = &result.get("locations").unwrap().as_arr().unwrap()[0];
        let phys = loc.get("physicalLocation").unwrap();
        assert_eq!(
            phys.get("artifactLocation").unwrap().get("uri").unwrap().as_str(),
            Some("crates/dwcs/src/svc.rs")
        );
        assert_eq!(
            phys.get("region").unwrap().get("startLine"),
            Some(&json::Value::Num("42".into()))
        );
    }

    #[test]
    fn empty_report_is_still_a_run() {
        let doc = json::parse(&to_sarif(&[], None)).unwrap();
        let run = &doc.get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(run.get("results").unwrap().as_arr().unwrap().len(), 0);
    }
}
