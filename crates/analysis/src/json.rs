//! A minimal recursive-descent JSON reader.
//!
//! This crate takes no dependencies, and two features need to *read* JSON:
//! the findings baseline (`analysis-baseline.json`) and the SARIF
//! round-trip test. Numbers are kept as their raw source text — nothing
//! in either schema needs arithmetic, and the NI-resident coding rules
//! this workspace enforces make us allergic to gratuitous floats even in
//! host tooling.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw text (`"42"`, `"-1.5e3"`).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys kept).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, i: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != bytes.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

const MAX_DEPTH: u32 = 64;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.bytes.len() && matches!(self.bytes[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.i))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.i)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits_start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == digits_start {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.i]).map_err(|e| e.to_string())?;
        Ok(Value::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self.bytes.get(self.i + 1..self.i + 5).ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not reconstructed; the
                            // replacement char is fine for diagnostics.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.i..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            out.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, {"b": "x\ny"}, true, null], "n": -2.5e3}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Value::Num("1".into()));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(arr[2], Value::Bool(true));
        assert_eq!(arr[3], Value::Null);
        assert_eq!(v.get("n"), Some(&Value::Num("-2.5e3".into())));
    }

    #[test]
    fn round_trips_diag_to_json() {
        use crate::Finding;
        let f = Finding {
            lint: "q16-overflow".into(),
            file: std::path::PathBuf::from("crates/fixedpt/src/q16.rs"),
            line: 7,
            col: 3,
            message: "has \"quotes\"".into(),
            note: None,
        };
        let v = parse(&crate::to_json(&[f])).unwrap();
        let obj = &v.as_arr().unwrap()[0];
        assert_eq!(obj.get("lint").unwrap().as_str(), Some("q16-overflow"));
        assert_eq!(obj.get("message").unwrap().as_str(), Some("has \"quotes\""));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
