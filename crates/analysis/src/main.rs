//! CLI: `cargo run -p nistream-analysis -- check [--format=json] [--root=DIR]`.
//!
//! Exit status: 0 when the tree is clean, 1 when any finding is reported,
//! 2 on usage/configuration errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nistream-analysis check [--format=json|text] [--root=DIR]\n\
         \n\
         Runs the lint families configured in <root>/analysis.toml over the\n\
         repository. The default root is the workspace the binary was built\n\
         from, so `cargo run -p nistream-analysis -- check` works anywhere\n\
         inside the repo."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd != "check" {
        return usage();
    }

    let mut format_json = false;
    // Default root: the workspace directory, two levels above this crate's
    // manifest (crates/analysis) — robust to being run from any cwd.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    for arg in args {
        if arg == "--format=json" {
            format_json = true;
        } else if arg == "--format=text" {
            format_json = false;
        } else if let Some(dir) = arg.strip_prefix("--root=") {
            root = PathBuf::from(dir);
        } else {
            return usage();
        }
    }

    let findings = match nistream_analysis::check_root(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("nistream-analysis: {e}");
            return ExitCode::from(2);
        }
    };

    if format_json {
        println!("{}", nistream_analysis::to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}\n");
        }
        if findings.is_empty() {
            println!("nistream-analysis: clean (0 findings)");
        } else {
            println!("nistream-analysis: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
