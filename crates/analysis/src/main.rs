//! CLI: `cargo run -p nistream-analysis -- check [--format=json|sarif]
//! [--baseline=FILE] [--root=DIR]`, plus `update-baseline`.
//!
//! Exit status: 0 when the tree is clean (or every finding is absorbed by
//! the baseline), 1 when any *new* finding is reported, 2 on
//! usage/configuration errors.

#![forbid(unsafe_code)]

use nistream_analysis::{baseline, sarif};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nistream-analysis check [--format=text|json|sarif] [--baseline=FILE] [--root=DIR]\n\
         \x20      nistream-analysis update-baseline [--root=DIR]\n\
         \n\
         `check` runs the lint families configured in <root>/analysis.toml\n\
         over the repository. With --baseline, findings already recorded in\n\
         the baseline file are reported as unchanged and do not fail the\n\
         run. `update-baseline` rewrites <root>/analysis-baseline.json from\n\
         the current findings. The default root is the workspace the binary\n\
         was built from, so `cargo run -p nistream-analysis -- check` works\n\
         anywhere inside the repo."
    );
    ExitCode::from(2)
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).collect::<Vec<_>>();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    if cmd != "check" && cmd != "update-baseline" {
        return usage();
    }

    let mut format = Format::Text;
    let mut baseline_path: Option<PathBuf> = None;
    // Default root: the workspace directory, two levels above this crate's
    // manifest (crates/analysis) — robust to being run from any cwd.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    // Accept both `--flag=value` and `--flag value`.
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let (flag, value) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None if arg.starts_with("--") => (arg.clone(), None),
            None => return usage(),
        };
        let mut value = match value {
            Some(v) => Some(v),
            None => match flag.as_str() {
                "--format" | "--baseline" | "--root" => it.next(),
                _ => None,
            },
        };
        match (flag.as_str(), value.take()) {
            ("--format", Some(v)) => {
                format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    _ => return usage(),
                }
            }
            ("--baseline", Some(v)) => baseline_path = Some(PathBuf::from(v)),
            ("--root", Some(v)) => root = PathBuf::from(v),
            _ => return usage(),
        }
    }

    let findings = match nistream_analysis::check_root(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("nistream-analysis: {e}");
            return ExitCode::from(2);
        }
    };

    if cmd == "update-baseline" {
        let path = root.join("analysis-baseline.json");
        let text = baseline::write(&findings);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("nistream-analysis: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "nistream-analysis: wrote {} ({} finding(s))",
            path.display(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    // Partition against the baseline, when one was given.
    let (fresh, states) = match &baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("nistream-analysis: reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let entries = match baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("nistream-analysis: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            // Multiset matching, like `baseline::partition`, but keeping
            // the per-finding state in report order for SARIF.
            let mut budget: std::collections::BTreeMap<(String, String, String), usize> =
                std::collections::BTreeMap::new();
            for e in &entries {
                *budget
                    .entry((e.lint.clone(), e.file.clone(), e.message.clone()))
                    .or_insert(0) += 1;
            }
            let mut fresh = Vec::new();
            let mut states = Vec::new();
            for f in &findings {
                let key = (f.lint.clone(), f.file.display().to_string(), f.message.clone());
                match budget.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        states.push("unchanged");
                    }
                    _ => {
                        fresh.push(f.clone());
                        states.push("new");
                    }
                }
            }
            (fresh, Some(states))
        }
        None => (findings.clone(), None),
    };

    match format {
        Format::Json => println!("{}", nistream_analysis::to_json(&findings)),
        Format::Sarif => print!("{}", sarif::to_sarif(&findings, states.as_deref())),
        Format::Text => {
            for f in &fresh {
                println!("{f}\n");
            }
            let suppressed = findings.len() - fresh.len();
            match (fresh.is_empty(), suppressed) {
                (true, 0) => println!("nistream-analysis: clean (0 findings)"),
                (true, n) => println!("nistream-analysis: clean ({n} baselined finding(s) suppressed)"),
                (false, 0) => println!("nistream-analysis: {} finding(s)", fresh.len()),
                (false, n) => println!(
                    "nistream-analysis: {} new finding(s), {n} baselined finding(s) suppressed",
                    fresh.len()
                ),
            }
        }
    }
    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
