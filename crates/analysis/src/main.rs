//! CLI: `cargo run -p nistream-analysis -- check [--format=json|sarif]
//! [--baseline=FILE] [--root=DIR]`, plus `update-baseline`, `list-lints`
//! and `budget`.
//!
//! Exit status: 0 when the tree is clean (or every finding is absorbed by
//! the baseline), 1 when any *new* finding is reported (for `budget`:
//! when any hot root is unbounded or over budget), 2 on
//! usage/configuration errors.

#![forbid(unsafe_code)]

use nistream_analysis::{baseline, costmodel, lints, sarif, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nistream-analysis check [--format=text|json|sarif] [--baseline=FILE] [--root=DIR]\n\
         \x20      nistream-analysis update-baseline [--root=DIR]\n\
         \x20      nistream-analysis list-lints [--root=DIR]\n\
         \x20      nistream-analysis budget [--root=DIR]\n\
         \n\
         `check` runs the lint families configured in <root>/analysis.toml\n\
         over the repository. With --baseline, findings already recorded in\n\
         the baseline file are reported as unchanged and do not fail the\n\
         run. `update-baseline` rewrites <root>/analysis-baseline.json from\n\
         the current findings. `list-lints` prints every lint family, its\n\
         config keys and whether analysis.toml enables it. `budget` prints\n\
         the static worst-case cycle/stack report for every hot root in the\n\
         ni-cycle-budget file set. The default root is the workspace the\n\
         binary was built from, so `cargo run -p nistream-analysis -- check`\n\
         works anywhere inside the repo."
    );
    ExitCode::from(2)
}

/// Load and parse `<root>/analysis.toml`, mapping IO/parse failures to the
/// CLI's configuration-error exit path.
fn load_config(root: &std::path::Path) -> Result<Config, ExitCode> {
    let path = root.join("analysis.toml");
    let text = std::fs::read_to_string(&path).map_err(|e| {
        eprintln!("nistream-analysis: reading {}: {e}", path.display());
        ExitCode::from(2)
    })?;
    Config::parse(&text).map_err(|e| {
        eprintln!("nistream-analysis: {}: {e}", path.display());
        ExitCode::from(2)
    })
}

/// `list-lints`: one block per known family, cross-referenced against the
/// configuration so CI logs show exactly what runs where.
fn list_lints(root: &std::path::Path) -> ExitCode {
    let cfg = match load_config(root) {
        Ok(c) => c,
        Err(code) => return code,
    };
    for info in &lints::LINT_INFO {
        let enabled = cfg.lint(info.name);
        let status = match enabled {
            Some(l) => format!("enabled ({} path(s))", l.paths.len()),
            None => "disabled (no analysis.toml section)".to_string(),
        };
        println!("{}  [{status}]", info.name);
        println!("    {}", info.summary);
        if !info.keys.is_empty() {
            println!("    keys:");
            for (key, doc) in info.keys {
                let set = enabled
                    .and_then(|l| l.num(key))
                    .map(|v| format!(" = {v}"))
                    .unwrap_or_default();
                println!("      {key}{set} — {doc}");
            }
        }
        if let Some(l) = enabled {
            for p in &l.paths {
                println!("    path: {}", p.display());
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// `budget`: per-hot-root worst-case cycles (with the 66 MHz wall-clock
/// equivalent), call depth and stack bytes, checked against the model.
fn budget(root: &std::path::Path) -> ExitCode {
    let cfg = match load_config(root) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let (roots, model) = match nistream_analysis::budget_report(root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nistream-analysis: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "NI cycle budget: {} cycles/frame at {} Hz ({} us)",
        model.budget_cycles,
        costmodel::I960_HZ,
        model.budget_cycles * 1_000_000 / costmodel::I960_HZ
    );
    let mut bad = false;
    for r in &roots {
        let hi = r.cycles.hi;
        let verdict = if r.cycles.is_unbounded() {
            bad = true;
            "UNBOUNDED".to_string()
        } else if hi > model.budget_cycles {
            bad = true;
            format!("OVER BUDGET by {} cycles", hi - model.budget_cycles)
        } else {
            format!("ok, {}% of budget", hi * 100 / model.budget_cycles)
        };
        println!("\n{} ({}:{})", r.root, r.file.display(), r.line);
        if r.cycles.is_unbounded() {
            println!("  worst-case cycles: [{}, unbounded]", r.cycles.lo);
        } else {
            println!(
                "  worst-case cycles: [{}, {}]  ({} us at {} MHz)",
                r.cycles.lo,
                hi,
                hi * 1_000_000 / costmodel::I960_HZ,
                costmodel::I960_HZ / 1_000_000
            );
        }
        println!("  call depth: {}   stack bytes: {}", r.call_depth, r.stack_bytes);
        println!("  verdict: {verdict}");
    }
    if roots.is_empty() {
        println!("\nno hot roots in the ni-cycle-budget file set");
    }
    if bad {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).collect::<Vec<_>>();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    if !matches!(cmd.as_str(), "check" | "update-baseline" | "list-lints" | "budget") {
        return usage();
    }

    let mut format = Format::Text;
    let mut baseline_path: Option<PathBuf> = None;
    // Default root: the workspace directory, two levels above this crate's
    // manifest (crates/analysis) — robust to being run from any cwd.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    // Accept both `--flag=value` and `--flag value`.
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let (flag, value) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None if arg.starts_with("--") => (arg.clone(), None),
            None => return usage(),
        };
        let mut value = match value {
            Some(v) => Some(v),
            None => match flag.as_str() {
                "--format" | "--baseline" | "--root" => it.next(),
                _ => None,
            },
        };
        match (flag.as_str(), value.take()) {
            ("--format", Some(v)) => {
                format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    _ => return usage(),
                }
            }
            ("--baseline", Some(v)) => baseline_path = Some(PathBuf::from(v)),
            ("--root", Some(v)) => root = PathBuf::from(v),
            _ => return usage(),
        }
    }

    match cmd.as_str() {
        "list-lints" => return list_lints(&root),
        "budget" => return budget(&root),
        _ => {}
    }

    let findings = match nistream_analysis::check_root(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("nistream-analysis: {e}");
            return ExitCode::from(2);
        }
    };

    if cmd == "update-baseline" {
        let path = root.join("analysis-baseline.json");
        let text = baseline::write(&findings);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("nistream-analysis: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "nistream-analysis: wrote {} ({} finding(s))",
            path.display(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    // Partition against the baseline, when one was given.
    let (fresh, states) = match &baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("nistream-analysis: reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let entries = match baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("nistream-analysis: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            // Multiset matching, like `baseline::partition`, but keeping
            // the per-finding state in report order for SARIF.
            let mut budget: std::collections::BTreeMap<(String, String, String), usize> =
                std::collections::BTreeMap::new();
            for e in &entries {
                *budget
                    .entry((e.lint.clone(), e.file.clone(), e.message.clone()))
                    .or_insert(0) += 1;
            }
            let mut fresh = Vec::new();
            let mut states = Vec::new();
            for f in &findings {
                let key = (f.lint.clone(), f.file.display().to_string(), f.message.clone());
                match budget.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        states.push("unchanged");
                    }
                    _ => {
                        fresh.push(f.clone());
                        states.push("new");
                    }
                }
            }
            (fresh, Some(states))
        }
        None => (findings.clone(), None),
    };

    match format {
        Format::Json => println!("{}", nistream_analysis::to_json(&findings)),
        Format::Sarif => print!("{}", sarif::to_sarif(&findings, states.as_deref())),
        Format::Text => {
            for f in &fresh {
                println!("{f}\n");
            }
            let suppressed = findings.len() - fresh.len();
            match (fresh.is_empty(), suppressed) {
                (true, 0) => println!("nistream-analysis: clean (0 findings)"),
                (true, n) => println!("nistream-analysis: clean ({n} baselined finding(s) suppressed)"),
                (false, 0) => println!("nistream-analysis: {} finding(s)", fresh.len()),
                (false, n) => println!(
                    "nistream-analysis: {} new finding(s), {n} baselined finding(s) suppressed",
                    fresh.len()
                ),
            }
        }
    }
    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
