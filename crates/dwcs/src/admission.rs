//! DWCS feasibility / admission control.
//!
//! For unit-capacity service (one packet transmitted per slot of length
//! `C`), a set of window-constrained streams is schedulable by DWCS when
//! the *mandatory* utilization does not exceed the link:
//!
//! ```text
//! Σᵢ (1 − xᵢ/yᵢ) · C / Tᵢ ≤ 1
//! ```
//!
//! i.e. each stream demands service for the fraction of its packets that
//! *must* go out on time (`1 − x/y`), one packet per period `T`, each
//! costing `C` of link time. West & Schwan prove violation-freedom for
//! feasible sets of unit-sized packets; our property tests use this as the
//! oracle (`tests/dwcs_properties.rs`).
//!
//! The server crates use [`admit`] as an admission controller: "as stream
//! requests to a server are increased, the server must be able to process
//! these requests with a pre-negotiated bound on service degradation"
//! (§3.1).

use crate::qos::StreamQos;
use crate::types::Time;
use fixedpt::Frac;

/// Mandatory utilization of one stream given fixed per-packet service time
/// `service` (both in ns). Exact rational arithmetic in u128.
fn demand_num_den(qos: &StreamQos, service: Time) -> (u128, u128) {
    // (1 - x/y) * service / period = ((y - x) * service) / (y * period)
    let num = u128::from(qos.loss_den - qos.loss_num) * u128::from(service);
    let den = u128::from(qos.loss_den) * u128::from(qos.period);
    (num, den)
}

/// Fold `Σ nᵢ/dᵢ` into one fraction: keep a running `a/b`, add `n/d` as
/// `(a·d + n·b) / (b·d)`, reducing by gcd each step. Should `u128` be
/// exhausted even after reduction (adversarially huge coprime periods, far
/// from the feasibility boundary), both operands are downscaled by right
/// shifts until the step fits — still integer-only, losing at most the low
/// bits shifted out.
fn accumulate(streams: &[StreamQos], service: Time) -> (u128, u128) {
    let mut acc_n: u128 = 0;
    let mut acc_d: u128 = 1;
    for q in streams {
        let (mut n, mut d) = demand_num_den(q, service);
        loop {
            let step = (|| {
                let a = acc_n.checked_mul(d)?;
                let b = n.checked_mul(acc_d)?;
                let den = acc_d.checked_mul(d)?;
                Some((a.checked_add(b)?, den))
            })();
            if let Some((num, den)) = step {
                let g = gcd_u128(num, den);
                acc_n = num / g;
                acc_d = den / g;
                break;
            }
            // Halve whichever side carries more denominator bits.
            if acc_d > d {
                acc_n >>= 1;
                acc_d = (acc_d >> 1).max(1);
            } else {
                n >>= 1;
                d = (d >> 1).max(1);
            }
        }
    }
    (acc_n, acc_d)
}

/// Fit exact `u128` parts into a [`Frac`] by a common right-shift (precision
/// loss only when components exceed 32 bits).
fn frac_from_u128(mut num: u128, mut den: u128) -> Frac {
    debug_assert!(den != 0);
    let bits = 128 - num.max(den).leading_zeros();
    if bits > 32 {
        let shift = bits - 32;
        num >>= shift;
        den >>= shift;
        if den == 0 {
            // Denominator underflowed to zero: the value is effectively huge.
            return Frac::INF;
        }
    }
    Frac::new(num as u32, den as u32)
}

/// Total mandatory utilization of a stream set, as an exact (downscaled on
/// overflow) [`Frac`]. Host-side reporting that wants a float goes through
/// [`Frac::to_f64`]; NI-resident callers compare against [`Frac::ONE`].
pub fn utilization(streams: &[StreamQos], service: Time) -> Frac {
    let (n, d) = accumulate(streams, service);
    frac_from_u128(n, d)
}

/// Exact feasibility test: `Σ (1 − xᵢ/yᵢ)·C/Tᵢ ≤ 1`, computed without
/// floating point (common-denominator accumulation in `u128`).
pub fn feasible(streams: &[StreamQos], service: Time) -> bool {
    let (acc_n, acc_d) = accumulate(streams, service);
    acc_n <= acc_d
}

/// Admission decision for adding `candidate` to `existing`.
pub fn admit(existing: &[StreamQos], candidate: StreamQos, service: Time) -> bool {
    let mut all = existing.to_vec();
    all.push(candidate);
    feasible(&all, service)
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MILLISECOND;

    #[test]
    fn single_stream_within_capacity() {
        // Period 10 ms, service 1 ms, no losses allowed: U = 0.1.
        let q = StreamQos::new(10 * MILLISECOND, 0, 1);
        assert!(feasible(&[q], MILLISECOND));
        assert_eq!(utilization(&[q], MILLISECOND), Frac::new(1, 10));
    }

    #[test]
    fn loss_tolerance_buys_capacity() {
        // 20 streams, period 10 ms, service 1 ms, lossless: U = 2.0 → infeasible.
        let lossless = vec![StreamQos::new(10 * MILLISECOND, 0, 1); 20];
        assert!(!feasible(&lossless, MILLISECOND));
        // Same streams tolerating half their packets late: U = 1.0 → feasible.
        let lossy = vec![StreamQos::new(10 * MILLISECOND, 1, 2); 20];
        assert!(feasible(&lossy, MILLISECOND));
        assert_eq!(utilization(&lossy, MILLISECOND), Frac::ONE);
    }

    #[test]
    fn boundary_is_inclusive() {
        // Exactly U = 1: 10 lossless streams, period 10 ms, service 1 ms.
        let set = vec![StreamQos::new(10 * MILLISECOND, 0, 1); 10];
        assert!(feasible(&set, MILLISECOND));
        // One more tips it over.
        assert!(!admit(&set, StreamQos::new(10 * MILLISECOND, 0, 1), MILLISECOND));
    }

    #[test]
    fn admit_matches_feasible() {
        let existing = vec![
            StreamQos::new(5 * MILLISECOND, 1, 4),
            StreamQos::new(8 * MILLISECOND, 2, 8),
        ];
        let c = StreamQos::new(3 * MILLISECOND, 0, 1);
        let mut all = existing.clone();
        all.push(c);
        assert_eq!(admit(&existing, c, MILLISECOND), feasible(&all, MILLISECOND));
    }

    #[test]
    fn fully_lossy_streams_cost_nothing() {
        let free = vec![StreamQos::new(MILLISECOND, 4, 4); 1000];
        assert!(feasible(&free, MILLISECOND));
        assert!(utilization(&free, MILLISECOND).is_zero());
    }

    #[test]
    fn many_heterogeneous_streams_no_overflow() {
        let mut set = Vec::new();
        for i in 1..=64u32 {
            set.push(StreamQos::new(Time::from(i) * MILLISECOND + 7, i % 3, (i % 3) + 3));
        }
        // Must terminate, and the reported utilization must agree with the
        // feasibility verdict (the set is far from the boundary).
        let u = utilization(&set, 100_000);
        assert_eq!(feasible(&set, 100_000), u <= Frac::ONE);
    }
}
