//! DWCS feasibility / admission control.
//!
//! For unit-capacity service (one packet transmitted per slot of length
//! `C`), a set of window-constrained streams is schedulable by DWCS when
//! the *mandatory* utilization does not exceed the link:
//!
//! ```text
//! Σᵢ (1 − xᵢ/yᵢ) · C / Tᵢ ≤ 1
//! ```
//!
//! i.e. each stream demands service for the fraction of its packets that
//! *must* go out on time (`1 − x/y`), one packet per period `T`, each
//! costing `C` of link time. West & Schwan prove violation-freedom for
//! feasible sets of unit-sized packets; our property tests use this as the
//! oracle (`tests/dwcs_properties.rs`).
//!
//! The server crates use [`admit`] as an admission controller: "as stream
//! requests to a server are increased, the server must be able to process
//! these requests with a pre-negotiated bound on service degradation"
//! (§3.1).

use crate::qos::StreamQos;
use crate::types::Time;

/// Mandatory utilization of one stream given fixed per-packet service time
/// `service` (both in ns). Exact rational arithmetic in u128.
fn demand_num_den(qos: &StreamQos, service: Time) -> (u128, u128) {
    // (1 - x/y) * service / period = ((y - x) * service) / (y * period)
    let num = u128::from(qos.loss_den - qos.loss_num) * u128::from(service);
    let den = u128::from(qos.loss_den) * u128::from(qos.period);
    (num, den)
}

/// Total mandatory utilization of a stream set (as `f64`, for reporting).
pub fn utilization(streams: &[StreamQos], service: Time) -> f64 {
    streams
        .iter()
        .map(|q| {
            let (n, d) = demand_num_den(q, service);
            n as f64 / d as f64
        })
        .sum()
}

/// Exact feasibility test: `Σ (1 − xᵢ/yᵢ)·C/Tᵢ ≤ 1`, computed without
/// floating point (common-denominator accumulation in `u128`).
pub fn feasible(streams: &[StreamQos], service: Time) -> bool {
    // Accumulate Σ nᵢ/dᵢ ≤ 1  ⇔  Σ nᵢ·(D/dᵢ) ≤ D with D = Π dᵢ — overflow
    // prone. Instead fold pairwise: keep a running fraction a/b, add n/d:
    // (a·d + n·b) / (b·d), reducing by gcd each step.
    let mut acc_n: u128 = 0;
    let mut acc_d: u128 = 1;
    for q in streams {
        let (n, d) = demand_num_den(q, service);
        let step = (|| {
            let a = acc_n.checked_mul(d)?;
            let b = n.checked_mul(acc_d)?;
            let den = acc_d.checked_mul(d)?;
            Some((a.checked_add(b)?, den))
        })();
        let (num, den) = match step {
            Some(v) => v,
            // u128 exhausted even after per-step gcd reduction: fall back
            // to the float estimate (only reachable with adversarially
            // huge coprime periods, far from the feasibility boundary).
            None => return utilization(streams, service) <= 1.0,
        };
        let g = gcd_u128(num, den);
        acc_n = num / g;
        acc_d = den / g;
    }
    acc_n <= acc_d
}

/// Admission decision for adding `candidate` to `existing`.
pub fn admit(existing: &[StreamQos], candidate: StreamQos, service: Time) -> bool {
    let mut all = existing.to_vec();
    all.push(candidate);
    feasible(&all, service)
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MILLISECOND;

    #[test]
    fn single_stream_within_capacity() {
        // Period 10 ms, service 1 ms, no losses allowed: U = 0.1.
        let q = StreamQos::new(10 * MILLISECOND, 0, 1);
        assert!(feasible(&[q], MILLISECOND));
        assert!((utilization(&[q], MILLISECOND) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn loss_tolerance_buys_capacity() {
        // 20 streams, period 10 ms, service 1 ms, lossless: U = 2.0 → infeasible.
        let lossless = vec![StreamQos::new(10 * MILLISECOND, 0, 1); 20];
        assert!(!feasible(&lossless, MILLISECOND));
        // Same streams tolerating half their packets late: U = 1.0 → feasible.
        let lossy = vec![StreamQos::new(10 * MILLISECOND, 1, 2); 20];
        assert!(feasible(&lossy, MILLISECOND));
        assert!((utilization(&lossy, MILLISECOND) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_is_inclusive() {
        // Exactly U = 1: 10 lossless streams, period 10 ms, service 1 ms.
        let set = vec![StreamQos::new(10 * MILLISECOND, 0, 1); 10];
        assert!(feasible(&set, MILLISECOND));
        // One more tips it over.
        assert!(!admit(&set, StreamQos::new(10 * MILLISECOND, 0, 1), MILLISECOND));
    }

    #[test]
    fn admit_matches_feasible() {
        let existing = vec![
            StreamQos::new(5 * MILLISECOND, 1, 4, ),
            StreamQos::new(8 * MILLISECOND, 2, 8),
        ];
        let c = StreamQos::new(3 * MILLISECOND, 0, 1);
        let mut all = existing.clone();
        all.push(c);
        assert_eq!(admit(&existing, c, MILLISECOND), feasible(&all, MILLISECOND));
    }

    #[test]
    fn fully_lossy_streams_cost_nothing() {
        let free = vec![StreamQos::new(MILLISECOND, 4, 4); 1000];
        assert!(feasible(&free, MILLISECOND));
        assert_eq!(utilization(&free, MILLISECOND), 0.0);
    }

    #[test]
    fn many_heterogeneous_streams_no_overflow() {
        let mut set = Vec::new();
        for i in 1..=64u32 {
            set.push(StreamQos::new(Time::from(i) * MILLISECOND + 7, i % 3, (i % 3) + 3));
        }
        // Must terminate and agree with the float estimate on which side of
        // 1.0 we are (the set is far from the boundary).
        let u = utilization(&set, 100_000);
        assert_eq!(feasible(&set, 100_000), u <= 1.0);
    }
}
