//! The DWCS precedence rules as a total order.
//!
//! Pairwise packet ordering (West & Schwan, as used by the paper):
//!
//! 1. **Earliest deadline first.**
//! 2. Equal deadlines → **lowest current window-constraint** `W' = x'/y'`.
//! 3. Equal deadlines, both constraints zero → **highest window-denominator
//!    `y'` first** (the stream deepest into — or stretched furthest by —
//!    its zero-budget window is most urgent).
//! 4. Equal deadlines, equal non-zero constraints → **highest numerator
//!    `x'` first** (a larger window with the same ratio has more absolute
//!    slack to protect).
//! 5. All else equal → **first-come-first-served** (arrival order).
//!
//! A globally unique arrival sequence makes the order *strict* — no two
//! distinct head packets compare equal — so every [`ScheduleRepr`]
//! (including `BTreeSet`-based ones) sees a consistent total order.
//!
//! [`ScheduleRepr`]: crate::repr::ScheduleRepr

use crate::types::Time;
use core::cmp::Ordering;
use fixedpt::Frac;

/// Everything the precedence rules need to know about a stream's head
/// packet. Compact by design — the embedded implementation keeps one of
/// these per stream in NI memory (or in the i960's memory-mapped "hardware
/// queue" registers, Table 3).
#[derive(Clone, Copy, Debug)]
pub struct HeadKey {
    /// Head packet's deadline (latest service-start time).
    pub deadline: Time,
    /// Current window-constraint numerator `x'`.
    pub x: u32,
    /// Current window-constraint denominator `y'`.
    pub y: u32,
    /// Global arrival sequence (FCFS tiebreak; unique per enqueue).
    pub arrival: u64,
}

impl HeadKey {
    /// Current window-constraint `W' = x'/y'`.
    #[inline]
    pub fn constraint(&self) -> Frac {
        Frac::new(self.x, self.y)
    }

    /// The DWCS precedence relation. `Less` means *serve first*.
    #[inline]
    pub fn precedence(&self, other: &HeadKey) -> Ordering {
        // Rule 1: earliest deadline first.
        self.deadline
            .cmp(&other.deadline)
            .then_with(|| {
                let wa = self.constraint();
                let wb = other.constraint();
                // Rule 2: lowest window-constraint first.
                wa.cmp(&wb).then_with(|| {
                    if wa.is_zero() {
                        // Rule 3: both zero → highest y' first.
                        other.y.cmp(&self.y)
                    } else {
                        // Rule 4: equal non-zero → highest x' first.
                        other.x.cmp(&self.x)
                    }
                })
            })
            // Rule 5: FCFS.
            .then_with(|| self.arrival.cmp(&other.arrival))
    }
}

impl PartialEq for HeadKey {
    fn eq(&self, other: &HeadKey) -> bool {
        self.precedence(other) == Ordering::Equal
    }
}

impl Eq for HeadKey {}

impl PartialOrd for HeadKey {
    fn partial_cmp(&self, other: &HeadKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeadKey {
    fn cmp(&self, other: &HeadKey) -> Ordering {
        self.precedence(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(deadline: Time, x: u32, y: u32, arrival: u64) -> HeadKey {
        HeadKey {
            deadline,
            x,
            y,
            arrival,
        }
    }

    #[test]
    fn rule1_earliest_deadline_wins() {
        let a = key(100, 3, 4, 10);
        let b = key(200, 0, 9, 0);
        assert!(a < b, "earlier deadline dominates everything else");
    }

    #[test]
    fn rule2_lowest_constraint_wins_on_deadline_tie() {
        let tight = key(100, 1, 4, 5); // W' = 0.25
        let loose = key(100, 3, 4, 1); // W' = 0.75
        assert!(tight < loose);
        // Zero constraint beats non-zero.
        let zero = key(100, 0, 4, 9);
        assert!(zero < tight);
    }

    #[test]
    fn rule3_zero_constraints_highest_denominator_wins() {
        let deep = key(100, 0, 12, 9);
        let shallow = key(100, 0, 3, 1);
        assert!(deep < shallow, "y'=12 outranks y'=3 when both W'=0");
    }

    #[test]
    fn rule4_equal_nonzero_highest_numerator_wins() {
        // Same ratio 1/2 vs 3/6 — equal as fractions, x' differs.
        let big = key(100, 3, 6, 9);
        let small = key(100, 1, 2, 1);
        assert!(big < small, "x'=3 outranks x'=1 at equal W'");
    }

    #[test]
    fn rule5_fcfs_breaks_remaining_ties() {
        let first = key(100, 1, 2, 7);
        let second = key(100, 1, 2, 8);
        assert!(first < second);
    }

    #[test]
    fn order_is_strict_for_distinct_arrivals() {
        let a = key(100, 1, 2, 1);
        let b = key(100, 1, 2, 2);
        assert_ne!(a.cmp(&b), Ordering::Equal);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn order_is_antisymmetric_and_transitive_on_samples() {
        let keys = [
            key(50, 0, 3, 1),
            key(50, 0, 9, 2),
            key(50, 1, 3, 3),
            key(50, 2, 6, 4),
            key(50, 3, 3, 5),
            key(60, 0, 1, 6),
            key(40, 3, 3, 7),
        ];
        for a in &keys {
            for b in &keys {
                assert_eq!(a.cmp(b), b.cmp(a).reverse());
                for c in &keys {
                    if a.cmp(b) != Ordering::Greater && b.cmp(c) != Ordering::Greater {
                        assert_ne!(a.cmp(c), Ordering::Greater, "{a:?} {b:?} {c:?}");
                    }
                }
            }
        }
    }
}
