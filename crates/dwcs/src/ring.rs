//! The synchronization-free per-stream circular buffer of Figure 4(b).
//!
//! *"Using a circular queue for each stream eliminates the need for
//! synchronization between the scheduler that selects the next packet for
//! service, and the server that queues packets to be scheduled. … Frame
//! producers may inject frames into the scheduler using the tail pointer
//! and the scheduler may read frames using the head pointer."*
//!
//! [`SpscRing`] is that structure for the real threaded engine: a
//! fixed-capacity single-producer / single-consumer ring where the producer
//! only writes the tail index and the consumer only writes the head index.
//! On the i960 the indices were plain words (one writer each side makes the
//! races benign on that single-bus system); in Rust the same design is
//! expressed with acquire/release atomics — the *data* still moves with no
//! locks, no CAS loops, and no allocation after construction (the paper's
//! "physically pinned memory" discipline).
//!
//! Capacity is rounded up to a power of two; one slot is sacrificed to
//! distinguish full from empty, exactly like the firmware original.

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Error returned when pushing to a full ring.
#[derive(Debug, PartialEq, Eq)]
pub struct RingFull<T>(pub T);

struct Shared<T> {
    /// Slots; `Mutex<Option<T>>` per slot rather than `UnsafeCell` because
    /// this crate forbids `unsafe`. Each mutex is uncontended by
    /// construction (only the producer touches a slot between tail
    /// publication points, only the consumer afterwards), so the cost is a
    /// single uncontended atomic per access — the SPSC discipline is
    /// preserved, just belt-and-braces checked.
    slots: Box<[Mutex<Option<T>>]>,
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    mask: usize,
}

/// Producer half: owned by exactly one thread.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer's cached copy of its own tail (no atomic read needed).
    tail: usize,
}

/// Consumer half: owned by exactly one thread.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer's cached copy of its own head.
    head: usize,
}

/// Constructor namespace for the ring (see [`SpscRing::with_capacity`]).
pub struct SpscRing;

impl SpscRing {
    /// Create a ring holding at least `capacity` elements, returning the
    /// two endpoints. Capacity is rounded up to a power of two.
    pub fn with_capacity<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let shared = Arc::new(Shared {
            slots,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            mask: cap - 1,
        });
        (
            Producer {
                shared: Arc::clone(&shared),
                tail: 0,
            },
            Consumer { shared, head: 0 },
        )
    }
}

impl<T> Producer<T> {
    /// Push an element; returns it back if the ring is full (the producer
    /// decides whether to drop, spin, or backpressure — for media frames
    /// the paper's answer is stream-selective dropping).
    pub fn push(&mut self, value: T) -> Result<(), RingFull<T>> {
        let head = self.shared.head.load(Ordering::Acquire);
        let next = (self.tail + 1) & self.shared.mask;
        if next == head & self.shared.mask {
            return Err(RingFull(value));
        }
        *self.shared.slots[self.tail].lock() = Some(value);
        self.tail = next;
        self.shared.tail.store(next, Ordering::Release);
        Ok(())
    }

    /// Number of free slots (approximate under concurrency, exact when the
    /// consumer is quiescent).
    pub fn free(&self) -> usize {
        let head = self.shared.head.load(Ordering::Acquire) & self.shared.mask;
        let used = (self.tail.wrapping_sub(head)) & self.shared.mask;
        self.shared.mask - used
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        let tail = self.shared.tail.load(Ordering::Acquire);
        if self.head == tail {
            return None;
        }
        let value = self.shared.slots[self.head].lock().take();
        debug_assert!(value.is_some(), "published slot must be occupied");
        self.head = (self.head + 1) & self.shared.mask;
        self.shared.head.store(self.head, Ordering::Release);
        value
    }

    /// Number of queued elements (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.load(Ordering::Acquire);
        (tail.wrapping_sub(self.head)) & self.shared.mask
    }

    /// Whether currently empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (mut tx, mut rx) = SpscRing::with_capacity::<u32>(8);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_ring_rejects_and_returns_value() {
        let (mut tx, mut rx) = SpscRing::with_capacity::<u32>(4); // usable = 3
        assert!(tx.push(1).is_ok());
        assert!(tx.push(2).is_ok());
        assert!(tx.push(3).is_ok());
        assert_eq!(tx.push(4), Err(RingFull(4)));
        assert_eq!(tx.free(), 0);
        assert_eq!(rx.pop(), Some(1));
        assert!(tx.push(4).is_ok(), "slot freed by pop");
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (mut tx, _rx) = SpscRing::with_capacity::<u8>(5); // rounds to 8, usable 7
        for i in 0..7 {
            assert!(tx.push(i).is_ok(), "push {i}");
        }
        assert!(tx.push(7).is_err());
    }

    #[test]
    fn wraparound_many_times() {
        let (mut tx, mut rx) = SpscRing::with_capacity::<u64>(4);
        for round in 0..100u64 {
            tx.push(round * 2).unwrap();
            tx.push(round * 2 + 1).unwrap();
            assert_eq!(rx.pop(), Some(round * 2));
            assert_eq!(rx.pop(), Some(round * 2 + 1));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn cross_thread_stream() {
        let (mut tx, mut rx) = SpscRing::with_capacity::<u64>(64);
        const N: u64 = 100_000;
        let producer = thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                match tx.push(next) {
                    Ok(()) => next += 1,
                    Err(RingFull(_)) => thread::yield_now(),
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expected, "FIFO order violated");
                    expected += 1;
                }
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn len_tracks_occupancy() {
        let (mut tx, mut rx) = SpscRing::with_capacity::<u8>(8);
        assert_eq!(rx.len(), 0);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.len(), 2);
        rx.pop();
        assert_eq!(rx.len(), 1);
    }
}
