//! Core value types: time, stream identity, frame descriptors.

use core::fmt;

/// Nanoseconds on whatever clock drives the scheduler (virtual in the
/// simulator, monotonic-since-start in the real engine).
pub type Time = u64;

/// One microsecond in [`Time`] units.
pub const MICROSECOND: Time = 1_000;
/// One millisecond in [`Time`] units.
pub const MILLISECOND: Time = 1_000_000;
/// One second in [`Time`] units.
pub const SECOND: Time = 1_000_000_000;

/// Index of a stream registered with a scheduler. Dense and small: the NI
/// implementation stores per-stream state in flat arrays (4 MB of on-board
/// memory forces compact representations — §3.1.1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u32);

impl StreamId {
    /// Dense array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// MPEG-1 frame classes (the unit of scheduling in the paper is an MPEG-I
/// frame) plus a generic class for non-video packets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FrameKind {
    /// Intra-coded picture (largest; loss hurts the whole GOP).
    I,
    /// Predicted picture.
    P,
    /// Bidirectionally predicted picture (smallest; most losable).
    B,
    /// Audio or other media.
    Audio,
    /// Anything else (the scheduler is media-agnostic).
    #[default]
    Other,
}

impl FrameKind {
    /// Single-letter tag used in traces.
    pub fn tag(self) -> char {
        match self {
            FrameKind::I => 'I',
            FrameKind::P => 'P',
            FrameKind::B => 'B',
            FrameKind::Audio => 'A',
            FrameKind::Other => '?',
        }
    }
}

/// A frame descriptor — what actually moves through the scheduler.
///
/// The paper stores *descriptors* (compactly, sometimes in memory-mapped
/// "hardware queue" registers) while the single copy of frame *data* stays
/// pinned in NI memory; the scheduler manipulates addresses only. `addr`
/// plays that role here: an opaque handle (pool slot, simulated NI address,
/// or real buffer index) that the dispatch path resolves to bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameDesc {
    /// Owning stream.
    pub stream: StreamId,
    /// Per-stream sequence number (0-based production order).
    pub seq: u64,
    /// Payload length in bytes (drives wire time).
    pub len: u32,
    /// Frame class.
    pub kind: FrameKind,
    /// When the producer enqueued the descriptor (queuing-delay baseline).
    pub enqueued_at: Time,
    /// Opaque handle to the frame bytes (NI-local address in the paper).
    pub addr: u64,
}

impl FrameDesc {
    /// Convenience constructor for tests and generators.
    pub fn new(stream: StreamId, seq: u64, len: u32, kind: FrameKind) -> FrameDesc {
        FrameDesc {
            stream,
            seq,
            len,
            kind,
            enqueued_at: 0,
            addr: 0,
        }
    }

    /// Same descriptor with an enqueue timestamp.
    pub fn enqueued(mut self, t: Time) -> FrameDesc {
        self.enqueued_at = t;
        self
    }

    /// Same descriptor with a payload address.
    pub fn at_addr(mut self, addr: u64) -> FrameDesc {
        self.addr = addr;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_id_is_dense() {
        assert_eq!(StreamId(7).index(), 7);
        assert_eq!(format!("{}", StreamId(3)), "s3");
    }

    #[test]
    fn frame_builder() {
        let f = FrameDesc::new(StreamId(1), 42, 1000, FrameKind::P)
            .enqueued(5 * MICROSECOND)
            .at_addr(0xA000_0000);
        assert_eq!(f.seq, 42);
        assert_eq!(f.enqueued_at, 5_000);
        assert_eq!(f.addr, 0xA000_0000);
        assert_eq!(f.kind.tag(), 'P');
    }

    #[test]
    fn kind_tags_unique() {
        let tags: Vec<char> = [
            FrameKind::I,
            FrameKind::P,
            FrameKind::B,
            FrameKind::Audio,
            FrameKind::Other,
        ]
        .iter()
        .map(|k| k.tag())
        .collect();
        let mut dedup = tags.clone();
        dedup.dedup();
        assert_eq!(tags, dedup);
    }
}
