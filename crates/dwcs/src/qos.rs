//! Stream QoS attributes and window-constraint state.
//!
//! A stream's *loss-tolerance* `x/y` says: of every `y` consecutive packets,
//! at most `x` may be lost or transmitted late. DWCS maintains a current
//! window `x'/y'` per stream; the adjustment rules below tighten it as the
//! window is consumed and reset it when a window completes. The current
//! *window-constraint* `W' = x'/y'` feeds the precedence rules — a stream
//! that has exhausted its loss budget (`W' = 0`) outranks equal-deadline
//! streams with slack.

use crate::types::Time;
use fixedpt::ops::{LogicalOp, OpMeter};
use fixedpt::Frac;

/// Whether packets that miss their deadline may be discarded.
///
/// The paper (§3.1.2): late packets are "either dropped or transmitted
/// late, depending on whether or not the attribute-based QoS for the stream
/// allows some packets to be lost".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LossPolicy {
    /// Lossy stream: late packets are dropped without transmission,
    /// "avoiding unnecessary bandwidth consumption".
    #[default]
    Droppable,
    /// Loss-intolerant stream: late packets must still be transmitted.
    SendLate,
}

/// Static QoS attributes a stream is admitted with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamQos {
    /// Request period `T`: deadline spacing between consecutive packets
    /// (nanoseconds). The head packet's deadline is its predecessor's
    /// deadline plus `T`.
    pub period: Time,
    /// Loss numerator `x`: packets losable per window.
    pub loss_num: u32,
    /// Loss denominator `y`: the window length in packets. Must be ≥ 1 and
    /// ≥ `loss_num`.
    pub loss_den: u32,
    /// Late-packet policy.
    pub policy: LossPolicy,
}

impl StreamQos {
    /// Build a QoS spec; panics on a malformed tolerance (`y == 0` or
    /// `x > y`), which would make the window state meaningless.
    pub fn new(period: Time, loss_num: u32, loss_den: u32) -> StreamQos {
        assert!(loss_den >= 1, "loss window must contain at least one packet");
        assert!(loss_num <= loss_den, "cannot lose more packets than the window holds");
        assert!(period > 0, "period must be positive");
        StreamQos {
            period,
            loss_num,
            loss_den,
            policy: LossPolicy::Droppable,
        }
    }

    /// Same spec with late packets transmitted rather than dropped.
    pub fn send_late(mut self) -> StreamQos {
        self.policy = LossPolicy::SendLate;
        self
    }

    /// The nominal window-constraint `W = x/y`.
    pub fn tolerance(&self) -> Frac {
        Frac::new(self.loss_num, self.loss_den)
    }

    /// Fraction of packets that *must* be serviced on time: `1 - x/y`.
    pub fn required_fraction(&self) -> Frac {
        Frac::new(self.loss_den - self.loss_num, self.loss_den)
    }
}

/// Outcome of a deadline miss, from [`Window::on_miss`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MissOutcome {
    /// The miss fit inside the loss budget.
    Tolerated,
    /// The window-constraint was violated (budget already exhausted).
    Violation,
}

/// Dynamic window state `x'/y'` for one stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// Original numerator `x`.
    x0: u32,
    /// Original denominator `y`.
    y0: u32,
    /// Current numerator `x'` (losses still tolerable in this window).
    x: u32,
    /// Current denominator `y'` (packets left in this window).
    y: u32,
    /// Cumulative constraint violations.
    violations: u64,
}

impl Window {
    /// Fresh window state from a QoS spec.
    pub fn new(qos: &StreamQos) -> Window {
        Window {
            x0: qos.loss_num,
            y0: qos.loss_den,
            x: qos.loss_num,
            y: qos.loss_den,
            violations: 0,
        }
    }

    /// Current numerator `x'`.
    pub fn x(&self) -> u32 {
        self.x
    }

    /// Current denominator `y'`.
    pub fn y(&self) -> u32 {
        self.y
    }

    /// Current window-constraint `W' = x'/y'`.
    pub fn constraint(&self) -> Frac {
        Frac::new(self.x, self.y)
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Adjustment after a packet of this stream is serviced **before its
    /// deadline** (West & Schwan): one on-time slot of the window is
    /// consumed (`y' -= 1` while `y' > x'`); when only losable slots remain
    /// (`y' == x'`) the constraint is trivially satisfied for the rest of
    /// the window, so the window resets to the original `x/y`.
    pub fn on_timely_service(&mut self, meter: &OpMeter) {
        meter.record(LogicalOp::RatioUpdate, 1);
        if self.y > self.x {
            self.y -= 1;
        }
        if self.y == self.x {
            self.reset();
        }
    }

    /// Adjustment after a packet **misses its deadline** (dropped or sent
    /// late). A tolerable miss consumes one loss slot (`x' -= 1, y' -= 1`,
    /// resetting when the window completes). A miss with `x' == 0` is a
    /// **violation**: we record it and stretch the current window by one
    /// original denominator (`y' += y`), which keeps `W' = 0` while raising
    /// `y'` — under precedence rule 3 (equal zero constraints → highest `y'`
    /// first) this pushes the violated stream toward the head of the line,
    /// the same corrective pressure the DWCS papers describe.
    pub fn on_miss(&mut self, meter: &OpMeter) -> MissOutcome {
        meter.record(LogicalOp::RatioUpdate, 1);
        if self.x > 0 {
            self.x -= 1;
            self.y -= 1;
            if self.y == self.x {
                self.reset();
            }
            MissOutcome::Tolerated
        } else {
            self.violations += 1;
            self.y = self.y.saturating_add(self.y0);
            MissOutcome::Violation
        }
    }

    /// Restore the original window (start of a new window of `y` packets).
    fn reset(&mut self) {
        self.x = self.x0;
        self.y = self.y0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixedpt::ops::MathMode;

    fn meter() -> OpMeter {
        OpMeter::new(MathMode::FixedPoint)
    }

    fn qos(x: u32, y: u32) -> StreamQos {
        StreamQos::new(1_000_000, x, y)
    }

    #[test]
    fn tolerance_fractions() {
        let q = qos(2, 8);
        assert_eq!(q.tolerance(), Frac::new(2, 8));
        assert_eq!(q.required_fraction().reduced(), Frac::new(3, 4));
    }

    #[test]
    #[should_panic(expected = "cannot lose more")]
    fn rejects_x_greater_than_y() {
        let _ = qos(9, 8);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn rejects_zero_window() {
        let _ = qos(0, 0);
    }

    #[test]
    fn timely_service_consumes_window_and_resets() {
        let m = meter();
        let q = qos(1, 3);
        let mut w = Window::new(&q);
        assert_eq!((w.x(), w.y()), (1, 3));
        w.on_timely_service(&m); // y' 3→2
        assert_eq!((w.x(), w.y()), (1, 2));
        w.on_timely_service(&m); // y' 2→1 == x' → reset
        assert_eq!((w.x(), w.y()), (1, 3));
    }

    #[test]
    fn zero_tolerance_window_cycles() {
        let m = meter();
        let q = qos(0, 2);
        let mut w = Window::new(&q);
        w.on_timely_service(&m); // y' 2→1
        assert_eq!((w.x(), w.y()), (0, 1));
        w.on_timely_service(&m); // y' 1→0 == x' → reset
        assert_eq!((w.x(), w.y()), (0, 2));
        assert_eq!(w.violations(), 0);
    }

    #[test]
    fn tolerated_miss_spends_loss_budget() {
        let m = meter();
        let q = qos(2, 4);
        let mut w = Window::new(&q);
        assert_eq!(w.on_miss(&m), MissOutcome::Tolerated);
        assert_eq!((w.x(), w.y()), (1, 3));
        assert_eq!(w.on_miss(&m), MissOutcome::Tolerated);
        // x'=0, y'=2 — not equal, window continues with no budget.
        assert_eq!((w.x(), w.y()), (0, 2));
        assert_eq!(w.violations(), 0);
    }

    #[test]
    fn miss_to_window_completion_resets() {
        let m = meter();
        let q = qos(1, 2);
        let mut w = Window::new(&q);
        assert_eq!(w.on_miss(&m), MissOutcome::Tolerated);
        // x' 1→0, y' 2→1; not equal... 0 != 1, continues.
        assert_eq!((w.x(), w.y()), (0, 1));
        w.on_timely_service(&m); // y' 1→0 == x' → reset
        assert_eq!((w.x(), w.y()), (1, 2));
    }

    #[test]
    fn violation_recorded_and_window_stretched() {
        let m = meter();
        let q = qos(0, 3);
        let mut w = Window::new(&q);
        assert_eq!(w.on_miss(&m), MissOutcome::Violation);
        assert_eq!(w.violations(), 1);
        assert_eq!((w.x(), w.y()), (0, 6)); // y' stretched by y0
        assert!(w.constraint().is_zero());
        assert_eq!(w.on_miss(&m), MissOutcome::Violation);
        assert_eq!(w.violations(), 2);
    }

    #[test]
    fn constraint_tracks_state() {
        let m = meter();
        let q = qos(3, 6);
        let mut w = Window::new(&q);
        assert_eq!(w.constraint().reduced(), Frac::new(1, 2));
        w.on_timely_service(&m); // 3/5
        assert_eq!(w.constraint(), Frac::new(3, 5));
        w.on_miss(&m); // 2/4
        assert_eq!(w.constraint().reduced(), Frac::new(1, 2));
    }

    #[test]
    fn fully_lossy_stream_never_violates() {
        let m = meter();
        let q = qos(4, 4);
        let mut w = Window::new(&q);
        for _ in 0..100 {
            assert_eq!(w.on_miss(&m), MissOutcome::Tolerated);
        }
        assert_eq!(w.violations(), 0);
    }
}
