//! The placement-agnostic scheduler **service core**.
//!
//! The paper's central architectural claim (§3) is that the *same* DWCS
//! scheduler module runs unchanged wherever it is placed — in a host
//! process, or on the NI co-processor as a DVCM run-time extension. This
//! module makes the repository embody that claim: [`SchedService`] owns
//! the complete service loop — ingest descriptors, pace by deadline,
//! decide, resolve drops versus late sends, update window/violation
//! state, emit [`DispatchRecord`]s, meter op-classes — and every
//! placement supplies only its environment through a small [`Platform`]
//! trait (a clock, a dispatch sink, a drop reclaimer, an op meter).
//!
//! Three placements bind to this core:
//!
//! * the real threaded engine (`nistream-core::engine`) — wall clock,
//!   frame-pool payload resolution, pluggable frame sinks;
//! * the DVCM media-scheduler extension (`dvcm::media_sched`) — NI time,
//!   an outbox the embedding drains onto the wire;
//! * the simulation worlds (`serversim::{hostload,niload,ninode}`) —
//!   simulated time, cost-model pricing per decision and per dispatch.
//!
//! Like the rest of this crate the core is NI-resident code: no floating
//! point, no panicking constructs, and fully deterministic given its
//! inputs (enforced by `nistream-analysis`).

use crate::qos::StreamQos;
use crate::repr::ScheduleRepr;
use crate::scheduler::{DispatchedFrame, DwcsScheduler, SchedDecision, SchedulerConfig};
use crate::types::{FrameDesc, StreamId, Time};
use fixedpt::SharedMeter;
use nistream_trace::{TraceEvent, TraceRing};

/// One dispatched frame with its decision metadata.
///
/// This is the unit every placement's dispatch path receives — the NI
/// extension queues them in an outbox, the threaded engine resolves the
/// descriptor to a pooled payload, the simulators price wire occupancy.
#[derive(Clone, Copy, Debug)]
pub struct DispatchRecord {
    /// The dispatched frame.
    pub frame: DispatchedFrame,
    /// Service-core time of the scheduling decision.
    pub decided_at: Time,
    /// Late frames dropped while reaching this decision.
    pub dropped_before: u32,
}

/// What one [`SchedService::service_once`] pass did.
#[derive(Clone, Copy, Debug)]
pub struct ServiceOutcome {
    /// The raw scheduling decision (work counts, drop count, frame).
    pub decision: SchedDecision,
    /// Dispatch records handed to [`Platform::dispatch`] this pass
    /// (coupled decision plus any decoupled queue drain).
    pub dispatched: u32,
}

/// The environment a scheduler placement supplies to the service core.
///
/// Each placement provides exactly the pieces its environment owns:
///
/// | method | host engine (`nistream-core`) | NI extension (`dvcm`) | serversim worlds |
/// |---|---|---|---|
/// | [`now`](Platform::now) | wall clock since server epoch (or a virtual clock in tests) | NI time latched from the VCM instruction / poll | simulated time set by the world before each pass |
/// | [`set_now`](Platform::set_now) | ignored (wall clock) or sets the virtual clock | latches poll time | advances the world clock |
/// | [`on_decision`](Platform::on_decision) | unused (real time passes by itself) | unused (the embedding prices) | prices the decision on the `hwsim` CPU model and advances time |
/// | [`dispatch`](Platform::dispatch) | resolve descriptor in the `FramePool`, deliver to the `FrameSink` | push a [`DispatchRecord`] into the outbox | price send/wire occupancy, record bandwidth and queuing delay |
/// | [`reclaim`](Platform::reclaim) | release the frame's pool slot, notify the sink | log the descriptor for the host to reclaim | account the dropped frame (payloads are synthetic) |
/// | [`meter`](Platform::meter) | null meter | null meter (the i960 prices per-decision [`Work`](crate::repr::Work) instead) | null meter (ditto) |
///
/// Default implementations make every method except [`now`](Platform::now)
/// and [`dispatch`](Platform::dispatch) optional.
pub trait Platform {
    /// Current time on this placement's clock, in nanoseconds.
    fn now(&mut self) -> Time;

    /// Move a settable clock to `t`. Placements with an autonomous clock
    /// (the threaded engine's wall clock) ignore this.
    fn set_now(&mut self, t: Time) {
        let _ = t;
    }

    /// Observe one completed decision pass before any dispatch is
    /// delivered: `decision` carries the representation work counts and
    /// `backlog` the total frames still queued across active streams.
    /// Simulated placements price the decision here and advance their
    /// clock; real placements let time pass by itself.
    fn on_decision(&mut self, decision: &SchedDecision, backlog: u64) {
        let _ = (decision, backlog);
    }

    /// Deliver one dispatched frame to this placement's transport.
    fn dispatch(&mut self, rec: &DispatchRecord);

    /// Reclaim the resources of a frame the scheduler dropped (late,
    /// within loss budget) or discarded (stream close). The threaded
    /// engine releases the payload's pool slot here — "a single copy of
    /// frames in NI memory" requires every descriptor's slot to be
    /// returned exactly once.
    fn reclaim(&mut self, desc: &FrameDesc) {
        let _ = desc;
    }

    /// The op meter to attach to the scheduler (defaults to the null
    /// meter; the soft-float ablation builds attach a counting one).
    fn meter(&self) -> SharedMeter {
        fixedpt::ops::null_meter()
    }

    /// The NI-resident trace ring events should be pushed into, if this
    /// placement carries one (`None` — the default — disables tracing
    /// with zero overhead on the service path).
    ///
    /// The service core emits the events *centrally* through this hook,
    /// so every placement produces the identical stream for the same
    /// schedule: per pass `Drop*` (reclaims precede dispatches,
    /// DESIGN.md §8), then `Decision`, then `Dispatch*`, then
    /// `QueueDepth`, all stamped with the pass-start clock — placement
    /// cost models advance time *after* the decision, so the stamps are
    /// placement-invariant.
    fn tracer(&mut self) -> Option<&mut TraceRing> {
        None
    }
}

/// The scheduler service core: a [`DwcsScheduler`] plus the [`Platform`]
/// it is placed on, owning the decide → reclaim → dispatch loop that was
/// historically re-implemented by every embedding.
///
/// # Reclaim ordering
///
/// Within one service pass the order is fixed (DESIGN.md §8): frames
/// dropped while reaching a decision are reclaimed **before** the
/// surviving frame's dispatch is delivered. A dropped frame's pool slot
/// is therefore free by the time the dispatch path runs — on the memory-
/// constrained NI the reclaimed slot may be the one the very next
/// producer burst needs. `tests/` pins this with a regression test.
pub struct SchedService<R, P> {
    sched: DwcsScheduler<R>,
    platform: P,
    /// Per-pass drop staging, hoisted here so the steady-state service
    /// pass allocates nothing: the buffer trades capacity back and forth
    /// with the scheduler's internal drop list every pass.
    drops: Vec<FrameDesc>,
}

impl<R: ScheduleRepr, P: Platform> SchedService<R, P> {
    /// Build a service core over `repr` with `cfg`, placed on `platform`.
    /// The platform's [`meter`](Platform::meter) is attached to the
    /// scheduler.
    pub fn new(repr: R, cfg: SchedulerConfig, platform: P) -> SchedService<R, P> {
        let mut sched = DwcsScheduler::with_config(repr, cfg);
        sched.set_meter(platform.meter());
        SchedService {
            sched,
            platform,
            drops: Vec::new(),
        }
    }

    /// Admit a stream (traced as an `Admit` event when the platform
    /// carries a ring).
    pub fn open(&mut self, qos: StreamQos) -> StreamId {
        let at = if self.platform.tracer().is_some() {
            self.platform.now()
        } else {
            0
        };
        let sid = self.sched.add_stream(qos);
        if let Some(ring) = self.platform.tracer() {
            ring.push(TraceEvent::Admit {
                at,
                stream: sid.0,
                period: qos.period,
                loss_num: qos.loss_num,
                loss_den: qos.loss_den,
            });
        }
        sid
    }

    /// Close a stream: its backlog is routed through
    /// [`Platform::reclaim`] (slot-per-descriptor accounting survives a
    /// mid-stream close), then the stream is deregistered. Each
    /// discarded frame is traced as a `Drop`.
    pub fn close(&mut self, sid: StreamId) {
        let at = if self.platform.tracer().is_some() {
            self.platform.now()
        } else {
            0
        };
        let platform = &mut self.platform;
        self.sched.remove_stream_with(sid, |desc| {
            if let Some(ring) = platform.tracer() {
                ring.push(TraceEvent::Drop {
                    at,
                    stream: desc.stream.0,
                    seq: desc.seq,
                });
            }
            platform.reclaim(&desc);
        });
    }

    /// Ingest one frame descriptor at the platform's current time.
    pub fn ingest(&mut self, sid: StreamId, desc: FrameDesc) {
        let now = self.platform.now();
        self.sched.enqueue(sid, desc, now);
    }

    /// Ingest one frame descriptor at an explicit time (simulated
    /// placements timestamp sub-slice arrivals).
    pub fn ingest_at(&mut self, sid: StreamId, desc: FrameDesc, now: Time) {
        self.sched.enqueue(sid, desc, now);
    }

    /// One full service pass at the platform's current time:
    ///
    /// 1. make one scheduling decision;
    /// 2. reclaim every frame dropped reaching it (before any dispatch —
    ///    see the type-level docs);
    /// 3. report the pass to [`Platform::on_decision`];
    /// 4. deliver the coupled decision's frame, then drain the decoupled
    ///    dispatch queue, through [`Platform::dispatch`].
    ///
    /// When the platform carries a [`Platform::tracer`] ring the pass
    /// additionally emits `Drop*`, `Decision`, `Dispatch*`, `QueueDepth`
    /// events in that order, stamped with the pass-start clock (the
    /// decoupled drain stamps each dispatch with its own pop time, which
    /// is what [`DispatchRecord::decided_at`] already records).
    // analysis: hot
    pub fn service_once(&mut self) -> ServiceOutcome {
        let now = self.platform.now();
        let decision = self.sched.schedule_next(now);
        self.sched.take_dropped(&mut self.drops);
        // One decision's drops: bounded by `max_drops_per_decision` ≤ 16
        // on the NI, doubled for the same stale slack as decide's bound.
        // analysis: bound 32
        for desc in self.drops.drain(..) {
            if let Some(ring) = self.platform.tracer() {
                ring.push(TraceEvent::Drop {
                    at: now,
                    stream: desc.stream.0,
                    seq: desc.seq,
                });
            }
            self.platform.reclaim(&desc);
        }
        let backlog = self.sched.total_backlog();
        if let Some(ring) = self.platform.tracer() {
            ring.push(TraceEvent::Decision {
                at: now,
                stream: decision.frame.map(|f| f.desc.stream.0),
                dropped: decision.dropped,
                backlog,
                compares: decision.work.compares,
                touches: decision.work.touches,
            });
        }
        self.platform.on_decision(&decision, backlog);
        let mut dispatched = 0u32;
        if let Some(frame) = decision.frame {
            let rec = DispatchRecord {
                frame,
                decided_at: now,
                dropped_before: decision.dropped,
            };
            Self::trace_dispatch(&mut self.platform, &rec);
            self.platform.dispatch(&rec);
            dispatched += 1;
        }
        // Decoupled dispatch backlog: schedule_next enqueues at most one
        // frame per pass and every pass drains the queue dry, so the
        // backlog never exceeds the admitted stream count (≤ 16 on the NI).
        // analysis: bound 16
        loop {
            let now = self.platform.now();
            let Some(frame) = self.sched.pop_dispatch(now) else {
                break;
            };
            let rec = DispatchRecord {
                frame,
                decided_at: now,
                dropped_before: 0,
            };
            Self::trace_dispatch(&mut self.platform, &rec);
            self.platform.dispatch(&rec);
            dispatched += 1;
        }
        if let Some(ring) = self.platform.tracer() {
            ring.push(TraceEvent::QueueDepth {
                at: now,
                depth: self.sched.total_backlog(),
            });
        }
        ServiceOutcome { decision, dispatched }
    }

    /// Trace one dispatch just before it is delivered, stamped with the
    /// record's decision time.
    fn trace_dispatch(platform: &mut P, rec: &DispatchRecord) {
        if let Some(ring) = platform.tracer() {
            ring.push(TraceEvent::Dispatch {
                at: rec.decided_at,
                stream: rec.frame.desc.stream.0,
                seq: rec.frame.desc.seq,
                len: rec.frame.desc.len,
                deadline: rec.frame.deadline,
                on_time: rec.frame.on_time,
            });
        }
    }

    /// When the next queued frame becomes eligible (deadline-paced
    /// embeddings sleep until then).
    pub fn next_eligible(&mut self) -> Option<Time> {
        self.sched.next_eligible()
    }

    /// Whether any stream (or the decoupled dispatch queue) holds frames.
    pub fn has_pending(&self) -> bool {
        self.sched.has_pending()
    }

    /// The underlying scheduler (stats, windows, QoS).
    pub fn scheduler(&self) -> &DwcsScheduler<R> {
        &self.sched
    }

    /// Mutable scheduler access (representation experiments).
    pub fn scheduler_mut(&mut self) -> &mut DwcsScheduler<R> {
        &mut self.sched
    }

    /// The platform this core is placed on.
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// Mutable platform access (simulated placements set time, drain
    /// series).
    pub fn platform_mut(&mut self) -> &mut P {
        &mut self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::LinearScan;
    use crate::scheduler::{DispatchMode, Pacing};
    use crate::types::{FrameKind, MILLISECOND};

    /// Test platform: settable clock, event log distinguishing reclaims
    /// from dispatches in arrival order.
    #[derive(Default)]
    struct Probe {
        now: Time,
        events: Vec<Event>,
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Event {
        Reclaimed { stream: u32, seq: u64 },
        Dispatched { stream: u32, seq: u64, on_time: bool },
        Decision { dropped: u32, backlog: u64 },
    }

    impl Platform for Probe {
        fn now(&mut self) -> Time {
            self.now
        }
        fn set_now(&mut self, t: Time) {
            self.now = t;
        }
        fn on_decision(&mut self, d: &SchedDecision, backlog: u64) {
            self.events.push(Event::Decision {
                dropped: d.dropped,
                backlog,
            });
        }
        fn dispatch(&mut self, rec: &DispatchRecord) {
            self.events.push(Event::Dispatched {
                stream: rec.frame.desc.stream.0,
                seq: rec.frame.desc.seq,
                on_time: rec.frame.on_time,
            });
        }
        fn reclaim(&mut self, desc: &FrameDesc) {
            self.events.push(Event::Reclaimed {
                stream: desc.stream.0,
                seq: desc.seq,
            });
        }
    }

    fn svc(cfg: SchedulerConfig) -> SchedService<LinearScan, Probe> {
        SchedService::new(LinearScan::new(8), cfg, Probe::default())
    }

    fn frame(sid: StreamId, seq: u64) -> FrameDesc {
        FrameDesc::new(sid, seq, 1_000, FrameKind::P)
    }

    #[test]
    fn service_pass_dispatches_through_platform() {
        let mut s = svc(SchedulerConfig::default());
        let sid = s.open(StreamQos::new(10 * MILLISECOND, 1, 2));
        s.ingest_at(sid, frame(sid, 0), 0);
        s.platform_mut().now = MILLISECOND;
        let out = s.service_once();
        assert_eq!(out.dispatched, 1);
        assert!(out.decision.frame.is_some());
        assert_eq!(
            s.platform().events,
            vec![
                Event::Decision { dropped: 0, backlog: 0 },
                Event::Dispatched {
                    stream: sid.0,
                    seq: 0,
                    on_time: true
                },
            ]
        );
    }

    /// Regression test for the reclaim-ordering drift the consolidation
    /// fixed: drops reaching a decision MUST be reclaimed before the
    /// surviving frame's dispatch is delivered (DESIGN.md §8). The old
    /// embeddings disagreed — the threaded engine reclaimed first, the
    /// DVCM extension and both simulators never reclaimed at all.
    #[test]
    fn drops_are_reclaimed_before_the_surviving_dispatch() {
        let mut s = svc(SchedulerConfig::default());
        // Tolerance 1/2: the first late head drops within budget.
        let sid = s.open(StreamQos::new(MILLISECOND, 1, 2));
        s.ingest_at(sid, frame(sid, 0), 0);
        s.ingest_at(sid, frame(sid, 1), 0);
        // Far past the first deadline: seq 0 drops, seq 1 re-anchors and
        // dispatches on time.
        s.platform_mut().now = 100 * MILLISECOND;
        let out = s.service_once();
        assert_eq!(out.decision.dropped, 1);
        assert_eq!(out.dispatched, 1);
        assert_eq!(
            s.platform().events,
            vec![
                Event::Reclaimed { stream: sid.0, seq: 0 },
                Event::Decision { dropped: 1, backlog: 0 },
                Event::Dispatched {
                    stream: sid.0,
                    seq: 1,
                    on_time: true
                },
            ],
            "reclaim precedes dispatch within one pass"
        );
    }

    #[test]
    fn decoupled_queue_drains_through_the_same_dispatch_path() {
        let mut s = svc(SchedulerConfig {
            dispatch: DispatchMode::Decoupled { queue_cap: 8 },
            ..SchedulerConfig::default()
        });
        let sid = s.open(StreamQos::new(10 * MILLISECOND, 1, 2));
        s.ingest_at(sid, frame(sid, 0), 0);
        s.ingest_at(sid, frame(sid, 1), 0);
        let out = s.service_once();
        // One decision queued one frame; the same pass drained it.
        assert_eq!(out.dispatched, 1);
        let out = s.service_once();
        assert_eq!(out.dispatched, 1);
        let dispatches: Vec<u64> = s
            .platform()
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Dispatched { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(dispatches, vec![0, 1], "decision order preserved");
    }

    #[test]
    fn close_routes_backlog_through_reclaim() {
        let mut s = svc(SchedulerConfig {
            pacing: Pacing::DeadlinePaced,
            ..SchedulerConfig::default()
        });
        let sid = s.open(StreamQos::new(10 * MILLISECOND, 1, 2));
        for seq in 0..3 {
            s.ingest_at(sid, frame(sid, seq), 0);
        }
        s.close(sid);
        let reclaimed: Vec<u64> = s
            .platform()
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Reclaimed { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(reclaimed, vec![0, 1, 2], "whole backlog reclaimed on close");
        assert_eq!(s.scheduler().stream_count(), 0);
    }

    /// Probe carrying a trace ring: the service core must emit the
    /// canonical per-pass event sequence through [`Platform::tracer`].
    struct TracedProbe {
        inner: Probe,
        ring: TraceRing,
    }

    impl TracedProbe {
        fn new(cap: usize) -> TracedProbe {
            TracedProbe {
                inner: Probe::default(),
                ring: TraceRing::with_capacity(cap),
            }
        }
    }

    impl Platform for TracedProbe {
        fn now(&mut self) -> Time {
            self.inner.now
        }
        fn set_now(&mut self, t: Time) {
            self.inner.now = t;
        }
        fn on_decision(&mut self, d: &SchedDecision, backlog: u64) {
            self.inner.on_decision(d, backlog);
        }
        fn dispatch(&mut self, rec: &DispatchRecord) {
            self.inner.dispatch(rec);
        }
        fn reclaim(&mut self, desc: &FrameDesc) {
            self.inner.reclaim(desc);
        }
        fn tracer(&mut self) -> Option<&mut TraceRing> {
            Some(&mut self.ring)
        }
    }

    #[test]
    fn traced_pass_emits_drop_decision_dispatch_depth_in_order() {
        let mut s = SchedService::new(LinearScan::new(8), SchedulerConfig::default(), TracedProbe::new(64));
        let sid = s.open(StreamQos::new(MILLISECOND, 1, 2));
        s.ingest_at(sid, frame(sid, 0), 0);
        s.ingest_at(sid, frame(sid, 1), 0);
        s.ingest_at(sid, frame(sid, 2), 0);
        // Far past the first deadline: seq 0 drops within budget, seq 1
        // dispatches, seq 2 stays queued.
        s.platform_mut().inner.now = 100 * MILLISECOND;
        let _ = s.service_once();
        let events = s.platform_mut().ring.drain();
        let at = 100 * MILLISECOND;
        assert_eq!(
            events,
            vec![
                TraceEvent::Admit {
                    at: 0,
                    stream: sid.0,
                    period: MILLISECOND,
                    loss_num: 1,
                    loss_den: 2,
                },
                TraceEvent::Drop {
                    at,
                    stream: sid.0,
                    seq: 0
                },
                TraceEvent::Decision {
                    at,
                    stream: Some(sid.0),
                    dropped: 1,
                    backlog: 1,
                    compares: events
                        .iter()
                        .find_map(|e| match *e {
                            TraceEvent::Decision { compares, .. } => Some(compares),
                            _ => None,
                        })
                        .unwrap_or(0),
                    touches: events
                        .iter()
                        .find_map(|e| match *e {
                            TraceEvent::Decision { touches, .. } => Some(touches),
                            _ => None,
                        })
                        .unwrap_or(0),
                },
                // Seq 1 re-anchored after the drop: deadline now + period.
                TraceEvent::Dispatch {
                    at,
                    stream: sid.0,
                    seq: 1,
                    len: 1_000,
                    deadline: 101 * MILLISECOND,
                    on_time: true,
                },
                TraceEvent::QueueDepth { at, depth: 1 },
            ],
        );
    }

    #[test]
    fn traced_close_emits_drops_for_the_backlog() {
        let mut s = SchedService::new(LinearScan::new(8), SchedulerConfig::default(), TracedProbe::new(64));
        let sid = s.open(StreamQos::new(10 * MILLISECOND, 1, 2));
        s.ingest_at(sid, frame(sid, 0), 0);
        s.ingest_at(sid, frame(sid, 1), 0);
        s.close(sid);
        let drops: Vec<u64> = s
            .platform_mut()
            .ring
            .drain()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Drop { seq, .. } => Some(seq),
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![0, 1], "close traces the whole backlog as drops");
    }

    #[test]
    fn untraced_platform_emits_nothing_and_behaves_identically() {
        let run = |traced: bool| {
            if traced {
                let mut s = SchedService::new(LinearScan::new(8), SchedulerConfig::default(), TracedProbe::new(64));
                let sid = s.open(StreamQos::new(MILLISECOND, 1, 2));
                for seq in 0..4 {
                    s.ingest_at(sid, frame(sid, seq), 0);
                }
                for k in 1..6 {
                    s.platform_mut().inner.now = k * 2 * MILLISECOND;
                    let _ = s.service_once();
                }
                s.platform().inner.events.clone()
            } else {
                let mut s = svc(SchedulerConfig::default());
                let sid = s.open(StreamQos::new(MILLISECOND, 1, 2));
                for seq in 0..4 {
                    s.ingest_at(sid, frame(sid, seq), 0);
                }
                for k in 1..6 {
                    s.platform_mut().now = k * 2 * MILLISECOND;
                    let _ = s.service_once();
                }
                s.platform().events.clone()
            }
        };
        assert_eq!(run(true), run(false), "tracing must not perturb scheduling");
    }

    #[test]
    fn on_decision_reports_post_decision_backlog() {
        let mut s = svc(SchedulerConfig::default());
        let sid = s.open(StreamQos::new(10 * MILLISECOND, 1, 2));
        for seq in 0..3 {
            s.ingest_at(sid, frame(sid, seq), 0);
        }
        let _ = s.service_once();
        assert!(
            s.platform()
                .events
                .contains(&Event::Decision { dropped: 0, backlog: 2 }),
            "backlog excludes the frame just popped: {:?}",
            s.platform().events
        );
    }
}
