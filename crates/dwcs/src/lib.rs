//! # dwcs — Dynamic Window-Constrained Scheduling
//!
//! The packet/frame scheduling algorithm at the heart of the paper
//! (Krishnamurthy, Schwan, West, Rosu, ICPP 2000), as defined in West &
//! Schwan's DWCS papers (\[32\], \[33\] in the paper's bibliography) and
//! summarised in the paper's §3.1.2:
//!
//! Each stream `i` carries two QoS attributes:
//!
//! * **Deadline** — the latest time its head packet may *commence* service.
//!   Successive packets' deadlines are offset by the stream's request period
//!   `T_i` from their predecessor's.
//! * **Loss-tolerance** `x_i / y_i` — at most `x_i` of every `y_i`
//!   consecutive packets may be lost or sent late. The scheduler maintains
//!   *current* window state `x'_i / y'_i` that tightens as packets are
//!   serviced or lost and resets when a window completes.
//!
//! The scheduler always serves the head packet that is minimal under the
//! DWCS precedence rules (see [`key::HeadKey`]): earliest deadline first,
//! then lowest current window-constraint, then the zero/non-zero
//! tie-breakers, then FCFS.
//!
//! ## What this crate provides
//!
//! * [`scheduler::DwcsScheduler`] — the scheduler proper: per-stream queues,
//!   window-state maintenance, late-packet dropping for lossy streams,
//!   violation accounting, coupled or decoupled dispatch.
//! * [`repr`] — pluggable *schedule representations* (the paper's §3.1.1
//!   explicitly decouples "scheduling analysis" from "schedule
//!   representation" so that FCFS circular buffers, sorted lists, heaps or
//!   calendar queues can be compared): [`repr::LinearScan`] (what the i960
//!   firmware actually did — loop over descriptors), [`repr::SortedList`],
//!   [`repr::DualHeap`] (the paper's Figure 4: a deadline heap plus a
//!   loss-tolerance heap), [`repr::BTreeRepr`], and [`repr::CalendarQueue`].
//!   All representations are observationally identical; property tests
//!   cross-check them against `LinearScan`.
//! * [`ring::SpscRing`] — the synchronization-free single-producer /
//!   single-consumer circular buffer of Figure 4(b) ("using a circular queue
//!   for each stream eliminates the need for synchronization between the
//!   scheduler … and the server that queues packets").
//! * [`admission`] — the DWCS feasibility test used for admission control.
//! * [`metrics::StreamStats`] — per-stream service accounting (on-time /
//!   late / dropped / violations / bytes, queuing-delay moments).
//!
//! ## Time
//!
//! The algorithm is pure: time is a `u64` nanosecond count ([`Time`]), which
//! both the discrete-event simulator (`simkit::SimTime`) and the real
//! threaded engine (`nistream-core`) map onto trivially.
//!
//! ## Example
//!
//! ```
//! use dwcs::{DwcsScheduler, DualHeap, FrameDesc, FrameKind, StreamQos, StreamId};
//!
//! let mut sched = DwcsScheduler::new(DualHeap::new(8));
//! // 30 fps stream tolerating 2 late frames per window of 8.
//! let video = sched.add_stream(StreamQos::new(33_333_333, 2, 8));
//! // 50 Hz telemetry that must never be late (sent late if it is).
//! let telemetry = sched.add_stream(StreamQos::new(20_000_000, 0, 1).send_late());
//!
//! sched.enqueue(video, FrameDesc::new(video, 0, 1_400, FrameKind::I), 0);
//! sched.enqueue(telemetry, FrameDesc::new(telemetry, 0, 64, FrameKind::Other), 0);
//!
//! // Telemetry's deadline (t=20ms) precedes video's (t=33.3ms): EDF wins.
//! let decision = sched.schedule_next(0);
//! let frame = decision.frame.expect("work-conserving default");
//! assert_eq!(frame.desc.stream, telemetry);
//! assert!(frame.on_time);
//! ```
//!
//! ## Fixed-point arithmetic
//!
//! Window-constraints are exact [`fixedpt::Frac`] ratios compared by
//! cross-multiplication — the paper's fixed-point build. An op meter can be
//! attached to count arithmetic by class so the i960 cost model can price a
//! software-float build of the same decisions (Tables 1–2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod key;
pub mod metrics;
pub mod qos;
pub mod repr;
pub mod ring;
pub mod scheduler;
pub mod svc;
pub mod types;

pub use key::HeadKey;
pub use qos::{LossPolicy, MissOutcome, StreamQos, Window};
pub use repr::{BTreeRepr, CalendarQueue, DualHeap, LinearScan, ScheduleRepr, SortedList, Work};
pub use ring::SpscRing;
pub use scheduler::{DeadlineAnchor, DispatchMode, DwcsScheduler, SchedDecision, SchedulerConfig};
pub use svc::{DispatchRecord, Platform, SchedService, ServiceOutcome};
pub use types::{FrameDesc, FrameKind, StreamId, Time};
