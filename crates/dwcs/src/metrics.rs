//! Per-stream service accounting.
//!
//! The figures the paper plots per stream — bandwidth over time, queuing
//! delay per frame, deadline misses, violations — all derive from these
//! counters. The struct is updated inline by the scheduler (cheap field
//! bumps) and read out by the experiment harnesses.

use crate::types::Time;
use fixedpt::Q16;

/// Counters and moments for one stream.
#[derive(Clone, Debug, Default)]
pub struct StreamStats {
    /// Frames accepted into the stream queue.
    pub enqueued: u64,
    /// Frames dispatched at or before their deadline.
    pub sent_on_time: u64,
    /// Frames dispatched after their deadline (SendLate policy).
    pub sent_late: u64,
    /// Frames dropped (Droppable policy, deadline passed).
    pub dropped: u64,
    /// Window-constraint violations recorded.
    pub violations: u64,
    /// Payload bytes actually transmitted.
    pub bytes_sent: u64,
    /// Sum of queuing delays (enqueue → dispatch decision) in ns, over all
    /// transmitted frames.
    pub queue_delay_sum: u128,
    /// Worst queuing delay seen (ns).
    pub queue_delay_max: Time,
    /// Frames currently waiting (enqueued − sent − dropped).
    pub backlog: u64,
    /// Previous dispatch instant (ns), for inter-departure jitter.
    pub last_dispatch: Option<Time>,
    /// Previous inter-departure gap (ns).
    pub last_gap: Option<Time>,
    /// Sum of |gap − previous gap| over consecutive departures (ns) — the
    /// RFC-style delay-jitter accumulator the paper's "more uniform
    /// delay-jitter variation" claim is about.
    pub jitter_sum: u128,
    /// Number of jitter samples (departures − 2).
    pub jitter_samples: u64,
    /// Worst single jitter step (ns).
    pub jitter_max: Time,
}

impl StreamStats {
    /// Total frames that left the queue by transmission.
    pub fn sent(&self) -> u64 {
        self.sent_on_time + self.sent_late
    }

    /// Frames that missed their deadline (late + dropped).
    pub fn missed(&self) -> u64 {
        self.sent_late + self.dropped
    }

    /// Mean queuing delay in nanoseconds (0 if nothing sent).
    pub fn mean_queue_delay(&self) -> Time {
        let n = self.sent();
        if n == 0 {
            0
        } else {
            (self.queue_delay_sum / u128::from(n)) as Time
        }
    }

    /// Fraction of departed frames that met their deadline, as Q16.16
    /// (1 when nothing has departed). Host-side reporting that wants a
    /// float goes through `Q16::to_f64`; the NI code itself stays integer.
    pub fn on_time_fraction(&self) -> Q16 {
        let done = self.sent() + self.dropped;
        if done == 0 {
            return Q16::ONE;
        }
        // `from_ratio` shifts the numerator left 16 bits; downscale both
        // counters first if a run has been long enough to get near that
        // edge (the ratio is what matters, not the absolute counts).
        let mut num = self.sent_on_time;
        let mut den = done;
        while den > (1u64 << 46) {
            num >>= 1;
            den >>= 1;
        }
        Q16::from_ratio(num as i64, den as i64)
    }

    /// Mean inter-departure jitter in nanoseconds: the average absolute
    /// change between consecutive departure gaps (0 for perfectly paced
    /// streams).
    pub fn mean_jitter(&self) -> Time {
        if self.jitter_samples == 0 {
            0
        } else {
            (self.jitter_sum / u128::from(self.jitter_samples)) as Time
        }
    }

    pub(crate) fn note_enqueue(&mut self) {
        self.enqueued += 1;
        self.backlog += 1;
    }

    pub(crate) fn note_sent(&mut self, bytes: u32, delay: Time, on_time: bool) {
        if on_time {
            self.sent_on_time += 1;
        } else {
            self.sent_late += 1;
        }
        self.bytes_sent += u64::from(bytes);
        self.queue_delay_sum += u128::from(delay);
        self.queue_delay_max = self.queue_delay_max.max(delay);
        self.backlog = self.backlog.saturating_sub(1);
    }

    /// Record a departure instant for jitter accounting (called by the
    /// scheduler with its decision/dispatch clock).
    pub(crate) fn note_departure_at(&mut self, now: Time) {
        if let Some(prev) = self.last_dispatch {
            let gap = now.saturating_sub(prev);
            if let Some(prev_gap) = self.last_gap {
                let step = gap.abs_diff(prev_gap);
                self.jitter_sum += u128::from(step);
                self.jitter_samples += 1;
                self.jitter_max = self.jitter_max.max(step);
            }
            self.last_gap = Some(gap);
        }
        self.last_dispatch = Some(now);
    }

    pub(crate) fn note_dropped(&mut self) {
        self.dropped += 1;
        self.backlog = self.backlog.saturating_sub(1);
    }

    pub(crate) fn note_violation(&mut self) {
        self.violations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let mut s = StreamStats::default();
        for _ in 0..4 {
            s.note_enqueue();
        }
        s.note_sent(1000, 10_000, true);
        s.note_sent(1000, 30_000, true);
        s.note_sent(500, 50_000, false);
        s.note_dropped();
        assert_eq!(s.sent(), 3);
        assert_eq!(s.missed(), 2);
        assert_eq!(s.bytes_sent, 2500);
        assert_eq!(s.mean_queue_delay(), 30_000);
        assert_eq!(s.queue_delay_max, 50_000);
        assert_eq!(s.backlog, 0);
        assert_eq!(s.on_time_fraction(), Q16::from_ratio(1, 2));
    }

    #[test]
    fn jitter_tracks_gap_variation() {
        let mut s = StreamStats::default();
        // Departures at 0, 10, 20, 30 ms: perfectly paced, zero jitter.
        for t in [0, 10, 20, 30u64] {
            s.note_departure_at(t * 1_000_000);
        }
        assert_eq!(s.mean_jitter(), 0);
        assert_eq!(s.jitter_samples, 2);
        // A 25 ms gap after 10 ms gaps: |25−10| = 15 ms step.
        s.note_departure_at(55 * 1_000_000);
        assert_eq!(s.jitter_max, 15 * 1_000_000);
        assert_eq!(s.mean_jitter(), 5 * 1_000_000, "(0 + 0 + 15)/3 ms");
    }

    #[test]
    fn jitter_needs_three_departures() {
        let mut s = StreamStats::default();
        s.note_departure_at(0);
        assert_eq!(s.mean_jitter(), 0);
        s.note_departure_at(7);
        assert_eq!(s.mean_jitter(), 0, "one gap, no variation yet");
    }

    #[test]
    fn empty_stream_is_benign() {
        let s = StreamStats::default();
        assert_eq!(s.mean_queue_delay(), 0);
        assert_eq!(s.on_time_fraction(), Q16::ONE);
        assert_eq!(s.sent(), 0);
    }
}
