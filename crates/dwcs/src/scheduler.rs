//! The DWCS scheduler proper.
//!
//! Construction mirrors the paper's Figure 4: frames are queued per stream
//! (FIFO — all packets of a stream share the same loss-tolerance and their
//! deadlines are fixed offsets of each other, so in-stream order is always
//! arrival order), head-of-line packets are indexed by a pluggable
//! [`ScheduleRepr`], and each scheduling decision:
//!
//! 1. pops the precedence-minimal head packet;
//! 2. if its deadline has passed: applies the *miss* window adjustment and —
//!    for droppable streams — discards it without transmission ("can safely
//!    drop late packets in lossy streams without unnecessarily transmitting
//!    them") and tries the next candidate;
//! 3. otherwise applies the *timely service* adjustment and dispatches it.
//!
//! Scheduling and dispatch may be **coupled** (a decision immediately
//! transmits — single data structure, no extra queuing jitter) or
//! **decoupled** (decisions fill a bounded dispatch queue that a separate
//! dispatcher drains — decisions can run ahead at a higher rate at the cost
//! of dispatch-queue delay), matching the paper's §3.1.1 trade-off.

use crate::key::HeadKey;
use crate::metrics::StreamStats;
use crate::qos::{LossPolicy, MissOutcome, StreamQos, Window};
use crate::repr::{ScheduleRepr, Work};
use crate::types::{FrameDesc, StreamId, Time};
use fixedpt::ops::{LogicalOp, OpMeter};
use fixedpt::SharedMeter;
use std::collections::VecDeque;

/// Coupled or decoupled scheduling/dispatch (§3.1.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchMode {
    /// A decision *is* a dispatch. "Coupling scheduling and dispatch allows
    /// a single data structure to hold frame descriptors and conserves
    /// memory. Also, packets do not suffer additional queuing delay and
    /// jitter in dispatch queues."
    Coupled,
    /// Decisions fill a bounded dispatch queue; a dispatcher drains it.
    /// "Allows scheduling decisions to be made at a higher rate."
    Decoupled {
        /// Dispatch queue capacity; a full queue back-pressures decisions.
        queue_cap: usize,
    },
}

/// When a packet becomes eligible for service.
///
/// The deadline is "the latest time a packet can *commence* service". A
/// work-conserving scheduler sends a sole ready packet immediately; the
/// paper's streaming system instead services each packet *at* its deadline
/// — that is what paces a pre-loaded file down to the stream's negotiated
/// rate (the "settling bandwidth" of Figures 7/9) and what makes queuing
/// delay grow linearly with frame number even on an unloaded server
/// (Figures 8/10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Pacing {
    /// Serve the minimal head packet as soon as the scheduler runs.
    WorkConserving,
    /// Serve a packet no earlier than its deadline (rate-paced service).
    #[default]
    DeadlinePaced,
}

/// How successive deadlines are anchored.
///
/// The paper states both readings: deadlines are "determined from a
/// specification of the maximum allowable time between servicing
/// consecutive packets" (service-anchored) and "offset by a fixed amount
/// from its predecessor" (arrival-grid). They coincide while the scheduler
/// keeps up and diverge under sustained lateness:
///
/// * [`DeadlineAnchor::ServiceChain`] — the next deadline is one period
///   past `max(previous deadline, previous service commencement)`. Falling
///   behind slips the whole chain: *rate* degrades persistently (this is
///   what reproduces Figures 7–8) but backlogged packets quickly stop
///   counting as late.
/// * [`DeadlineAnchor::ArrivalGrid`] — deadlines are fixed at enqueue,
///   one period apart from the predecessor's. A backlog stays late until
///   worked off, so loss-tolerances bite continuously — the classic DWCS
///   bandwidth-sharing behaviour ("share bandwidth among competing clients
///   in strict proportion to their … loss-tolerances").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeadlineAnchor {
    /// Chain from `max(prev deadline, prev service) + T`.
    #[default]
    ServiceChain,
    /// Fix each packet's deadline at enqueue: `prev deadline + T`.
    ArrivalGrid,
}

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Dispatch coupling.
    pub dispatch: DispatchMode,
    /// Eligibility pacing.
    pub pacing: Pacing,
    /// Deadline anchoring (see [`DeadlineAnchor`]).
    pub anchor: DeadlineAnchor,
    /// Lateness tolerance: a packet only counts as *late* (miss/drop) when
    /// service commences more than this many nanoseconds past its
    /// deadline. Zero (the default) is the strict DWCS reading; the host
    /// experiments use one period, matching the observed behaviour that
    /// mild CPU-contention jitter delays frames without dropping them
    /// while sustained contention sheds them (Figures 7–8).
    pub late_grace: Time,
    /// Upper bound on late-frame drops processed within one decision
    /// (keeps worst-case decision latency bounded on the co-processor).
    pub max_drops_per_decision: u32,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            dispatch: DispatchMode::Coupled,
            pacing: Pacing::WorkConserving,
            anchor: DeadlineAnchor::ServiceChain,
            late_grace: 0,
            max_drops_per_decision: 64,
        }
    }
}

/// A frame selected for transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchedFrame {
    /// The frame descriptor (address, length, stream).
    pub desc: FrameDesc,
    /// The deadline it was scheduled against.
    pub deadline: Time,
    /// Whether service commenced at or before the deadline.
    pub on_time: bool,
}

/// Outcome of one scheduling decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedDecision {
    /// The frame to transmit (`None`: nothing eligible — all queues empty,
    /// or everything late got dropped, or the dispatch queue is full).
    pub frame: Option<DispatchedFrame>,
    /// Late frames dropped while reaching this decision.
    pub dropped: u32,
    /// Data-structure work performed (for the co-processor cost model).
    pub work: Work,
}

struct QueuedFrame {
    desc: FrameDesc,
    arrival: u64,
    /// Fixed deadline under [`DeadlineAnchor::ArrivalGrid`] (unused by the
    /// service chain).
    grid_deadline: Time,
}

struct StreamSlot {
    qos: StreamQos,
    window: Window,
    queue: VecDeque<QueuedFrame>,
    /// Deadline of the current head packet (valid while non-empty).
    head_deadline: Time,
    /// Chain anchor: `max(previous deadline, previous service commence)`.
    /// The paper derives deadlines "from a specification of the maximum
    /// allowable time between servicing consecutive packets in the same
    /// stream": the next deadline is one period after the predecessor was
    /// *due or served, whichever is later* — so a scheduler that falls
    /// behind slips the whole chain (persistent rate degradation under
    /// sustained contention, Figure 7) instead of accumulating an
    /// ever-later backlog against a fixed grid.
    chain: Time,
    stats: StreamStats,
    active: bool,
}

/// The DWCS scheduler, generic over schedule representation.
pub struct DwcsScheduler<R> {
    streams: Vec<StreamSlot>,
    repr: R,
    meter: SharedMeter,
    cfg: SchedulerConfig,
    arrival_seq: u64,
    dispatch_q: VecDeque<DispatchedFrame>,
    decisions: u64,
    live_streams: usize,
    dropped_frames: Vec<FrameDesc>,
    /// Frames queued across all active streams, maintained incrementally
    /// at every queue mutation so [`DwcsScheduler::total_backlog`] — read
    /// twice per service pass — is O(1) instead of an O(streams) scan.
    queued_frames: u64,
}

impl<R: ScheduleRepr> DwcsScheduler<R> {
    /// New scheduler over the given representation with default config.
    pub fn new(repr: R) -> DwcsScheduler<R> {
        DwcsScheduler::with_config(repr, SchedulerConfig::default())
    }

    /// New scheduler with explicit configuration.
    pub fn with_config(repr: R, cfg: SchedulerConfig) -> DwcsScheduler<R> {
        DwcsScheduler {
            streams: Vec::new(),
            repr,
            meter: fixedpt::ops::null_meter(),
            cfg,
            arrival_seq: 0,
            dispatch_q: VecDeque::new(),
            decisions: 0,
            live_streams: 0,
            dropped_frames: Vec::new(),
            queued_frames: 0,
        }
    }

    /// Attach an op meter (the i960 cost model prices its counts).
    pub fn set_meter(&mut self, meter: SharedMeter) {
        self.meter = meter;
    }

    /// The attached meter.
    pub fn meter(&self) -> &OpMeter {
        &self.meter
    }

    /// Register a stream; returns its dense id. Slots of removed streams
    /// are reused.
    pub fn add_stream(&mut self, qos: StreamQos) -> StreamId {
        self.live_streams += 1;
        let slot = StreamSlot {
            qos,
            window: Window::new(&qos),
            queue: VecDeque::new(),
            head_deadline: 0,
            chain: 0,
            stats: StreamStats::default(),
            active: true,
        };
        if let Some(i) = self.streams.iter().position(|s| !s.active) {
            self.streams[i] = slot;
            StreamId(i as u32)
        } else {
            self.streams.push(slot);
            StreamId((self.streams.len() - 1) as u32)
        }
    }

    /// Deregister a stream, discarding its backlog.
    pub fn remove_stream(&mut self, sid: StreamId) {
        self.remove_stream_with(sid, |_| {});
    }

    /// Deregister a stream, handing every still-queued descriptor to `f`
    /// (embeddings that own payload storage reclaim the slots; see
    /// [`crate::svc::Platform::reclaim`]).
    pub fn remove_stream_with(&mut self, sid: StreamId, mut f: impl FnMut(FrameDesc)) {
        let slot = &mut self.streams[sid.index()];
        if slot.active {
            slot.active = false;
            self.queued_frames -= slot.queue.len() as u64;
            for qf in slot.queue.drain(..) {
                f(qf.desc);
            }
            self.repr.remove(sid);
            self.live_streams -= 1;
        }
    }

    /// Number of registered streams.
    pub fn stream_count(&self) -> usize {
        self.live_streams
    }

    /// Enqueue a frame for `sid` at time `now`.
    ///
    /// Deadline assignment: each packet's deadline is its predecessor's
    /// plus the stream period `T` ("each successive packet in a stream has
    /// a deadline that is offset by a fixed amount from its predecessor").
    /// When a stream goes idle (empty queue) and its deadline chain has
    /// fallen behind the clock, the chain re-anchors at `now` — otherwise a
    /// paused stream would resume permanently late.
    pub fn enqueue(&mut self, sid: StreamId, desc: FrameDesc, now: Time) {
        let arrival = self.arrival_seq;
        self.arrival_seq += 1;
        let slot = &mut self.streams[sid.index()];
        assert!(slot.active, "enqueue on removed stream {sid}");
        let was_empty = slot.queue.is_empty();
        let grid_deadline = if self.cfg.anchor == DeadlineAnchor::ArrivalGrid {
            // Fix the deadline now: one period past the predecessor's
            // (re-anchored after an idle gap).
            if was_empty && slot.chain < now {
                slot.chain = now;
            }
            let d = slot.chain + slot.qos.period;
            slot.chain = d;
            d
        } else {
            0
        };
        if was_empty {
            slot.head_deadline = match self.cfg.anchor {
                // Service chain: one period past the chain anchor,
                // re-anchored to `now` after an idle gap so a paused
                // stream does not resume permanently late.
                DeadlineAnchor::ServiceChain => slot.chain.max(now) + slot.qos.period,
                DeadlineAnchor::ArrivalGrid => grid_deadline,
            };
        }
        slot.queue.push_back(QueuedFrame {
            desc: FrameDesc {
                enqueued_at: now,
                ..desc
            },
            arrival,
            grid_deadline,
        });
        slot.stats.note_enqueue();
        self.queued_frames += 1;
        self.meter.record(LogicalOp::Counter, 2);
        if was_empty {
            if let Some(key) = head_key(slot) {
                self.repr.update(sid, key);
            }
        }
    }

    /// Make one scheduling decision at time `now` (coupled mode — the
    /// returned frame is considered transmitted immediately).
    pub fn schedule_next(&mut self, now: Time) -> SchedDecision {
        let mut decision = self.decide(now);
        if let DispatchMode::Decoupled { queue_cap } = self.cfg.dispatch {
            if let Some(frame) = decision.frame.take() {
                if self.dispatch_q.len() < queue_cap {
                    // analysis: allow(ni-no-alloc) reason="bounded by queue_cap just above; capacity reserved at construction"
                    self.dispatch_q.push_back(frame);
                } else {
                    // Queue full: undo is impossible (window already
                    // adjusted), so dispatch directly — the bound exists to
                    // cap memory, not to drop scheduled frames.
                    decision.frame = Some(frame);
                    self.account_dispatch(frame, now);
                }
            }
            return decision;
        }
        if let Some(f) = decision.frame {
            self.account_dispatch(f, now);
        }
        decision
    }

    /// Decoupled mode: drain one frame from the dispatch queue.
    pub fn pop_dispatch(&mut self, now: Time) -> Option<DispatchedFrame> {
        let f = self.dispatch_q.pop_front()?;
        self.account_dispatch(f, now);
        Some(f)
    }

    /// Frames waiting in the dispatch queue (decoupled mode).
    pub fn dispatch_backlog(&self) -> usize {
        self.dispatch_q.len()
    }

    /// Core decision: pick, drop-late-if-lossy, adjust windows.
    fn decide(&mut self, now: Time) -> SchedDecision {
        self.decisions += 1;
        let mut dropped = 0u32;
        let mut work = Work::default();
        // One ratio evaluation per decision (the priority computation the
        // soft-float build pays dearly for).
        self.meter.record(LogicalOp::RatioDivide, 1);

        // Every iteration either returns, skips one stale repr entry, or
        // drops one late frame. NI placements admit ≤ 16 streams (one live
        // repr entry each) and configure `max_drops_per_decision` ≤ 16 —
        // the knob that "keeps worst-case decision latency bounded on the
        // co-processor" — so the loop runs at most 32 times.
        // analysis: bound 32
        loop {
            let Some((sid, key)) = self.repr.pop_min() else {
                work.add(self.repr.take_work());
                self.charge(&work);
                return SchedDecision {
                    frame: None,
                    dropped,
                    work,
                };
            };
            let slot = &mut self.streams[sid.index()];
            let Some(qf) = slot.queue.pop_front() else {
                // A repr entry with no queued head would be an index/queue
                // desync; skip the stale entry rather than dying mid-stream
                // — the stream re-indexes on its next enqueue.
                continue;
            };
            self.queued_frames -= 1;
            debug_assert_eq!(qf.arrival, key.arrival, "repr key tracks queue head");

            let deadline = slot.head_deadline;
            if self.cfg.pacing == Pacing::DeadlinePaced && deadline > now {
                // The precedence-minimal packet is not yet eligible; since
                // the order is deadline-major, nothing else is either.
                // analysis: allow(ni-no-alloc) reason="returns the frame just popped to the same queue; its slot is still free"
                slot.queue.push_front(qf);
                self.queued_frames += 1;
                self.repr.update(sid, key);
                work.add(self.repr.take_work());
                self.charge(&work);
                return SchedDecision {
                    frame: None,
                    dropped,
                    work,
                };
            }

            // Expose the successor's deadline.
            match self.cfg.anchor {
                DeadlineAnchor::ServiceChain => {
                    // Service (or drop) commences now: the chain advances
                    // from whichever is later.
                    slot.chain = deadline.max(now);
                    if slot.queue.front().is_some() {
                        slot.head_deadline = slot.chain + slot.qos.period;
                    }
                }
                DeadlineAnchor::ArrivalGrid => {
                    if let Some(next) = slot.queue.front() {
                        slot.head_deadline = next.grid_deadline;
                    }
                }
            }

            let late = deadline.saturating_add(self.cfg.late_grace) < now;
            let frame = if late {
                let outcome = slot.window.on_miss(&self.meter);
                if outcome == MissOutcome::Violation {
                    slot.stats.note_violation();
                }
                // A late packet is dropped only when the stream is lossy
                // AND the miss fit inside the loss budget ("at most x
                // packets can miss their deadlines and be either dropped
                // or transmitted late, depending on whether or not the
                // attribute-based QoS for the stream allows some packets
                // to be lost"). A budget-exhausted miss is a violation:
                // the packet still goes out, late.
                let drop_it = slot.qos.policy == LossPolicy::Droppable && outcome == MissOutcome::Tolerated;
                if drop_it {
                    slot.stats.note_dropped();
                    // analysis: allow(ni-no-alloc) reason="drop staging recycles capacity with the service pass's buffer via take_dropped"
                    self.dropped_frames.push(qf.desc);
                    dropped += 1;
                    // Re-index this stream's new head and retry unless
                    // the per-decision drop budget is exhausted.
                    if let Some(k) = head_key(slot) {
                        self.repr.update(sid, k);
                    }
                    if dropped >= self.cfg.max_drops_per_decision {
                        work.add(self.repr.take_work());
                        self.charge(&work);
                        return SchedDecision {
                            frame: None,
                            dropped,
                            work,
                        };
                    }
                    continue;
                }
                Some(DispatchedFrame {
                    desc: qf.desc,
                    deadline,
                    on_time: false,
                })
            } else {
                slot.window.on_timely_service(&self.meter);
                Some(DispatchedFrame {
                    desc: qf.desc,
                    deadline,
                    on_time: true,
                })
            };

            if let Some(k) = head_key(slot) {
                self.repr.update(sid, k);
            }
            work.add(self.repr.take_work());
            self.charge(&work);
            return SchedDecision { frame, dropped, work };
        }
    }

    fn account_dispatch(&mut self, f: DispatchedFrame, now: Time) {
        let slot = &mut self.streams[f.desc.stream.index()];
        let delay = now.saturating_sub(f.desc.enqueued_at);
        slot.stats.note_sent(f.desc.len, delay, f.on_time);
        slot.stats.note_departure_at(now);
    }

    fn charge(&self, work: &Work) {
        self.meter.record(LogicalOp::RatioCompare, work.compares);
        self.meter.record(LogicalOp::Touch, work.touches);
    }

    /// Per-stream statistics.
    pub fn stats(&self, sid: StreamId) -> &StreamStats {
        &self.streams[sid.index()].stats
    }

    /// Current window state of a stream.
    pub fn window(&self, sid: StreamId) -> &Window {
        &self.streams[sid.index()].window
    }

    /// QoS a stream was admitted with.
    pub fn qos(&self, sid: StreamId) -> &StreamQos {
        &self.streams[sid.index()].qos
    }

    /// Frames queued for a stream.
    pub fn backlog(&self, sid: StreamId) -> usize {
        self.streams[sid.index()].queue.len()
    }

    /// Frames queued across all active streams (co-processor cost models
    /// scale decision time with this). O(1): maintained incrementally at
    /// every queue mutation; the debug build cross-checks the counter
    /// against a full scan.
    pub fn total_backlog(&self) -> u64 {
        debug_assert_eq!(
            self.queued_frames,
            self.streams
                .iter()
                .filter(|s| s.active)
                .map(|s| s.queue.len() as u64)
                .sum::<u64>(),
            "incremental backlog counter out of sync with the queues"
        );
        self.queued_frames
    }

    /// Whether any stream has queued frames (or the dispatch queue holds
    /// frames in decoupled mode).
    pub fn has_pending(&self) -> bool {
        !self.dispatch_q.is_empty() || self.streams.iter().any(|s| s.active && !s.queue.is_empty())
    }

    /// Deadline of a stream's head packet.
    pub fn head_deadline(&self, sid: StreamId) -> Option<Time> {
        let slot = &self.streams[sid.index()];
        (!slot.queue.is_empty()).then_some(slot.head_deadline)
    }

    /// Earliest deadline among all head packets — when the next packet
    /// becomes eligible under [`Pacing::DeadlinePaced`] (event-driven
    /// embeddings sleep until then).
    pub fn next_eligible(&mut self) -> Option<Time> {
        self.repr.peek_min().map(|(_, k)| k.deadline)
    }

    /// Total decisions made.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Drain descriptors of frames dropped since the last call — the real
    /// engine reclaims their payload-pool slots ("single copy of frames in
    /// NI memory"); experiment harnesses may simply clear them.
    pub fn drain_dropped(&mut self, mut f: impl FnMut(FrameDesc)) {
        for d in self.dropped_frames.drain(..) {
            f(d);
        }
    }

    /// Move descriptors of frames dropped since the last drain into
    /// `into` (appended in drop order). The allocation-free sibling of
    /// [`DwcsScheduler::drain_dropped`]: both sides recycle their buffer
    /// capacity, so a steady-state service pass never allocates
    /// ([`crate::svc::SchedService`] hoists `into` into the service
    /// struct).
    pub fn take_dropped(&mut self, into: &mut Vec<FrameDesc>) {
        // analysis: allow(ni-no-alloc) reason="both buffers recycle capacity; `into` stops growing once it has seen the largest drop burst"
        into.append(&mut self.dropped_frames);
    }

    /// Access the representation (e.g. `DualHeap::most_constrained`).
    pub fn repr_mut(&mut self) -> &mut R {
        &mut self.repr
    }

    /// Ids of all active streams.
    pub fn stream_ids(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active)
            .map(|(i, _)| StreamId(i as u32))
    }
}

fn head_key(slot: &StreamSlot) -> Option<HeadKey> {
    slot.queue.front().map(|qf| HeadKey {
        deadline: slot.head_deadline,
        x: slot.window.x(),
        y: slot.window.y(),
        arrival: qf.arrival,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::{DualHeap, LinearScan};
    use crate::types::{FrameKind, MILLISECOND};

    fn frame(sid: u32, seq: u64) -> FrameDesc {
        FrameDesc::new(StreamId(sid), seq, 1000, FrameKind::P)
    }

    fn sched() -> DwcsScheduler<LinearScan> {
        DwcsScheduler::new(LinearScan::new(8))
    }

    #[test]
    fn single_stream_fifo_dispatch() {
        let mut s = sched();
        let sid = s.add_stream(StreamQos::new(10 * MILLISECOND, 1, 2));
        for seq in 0..3 {
            s.enqueue(sid, frame(0, seq), 0);
        }
        for seq in 0..3 {
            let d = s.schedule_next(1);
            let f = d.frame.expect("frame available");
            assert_eq!(f.desc.seq, seq);
            assert!(f.on_time);
        }
        assert!(s.schedule_next(1).frame.is_none());
        assert_eq!(s.stats(sid).sent_on_time, 3);
    }

    #[test]
    fn deadlines_are_period_spaced() {
        let mut s = sched();
        let sid = s.add_stream(StreamQos::new(5 * MILLISECOND, 0, 1));
        s.enqueue(sid, frame(0, 0), 0);
        s.enqueue(sid, frame(0, 1), 0);
        s.enqueue(sid, frame(0, 2), 0);
        assert_eq!(s.head_deadline(sid), Some(5 * MILLISECOND));
        let _ = s.schedule_next(0);
        assert_eq!(s.head_deadline(sid), Some(10 * MILLISECOND));
        let _ = s.schedule_next(0);
        assert_eq!(s.head_deadline(sid), Some(15 * MILLISECOND));
    }

    #[test]
    fn idle_stream_reanchors_deadline_chain() {
        let mut s = sched();
        let sid = s.add_stream(StreamQos::new(5 * MILLISECOND, 0, 1));
        s.enqueue(sid, frame(0, 0), 0);
        let _ = s.schedule_next(0);
        // Long pause, then resume: deadline = now + T, not 10 ms.
        let now = 1_000 * MILLISECOND;
        s.enqueue(sid, frame(0, 1), now);
        assert_eq!(s.head_deadline(sid), Some(now + 5 * MILLISECOND));
    }

    #[test]
    fn earliest_deadline_stream_wins() {
        let mut s = sched();
        let slow = s.add_stream(StreamQos::new(100 * MILLISECOND, 1, 2));
        let fast = s.add_stream(StreamQos::new(10 * MILLISECOND, 1, 2));
        s.enqueue(slow, frame(0, 0), 0);
        s.enqueue(fast, frame(1, 0), 0);
        let f = s.schedule_next(0).frame.unwrap();
        assert_eq!(f.desc.stream, fast);
    }

    #[test]
    fn late_droppable_head_is_shed_and_chain_reanchors() {
        let mut s = sched();
        // Tolerance 1/2: one of every two packets may be lost.
        let sid = s.add_stream(StreamQos::new(MILLISECOND, 1, 2));
        for seq in 0..3 {
            s.enqueue(sid, frame(0, seq), 0);
        }
        // Far future: the head's deadline (1 ms) has passed → dropped
        // within budget; the successor's deadline re-anchors to now + T
        // (service-spacing semantics), so it transmits on time.
        let d = s.schedule_next(100 * MILLISECOND);
        assert_eq!(d.dropped, 1);
        let f = d.frame.expect("re-anchored successor transmits");
        assert!(f.on_time);
        assert_eq!(f.desc.seq, 1);
        assert_eq!(f.deadline, 101 * MILLISECOND);
        assert_eq!(s.stats(sid).dropped, 1);
        assert_eq!(s.stats(sid).sent_on_time, 1);
    }

    #[test]
    fn late_sendlate_frames_still_dispatch() {
        let mut s = sched();
        let sid = s.add_stream(StreamQos::new(MILLISECOND, 1, 2).send_late());
        s.enqueue(sid, frame(0, 0), 0);
        let d = s.schedule_next(100 * MILLISECOND);
        let f = d.frame.expect("late frame transmitted");
        assert!(!f.on_time);
        assert_eq!(d.dropped, 0);
        assert_eq!(s.stats(sid).sent_late, 1);
    }

    #[test]
    fn zero_tolerance_streams_never_drop_only_violate() {
        let mut s = sched();
        // Zero loss tolerance: a miss is a violation and the frame is
        // still transmitted, late.
        let sid = s.add_stream(StreamQos::new(MILLISECOND, 0, 4));
        for seq in 0..3 {
            s.enqueue(sid, frame(0, seq), 0);
        }
        let d = s.schedule_next(1_000 * MILLISECOND);
        let f = d.frame.expect("violating frame still transmits");
        assert_eq!(f.desc.seq, 0);
        assert!(!f.on_time);
        assert_eq!(d.dropped, 0);
        assert_eq!(s.stats(sid).violations, 1);
        assert_eq!(s.stats(sid).sent_late, 1);
        // Successors re-anchor and go out clean.
        for expect_seq in 1..3 {
            let f = s.schedule_next(1_000 * MILLISECOND).frame.unwrap();
            assert_eq!(f.desc.seq, expect_seq);
            assert!(f.on_time);
        }
        assert_eq!(s.stats(sid).dropped, 0);
    }

    #[test]
    fn window_state_drives_priority() {
        let mut s = sched();
        // Two streams, same period; a has no loss budget left after misses.
        let a = s.add_stream(StreamQos::new(10 * MILLISECOND, 1, 4));
        let b = s.add_stream(StreamQos::new(10 * MILLISECOND, 3, 4));
        // Enqueue one frame each at t=0 (same deadline, arrival a first).
        s.enqueue(a, frame(0, 0), 0);
        s.enqueue(b, frame(1, 0), 0);
        // W'(a)=1/4 < W'(b)=3/4 → a wins the deadline tie.
        let f = s.schedule_next(0).frame.unwrap();
        assert_eq!(f.desc.stream, a);
    }

    #[test]
    fn decoupled_dispatch_queue() {
        let cfg = SchedulerConfig {
            dispatch: DispatchMode::Decoupled { queue_cap: 8 },
            ..SchedulerConfig::default()
        };
        let mut s = DwcsScheduler::with_config(LinearScan::new(4), cfg);
        let sid = s.add_stream(StreamQos::new(10 * MILLISECOND, 1, 2));
        s.enqueue(sid, frame(0, 0), 0);
        s.enqueue(sid, frame(0, 1), 0);
        // Decisions queue frames instead of returning them.
        let d = s.schedule_next(0);
        assert!(d.frame.is_none());
        assert_eq!(s.dispatch_backlog(), 1);
        let _ = s.schedule_next(0);
        assert_eq!(s.dispatch_backlog(), 2);
        // Dispatcher drains in decision order; delay measured at pop.
        let f0 = s.pop_dispatch(2 * MILLISECOND).unwrap();
        assert_eq!(f0.desc.seq, 0);
        let f1 = s.pop_dispatch(3 * MILLISECOND).unwrap();
        assert_eq!(f1.desc.seq, 1);
        assert!(s.pop_dispatch(3 * MILLISECOND).is_none());
        assert_eq!(s.stats(sid).sent_on_time, 2);
        assert!(s.stats(sid).mean_queue_delay() >= 2 * MILLISECOND);
    }

    #[test]
    fn deadline_pacing_withholds_early_frames() {
        let cfg = SchedulerConfig {
            pacing: Pacing::DeadlinePaced,
            ..SchedulerConfig::default()
        };
        let mut s = DwcsScheduler::with_config(LinearScan::new(4), cfg);
        let sid = s.add_stream(StreamQos::new(10 * MILLISECOND, 1, 2));
        for seq in 0..3 {
            s.enqueue(sid, frame(0, seq), 0);
        }
        // Nothing eligible before the first deadline.
        assert!(s.schedule_next(5 * MILLISECOND).frame.is_none());
        assert_eq!(s.next_eligible(), Some(10 * MILLISECOND));
        // Exactly at the deadline: one frame, on time.
        let f = s.schedule_next(10 * MILLISECOND).frame.expect("eligible now");
        assert_eq!(f.desc.seq, 0);
        assert!(f.on_time);
        // The next frame's deadline is 20 ms; 15 ms yields nothing.
        assert!(s.schedule_next(15 * MILLISECOND).frame.is_none());
        let f = s.schedule_next(20 * MILLISECOND).frame.unwrap();
        assert_eq!(f.desc.seq, 1);
    }

    #[test]
    fn deadline_pacing_yields_stream_rate_bandwidth() {
        // Pre-load a whole "file" and verify dispatch spacing equals T.
        let cfg = SchedulerConfig {
            pacing: Pacing::DeadlinePaced,
            ..SchedulerConfig::default()
        };
        let mut s = DwcsScheduler::with_config(LinearScan::new(4), cfg);
        let period = 33 * MILLISECOND;
        let sid = s.add_stream(StreamQos::new(period, 2, 8));
        for seq in 0..30 {
            s.enqueue(sid, frame(0, seq), 0);
        }
        let mut sent_times = Vec::new();
        let mut now = 0;
        while s.has_pending() {
            now = s.next_eligible().expect("pending frames have deadlines");
            let d = s.schedule_next(now);
            if let Some(f) = d.frame {
                sent_times.push((f.desc.seq, now));
            }
        }
        assert_eq!(sent_times.len(), 30);
        for w in sent_times.windows(2) {
            assert_eq!(w[1].1 - w[0].1, period, "dispatches exactly T apart");
        }
        // Queuing delay grows linearly: frame k waited k·T.
        assert_eq!(s.stats(sid).queue_delay_max, 30 * period);
        let _ = now;
    }

    #[test]
    fn arrival_grid_keeps_backlog_late() {
        let cfg = SchedulerConfig {
            anchor: DeadlineAnchor::ArrivalGrid,
            ..SchedulerConfig::default()
        };
        let mut s = DwcsScheduler::with_config(LinearScan::new(4), cfg);
        let sid = s.add_stream(StreamQos::new(10 * MILLISECOND, 4, 4));
        for seq in 0..5 {
            s.enqueue(sid, frame(0, seq), 0);
        }
        // Deadlines fixed at 10,20,30,40,50 ms. At t=100 ms ALL are late:
        // the grid does not re-anchor after the first drop.
        let d = s.schedule_next(100 * MILLISECOND);
        assert!(d.frame.is_none());
        assert_eq!(d.dropped, 5, "whole backlog counted late under the grid");
    }

    #[test]
    fn service_chain_reanchors_after_first_miss() {
        // Contrast case: same scenario under the default chain — only the
        // head is late; successors re-anchor to now + T.
        let mut s = sched();
        let sid = s.add_stream(StreamQos::new(10 * MILLISECOND, 4, 4));
        for seq in 0..5 {
            s.enqueue(sid, frame(0, seq), 0);
        }
        let d = s.schedule_next(100 * MILLISECOND);
        assert_eq!(d.dropped, 1);
        let f = d.frame.expect("re-anchored successor sends");
        assert!(f.on_time);
        assert_eq!(f.deadline, 110 * MILLISECOND);
    }

    #[test]
    fn anchors_agree_while_on_time() {
        // Served exactly at each deadline, the two anchorings produce the
        // same schedule.
        let run = |anchor: DeadlineAnchor| -> Vec<Time> {
            let cfg = SchedulerConfig {
                anchor,
                pacing: Pacing::DeadlinePaced,
                ..SchedulerConfig::default()
            };
            let mut s = DwcsScheduler::with_config(LinearScan::new(2), cfg);
            let sid = s.add_stream(StreamQos::new(7 * MILLISECOND, 1, 4));
            for seq in 0..10 {
                s.enqueue(sid, frame(0, seq), 0);
            }
            let mut times = Vec::new();
            while s.has_pending() {
                let t = s.next_eligible().unwrap();
                if s.schedule_next(t).frame.is_some() {
                    times.push(t);
                }
            }
            times
        };
        assert_eq!(run(DeadlineAnchor::ServiceChain), run(DeadlineAnchor::ArrivalGrid));
    }

    /// The O(1) backlog counter must agree with a queue scan through
    /// every mutation class: enqueue, paced put-back, drop, dispatch,
    /// and stream removal with a live backlog. (The debug build's
    /// `total_backlog` cross-check fires on any drift; this test walks
    /// all the paths.)
    #[test]
    fn incremental_backlog_survives_every_queue_mutation() {
        let cfg = SchedulerConfig {
            pacing: Pacing::DeadlinePaced,
            ..SchedulerConfig::default()
        };
        let mut s = DwcsScheduler::with_config(LinearScan::new(8), cfg);
        let a = s.add_stream(StreamQos::new(10 * MILLISECOND, 4, 4));
        let b = s.add_stream(StreamQos::new(3 * MILLISECOND, 0, 1));
        for seq in 0..4 {
            s.enqueue(a, frame(0, seq), 0);
            s.enqueue(b, frame(1, seq), 0);
        }
        assert_eq!(s.total_backlog(), 8);
        // Paced put-back: nothing eligible yet, count unchanged.
        assert!(s.schedule_next(MILLISECOND).frame.is_none());
        assert_eq!(s.total_backlog(), 8);
        // Dispatch one eligible frame.
        assert!(s.schedule_next(3 * MILLISECOND).frame.is_some());
        assert_eq!(s.total_backlog(), 7);
        // Late heads: droppable stream `a` sheds frames, strict stream
        // `b` sends late; every pass must satisfy the accounting
        // identity backlog' = backlog - dropped - dispatched.
        let mut dropped_total = 0;
        let mut t = SECOND;
        while s.has_pending() {
            let before = s.total_backlog();
            let d = s.schedule_next(t);
            dropped_total += d.dropped;
            assert_eq!(
                s.total_backlog(),
                before - u64::from(d.dropped) - u64::from(d.frame.is_some() as u8)
            );
            t += SECOND;
        }
        assert!(dropped_total >= 1, "droppable stream never shed a frame");
        assert_eq!(s.total_backlog(), 0);
        // Removal returns a live queue's frames to the count.
        for seq in 0..3 {
            s.enqueue(a, frame(0, 4 + seq), t);
        }
        assert_eq!(s.total_backlog(), 3);
        s.remove_stream(a);
        assert_eq!(s.total_backlog(), 0);
        let _ = b;
    }

    #[test]
    fn take_dropped_matches_drain_dropped() {
        let mut s = sched();
        let sid = s.add_stream(StreamQos::new(MILLISECOND, 4, 4));
        for seq in 0..3 {
            s.enqueue(sid, frame(0, seq), 0);
        }
        let d = s.schedule_next(SECOND);
        assert!(d.dropped >= 1);
        let mut got = Vec::new();
        s.take_dropped(&mut got);
        assert_eq!(got.len(), d.dropped as usize);
        // Buffer drained: a second take yields nothing.
        let mut again = Vec::new();
        s.take_dropped(&mut again);
        assert!(again.is_empty());
    }

    #[test]
    fn stream_removal_frees_slot() {
        let mut s = sched();
        let a = s.add_stream(StreamQos::new(MILLISECOND, 1, 2));
        s.enqueue(a, frame(0, 0), 0);
        s.remove_stream(a);
        assert_eq!(s.stream_count(), 0);
        assert!(s.schedule_next(0).frame.is_none());
        let b = s.add_stream(StreamQos::new(MILLISECOND, 1, 2));
        assert_eq!(b, a, "slot reused");
    }

    #[test]
    fn drop_budget_bounds_decision() {
        let cfg = SchedulerConfig {
            max_drops_per_decision: 2,
            ..SchedulerConfig::default()
        };
        let mut s = DwcsScheduler::with_config(LinearScan::new(8), cfg);
        // Five lossy streams, each with one long-expired head.
        let sids: Vec<_> = (0..5)
            .map(|_| s.add_stream(StreamQos::new(MILLISECOND, 4, 4)))
            .collect();
        for (i, &sid) in sids.iter().enumerate() {
            s.enqueue(sid, frame(i as u32, 0), 0);
        }
        let d = s.schedule_next(SECOND);
        assert!(d.frame.is_none());
        assert_eq!(d.dropped, 2, "budget respected");
        let backlog: usize = sids.iter().map(|&sid| s.backlog(sid)).sum();
        assert_eq!(backlog, 3);
    }

    #[test]
    fn works_identically_on_dual_heap() {
        let mut lin = DwcsScheduler::new(LinearScan::new(8));
        let mut heap = DwcsScheduler::new(DualHeap::new(8));
        let qos = [
            StreamQos::new(10 * MILLISECOND, 1, 3),
            StreamQos::new(7 * MILLISECOND, 0, 2),
            StreamQos::new(13 * MILLISECOND, 2, 4),
        ];
        let ids_l: Vec<_> = qos.iter().map(|q| lin.add_stream(*q)).collect();
        let ids_h: Vec<_> = qos.iter().map(|q| heap.add_stream(*q)).collect();
        for seq in 0..20u64 {
            for (i, (&l, &h)) in ids_l.iter().zip(&ids_h).enumerate() {
                let t = seq * MILLISECOND;
                lin.enqueue(l, frame(i as u32, seq), t);
                heap.enqueue(h, frame(i as u32, seq), t);
            }
        }
        let mut t = 0;
        loop {
            let a = lin.schedule_next(t);
            let b = heap.schedule_next(t);
            assert_eq!(
                a.frame.map(|f| (f.desc.stream, f.desc.seq)),
                b.frame.map(|f| (f.desc.stream, f.desc.seq))
            );
            if a.frame.is_none() && !lin.has_pending() {
                break;
            }
            t += 2 * MILLISECOND;
        }
    }

    use crate::types::SECOND;
}
