//! B-tree representation — the modern ordered-map baseline.
//!
//! Not one of the paper's candidates (1990s embedded firmware predates
//! `BTreeSet`), but the natural structure a contemporary implementation
//! would reach for; the ablation bench uses it as the yardstick the
//! period-correct structures are compared against.

use super::{ScheduleRepr, Work};
use crate::key::HeadKey;
use crate::types::StreamId;
use std::collections::BTreeSet;

/// Ordered-set index over `(HeadKey, StreamId)` with a side table for
/// removals. `HeadKey`'s order is strict for distinct arrivals, so the set
/// never conflates two streams.
pub struct BTreeRepr {
    set: BTreeSet<(HeadKey, StreamId)>,
    current: Vec<Option<HeadKey>>,
    work: Work,
}

impl Default for BTreeRepr {
    fn default() -> Self {
        BTreeRepr::new()
    }
}

impl BTreeRepr {
    /// Empty index.
    pub fn new() -> BTreeRepr {
        BTreeRepr {
            set: BTreeSet::new(),
            current: Vec::new(),
            work: Work::default(),
        }
    }

    fn ensure(&mut self, idx: usize) {
        if idx >= self.current.len() {
            // analysis: allow(ni-no-alloc) reason="grows only when a new stream id is admitted, bounded by stream count"
            self.current.resize(idx + 1, None);
        }
    }

    /// Estimated comparisons for one tree descent.
    fn log_len(&self) -> u64 {
        (self.set.len().max(2) as u64).ilog2() as u64
    }
}

impl ScheduleRepr for BTreeRepr {
    fn name(&self) -> &'static str {
        "btree"
    }

    fn update(&mut self, sid: StreamId, key: HeadKey) {
        self.ensure(sid.index());
        if let Some(old) = self.current[sid.index()].replace(key) {
            self.work.compares += self.log_len();
            self.set.remove(&(old, sid));
        }
        self.work.compares += self.log_len();
        self.work.touches += self.log_len() + 1;
        // analysis: allow(ni-no-alloc) reason="node-per-insert is the cost model this representation exists to measure; NI placements use LinearScan"
        self.set.insert((key, sid));
    }

    fn remove(&mut self, sid: StreamId) {
        if sid.index() < self.current.len() {
            if let Some(old) = self.current[sid.index()].take() {
                self.work.compares += self.log_len();
                self.work.touches += 1;
                self.set.remove(&(old, sid));
            }
        }
    }

    fn peek_min(&mut self) -> Option<(StreamId, HeadKey)> {
        self.work.touches += 1;
        self.set.first().map(|&(k, s)| (s, k))
    }

    fn pop_min(&mut self) -> Option<(StreamId, HeadKey)> {
        self.work.compares += self.log_len();
        self.work.touches += self.log_len();
        let (k, s) = self.set.pop_first()?;
        self.current[s.index()] = None;
        Some((s, k))
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn take_work(&mut self) -> Work {
        core::mem::take(&mut self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(deadline: u64, arrival: u64) -> HeadKey {
        HeadKey {
            deadline,
            x: 1,
            y: 2,
            arrival,
        }
    }

    #[test]
    fn ordered_pops() {
        let mut r = BTreeRepr::new();
        for (sid, d) in [(0u32, 30u64), (1, 10), (2, 20)] {
            r.update(StreamId(sid), key(d, u64::from(sid)));
        }
        let order: Vec<u32> = std::iter::from_fn(|| r.pop_min().map(|(s, _)| s.0)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn update_is_move_not_duplicate() {
        let mut r = BTreeRepr::new();
        r.update(StreamId(0), key(10, 0));
        r.update(StreamId(0), key(5, 1));
        assert_eq!(r.len(), 1);
        let (_, k) = r.pop_min().unwrap();
        assert_eq!(k.deadline, 5);
        assert!(r.pop_min().is_none());
    }

    #[test]
    fn remove_then_reinsert() {
        let mut r = BTreeRepr::new();
        r.update(StreamId(3), key(10, 0));
        r.remove(StreamId(3));
        assert!(r.is_empty());
        r.update(StreamId(3), key(20, 1));
        assert_eq!(r.pop_min().unwrap().1.deadline, 20);
    }
}
