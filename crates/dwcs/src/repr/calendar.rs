//! Calendar queue representation (§3.1.1's "calendar queues").
//!
//! Deadlines hash into day-buckets of fixed width; the precedence order is
//! deadline-major, so scanning buckets in deadline order and resolving the
//! (typically tiny) in-bucket candidate set by full precedence yields the
//! global DWCS minimum. Brown's classic design, adapted in two ways:
//!
//! * **Lazy invalidation** by per-stream stamps (like [`DualHeap`]), so
//!   `update`/`remove` never search buckets.
//! * A **direct-search fallback** when a full sweep of the calendar "year"
//!   finds only future-year entries, which bounds the worst case instead of
//!   spinning.
//!
//! Amortised O(1) per operation when the bucket width matches the deadline
//! spacing — for media streams the natural width is the frame period, which
//! is exactly what the scheduler knows at admission time.
//!
//! [`DualHeap`]: super::DualHeap

use super::{ScheduleRepr, Work};
use crate::key::HeadKey;
use crate::types::{StreamId, Time};

#[derive(Clone, Copy)]
struct Entry {
    key: HeadKey,
    sid: StreamId,
    stamp: u64,
}

/// Bucketed-by-deadline index with lazy invalidation.
pub struct CalendarQueue {
    buckets: Vec<Vec<Entry>>,
    /// Bucket width in nanoseconds of deadline.
    width: Time,
    stamps: Vec<Option<u64>>,
    next_stamp: u64,
    len: usize,
    /// Earliest deadline that can still be live (advanced by pops).
    horizon: Time,
    work: Work,
}

impl CalendarQueue {
    /// `width`: bucket width in ns (natural choice: the dominant stream
    /// period). `nbuckets`: number of day-buckets (rounded up to a power of
    /// two).
    pub fn new(width: Time, nbuckets: usize) -> CalendarQueue {
        assert!(width > 0, "bucket width must be positive");
        let n = nbuckets.next_power_of_two().max(2);
        CalendarQueue {
            buckets: vec![Vec::new(); n],
            width,
            stamps: Vec::new(),
            next_stamp: 0,
            len: 0,
            horizon: 0,
            work: Work::default(),
        }
    }

    fn bucket_of(&self, deadline: Time) -> usize {
        ((deadline / self.width) as usize) & (self.buckets.len() - 1)
    }

    fn ensure(&mut self, idx: usize) {
        if idx >= self.stamps.len() {
            // analysis: allow(ni-no-alloc) reason="grows only when a new stream id is admitted, bounded by stream count"
            self.stamps.resize(idx + 1, None);
        }
    }

    fn is_current(&self, e: &Entry) -> bool {
        self.stamps
            .get(e.sid.index())
            .copied()
            .flatten()
            .is_some_and(|s| s == e.stamp)
    }

    /// Grow the calendar when buckets get crowded, rehashing live entries.
    // analysis: allow(ni-no-alloc) reason="amortized doubling, triggered by admission growth rather than steady-state service"
    // analysis: allow(ni-cycle-budget) reason="amortized rehash in a comparison repr measured host-side; NI placements use LinearScan"
    fn maybe_resize(&mut self) {
        if self.len <= self.buckets.len() * 4 {
            return;
        }
        let new_n = (self.buckets.len() * 2).next_power_of_two();
        let old = core::mem::replace(&mut self.buckets, vec![Vec::new(); new_n]);
        for bucket in old {
            for e in bucket {
                if self.is_current(&e) {
                    let b = self.bucket_of(e.key.deadline);
                    self.buckets[b].push(e);
                    self.work.touches += 1;
                }
            }
        }
    }

    /// Find the live minimum: sweep one calendar year from the horizon
    /// bucket; if that finds nothing in-year, direct-search everything.
    /// Returns (bucket, index-in-bucket).
    // analysis: allow(ni-cycle-budget) reason="bucket count is load-dependent; comparison repr measured host-side, NI placements use LinearScan"
    fn find_min(&mut self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        let start_bucket = self.bucket_of(self.horizon);
        let year_start = self.horizon;

        // One-year sweep: the first bucket containing a live entry whose
        // deadline falls within that bucket's current-year day wins.
        for step in 0..n {
            let b = (start_bucket + step) % n;
            let day_end = year_start - (year_start % self.width) + self.width * (step as Time + 1);
            let found = self.scan_bucket(b, Some(day_end));
            if found.is_some() {
                return found.map(|i| (b, i));
            }
        }
        // Fallback: min over all live entries regardless of year.
        let mut best: Option<(usize, usize, HeadKey)> = None;
        for b in 0..n {
            if let Some(i) = self.scan_bucket(b, None) {
                let k = self.buckets[b][i].key;
                match &best {
                    None => best = Some((b, i, k)),
                    Some((_, _, bk)) => {
                        self.work.compares += 1;
                        if k.precedence(bk).is_lt() {
                            best = Some((b, i, k));
                        }
                    }
                }
            }
        }
        best.map(|(b, i, _)| (b, i))
    }

    /// Best live entry in bucket `b`; with `day_end`, only entries whose
    /// deadline is before that day boundary count (current-year test).
    /// Compacts stale entries opportunistically.
    // analysis: allow(ni-cycle-budget) reason="bucket occupancy is load-dependent; comparison repr measured host-side, NI placements use LinearScan"
    fn scan_bucket(&mut self, b: usize, day_end: Option<Time>) -> Option<usize> {
        // Opportunistic compaction of stale entries.
        let stamps = &self.stamps;
        let bucket = &mut self.buckets[b];
        let before = bucket.len();
        bucket.retain(|e| {
            stamps
                .get(e.sid.index())
                .copied()
                .flatten()
                .is_some_and(|s| s == e.stamp)
        });
        self.work.touches += before as u64;

        let bucket = &self.buckets[b];
        let mut best: Option<(usize, HeadKey)> = None;
        for (i, e) in bucket.iter().enumerate() {
            if let Some(end) = day_end {
                if e.key.deadline >= end {
                    continue;
                }
            }
            match &best {
                None => best = Some((i, e.key)),
                Some((_, bk)) => {
                    self.work.compares += 1;
                    if e.key.precedence(bk).is_lt() {
                        best = Some((i, e.key));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

impl ScheduleRepr for CalendarQueue {
    fn name(&self) -> &'static str {
        "calendar-queue"
    }

    fn update(&mut self, sid: StreamId, key: HeadKey) {
        self.ensure(sid.index());
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if self.stamps[sid.index()].is_none() {
            self.len += 1;
        }
        self.stamps[sid.index()] = Some(stamp);
        // A backlogged stream may re-enqueue behind the pop horizon (its
        // next deadline is predecessor + T, which can lag). Clamp the
        // horizon down so the year-sweep starts at or before the true
        // minimum — otherwise a later-deadline entry in an earlier-swept
        // bucket would pop first.
        if self.len == 1 || key.deadline < self.horizon {
            self.horizon = key.deadline;
        }
        let b = self.bucket_of(key.deadline);
        // analysis: allow(ni-no-alloc) reason="bucket vecs recycle capacity; they lengthen only until peak occupancy is seen"
        self.buckets[b].push(Entry { key, sid, stamp });
        self.work.touches += 1;
        self.maybe_resize();
    }

    fn remove(&mut self, sid: StreamId) {
        if sid.index() < self.stamps.len() && self.stamps[sid.index()].take().is_some() {
            self.len -= 1;
            self.work.touches += 1;
        }
    }

    fn peek_min(&mut self) -> Option<(StreamId, HeadKey)> {
        let (b, i) = self.find_min()?;
        let e = self.buckets[b][i];
        Some((e.sid, e.key))
    }

    fn pop_min(&mut self) -> Option<(StreamId, HeadKey)> {
        let (b, i) = self.find_min()?;
        let e = self.buckets[b].swap_remove(i);
        self.stamps[e.sid.index()] = None;
        self.len -= 1;
        self.horizon = self.horizon.max(e.key.deadline);
        self.work.touches += 1;
        Some((e.sid, e.key))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn take_work(&mut self) -> Work {
        core::mem::take(&mut self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(deadline: u64, arrival: u64) -> HeadKey {
        HeadKey {
            deadline,
            x: 1,
            y: 2,
            arrival,
        }
    }

    #[test]
    fn pops_in_deadline_order_across_buckets() {
        let mut r = CalendarQueue::new(1_000, 4);
        for (sid, d) in [(0u32, 9_500u64), (1, 500), (2, 4_200), (3, 1_100), (4, 20_000)] {
            r.update(StreamId(sid), key(d, u64::from(sid)));
        }
        let order: Vec<u32> = std::iter::from_fn(|| r.pop_min().map(|(s, _)| s.0)).collect();
        assert_eq!(order, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn same_bucket_resolved_by_precedence() {
        let mut r = CalendarQueue::new(1_000_000, 4);
        r.update(StreamId(0), key(500, 0));
        r.update(StreamId(1), key(100, 1));
        r.update(StreamId(2), key(300, 2));
        assert_eq!(r.pop_min().unwrap().0, StreamId(1));
        assert_eq!(r.pop_min().unwrap().0, StreamId(2));
        assert_eq!(r.pop_min().unwrap().0, StreamId(0));
    }

    #[test]
    fn wraparound_year_handled() {
        // 4 buckets × 1000 ns: deadlines 100 and 4_100 share bucket 0.
        let mut r = CalendarQueue::new(1_000, 4);
        r.update(StreamId(0), key(4_100, 0));
        r.update(StreamId(1), key(100, 1));
        assert_eq!(r.pop_min().unwrap().0, StreamId(1), "current-year entry first");
        assert_eq!(r.pop_min().unwrap().0, StreamId(0));
    }

    #[test]
    fn far_future_entry_found_by_fallback() {
        let mut r = CalendarQueue::new(1_000, 4);
        r.update(StreamId(0), key(1_000_000_000, 0));
        assert_eq!(r.pop_min().unwrap().0, StreamId(0));
        assert!(r.pop_min().is_none());
    }

    #[test]
    fn update_supersedes_and_remove_hides() {
        let mut r = CalendarQueue::new(1_000, 4);
        r.update(StreamId(0), key(100, 0));
        r.update(StreamId(0), key(9_000, 1));
        r.update(StreamId(1), key(5_000, 2));
        r.remove(StreamId(1));
        assert_eq!(r.len(), 1);
        let (sid, k) = r.pop_min().unwrap();
        assert_eq!(sid, StreamId(0));
        assert_eq!(k.deadline, 9_000);
        assert!(r.pop_min().is_none());
    }

    #[test]
    fn resize_preserves_entries() {
        let mut r = CalendarQueue::new(1_000, 2);
        for sid in 0..64u32 {
            r.update(StreamId(sid), key(u64::from(sid) * 777, u64::from(sid)));
        }
        assert_eq!(r.len(), 64);
        let order: Vec<u32> = std::iter::from_fn(|| r.pop_min().map(|(s, _)| s.0)).collect();
        assert_eq!(order.len(), 64);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // Deadline order = sid order here (monotone deadlines).
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }
}
