//! Sorted list representation (§3.1.1's "sorted lists").
//!
//! Kept in *descending* precedence order so the minimum lives at the tail:
//! `pop_min` is a pop from the end (O(1), no shifting), while inserts pay a
//! binary search plus a memmove. Good when decisions vastly outnumber
//! arrivals; bad under high churn — exactly the trade-off the `sched_repr`
//! bench demonstrates.

use super::{ScheduleRepr, Work};
use crate::key::HeadKey;
use crate::types::StreamId;

/// Vector kept sorted by DWCS precedence (best entry at the tail).
pub struct SortedList {
    // (key, sid), sorted descending by key precedence.
    entries: Vec<(HeadKey, StreamId)>,
    work: Work,
}

impl Default for SortedList {
    fn default() -> Self {
        SortedList::new()
    }
}

impl SortedList {
    /// Empty list.
    pub fn new() -> SortedList {
        SortedList {
            entries: Vec::new(),
            work: Work::default(),
        }
    }

    /// Binary-search the insertion point in the descending order,
    /// counting comparisons.
    fn position(&mut self, key: &HeadKey) -> usize {
        let mut lo = 0usize;
        let mut hi = self.entries.len();
        // Binary search over the admitted streams (≤ 16 on the NI):
        // ⌈log2 16⌉ + 1 probes.
        // analysis: bound 5
        while lo < hi {
            let mid = (lo + hi) / 2;
            self.work.compares += 1;
            self.work.touches += 1;
            // Descending: bigger keys first.
            if self.entries[mid].0.precedence(key).is_gt() {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn remove_sid(&mut self, sid: StreamId) -> bool {
        // Linear probe over one entry per admitted stream (≤ 16 on the NI).
        // analysis: bound 16
        if let Some(pos) = self.entries.iter().position(|&(_, s)| s == sid) {
            self.work.touches += (self.entries.len() - pos) as u64;
            self.entries.remove(pos);
            true
        } else {
            self.work.touches += self.entries.len() as u64;
            false
        }
    }
}

impl ScheduleRepr for SortedList {
    fn name(&self) -> &'static str {
        "sorted-list"
    }

    fn update(&mut self, sid: StreamId, key: HeadKey) {
        self.remove_sid(sid);
        let pos = self.position(&key);
        self.work.touches += (self.entries.len() - pos + 1) as u64;
        // analysis: allow(ni-no-alloc) reason="capacity is recycled across passes; the vec lengthens only at admission"
        self.entries.insert(pos, (key, sid));
    }

    fn remove(&mut self, sid: StreamId) {
        self.remove_sid(sid);
    }

    fn peek_min(&mut self) -> Option<(StreamId, HeadKey)> {
        self.work.touches += 1;
        self.entries.last().map(|&(k, s)| (s, k))
    }

    fn pop_min(&mut self) -> Option<(StreamId, HeadKey)> {
        self.work.touches += 1;
        self.entries.pop().map(|(k, s)| (s, k))
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn take_work(&mut self) -> Work {
        core::mem::take(&mut self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(deadline: u64, arrival: u64) -> HeadKey {
        HeadKey {
            deadline,
            x: 1,
            y: 2,
            arrival,
        }
    }

    #[test]
    fn maintains_sorted_order_under_churn() {
        let mut r = SortedList::new();
        for (sid, d) in [(0u32, 50u64), (1, 10), (2, 90), (3, 30), (4, 70)] {
            r.update(StreamId(sid), key(d, u64::from(sid)));
        }
        let mut order = Vec::new();
        while let Some((sid, k)) = r.pop_min() {
            order.push((sid.0, k.deadline));
        }
        assert_eq!(order, vec![(1, 10), (3, 30), (0, 50), (4, 70), (2, 90)]);
    }

    #[test]
    fn update_moves_entry() {
        let mut r = SortedList::new();
        r.update(StreamId(0), key(100, 0));
        r.update(StreamId(1), key(50, 1));
        r.update(StreamId(0), key(10, 2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop_min().unwrap().0, StreamId(0));
    }

    #[test]
    fn pop_is_cheap_insert_pays() {
        let mut r = SortedList::new();
        for i in 0..32u32 {
            r.update(StreamId(i), key(u64::from(i * 7 % 32), u64::from(i)));
        }
        r.take_work();
        let _ = r.pop_min();
        let pop_work = r.take_work();
        assert!(pop_work.touches <= 2, "pop should not shift: {pop_work:?}");
        r.update(StreamId(40), key(16, 99));
        let ins_work = r.take_work();
        assert!(ins_work.compares >= 4, "insert binary-searches: {ins_work:?}");
    }

    #[test]
    fn fcfs_tie_respected() {
        let mut r = SortedList::new();
        r.update(StreamId(0), key(10, 5));
        r.update(StreamId(1), key(10, 3));
        assert_eq!(r.pop_min().unwrap().0, StreamId(1), "earlier arrival first");
    }
}
