//! Pluggable schedule representations.
//!
//! §3.1.1 of the paper: *"Extensible scheduler design decoupling scheduling
//! analysis and schedule representation (data structures). This allows
//! different data structures to be used for experimentation (FCFS circular
//! buffers, sorted lists, heaps or calendar queues)."*
//!
//! A representation indexes **head-of-line packets only** — one entry per
//! stream (paper Figure 4) — and must answer "which stream's head packet is
//! minimal under the DWCS precedence order" ([`HeadKey`]). All five
//! implementations are observationally identical; they differ in asymptotics
//! and constant factors, which the `sched_repr` bench and Tables 1–3
//! reproduction explore:
//!
//! | repr | insert | pop_min | notes |
//! |---|---|---|---|
//! | [`LinearScan`] | O(1) | O(n) | what the i960 firmware does ("loops through the frame descriptors") |
//! | [`SortedList`] | O(n) | O(1) | §3.1.1's "sorted lists" |
//! | [`DualHeap`]   | O(log n) | O(log n) | paper Figure 4: deadline heap + loss-tolerance heap, lazy invalidation |
//! | [`BTreeRepr`]  | O(log n) | O(log n) | modern baseline |
//! | [`CalendarQueue`] | O(1) amortised | O(1) amortised | §3.1.1's "calendar queues" |
//!
//! Every operation accrues a [`Work`] tally (comparisons + memory touches)
//! which the i960 cost model converts into simulated cycles — that is how
//! the *same algorithm execution* yields different microbenchmark numbers
//! for different data structures and cache settings (Tables 1–3).

mod btree;
mod calendar;
mod dual_heap;
mod linear;
mod sorted;

pub use btree::BTreeRepr;
pub use calendar::CalendarQueue;
pub use dual_heap::DualHeap;
pub use linear::LinearScan;
pub use sorted::SortedList;

use crate::key::HeadKey;
use crate::types::StreamId;

/// Data-structure work performed, for the co-processor cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Work {
    /// Key comparisons executed (each is a couple of integer multiplies in
    /// the fixed-point build, or software-FP ops in the float build).
    pub compares: u64,
    /// Descriptor/node memory touches (priced by the cache model).
    pub touches: u64,
}

impl Work {
    /// Accumulate another tally.
    pub fn add(&mut self, other: Work) {
        self.compares += other.compares;
        self.touches += other.touches;
    }
}

/// A schedule representation: an index over per-stream head packets.
///
/// Invariants callers maintain:
/// * a stream appears at most once (insert ⇒ not present; update ⇒ present
///   or absent, both fine);
/// * `remove`/`pop_min` drop the stream until the next insert/update.
pub trait ScheduleRepr {
    /// Human-readable name (appears in bench output).
    fn name(&self) -> &'static str;

    /// Add (or replace) the head entry for `sid`.
    fn update(&mut self, sid: StreamId, key: HeadKey);

    /// Remove `sid`'s entry if present.
    fn remove(&mut self, sid: StreamId);

    /// The minimal entry under DWCS precedence, without removing it.
    /// (`&mut` so lazily-invalidated structures may clean up.)
    fn peek_min(&mut self) -> Option<(StreamId, HeadKey)>;

    /// Remove and return the minimal entry.
    fn pop_min(&mut self) -> Option<(StreamId, HeadKey)>;

    /// Number of streams currently indexed.
    fn len(&self) -> usize;

    /// Whether no streams are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the work tally accumulated since the last call.
    fn take_work(&mut self) -> Work;
}

#[cfg(test)]
mod cross_check {
    use super::*;
    use crate::types::Time;

    fn key(deadline: Time, x: u32, y: u32, arrival: u64) -> HeadKey {
        HeadKey {
            deadline,
            x,
            y,
            arrival,
        }
    }

    /// Drive the same operation sequence through every representation and
    /// demand identical pop orders.
    fn exercise(ops: &[(u32, HeadKey)]) {
        let mut reprs: Vec<Box<dyn ScheduleRepr>> = vec![
            Box::new(LinearScan::new(64)),
            Box::new(SortedList::new()),
            Box::new(DualHeap::new(64)),
            Box::new(BTreeRepr::new()),
            Box::new(CalendarQueue::new(1_000_000, 8)),
        ];
        for r in &mut reprs {
            for &(sid, k) in ops {
                r.update(StreamId(sid), k);
            }
        }
        let reference: Vec<_> = {
            let r = &mut reprs[0];
            let mut order = Vec::new();
            while let Some((sid, _)) = r.pop_min() {
                order.push(sid);
            }
            order
        };
        for r in &mut reprs[1..] {
            let mut order = Vec::new();
            while let Some((sid, _)) = r.pop_min() {
                order.push(sid);
            }
            assert_eq!(order, reference, "repr {} disagrees with LinearScan", r.name());
        }
    }

    #[test]
    fn identical_pop_order_simple() {
        exercise(&[
            (0, key(300, 1, 2, 0)),
            (1, key(100, 1, 2, 1)),
            (2, key(200, 0, 4, 2)),
            (3, key(100, 0, 8, 3)),
            (4, key(100, 0, 2, 4)),
        ]);
    }

    #[test]
    fn identical_pop_order_with_updates() {
        let mut reprs: Vec<Box<dyn ScheduleRepr>> = vec![
            Box::new(LinearScan::new(16)),
            Box::new(SortedList::new()),
            Box::new(DualHeap::new(16)),
            Box::new(BTreeRepr::new()),
            Box::new(CalendarQueue::new(500_000, 4)),
        ];
        for r in &mut reprs {
            r.update(StreamId(0), key(1_000_000, 1, 4, 0));
            r.update(StreamId(1), key(2_000_000, 1, 4, 1));
            r.update(StreamId(2), key(3_000_000, 1, 4, 2));
            // Move stream 2 to the front, remove stream 0.
            r.update(StreamId(2), key(500_000, 1, 4, 3));
            r.remove(StreamId(0));
            assert_eq!(r.len(), 2, "{}", r.name());
            let (first, _) = r.pop_min().unwrap();
            assert_eq!(first, StreamId(2), "{}", r.name());
            let (second, _) = r.pop_min().unwrap();
            assert_eq!(second, StreamId(1), "{}", r.name());
            assert!(r.pop_min().is_none(), "{}", r.name());
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut reprs: Vec<Box<dyn ScheduleRepr>> = vec![
            Box::new(LinearScan::new(16)),
            Box::new(SortedList::new()),
            Box::new(DualHeap::new(16)),
            Box::new(BTreeRepr::new()),
            Box::new(CalendarQueue::new(500_000, 4)),
        ];
        for r in &mut reprs {
            for sid in 0..8u32 {
                r.update(StreamId(sid), key(1_000_000 * u64::from(8 - sid), 1, 2, u64::from(sid)));
            }
            while let Some(peeked) = r.peek_min() {
                let popped = r.pop_min().unwrap();
                assert_eq!(peeked.0, popped.0, "{}", r.name());
            }
            assert!(r.is_empty(), "{}", r.name());
        }
    }

    #[test]
    fn work_is_reported() {
        let mut r = LinearScan::new(8);
        r.update(StreamId(0), key(10, 1, 2, 0));
        r.update(StreamId(1), key(20, 1, 2, 1));
        let _ = r.pop_min();
        let w = r.take_work();
        assert!(w.touches > 0);
        assert_eq!(r.take_work(), Work::default(), "take drains");
    }
}
