//! The paper's Figure 4 structure: two heaps over head-of-line packets.
//!
//! *"This implementation of DWCS uses two heaps: one for deadlines and
//! another for loss-tolerances."* Head packets of every stream are indexed
//! twice: the **deadline heap** orders by the full precedence relation
//! (deadline-major, so its top *is* the DWCS winner), and the
//! **loss-tolerance heap** orders by current window-constraint, giving O(1)
//! access to the most-constrained stream (used by overload introspection,
//! [`DualHeap::most_constrained`]).
//!
//! Updates use **lazy invalidation**: each stream carries a version stamp;
//! stale heap entries are discarded when they surface. This keeps `update`
//! at O(log n) push without requiring decrease-key.

use super::{ScheduleRepr, Work};
use crate::key::HeadKey;
use crate::types::StreamId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Clone, Copy)]
struct Entry {
    key: HeadKey,
    sid: StreamId,
    stamp: u64,
}

/// Wrapper ordering entries by full DWCS precedence (deadline-major).
#[derive(Clone, Copy)]
struct ByPrecedence(Entry);

impl PartialEq for ByPrecedence {
    fn eq(&self, o: &Self) -> bool {
        self.cmp(o).is_eq()
    }
}
impl Eq for ByPrecedence {}
impl PartialOrd for ByPrecedence {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for ByPrecedence {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.0.key.precedence(&o.0.key)
    }
}

/// Wrapper ordering entries by window-constraint (loss-tolerance heap):
/// lowest `W'` first, zero-constraint ties by highest `y'`.
#[derive(Clone, Copy)]
struct ByTolerance(Entry);

impl ByTolerance {
    fn rank(&self) -> (fixedpt::Frac, Reverse<u32>, u64) {
        (self.0.key.constraint(), Reverse(self.0.key.y), self.0.key.arrival)
    }
}

impl PartialEq for ByTolerance {
    fn eq(&self, o: &Self) -> bool {
        self.cmp(o).is_eq()
    }
}
impl Eq for ByTolerance {}
impl PartialOrd for ByTolerance {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for ByTolerance {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&o.rank())
    }
}

/// Deadline heap + loss-tolerance heap with lazy invalidation.
pub struct DualHeap {
    deadline_heap: BinaryHeap<Reverse<ByPrecedence>>,
    tolerance_heap: BinaryHeap<Reverse<ByTolerance>>,
    /// Per-stream current stamp; `None` = not present.
    stamps: Vec<Option<u64>>,
    next_stamp: u64,
    len: usize,
    work: Work,
}

impl DualHeap {
    /// Heap pair sized for stream ids `0..capacity` (grows on demand).
    pub fn new(capacity: usize) -> DualHeap {
        DualHeap {
            deadline_heap: BinaryHeap::with_capacity(capacity),
            tolerance_heap: BinaryHeap::with_capacity(capacity),
            stamps: vec![None; capacity],
            next_stamp: 0,
            len: 0,
            work: Work::default(),
        }
    }

    fn ensure(&mut self, idx: usize) {
        if idx >= self.stamps.len() {
            // analysis: allow(ni-no-alloc) reason="grows only when a new stream id is admitted, bounded by stream count"
            self.stamps.resize(idx + 1, None);
        }
    }

    fn is_current(&self, e: &Entry) -> bool {
        self.stamps
            .get(e.sid.index())
            .copied()
            .flatten()
            .is_some_and(|s| s == e.stamp)
    }

    fn log_len(&self) -> u64 {
        (self.deadline_heap.len().max(2) as u64).ilog2() as u64
    }

    /// The stream with the lowest current window-constraint — the
    /// loss-tolerance heap's reason to exist: in overload the scheduler (or
    /// an operator probe) can see which stream is closest to violation
    /// without a scan.
    pub fn most_constrained(&mut self) -> Option<(StreamId, HeadKey)> {
        while let Some(Reverse(ByTolerance(e))) = self.tolerance_heap.peek().copied() {
            self.work.touches += 1;
            if self.is_current(&e) {
                return Some((e.sid, e.key));
            }
            self.tolerance_heap.pop();
        }
        None
    }
}

impl ScheduleRepr for DualHeap {
    fn name(&self) -> &'static str {
        "dual-heap"
    }

    fn update(&mut self, sid: StreamId, key: HeadKey) {
        self.ensure(sid.index());
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if self.stamps[sid.index()].is_none() {
            self.len += 1;
        }
        self.stamps[sid.index()] = Some(stamp);
        let e = Entry { key, sid, stamp };
        // Two sift-ups: ~log n compares and touches each.
        self.work.compares += 2 * self.log_len();
        self.work.touches += 2 * (self.log_len() + 1);
        // analysis: allow(ni-no-alloc) reason="heap capacity reserved at construction; lazy invalidation is the cost model this representation measures"
        self.deadline_heap.push(Reverse(ByPrecedence(e)));
        // analysis: allow(ni-no-alloc) reason="heap capacity reserved at construction; lazy invalidation is the cost model this representation measures"
        self.tolerance_heap.push(Reverse(ByTolerance(e)));
    }

    fn remove(&mut self, sid: StreamId) {
        if sid.index() < self.stamps.len() && self.stamps[sid.index()].take().is_some() {
            self.len -= 1;
            self.work.touches += 1;
            // Entries invalidate lazily.
        }
    }

    // analysis: allow(ni-cycle-budget) reason="stale-entry skip count is load-dependent; comparison repr measured host-side, NI placements use LinearScan"
    fn peek_min(&mut self) -> Option<(StreamId, HeadKey)> {
        while let Some(Reverse(ByPrecedence(e))) = self.deadline_heap.peek().copied() {
            self.work.touches += 1;
            if self.is_current(&e) {
                return Some((e.sid, e.key));
            }
            // Stale: discard (sift-down cost).
            self.work.compares += self.log_len();
            self.deadline_heap.pop();
        }
        None
    }

    fn pop_min(&mut self) -> Option<(StreamId, HeadKey)> {
        let (sid, key) = self.peek_min()?;
        self.work.compares += self.log_len();
        self.work.touches += self.log_len() + 1;
        self.deadline_heap.pop();
        self.stamps[sid.index()] = None;
        self.len -= 1;
        Some((sid, key))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn take_work(&mut self) -> Work {
        core::mem::take(&mut self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(deadline: u64, x: u32, y: u32, arrival: u64) -> HeadKey {
        HeadKey {
            deadline,
            x,
            y,
            arrival,
        }
    }

    #[test]
    fn pops_by_precedence() {
        let mut r = DualHeap::new(8);
        r.update(StreamId(0), key(100, 1, 2, 0));
        r.update(StreamId(1), key(100, 0, 4, 1));
        r.update(StreamId(2), key(50, 3, 3, 2));
        assert_eq!(r.pop_min().unwrap().0, StreamId(2), "earliest deadline");
        assert_eq!(r.pop_min().unwrap().0, StreamId(1), "W'=0 beats W'=1/2");
        assert_eq!(r.pop_min().unwrap().0, StreamId(0));
    }

    #[test]
    fn stale_entries_are_skipped() {
        let mut r = DualHeap::new(4);
        r.update(StreamId(0), key(10, 1, 2, 0));
        r.update(StreamId(0), key(99, 1, 2, 1)); // supersedes
        r.update(StreamId(1), key(50, 1, 2, 2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop_min().unwrap().0, StreamId(1));
        let (sid, k) = r.pop_min().unwrap();
        assert_eq!(sid, StreamId(0));
        assert_eq!(k.deadline, 99, "stale deadline-10 entry must not surface");
        assert!(r.pop_min().is_none());
    }

    #[test]
    fn removed_streams_never_surface() {
        let mut r = DualHeap::new(4);
        r.update(StreamId(0), key(10, 1, 2, 0));
        r.update(StreamId(1), key(20, 1, 2, 1));
        r.remove(StreamId(0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.pop_min().unwrap().0, StreamId(1));
        assert!(r.pop_min().is_none());
    }

    #[test]
    fn tolerance_heap_finds_most_constrained() {
        let mut r = DualHeap::new(8);
        r.update(StreamId(0), key(10, 3, 4, 0)); // W' = 3/4
        r.update(StreamId(1), key(5, 1, 8, 1)); // W' = 1/8 — most constrained
        r.update(StreamId(2), key(1, 2, 4, 2)); // W' = 1/2
        let (sid, _) = r.most_constrained().unwrap();
        assert_eq!(sid, StreamId(1));
        // Deadline order is independent: pop gives stream 2 (deadline 1).
        assert_eq!(r.pop_min().unwrap().0, StreamId(2));
        // After popping, most_constrained tracks remaining current entries.
        let (sid, _) = r.most_constrained().unwrap();
        assert_eq!(sid, StreamId(1));
    }

    #[test]
    fn zero_constraint_outranks_in_tolerance_heap() {
        let mut r = DualHeap::new(8);
        r.update(StreamId(0), key(10, 0, 2, 0));
        r.update(StreamId(1), key(10, 0, 9, 1));
        r.update(StreamId(2), key(10, 1, 9, 2));
        let (sid, _) = r.most_constrained().unwrap();
        assert_eq!(sid, StreamId(1), "zero W' with deepest window first");
    }
}
