//! Linear scan over a flat descriptor table.
//!
//! This is what the embedded i960 implementation in the paper actually does:
//! *"The scheduler loops through the frame descriptors and picks the
//! eligible descriptor"* (§4.2.1). O(n) per decision but with a tiny
//! constant, perfectly predictable memory access (descriptors sit in a flat
//! array in pinned NI memory — or in the memory-mapped "hardware queue"
//! registers of Table 3), and O(1) updates. For the stream counts the paper
//! evaluates (a handful) it is competitive with the heaps; the `sched_repr`
//! bench shows where the crossover lies.

use super::{ScheduleRepr, Work};
use crate::key::HeadKey;
use crate::types::StreamId;

/// Flat-array head-packet table scanned linearly on each decision.
pub struct LinearScan {
    slots: Vec<Option<HeadKey>>,
    len: usize,
    work: Work,
}

impl LinearScan {
    /// Table sized for stream ids `0..capacity` (grows on demand).
    pub fn new(capacity: usize) -> LinearScan {
        LinearScan {
            slots: vec![None; capacity],
            len: 0,
            work: Work::default(),
        }
    }

    fn ensure(&mut self, idx: usize) {
        if idx >= self.slots.len() {
            // analysis: allow(ni-no-alloc) reason="grows only when a new stream id is admitted, bounded by stream count"
            self.slots.resize(idx + 1, None);
        }
    }

    fn scan_min(&mut self) -> Option<usize> {
        let mut best: Option<(usize, HeadKey)> = None;
        // One pass over the slot table. NI placements admit at most 16
        // concurrent streams (the testbed serves a handful of MPEG flows),
        // so the firmware's per-decision scan touches ≤ 16 slots.
        // analysis: bound 16
        for (i, slot) in self.slots.iter().enumerate() {
            self.work.touches += 1;
            if let Some(key) = slot {
                match &best {
                    None => best = Some((i, *key)),
                    Some((_, bk)) => {
                        self.work.compares += 1;
                        if key.precedence(bk).is_lt() {
                            best = Some((i, *key));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

impl ScheduleRepr for LinearScan {
    fn name(&self) -> &'static str {
        "linear-scan"
    }

    fn update(&mut self, sid: StreamId, key: HeadKey) {
        self.ensure(sid.index());
        self.work.touches += 1;
        if self.slots[sid.index()].is_none() {
            self.len += 1;
        }
        self.slots[sid.index()] = Some(key);
    }

    fn remove(&mut self, sid: StreamId) {
        if sid.index() < self.slots.len() {
            self.work.touches += 1;
            if self.slots[sid.index()].take().is_some() {
                self.len -= 1;
            }
        }
    }

    fn peek_min(&mut self) -> Option<(StreamId, HeadKey)> {
        let i = self.scan_min()?;
        self.slots[i].map(|key| (StreamId(i as u32), key))
    }

    fn pop_min(&mut self) -> Option<(StreamId, HeadKey)> {
        let i = self.scan_min()?;
        let key = self.slots[i].take()?;
        self.len -= 1;
        Some((StreamId(i as u32), key))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn take_work(&mut self) -> Work {
        core::mem::take(&mut self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(deadline: u64, arrival: u64) -> HeadKey {
        HeadKey {
            deadline,
            x: 1,
            y: 2,
            arrival,
        }
    }

    #[test]
    fn pops_in_deadline_order() {
        let mut r = LinearScan::new(4);
        r.update(StreamId(0), key(30, 0));
        r.update(StreamId(1), key(10, 1));
        r.update(StreamId(2), key(20, 2));
        assert_eq!(r.pop_min().unwrap().0, StreamId(1));
        assert_eq!(r.pop_min().unwrap().0, StreamId(2));
        assert_eq!(r.pop_min().unwrap().0, StreamId(0));
        assert!(r.pop_min().is_none());
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut r = LinearScan::new(1);
        r.update(StreamId(9), key(5, 0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.pop_min().unwrap().0, StreamId(9));
    }

    #[test]
    fn update_replaces_in_place() {
        let mut r = LinearScan::new(2);
        r.update(StreamId(0), key(30, 0));
        r.update(StreamId(1), key(20, 1));
        r.update(StreamId(0), key(10, 2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop_min().unwrap().0, StreamId(0));
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut r = LinearScan::new(2);
        r.remove(StreamId(0));
        r.remove(StreamId(99));
        assert!(r.is_empty());
    }

    #[test]
    fn work_scales_with_table() {
        let mut r = LinearScan::new(16);
        for i in 0..16u32 {
            r.update(StreamId(i), key(u64::from(i), u64::from(i)));
        }
        r.take_work();
        let _ = r.peek_min();
        let w = r.take_work();
        assert_eq!(w.touches, 16);
        assert_eq!(w.compares, 15);
    }
}
