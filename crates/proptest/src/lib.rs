//! Vendored std-only stand-in for the `proptest` crate.
//!
//! The build environment has no network access (DESIGN.md §6: no external
//! dependencies), so the subset of the proptest API this workspace's
//! property tests use is reimplemented here: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, [`Just`],
//! `any::<T>()`, weighted `prop_oneof!`, `proptest::collection::vec`, and
//! the `proptest!`/`prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate, deliberate for this repo:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   assertion message; with deterministic seeds the case is re-runnable.
//! * **Deterministic seeds.** Each test derives its RNG seed from the test
//!   function's name (FNV-1a), so every run of the suite explores the same
//!   cases — the same byte-reproducibility discipline `simkit` promises for
//!   experiments. Set `PROPTEST_SEED=<u64>` to explore a different stream.

#![forbid(unsafe_code)]

use std::fmt;

pub mod strategy;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic RNG driving all strategies (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the name, mixed with the optional
    /// `PROPTEST_SEED` environment override).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.trim().parse::<u64>() {
                h ^= extra.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Why a test-case body did not complete successfully.
pub enum TestCaseError {
    /// `prop_assume!` failed: the case does not count, try another.
    Reject,
    /// `prop_assert*` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "Reject"),
            TestCaseError::Fail(m) => write!(f, "Fail({m})"),
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Values generatable "from anywhere" (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Produce one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — strategy over the whole of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `prop_assume!(cond)` — reject the case (without failing) if `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// `prop_assert!(cond, ...)` — fail the case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right, ...)` — fail the case if `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// `prop_oneof![...]` — union of strategies, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $( (($weight) as u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $( (1u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
}

/// The `proptest! { ... }` block: one or more `fn name(pat in strategy, ...)`
/// test functions, optionally preceded by `#![proptest_config(...)]`.
///
/// Each function runs `config.cases` generated cases; `prop_assume!`
/// rejections do not count toward the total (bounded at 20× the case count
/// to guarantee termination).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@blk ($cfg) $($rest)*);
    };
    (@blk ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                let mut done: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while done < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases in {} ({} rejects for {} cases)",
                        stringify!($name), attempts - done, done,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => done += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed after {} cases: {}",
                                stringify!($name), done, msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@blk ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! One-stop import for property tests.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{Arbitrary, ProptestConfig, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = crate::TestRng::for_test("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::for_test("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = crate::TestRng::for_test("beta");
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u8..=255).generate(&mut rng);
            let _ = w; // full range: any value valid
            let s = (-50i32..50).generate(&mut rng);
            assert!((-50..50).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::for_test("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn oneof_weights_cover_all_arms() {
        let mut rng = crate::TestRng::for_test("oneof");
        let strat = prop_oneof![2 => Just(1u8), 1 => Just(2u8), 1 => Just(3u8)];
        let mut seen = [0u32; 4];
        for _ in 0..400 {
            seen[strat.generate(&mut rng) as usize] += 1;
        }
        assert!(seen[1] > 0 && seen[2] > 0 && seen[3] > 0);
        assert!(seen[1] > seen[2], "weight 2 arm should dominate weight 1");
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = crate::TestRng::for_test("flatmap");
        let strat = (1u32..10).prop_flat_map(|y| (0..=y).prop_map(move |x| (x, y)));
        for _ in 0..500 {
            let (x, y) = strat.generate(&mut rng);
            assert!(x <= y && (1..10).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(v in crate::collection::vec(0u64..100, 1..5), flag in any::<bool>()) {
            prop_assume!(!v.is_empty());
            let total: u64 = v.iter().sum();
            prop_assert!(total < 500, "sum {total} out of range");
            if flag {
                prop_assert_eq!(v.len(), v.iter().count());
            }
        }
    }
}
