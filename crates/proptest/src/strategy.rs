//! The [`Strategy`] trait and combinators.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe core (`generate`) plus sized combinators, mirroring the real
/// proptest's `Strategy`/`ValueTree` split collapsed into one generation
/// step (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries; falls back to
    /// the last generated value if the predicate never holds).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate never satisfied: {}", self.reason);
    }
}

/// Box a strategy for storage in heterogeneous unions ([`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Weighted union of strategies over the same value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one non-zero weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        // Unreachable by construction (pick < total = Σw); satisfy the
        // type checker by using the last arm.
        self.arms[self.arms.len() - 1].1.generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Width in the unsigned domain; exclusive ranges never span
                // the full domain, so width fits and is non-zero.
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % width) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % width) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                // 53 uniform mantissa bits mapped into [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}
