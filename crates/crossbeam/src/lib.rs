//! Vendored std-only stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access (DESIGN.md §6: no external
//! dependencies), so the subset of the `crossbeam` API this workspace uses
//! — `utils::CachePadded` and MPSC channels — is reimplemented here over
//! `std::sync`. The channel module keeps crossbeam's unified `Sender` type
//! (bounded and unbounded share one type, `send` takes `&self`) by wrapping
//! `std::sync::mpsc`'s two sender flavours in an enum.

#![forbid(unsafe_code)]

pub mod utils {
    //! Utility types (`CachePadded`).

    use core::fmt;
    use core::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line, preventing
    /// false sharing between the producer- and consumer-owned indices of a
    /// ring. 128-byte alignment covers adjacent-line prefetchers on modern
    /// x86 as well as 128-byte-line ARM parts.
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pad `value` to a cache line.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Unwrap the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("CachePadded").field(&self.value).finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> CachePadded<T> {
            CachePadded::new(value)
        }
    }
}

pub mod channel {
    //! MPSC channels with crossbeam's unified sender/receiver API.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half: bounded and unbounded flavours behind one type,
    /// cloneable, `send` through `&self` (like crossbeam, unlike raw
    /// `std::sync::mpsc` where the two flavours are distinct types).
    pub enum Sender<T> {
        /// Unbounded flavour (never blocks on send).
        Unbounded(mpsc::Sender<T>),
        /// Bounded flavour (send blocks while the channel is full).
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        /// Errors only when the receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value),
                Sender::Bounded(s) => s.send(value),
            }
        }
    }

    /// The receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Drain currently-available messages without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    /// Channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Channel of bounded capacity (`cap == 0` gives a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};
    use super::utils::CachePadded;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let p = CachePadded::new(AtomicUsize::new(7));
        assert_eq!(core::mem::align_of_val(&p), 128);
        p.store(9, Ordering::Relaxed);
        assert_eq!(p.load(Ordering::Relaxed), 9);
        assert_eq!(p.into_inner().into_inner(), 9);
    }

    #[test]
    fn unbounded_send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        assert_eq!(sum, 4950);
    }

    #[test]
    fn bounded_reply_channel_pattern() {
        // The engine's Open/Stats reply pattern: bounded(1) one-shot.
        let (tx, rx) = bounded::<&'static str>(1);
        tx.send("reply").unwrap();
        assert_eq!(rx.recv().unwrap(), "reply");
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err(), "send to dropped receiver errors");
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(std::time::Duration::from_millis(5));
        assert_eq!(err, Err(super::channel::RecvTimeoutError::Timeout));
    }
}
