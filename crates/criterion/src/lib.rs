//! Vendored std-only stand-in for the `criterion` crate.
//!
//! The build environment has no network access (DESIGN.md §6: no external
//! dependencies), so the subset of the criterion API the `nistream-bench`
//! benches use is reimplemented here. Statistical rigour is deliberately
//! reduced: each benchmark is timed over enough iterations to fill a short
//! measurement window and the mean ns/iter is printed, plus derived
//! throughput when configured. Good enough for the *relative* comparisons
//! the paper's tables need (fixed vs float, repr A vs repr B); absolute
//! numbers should be read as indicative.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion 0.5 deprecates its own in
/// favour of `std::hint::black_box`).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirror of criterion's CLI hookup — accepted and ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 100,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label(), None, f);
        self
    }
}

/// Throughput basis for reporting rates alongside times.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput basis.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the sample count (accepted for API compatibility; this shim
    /// sizes its measurement window independently).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_benchmark(&label, self.throughput, f);
        self
    }

    /// Benchmark a closure parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_benchmark(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group (report flushing is immediate in this shim).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus optional parameter.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier carrying only a parameter (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name, parameter: None }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine`, amortised over enough iterations to fill a short
    /// measurement window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and window sizing: run once to estimate cost.
        let t0 = Instant::now();
        black_box(routine());
        let one = t0.elapsed().max(Duration::from_nanos(1));
        let window = Duration::from_millis(50);
        let iters = (window.as_nanos() / one.as_nanos()).clamp(1, 10_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn run_benchmark<F>(label: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { measured: None };
    f(&mut b);
    let Some((total, iters)) = b.measured else {
        println!("{label:<40} (no measurement: bencher.iter never called)");
        return;
    };
    let per_iter_ns = total.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            let mbps = n as f64 * 1e3 / per_iter_ns.max(1.0);
            format!("  {mbps:>10.1} MB/s")
        }
        Throughput::Elements(n) => {
            let eps = n as f64 * 1e9 / per_iter_ns.max(1.0);
            format!("  {eps:>10.0} elem/s")
        }
    });
    println!(
        "{label:<40} {per_iter_ns:>12.1} ns/iter ({iters} iters){}",
        rate.unwrap_or_default()
    );
}

/// Declare a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn group_api_round_trip() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_function("inline", |b| b.iter(|| black_box(1u32)));
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("scan", 8).label(), "scan/8");
        assert_eq!(BenchmarkId::from_parameter(8).label(), "8");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }
}
