//! The media-scheduler DVCM extension (§3 of the paper).
//!
//! A thin VCM-instruction shim over the placement-agnostic service core
//! [`dwcs::svc::SchedService`]: host producers push `EnqueueFrame`
//! instructions (frames themselves are already in NI memory — only
//! descriptors travel), the NI task loop polls for scheduling decisions,
//! and the core hands dispatched frames to the extension's
//! [`Platform`](dwcs::svc::Platform) — by default [`NiOutbox`], an
//! outbox the embedding drains onto the wire (`serversim` charges
//! Ethernet time; the real engine in `nistream-core` binds the same core
//! to a sink thread instead).
//!
//! The schedule representation is the paper's dual heap (Figure 4); each
//! decision's [`dwcs::repr::Work`] rides along so the i960 cost model can
//! price it (Tables 1–3).

use crate::extension::{ExtReply, ExtensionModule};
use crate::instr::{StreamSpec, VcmInstruction};
use dwcs::svc::{Platform, SchedService};
use dwcs::{
    DispatchMode, DualHeap, DwcsScheduler, FrameDesc, FrameKind, SchedDecision, SchedulerConfig, StreamId, StreamQos,
    Time,
};
use nistream_trace::{TraceCapture, TraceEvent, TraceRing};
use std::collections::VecDeque;

pub use dwcs::svc::DispatchRecord;

/// Completion statuses the extension returns.
pub mod status {
    /// Success.
    pub const OK: u8 = 0;
    /// Unknown stream id.
    pub const NO_STREAM: u8 = 2;
    /// Malformed QoS (zero period, x > y).
    pub const BAD_QOS: u8 = 3;
}

/// Upper bound on retained dropped-frame descriptors: the host reclaims
/// them batch-wise; an inattentive host loses the oldest notices rather
/// than growing NI memory without bound.
const RECLAIM_LOG_CAP: usize = 4_096;

/// The default NI-resident [`Platform`]: a settable NI clock, an outbox
/// of [`DispatchRecord`]s the embedding drains onto the wire, and a
/// bounded log of dropped descriptors for host-side slot reclamation.
#[derive(Default)]
pub struct NiOutbox {
    now: Time,
    outbox: VecDeque<DispatchRecord>,
    reclaimed: VecDeque<FrameDesc>,
    trace: Option<TraceRing>,
}

impl Platform for NiOutbox {
    fn now(&mut self) -> Time {
        self.now
    }

    fn set_now(&mut self, t: Time) {
        self.now = t;
    }

    fn dispatch(&mut self, rec: &DispatchRecord) {
        self.outbox.push_back(*rec);
    }

    fn reclaim(&mut self, desc: &FrameDesc) {
        if self.reclaimed.len() >= RECLAIM_LOG_CAP {
            self.reclaimed.pop_front();
        }
        self.reclaimed.push_back(*desc);
    }

    fn tracer(&mut self) -> Option<&mut TraceRing> {
        self.trace.as_mut()
    }
}

/// The DWCS scheduler as a DVCM extension module, generic over the
/// [`Platform`] the service core dispatches into. The default
/// ([`NiOutbox`]) queues records for the embedding; simulation worlds
/// substitute platforms that price wire occupancy inline.
pub struct MediaSchedExt<P: Platform = NiOutbox> {
    svc: SchedService<DualHeap, P>,
    /// Per-stream producer sequence numbers.
    next_seq: Vec<u64>,
    /// Decisions made (incl. idle polls that found nothing).
    pub polls: u64,
}

impl MediaSchedExt {
    /// Extension with the paper's configuration: dual-heap representation,
    /// coupled scheduling/dispatch, outbox platform.
    pub fn new(max_streams: usize) -> MediaSchedExt {
        MediaSchedExt::with_config(max_streams, SchedulerConfig::default())
    }

    /// Extension with an explicit scheduler configuration (decoupled
    /// dispatch experiments use this).
    pub fn with_config(max_streams: usize, cfg: SchedulerConfig) -> MediaSchedExt {
        MediaSchedExt::with_platform(max_streams, cfg, NiOutbox::default())
    }

    /// Drain one dispatched frame (the wire side).
    pub fn pop_dispatch(&mut self) -> Option<DispatchRecord> {
        self.svc.platform_mut().outbox.pop_front()
    }

    /// Frames awaiting wire transmission.
    pub fn outbox_len(&self) -> usize {
        self.svc.platform().outbox.len()
    }

    /// Drain the descriptors of frames dropped (or discarded by a stream
    /// close) since the last call — the host releases their NI-memory
    /// slots. The log is bounded (oldest notices fall off first).
    pub fn drain_reclaimed(&mut self) -> Vec<FrameDesc> {
        self.svc.platform_mut().reclaimed.drain(..).collect()
    }

    /// Attach an NI-resident trace ring of `capacity` events (0 removes
    /// tracing). The service core then emits the canonical event stream
    /// into it; drain with [`drain_trace`](MediaSchedExt::drain_trace).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.svc.platform_mut().trace = (capacity > 0).then(|| TraceRing::with_capacity(capacity));
    }

    /// Drain captured trace events (empty capture when tracing is off).
    pub fn drain_trace(&mut self) -> TraceCapture {
        self.svc
            .platform_mut()
            .trace
            .as_mut()
            .map(TraceCapture::from_ring)
            .unwrap_or_default()
    }
}

impl<P: Platform> MediaSchedExt<P> {
    /// Extension over an explicit platform (simulators bind cost models
    /// here; see [`NiOutbox`] for the default).
    pub fn with_platform(max_streams: usize, cfg: SchedulerConfig, platform: P) -> MediaSchedExt<P> {
        MediaSchedExt {
            svc: SchedService::new(DualHeap::new(max_streams), cfg, platform),
            next_seq: Vec::new(),
            polls: 0,
        }
    }

    /// One scheduling decision at NI time `now`; dispatched frames go to
    /// the platform. Returns the raw decision for cost-model pricing.
    ///
    /// Under [`DispatchMode::Decoupled`] the decision lands in the
    /// scheduler's internal dispatch queue instead of the return value;
    /// the service pass drains that queue into the platform too, so both
    /// dispatch modes feed the wire identically.
    pub fn poll_decision(&mut self, now: Time) -> SchedDecision {
        self.polls += 1;
        self.svc.platform_mut().set_now(now);
        self.svc.service_once().decision
    }

    /// Whether any stream has queued frames.
    pub fn has_pending(&self) -> bool {
        self.svc.has_pending()
    }

    /// Direct scheduler access (experiments read stats, windows).
    pub fn scheduler(&self) -> &DwcsScheduler<DualHeap> {
        self.svc.scheduler()
    }

    /// Mutable scheduler access.
    pub fn scheduler_mut(&mut self) -> &mut DwcsScheduler<DualHeap> {
        self.svc.scheduler_mut()
    }

    /// The platform the service core dispatches into.
    pub fn platform(&self) -> &P {
        self.svc.platform()
    }

    /// Mutable platform access.
    pub fn platform_mut(&mut self) -> &mut P {
        self.svc.platform_mut()
    }

    fn open(&mut self, spec: StreamSpec, now: Time) -> ExtReply {
        if spec.period == 0 || spec.loss_den == 0 || spec.loss_num > spec.loss_den {
            if let Some(ring) = self.svc.platform_mut().tracer() {
                ring.push(TraceEvent::Reject {
                    at: now,
                    reason: u32::from(status::BAD_QOS),
                });
            }
            return ExtReply::err(status::BAD_QOS);
        }
        let mut qos = StreamQos::new(spec.period, spec.loss_num, spec.loss_den);
        if !spec.droppable {
            qos = qos.send_late();
        }
        // Latch instruction time so the service core stamps the Admit
        // event with it.
        self.svc.platform_mut().set_now(now);
        let sid = self.svc.open(qos);
        if sid.index() >= self.next_seq.len() {
            self.next_seq.resize(sid.index() + 1, 0);
        }
        self.next_seq[sid.index()] = 0;
        ExtReply::with(vec![sid.0])
    }

    fn enqueue(&mut self, stream: StreamId, addr: u64, len: u32, kind: FrameKind, now: Time) -> ExtReply {
        if stream.index() >= self.next_seq.len() {
            return ExtReply::err(status::NO_STREAM);
        }
        let seq = self.next_seq[stream.index()];
        self.next_seq[stream.index()] += 1;
        let desc = FrameDesc {
            stream,
            seq,
            len,
            kind,
            enqueued_at: now,
            addr,
        };
        self.svc.ingest_at(stream, desc, now);
        ExtReply::ok()
    }

    fn stats(&self, sid: StreamId) -> ExtReply {
        if sid.index() >= self.next_seq.len() {
            return ExtReply::err(status::NO_STREAM);
        }
        let s = self.svc.scheduler().stats(sid);
        ExtReply::with(vec![
            s.sent_on_time as u32,
            s.sent_late as u32,
            s.dropped as u32,
            s.violations as u32,
            (s.bytes_sent >> 32) as u32,
            s.bytes_sent as u32,
            (s.mean_queue_delay() / 1_000) as u32, // µs
        ])
    }
}

impl<P: Platform + 'static> ExtensionModule for MediaSchedExt<P> {
    fn name(&self) -> &str {
        "dwcs-media-scheduler"
    }

    fn on_instruction(&mut self, instr: VcmInstruction, now: Time) -> ExtReply {
        match instr {
            VcmInstruction::OpenStream(spec) => self.open(spec, now),
            VcmInstruction::CloseStream(sid) => {
                if sid.index() >= self.next_seq.len() {
                    ExtReply::err(status::NO_STREAM)
                } else {
                    self.svc.platform_mut().set_now(now);
                    self.svc.close(sid);
                    ExtReply::ok()
                }
            }
            VcmInstruction::EnqueueFrame {
                stream,
                addr,
                len,
                kind,
            } => self.enqueue(stream, addr, len, kind, now),
            VcmInstruction::QueryStats(sid) => self.stats(sid),
            VcmInstruction::Kick => {
                self.poll_decision(now);
                ExtReply::ok()
            }
        }
    }

    fn poll(&mut self, now: Time) -> u32 {
        let d = self.poll_decision(now);
        u32::from(d.frame.is_some()) + d.dropped
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// Default dispatch mode helper for decoupled experiments.
pub fn decoupled_config(queue_cap: usize) -> SchedulerConfig {
    SchedulerConfig {
        dispatch: DispatchMode::Decoupled { queue_cap },
        ..SchedulerConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwcs::types::MILLISECOND;

    fn open_spec(period_ms: u64, x: u32, y: u32) -> VcmInstruction {
        VcmInstruction::OpenStream(StreamSpec {
            period: period_ms * MILLISECOND,
            loss_num: x,
            loss_den: y,
            droppable: true,
        })
    }

    #[test]
    fn open_enqueue_poll_dispatch() {
        let mut ext = MediaSchedExt::new(8);
        let reply = ext.on_instruction(open_spec(10, 1, 2), 0);
        assert_eq!(reply.status, 0);
        let sid = StreamId(reply.payload[0]);

        let r = ext.on_instruction(
            VcmInstruction::EnqueueFrame {
                stream: sid,
                addr: 0xA000,
                len: 1000,
                kind: FrameKind::I,
            },
            0,
        );
        assert_eq!(r, ExtReply::ok());
        assert_eq!(ext.poll(MILLISECOND), 1);
        let rec = ext.pop_dispatch().expect("frame dispatched");
        assert_eq!(rec.frame.desc.addr, 0xA000);
        assert!(rec.frame.on_time);
        assert_eq!(ext.outbox_len(), 0);
    }

    #[test]
    fn stats_reflect_service() {
        let mut ext = MediaSchedExt::new(8);
        let sid = StreamId(ext.on_instruction(open_spec(10, 1, 2), 0).payload[0]);
        for _ in 0..3 {
            ext.on_instruction(
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr: 0,
                    len: 500,
                    kind: FrameKind::P,
                },
                0,
            );
            ext.poll(0);
        }
        let stats = ext.on_instruction(VcmInstruction::QueryStats(sid), 0);
        assert_eq!(stats.status, 0);
        assert_eq!(stats.payload[0], 3, "3 on-time");
        assert_eq!(stats.payload[5], 1500, "bytes low word");
    }

    #[test]
    fn bad_qos_and_unknown_stream_rejected() {
        let mut ext = MediaSchedExt::new(8);
        let r = ext.on_instruction(open_spec(0, 1, 2), 0);
        assert_eq!(r.status, status::BAD_QOS);
        let r = ext.on_instruction(
            VcmInstruction::OpenStream(StreamSpec {
                period: 10,
                loss_num: 5,
                loss_den: 2,
                droppable: true,
            }),
            0,
        );
        assert_eq!(r.status, status::BAD_QOS);
        let r = ext.on_instruction(VcmInstruction::QueryStats(StreamId(9)), 0);
        assert_eq!(r.status, status::NO_STREAM);
        let r = ext.on_instruction(
            VcmInstruction::EnqueueFrame {
                stream: StreamId(9),
                addr: 0,
                len: 1,
                kind: FrameKind::B,
            },
            0,
        );
        assert_eq!(r.status, status::NO_STREAM);
    }

    #[test]
    fn close_stops_service() {
        let mut ext = MediaSchedExt::new(8);
        let sid = StreamId(ext.on_instruction(open_spec(10, 1, 2), 0).payload[0]);
        ext.on_instruction(
            VcmInstruction::EnqueueFrame {
                stream: sid,
                addr: 0,
                len: 1,
                kind: FrameKind::B,
            },
            0,
        );
        assert_eq!(ext.on_instruction(VcmInstruction::CloseStream(sid), 0), ExtReply::ok());
        assert_eq!(ext.poll(0), 0, "closed stream's backlog discarded");
    }

    #[test]
    fn close_surfaces_backlog_for_reclamation() {
        let mut ext = MediaSchedExt::new(8);
        let sid = StreamId(ext.on_instruction(open_spec(10, 1, 2), 0).payload[0]);
        for addr in 10..13u64 {
            ext.on_instruction(
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr,
                    len: 1,
                    kind: FrameKind::B,
                },
                0,
            );
        }
        ext.on_instruction(VcmInstruction::CloseStream(sid), 0);
        let addrs: Vec<u64> = ext.drain_reclaimed().iter().map(|d| d.addr).collect();
        assert_eq!(addrs, vec![10, 11, 12], "host can release the slots");
        assert!(ext.drain_reclaimed().is_empty(), "drain clears the log");
    }

    #[test]
    fn dropped_frames_reach_the_reclaim_log() {
        let mut ext = MediaSchedExt::new(8);
        // Tolerance 1/1: a late head drops within budget.
        let sid = StreamId(ext.on_instruction(open_spec(1, 1, 1), 0).payload[0]);
        for addr in 0..2u64 {
            ext.on_instruction(
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr,
                    len: 1,
                    kind: FrameKind::B,
                },
                0,
            );
        }
        let d = ext.poll_decision(100 * MILLISECOND);
        assert!(d.dropped >= 1);
        let reclaimed = ext.drain_reclaimed();
        assert_eq!(reclaimed.len() as u32, d.dropped, "every drop surfaced");
    }

    #[test]
    fn kick_drives_a_decision() {
        let mut ext = MediaSchedExt::new(8);
        let sid = StreamId(ext.on_instruction(open_spec(10, 1, 2), 0).payload[0]);
        ext.on_instruction(
            VcmInstruction::EnqueueFrame {
                stream: sid,
                addr: 1,
                len: 1,
                kind: FrameKind::B,
            },
            0,
        );
        ext.on_instruction(VcmInstruction::Kick, 0);
        assert_eq!(ext.outbox_len(), 1);
    }

    #[test]
    fn decoupled_config_still_reaches_the_outbox() {
        let mut ext = MediaSchedExt::with_config(4, decoupled_config(8));
        let sid = StreamId(ext.on_instruction(open_spec(10, 1, 2), 0).payload[0]);
        for addr in 0..3u64 {
            ext.on_instruction(
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr,
                    len: 100,
                    kind: FrameKind::P,
                },
                0,
            );
        }
        for _ in 0..3 {
            ext.poll_decision(0);
        }
        assert_eq!(ext.outbox_len(), 3, "decoupled decisions drain to the outbox");
        let addrs: Vec<u64> = std::iter::from_fn(|| ext.pop_dispatch().map(|r| r.frame.desc.addr)).collect();
        assert_eq!(addrs, vec![0, 1, 2]);
    }

    #[test]
    fn traced_extension_captures_admits_rejects_and_dispatches() {
        let mut ext = MediaSchedExt::new(8);
        ext.enable_trace(256);
        let sid = StreamId(ext.on_instruction(open_spec(10, 1, 2), 0).payload[0]);
        assert_eq!(ext.on_instruction(open_spec(0, 1, 2), 5).status, status::BAD_QOS);
        ext.on_instruction(
            VcmInstruction::EnqueueFrame {
                stream: sid,
                addr: 0xA000,
                len: 1000,
                kind: FrameKind::I,
            },
            0,
        );
        ext.poll(MILLISECOND);
        let cap = ext.drain_trace();
        let kinds: Vec<&'static str> = cap
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::Admit { .. } => "admit",
                TraceEvent::Reject { .. } => "reject",
                TraceEvent::Decision { .. } => "decision",
                TraceEvent::Dispatch { .. } => "dispatch",
                TraceEvent::Drop { .. } => "drop",
                TraceEvent::QueueDepth { .. } => "qdepth",
            })
            .collect();
        assert_eq!(kinds, vec!["admit", "reject", "decision", "dispatch", "qdepth"]);
        assert!(cap
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Reject { at: 5, reason } if *reason == u32::from(status::BAD_QOS))));
        // Tracing off: captures are empty and behaviour is unchanged.
        ext.enable_trace(0);
        ext.poll(2 * MILLISECOND);
        assert!(ext.drain_trace().is_empty());
    }

    #[test]
    fn two_streams_scheduled_by_dwcs_rules() {
        let mut ext = MediaSchedExt::new(8);
        let slow = StreamId(ext.on_instruction(open_spec(100, 1, 2), 0).payload[0]);
        let fast = StreamId(ext.on_instruction(open_spec(5, 1, 2), 0).payload[0]);
        for (sid, addr) in [(slow, 1u64), (fast, 2u64)] {
            ext.on_instruction(
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr,
                    len: 100,
                    kind: FrameKind::P,
                },
                0,
            );
        }
        ext.poll(0);
        let first = ext.pop_dispatch().unwrap();
        assert_eq!(first.frame.desc.stream, fast, "earlier deadline first");
    }
}
