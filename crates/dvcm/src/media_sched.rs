//! The media-scheduler DVCM extension (§3 of the paper).
//!
//! Wraps the DWCS scheduler as an NI-resident extension: host producers
//! push `EnqueueFrame` instructions (frames themselves are already in NI
//! memory — only descriptors travel), the NI task loop polls for
//! scheduling decisions, and dispatched frames land in an outbox the
//! embedding drains onto the wire (`serversim` charges Ethernet time;
//! the real engine in `nistream-core` hands them to a sink thread).
//!
//! The schedule representation is the paper's dual heap (Figure 4); each
//! decision's [`dwcs::repr::Work`] rides along so the i960 cost model can
//! price it (Tables 1–3).

use crate::extension::{ExtReply, ExtensionModule};
use crate::instr::{StreamSpec, VcmInstruction};
use dwcs::scheduler::DispatchedFrame;
use dwcs::{
    DispatchMode, DualHeap, DwcsScheduler, FrameDesc, FrameKind, SchedDecision, SchedulerConfig, StreamId, StreamQos,
    Time,
};
use std::collections::VecDeque;

/// One dispatched frame with its decision metadata.
#[derive(Clone, Copy, Debug)]
pub struct DispatchRecord {
    /// The dispatched frame.
    pub frame: DispatchedFrame,
    /// NI time of the scheduling decision.
    pub decided_at: Time,
    /// Late frames dropped while reaching this decision.
    pub dropped_before: u32,
}

/// Completion statuses the extension returns.
pub mod status {
    /// Success.
    pub const OK: u8 = 0;
    /// Unknown stream id.
    pub const NO_STREAM: u8 = 2;
    /// Malformed QoS (zero period, x > y).
    pub const BAD_QOS: u8 = 3;
}

/// The DWCS scheduler as a DVCM extension module.
pub struct MediaSchedExt {
    sched: DwcsScheduler<DualHeap>,
    outbox: VecDeque<DispatchRecord>,
    /// Per-stream producer sequence numbers.
    next_seq: Vec<u64>,
    /// Decisions made (incl. idle polls that found nothing).
    pub polls: u64,
}

impl MediaSchedExt {
    /// Extension with the paper's configuration: dual-heap representation,
    /// coupled scheduling/dispatch.
    pub fn new(max_streams: usize) -> MediaSchedExt {
        MediaSchedExt::with_config(max_streams, SchedulerConfig::default())
    }

    /// Extension with an explicit scheduler configuration (decoupled
    /// dispatch experiments use this).
    pub fn with_config(max_streams: usize, cfg: SchedulerConfig) -> MediaSchedExt {
        MediaSchedExt {
            sched: DwcsScheduler::with_config(DualHeap::new(max_streams), cfg),
            outbox: VecDeque::new(),
            next_seq: Vec::new(),
            polls: 0,
        }
    }

    /// One scheduling decision at NI time `now`; dispatched frames go to
    /// the outbox. Returns the raw decision for cost-model pricing.
    ///
    /// Under [`DispatchMode::Decoupled`] the decision lands in the
    /// scheduler's internal dispatch queue instead of the return value;
    /// this poll drains that queue into the outbox too, so both dispatch
    /// modes feed the wire identically.
    pub fn poll_decision(&mut self, now: Time) -> SchedDecision {
        self.polls += 1;
        let d = self.sched.schedule_next(now);
        if let Some(frame) = d.frame {
            self.outbox.push_back(DispatchRecord {
                frame,
                decided_at: now,
                dropped_before: d.dropped,
            });
        }
        while let Some(frame) = self.sched.pop_dispatch(now) {
            self.outbox.push_back(DispatchRecord {
                frame,
                decided_at: now,
                dropped_before: 0,
            });
        }
        d
    }

    /// Drain one dispatched frame (the wire side).
    pub fn pop_dispatch(&mut self) -> Option<DispatchRecord> {
        self.outbox.pop_front()
    }

    /// Frames awaiting wire transmission.
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }

    /// Whether any stream has queued frames.
    pub fn has_pending(&self) -> bool {
        self.sched.has_pending()
    }

    /// Direct scheduler access (experiments read stats, windows).
    pub fn scheduler(&self) -> &DwcsScheduler<DualHeap> {
        &self.sched
    }

    /// Mutable scheduler access.
    pub fn scheduler_mut(&mut self) -> &mut DwcsScheduler<DualHeap> {
        &mut self.sched
    }

    fn open(&mut self, spec: StreamSpec) -> ExtReply {
        if spec.period == 0 || spec.loss_den == 0 || spec.loss_num > spec.loss_den {
            return ExtReply::err(status::BAD_QOS);
        }
        let mut qos = StreamQos::new(spec.period, spec.loss_num, spec.loss_den);
        if !spec.droppable {
            qos = qos.send_late();
        }
        let sid = self.sched.add_stream(qos);
        if sid.index() >= self.next_seq.len() {
            self.next_seq.resize(sid.index() + 1, 0);
        }
        self.next_seq[sid.index()] = 0;
        ExtReply::with(vec![sid.0])
    }

    fn enqueue(&mut self, stream: StreamId, addr: u64, len: u32, kind: FrameKind, now: Time) -> ExtReply {
        if stream.index() >= self.next_seq.len() {
            return ExtReply::err(status::NO_STREAM);
        }
        let seq = self.next_seq[stream.index()];
        self.next_seq[stream.index()] += 1;
        let desc = FrameDesc {
            stream,
            seq,
            len,
            kind,
            enqueued_at: now,
            addr,
        };
        self.sched.enqueue(stream, desc, now);
        ExtReply::ok()
    }

    fn stats(&self, sid: StreamId) -> ExtReply {
        if sid.index() >= self.next_seq.len() {
            return ExtReply::err(status::NO_STREAM);
        }
        let s = self.sched.stats(sid);
        ExtReply::with(vec![
            s.sent_on_time as u32,
            s.sent_late as u32,
            s.dropped as u32,
            s.violations as u32,
            (s.bytes_sent >> 32) as u32,
            s.bytes_sent as u32,
            (s.mean_queue_delay() / 1_000) as u32, // µs
        ])
    }
}

impl ExtensionModule for MediaSchedExt {
    fn name(&self) -> &str {
        "dwcs-media-scheduler"
    }

    fn on_instruction(&mut self, instr: VcmInstruction, now: Time) -> ExtReply {
        match instr {
            VcmInstruction::OpenStream(spec) => self.open(spec),
            VcmInstruction::CloseStream(sid) => {
                if sid.index() >= self.next_seq.len() {
                    ExtReply::err(status::NO_STREAM)
                } else {
                    self.sched.remove_stream(sid);
                    ExtReply::ok()
                }
            }
            VcmInstruction::EnqueueFrame {
                stream,
                addr,
                len,
                kind,
            } => self.enqueue(stream, addr, len, kind, now),
            VcmInstruction::QueryStats(sid) => self.stats(sid),
            VcmInstruction::Kick => {
                self.poll_decision(now);
                ExtReply::ok()
            }
        }
    }

    fn poll(&mut self, now: Time) -> u32 {
        let d = self.poll_decision(now);
        u32::from(d.frame.is_some()) + d.dropped
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// Default dispatch mode helper for decoupled experiments.
pub fn decoupled_config(queue_cap: usize) -> SchedulerConfig {
    SchedulerConfig {
        dispatch: DispatchMode::Decoupled { queue_cap },
        ..SchedulerConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwcs::types::MILLISECOND;

    fn open_spec(period_ms: u64, x: u32, y: u32) -> VcmInstruction {
        VcmInstruction::OpenStream(StreamSpec {
            period: period_ms * MILLISECOND,
            loss_num: x,
            loss_den: y,
            droppable: true,
        })
    }

    #[test]
    fn open_enqueue_poll_dispatch() {
        let mut ext = MediaSchedExt::new(8);
        let reply = ext.on_instruction(open_spec(10, 1, 2), 0);
        assert_eq!(reply.status, 0);
        let sid = StreamId(reply.payload[0]);

        let r = ext.on_instruction(
            VcmInstruction::EnqueueFrame {
                stream: sid,
                addr: 0xA000,
                len: 1000,
                kind: FrameKind::I,
            },
            0,
        );
        assert_eq!(r, ExtReply::ok());
        assert_eq!(ext.poll(MILLISECOND), 1);
        let rec = ext.pop_dispatch().expect("frame dispatched");
        assert_eq!(rec.frame.desc.addr, 0xA000);
        assert!(rec.frame.on_time);
        assert_eq!(ext.outbox_len(), 0);
    }

    #[test]
    fn stats_reflect_service() {
        let mut ext = MediaSchedExt::new(8);
        let sid = StreamId(ext.on_instruction(open_spec(10, 1, 2), 0).payload[0]);
        for _ in 0..3 {
            ext.on_instruction(
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr: 0,
                    len: 500,
                    kind: FrameKind::P,
                },
                0,
            );
            ext.poll(0);
        }
        let stats = ext.on_instruction(VcmInstruction::QueryStats(sid), 0);
        assert_eq!(stats.status, 0);
        assert_eq!(stats.payload[0], 3, "3 on-time");
        assert_eq!(stats.payload[5], 1500, "bytes low word");
    }

    #[test]
    fn bad_qos_and_unknown_stream_rejected() {
        let mut ext = MediaSchedExt::new(8);
        let r = ext.on_instruction(open_spec(0, 1, 2), 0);
        assert_eq!(r.status, status::BAD_QOS);
        let r = ext.on_instruction(
            VcmInstruction::OpenStream(StreamSpec {
                period: 10,
                loss_num: 5,
                loss_den: 2,
                droppable: true,
            }),
            0,
        );
        assert_eq!(r.status, status::BAD_QOS);
        let r = ext.on_instruction(VcmInstruction::QueryStats(StreamId(9)), 0);
        assert_eq!(r.status, status::NO_STREAM);
        let r = ext.on_instruction(
            VcmInstruction::EnqueueFrame {
                stream: StreamId(9),
                addr: 0,
                len: 1,
                kind: FrameKind::B,
            },
            0,
        );
        assert_eq!(r.status, status::NO_STREAM);
    }

    #[test]
    fn close_stops_service() {
        let mut ext = MediaSchedExt::new(8);
        let sid = StreamId(ext.on_instruction(open_spec(10, 1, 2), 0).payload[0]);
        ext.on_instruction(
            VcmInstruction::EnqueueFrame {
                stream: sid,
                addr: 0,
                len: 1,
                kind: FrameKind::B,
            },
            0,
        );
        assert_eq!(ext.on_instruction(VcmInstruction::CloseStream(sid), 0), ExtReply::ok());
        assert_eq!(ext.poll(0), 0, "closed stream's backlog discarded");
    }

    #[test]
    fn kick_drives_a_decision() {
        let mut ext = MediaSchedExt::new(8);
        let sid = StreamId(ext.on_instruction(open_spec(10, 1, 2), 0).payload[0]);
        ext.on_instruction(
            VcmInstruction::EnqueueFrame {
                stream: sid,
                addr: 1,
                len: 1,
                kind: FrameKind::B,
            },
            0,
        );
        ext.on_instruction(VcmInstruction::Kick, 0);
        assert_eq!(ext.outbox_len(), 1);
    }

    #[test]
    fn decoupled_config_still_reaches_the_outbox() {
        let mut ext = MediaSchedExt::with_config(4, decoupled_config(8));
        let sid = StreamId(ext.on_instruction(open_spec(10, 1, 2), 0).payload[0]);
        for addr in 0..3u64 {
            ext.on_instruction(
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr,
                    len: 100,
                    kind: FrameKind::P,
                },
                0,
            );
        }
        for _ in 0..3 {
            ext.poll_decision(0);
        }
        assert_eq!(ext.outbox_len(), 3, "decoupled decisions drain to the outbox");
        let addrs: Vec<u64> = std::iter::from_fn(|| ext.pop_dispatch().map(|r| r.frame.desc.addr)).collect();
        assert_eq!(addrs, vec![0, 1, 2]);
    }

    #[test]
    fn two_streams_scheduled_by_dwcs_rules() {
        let mut ext = MediaSchedExt::new(8);
        let slow = StreamId(ext.on_instruction(open_spec(100, 1, 2), 0).payload[0]);
        let fast = StreamId(ext.on_instruction(open_spec(5, 1, 2), 0).payload[0]);
        for (sid, addr) in [(slow, 1u64), (fast, 2u64)] {
            ext.on_instruction(
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr,
                    len: 100,
                    kind: FrameKind::P,
                },
                0,
            );
        }
        ext.poll(0);
        let first = ext.pop_dispatch().unwrap();
        assert_eq!(first.frame.desc.stream, fast, "earlier deadline first");
    }
}
