//! Extension modules — the DVCM's run-time extensibility.
//!
//! "The third set of DVCM functions are the extensions that support
//! specific applications' needs" (§2). An extension registers under a
//! function-code namespace; the NI runtime routes decoded instructions to
//! it and posts its replies. Extensions also get a periodic `poll` — the
//! NI task loop — which is where the media scheduler makes dispatch
//! decisions.

use crate::instr::VcmInstruction;
use core::any::Any;
use dwcs::Time;

/// Reply an extension returns for an instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtReply {
    /// Completion status (0 = success).
    pub status: u8,
    /// Payload words for the reply frame.
    pub payload: Vec<u32>,
}

impl ExtReply {
    /// Success with no payload.
    pub fn ok() -> ExtReply {
        ExtReply {
            status: 0,
            payload: vec![],
        }
    }

    /// Success with payload.
    pub fn with(payload: Vec<u32>) -> ExtReply {
        ExtReply { status: 0, payload }
    }

    /// Failure with a status code.
    pub fn err(status: u8) -> ExtReply {
        ExtReply {
            status,
            payload: vec![],
        }
    }
}

/// An NI-resident extension module.
pub trait ExtensionModule: Any {
    /// Module name (diagnostics).
    fn name(&self) -> &str;

    /// Handle one instruction at NI time `now`.
    fn on_instruction(&mut self, instr: VcmInstruction, now: Time) -> ExtReply;

    /// Periodic NI-task work (scheduling, dispatch). Returns how many
    /// units of work were done (0 = idle) so the runtime can price it.
    fn poll(&mut self, now: Time) -> u32;

    /// Downcast support: embedders reach extension-specific surfaces
    /// (e.g. the media scheduler's dispatch outbox) through
    /// [`ExtensionRegistry::get_as`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Registry of loaded extensions. The DVCM instruction set is routed to
/// one primary extension per runtime in this system (the media scheduler);
/// the registry supports several for layering experiments.
pub struct ExtensionRegistry {
    modules: Vec<Box<dyn ExtensionModule>>,
}

impl Default for ExtensionRegistry {
    fn default() -> Self {
        ExtensionRegistry::new()
    }
}

impl ExtensionRegistry {
    /// Empty registry.
    pub fn new() -> ExtensionRegistry {
        ExtensionRegistry { modules: Vec::new() }
    }

    /// Load an extension; returns its index.
    pub fn load(&mut self, module: Box<dyn ExtensionModule>) -> usize {
        self.modules.push(module);
        self.modules.len() - 1
    }

    /// Unload an extension by index (run-time reconfiguration: "the
    /// services implemented by the DVCM vary over time").
    pub fn unload(&mut self, idx: usize) -> Option<Box<dyn ExtensionModule>> {
        if idx < self.modules.len() {
            Some(self.modules.remove(idx))
        } else {
            None
        }
    }

    /// Dispatch an instruction to the first extension (the routing policy
    /// of this system: one scheduler extension per NI).
    pub fn dispatch(&mut self, instr: VcmInstruction, now: Time) -> ExtReply {
        match self.modules.first_mut() {
            Some(m) => m.on_instruction(instr, now),
            None => ExtReply::err(0xFF),
        }
    }

    /// Poll every module; returns total work units.
    pub fn poll_all(&mut self, now: Time) -> u32 {
        self.modules.iter_mut().map(|m| m.poll(now)).sum()
    }

    /// Loaded module count.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether no modules are loaded.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Access a module by index.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut (dyn ExtensionModule + '_)> {
        match self.modules.get_mut(idx) {
            Some(b) => Some(b.as_mut()),
            None => None,
        }
    }

    /// Access a module by index as its concrete type.
    pub fn get_as<T: ExtensionModule>(&mut self, idx: usize) -> Option<&mut T> {
        self.modules.get_mut(idx)?.as_any_mut().downcast_mut::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        polls: u32,
    }

    impl ExtensionModule for Echo {
        fn name(&self) -> &str {
            "echo"
        }

        fn on_instruction(&mut self, instr: VcmInstruction, _now: Time) -> ExtReply {
            match instr {
                VcmInstruction::Kick => ExtReply::with(vec![7]),
                _ => ExtReply::err(1),
            }
        }

        fn poll(&mut self, _now: Time) -> u32 {
            self.polls += 1;
            1
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn empty_registry_rejects() {
        let mut r = ExtensionRegistry::new();
        assert_eq!(r.dispatch(VcmInstruction::Kick, 0), ExtReply::err(0xFF));
        assert_eq!(r.poll_all(0), 0);
    }

    #[test]
    fn load_dispatch_unload() {
        let mut r = ExtensionRegistry::new();
        let idx = r.load(Box::new(Echo { polls: 0 }));
        assert_eq!(r.dispatch(VcmInstruction::Kick, 0), ExtReply::with(vec![7]));
        assert_eq!(r.poll_all(0), 1);
        assert_eq!(r.len(), 1);
        let m = r.unload(idx).unwrap();
        assert_eq!(m.name(), "echo");
        assert!(r.is_empty());
        assert!(r.unload(0).is_none());
    }

    #[test]
    fn get_as_downcasts_to_concrete_type() {
        let mut r = ExtensionRegistry::new();
        r.load(Box::new(Echo { polls: 3 }));
        let echo: &mut Echo = r.get_as(0).expect("is an Echo");
        assert_eq!(echo.polls, 3);
        assert!(r.get_as::<crate::media_sched::MediaSchedExt>(0).is_none());
    }
}
