//! The host-side DVCM API.
//!
//! "The DVCM appears to the application program as a memory-mapped device,
//! offering certain instructions, controlled via control registers, and
//! sharing selected memory pages with the application" (§2). [`VcmHandle`]
//! is that device interface: it marshals instructions into I2O frames,
//! pushes them through the messaging unit (each step is a PIO access the
//! simulation prices via `hwsim::PciBus`), and matches replies by
//! transaction context.

use crate::extension::ExtReply;
use crate::instr::VcmInstruction;
use crate::runtime::NiRuntime;
use dwcs::Time;
use i2o::devices::{Tid, TID_HOST};
use i2o::message::I2oFunction;
use i2o::queues::PostError;

/// Errors issuing instructions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IssueError {
    /// Inbound frame pool exhausted (NI busy; retry later).
    Busy,
    /// Messaging-unit protocol error (a bug, not load).
    Protocol(PostError),
}

/// Host-side handle to one NI's DVCM endpoint.
pub struct VcmHandle {
    target: Tid,
    next_ctx: u32,
    /// Instructions issued.
    pub issued: u64,
    /// Replies received.
    pub replies: u64,
}

impl VcmHandle {
    /// Handle addressing the DVCM extension at `target`.
    pub fn new(target: Tid) -> VcmHandle {
        VcmHandle {
            target,
            next_ctx: 1,
            issued: 0,
            replies: 0,
        }
    }

    /// Issue an instruction asynchronously; returns its transaction
    /// context for matching the reply.
    pub fn issue(&mut self, rt: &mut NiRuntime, instr: VcmInstruction) -> Result<u32, IssueError> {
        let ctx = self.next_ctx;
        let Some(mfa) = rt.mu.host_alloc() else {
            return Err(IssueError::Busy);
        };
        let frame = instr.encode(self.target, TID_HOST, ctx);
        rt.mu.host_post(mfa, frame).map_err(IssueError::Protocol)?;
        self.next_ctx = self.next_ctx.wrapping_add(1).max(1);
        self.issued += 1;
        Ok(ctx)
    }

    /// Drain one reply, if any: `(context, reply)`.
    pub fn drain_reply(&mut self, rt: &mut NiRuntime) -> Option<(u32, ExtReply)> {
        let (mfa, frame) = rt.mu.host_drain_reply()?;
        // analysis: allow(ni-no-panic) reason="invariant: host_drain_reply just handed us this MFA, so releasing it cannot fail"
        rt.mu
            .host_release_reply(mfa)
            .expect("drained reply MFA releases cleanly");
        self.replies += 1;
        let status = match frame.function {
            I2oFunction::Reply { status, .. } => status,
            _ => 0xFD, // non-reply outbound traffic (notifications)
        };
        Some((
            frame.context,
            ExtReply {
                status,
                payload: frame.payload,
            },
        ))
    }

    /// Synchronous convenience used by tests and the simulation glue:
    /// issue, let the NI service it at time `now`, drain the matching
    /// reply.
    pub fn call(&mut self, rt: &mut NiRuntime, instr: VcmInstruction, now: Time) -> Result<ExtReply, IssueError> {
        let ctx = self.issue(rt, instr)?;
        rt.service_inbound(now, usize::MAX);
        loop {
            match self.drain_reply(rt) {
                Some((c, reply)) if c == ctx => return Ok(reply),
                Some(_) => continue, // stale reply to an async issue
                None => return Err(IssueError::Busy),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media_sched::MediaSchedExt;

    fn rt() -> NiRuntime {
        let mut rt = NiRuntime::new(2); // tiny pool to exercise Busy
        rt.registry.load(Box::new(MediaSchedExt::new(4)));
        rt
    }

    #[test]
    fn busy_when_frame_pool_exhausted() {
        let mut rt = rt();
        let mut h = VcmHandle::new(rt.ext_tid);
        assert!(h.issue(&mut rt, VcmInstruction::Kick).is_ok());
        assert!(h.issue(&mut rt, VcmInstruction::Kick).is_ok());
        assert_eq!(h.issue(&mut rt, VcmInstruction::Kick), Err(IssueError::Busy));
        // Servicing frees the pool.
        rt.service_inbound(0, 8);
        while h.drain_reply(&mut rt).is_some() {}
        assert!(h.issue(&mut rt, VcmInstruction::Kick).is_ok());
    }

    #[test]
    fn contexts_match_replies() {
        let mut rt = rt();
        let mut h = VcmHandle::new(rt.ext_tid);
        let c1 = h.issue(&mut rt, VcmInstruction::Kick).unwrap();
        let c2 = h.issue(&mut rt, VcmInstruction::Kick).unwrap();
        assert_ne!(c1, c2);
        rt.service_inbound(0, 8);
        let (r1, _) = h.drain_reply(&mut rt).unwrap();
        let (r2, _) = h.drain_reply(&mut rt).unwrap();
        assert_eq!((r1, r2), (c1, c2), "replies in issue order");
        assert_eq!(h.replies, 2);
    }

    #[test]
    fn call_is_synchronous() {
        let mut rt = rt();
        let mut h = VcmHandle::new(rt.ext_tid);
        let r = h.call(&mut rt, VcmInstruction::Kick, 0).unwrap();
        assert_eq!(r.status, 0);
    }
}
