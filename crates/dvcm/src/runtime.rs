//! The NI-resident DVCM runtime.
//!
//! Runs as the NI's service loop (a `vxkit` task in the full simulation):
//! drain the inbound I2O FIFO, decode DVCM instructions, dispatch to the
//! extension registry, post replies outbound, and poll extensions for
//! their periodic work (the scheduler's dispatch loop).

use crate::extension::{ExtReply, ExtensionRegistry};
use crate::instr::VcmInstruction;
use dwcs::Time;
use i2o::bsa::BsaDevice;
use i2o::devices::{DeviceClass, DeviceTable, Tid};
use i2o::lan::LanPort;
use i2o::memory::CardMemory;
use i2o::message::{I2oFunction, MessageFrame};
use i2o::queues::MessageUnit;

/// The runtime: messaging unit + device table + card memory + device
/// classes + extensions.
pub struct NiRuntime {
    /// The I2O messaging unit (host side uses its `host_*` methods).
    pub mu: MessageUnit,
    /// Loaded extensions.
    pub registry: ExtensionRegistry,
    /// Device table for this IOP.
    pub devices: DeviceTable,
    /// TID of the DVCM extension endpoint.
    pub ext_tid: Tid,
    /// Card-local memory: BSA reads land here, frames live here, LAN
    /// sends read from here.
    pub memory: CardMemory,
    /// Attached block-storage units (one per SCSI port).
    pub disks: Vec<(Tid, BsaDevice)>,
    /// LAN ports.
    pub lans: Vec<(Tid, LanPort)>,
    /// Requests serviced.
    pub serviced: u64,
    /// Requests that failed to decode.
    pub decode_errors: u64,
    /// Replies dropped because the outbound side was exhausted.
    pub reply_overflows: u64,
}

impl NiRuntime {
    /// Runtime with an IOP messaging unit of `frames` message frames.
    pub fn new(frames: usize) -> NiRuntime {
        let mut devices = DeviceTable::new();
        let ext_tid = devices.register(DeviceClass::Private { org: crate::DVCM_ORG }, "dvcm-ext");
        NiRuntime {
            mu: MessageUnit::new(frames, frames),
            registry: ExtensionRegistry::new(),
            devices,
            ext_tid,
            memory: CardMemory::new(512 * 1024),
            disks: Vec::new(),
            lans: Vec::new(),
            serviced: 0,
            decode_errors: 0,
            reply_overflows: 0,
        }
    }

    /// Attach a block-storage unit with the given disk image (one of the
    /// card's SCSI ports). Returns its TID.
    pub fn attach_disk(&mut self, image: &[u8]) -> Tid {
        let port = self.disks.len() as u8;
        let tid = self
            .devices
            .register(DeviceClass::BlockStorage { port }, format!("scsi{port}"));
        self.disks.push((tid, BsaDevice::with_image(image)));
        tid
    }

    /// Attach a LAN port. Returns its TID.
    pub fn attach_lan(&mut self) -> Tid {
        let port = self.lans.len() as u8;
        let tid = self
            .devices
            .register(DeviceClass::LanPort { port }, format!("eth{port}"));
        self.lans.push((tid, LanPort::new(256)));
        tid
    }

    /// Mutable access to an attached LAN port by TID.
    pub fn lan_mut(&mut self, tid: Tid) -> Option<&mut LanPort> {
        self.lans.iter_mut().find(|(t, _)| *t == tid).map(|(_, p)| p)
    }

    /// Mutable access to an attached disk by TID.
    pub fn disk_mut(&mut self, tid: Tid) -> Option<&mut BsaDevice> {
        self.disks.iter_mut().find(|(t, _)| *t == tid).map(|(_, d)| d)
    }

    /// Service up to `budget` inbound requests at NI time `now`.
    /// Returns the number serviced.
    pub fn service_inbound(&mut self, now: Time, budget: usize) -> usize {
        let mut n = 0;
        while n < budget {
            let Some((mfa, frame)) = self.mu.iop_next_request() else {
                break;
            };
            // Route by function class, then by target TID.
            match frame.function {
                I2oFunction::Private { .. } => {
                    let reply = match VcmInstruction::decode(&frame) {
                        Ok(instr) => self.registry.dispatch(instr, now),
                        Err(_) => {
                            self.decode_errors += 1;
                            ExtReply::err(0xFE)
                        }
                    };
                    self.post_reply(&frame, reply);
                }
                I2oFunction::BsaBlockRead | I2oFunction::BsaBlockWrite => {
                    let reply_frame = match self.disks.iter_mut().find(|(t, _)| *t == frame.target) {
                        Some((_, dev)) => dev.handle(&frame, &mut self.memory),
                        None => {
                            self.decode_errors += 1;
                            frame.reply(0xFD, vec![]) // no such device
                        }
                    };
                    self.post_raw_reply(reply_frame);
                }
                I2oFunction::LanPacketSend => {
                    let reply_frame = match self.lans.iter_mut().find(|(t, _)| *t == frame.target) {
                        Some((_, port)) => port.handle(&frame, &mut self.memory),
                        None => {
                            self.decode_errors += 1;
                            frame.reply(0xFD, vec![])
                        }
                    };
                    self.post_raw_reply(reply_frame);
                }
                I2oFunction::UtilNop => {
                    self.post_reply(&frame, ExtReply::ok());
                }
                _ => {
                    self.decode_errors += 1;
                    self.post_reply(&frame, ExtReply::err(0xFE));
                }
            }
            // analysis: allow(ni-no-panic) reason="invariant: the MFA was consumed two lines up, and the MU frees consumed request MFAs unconditionally"
            self.mu
                .iop_release_request(mfa)
                .expect("consumed request MFA releases cleanly");
            self.serviced += 1;
            n += 1;
        }
        n
    }

    fn post_raw_reply(&mut self, frame: MessageFrame) {
        let Some(mfa) = self.mu.iop_alloc_reply() else {
            self.reply_overflows += 1;
            return;
        };
        if self.mu.iop_post_reply(mfa, frame).is_err() {
            self.reply_overflows += 1;
        }
    }

    fn post_reply(&mut self, request: &MessageFrame, reply: ExtReply) {
        let Some(mfa) = self.mu.iop_alloc_reply() else {
            self.reply_overflows += 1;
            return;
        };
        let frame = request.reply(reply.status, reply.payload);
        if self.mu.iop_post_reply(mfa, frame).is_err() {
            self.reply_overflows += 1;
        }
    }

    /// Poll extensions once (the NI task loop body).
    pub fn poll_extensions(&mut self, now: Time) -> u32 {
        self.registry.poll_all(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::VcmHandle;
    use crate::instr::StreamSpec;
    use crate::media_sched::MediaSchedExt;
    use dwcs::types::MILLISECOND;
    use dwcs::{FrameKind, StreamId};

    fn rt_with_sched() -> NiRuntime {
        let mut rt = NiRuntime::new(16);
        rt.registry.load(Box::new(MediaSchedExt::new(8)));
        rt
    }

    #[test]
    fn end_to_end_instruction_flow() {
        let mut rt = rt_with_sched();
        let mut host = VcmHandle::new(rt.ext_tid);

        let reply = host
            .call(
                &mut rt,
                VcmInstruction::OpenStream(StreamSpec {
                    period: 10 * MILLISECOND,
                    loss_num: 1,
                    loss_den: 2,
                    droppable: true,
                }),
                0,
            )
            .expect("open succeeds");
        assert_eq!(reply.status, 0);
        let sid = StreamId(reply.payload[0]);

        let r = host
            .call(
                &mut rt,
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr: 0xBEEF,
                    len: 999,
                    kind: FrameKind::I,
                },
                0,
            )
            .unwrap();
        assert_eq!(r.status, 0);
        assert_eq!(rt.serviced, 2);
        assert_eq!(rt.poll_extensions(MILLISECOND), 1, "frame dispatched");
    }

    #[test]
    fn unroutable_frames_get_error_replies_and_nop_succeeds() {
        let mut rt = rt_with_sched();
        // UtilNop: clean success (liveness probe).
        let mfa = rt.mu.host_alloc().unwrap();
        let nop = MessageFrame::new(
            i2o::message::I2oFunction::UtilNop,
            rt.ext_tid,
            i2o::devices::TID_HOST,
            41,
            vec![],
        );
        rt.mu.host_post(mfa, nop).unwrap();
        // Executive function with no handler: error reply.
        let mfa = rt.mu.host_alloc().unwrap();
        let junk = MessageFrame::new(
            i2o::message::I2oFunction::ExecSysQuiesce,
            rt.ext_tid,
            i2o::devices::TID_HOST,
            42,
            vec![],
        );
        rt.mu.host_post(mfa, junk).unwrap();
        assert_eq!(rt.service_inbound(0, 8), 2);
        assert_eq!(rt.decode_errors, 1);
        let (m, reply) = rt.mu.host_drain_reply().unwrap();
        rt.mu.host_release_reply(m).unwrap();
        match reply.function {
            i2o::message::I2oFunction::Reply { status, .. } => assert_eq!(status, 0, "nop ok"),
            other => panic!("expected reply, got {other:?}"),
        }
        let (_, reply) = rt.mu.host_drain_reply().unwrap();
        match reply.function {
            i2o::message::I2oFunction::Reply { status, .. } => assert_eq!(status, 0xFE),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn bsa_and_lan_route_by_tid() {
        let mut rt = rt_with_sched();
        let image: Vec<u8> = (0..2048u32).map(|i| (i * 7 % 256) as u8).collect();
        let disk = rt.attach_disk(&image);
        let lan = rt.attach_lan();

        // Host: read 2 blocks from LBA 1 into card memory at 0x4000.
        let mfa = rt.mu.host_alloc().unwrap();
        rt.mu
            .host_post(
                mfa,
                i2o::bsa::read_request(disk, i2o::devices::TID_HOST, 1, 1, 2, 0x4000),
            )
            .unwrap();
        // Then transmit 700 of those bytes from 0x4000.
        let mfa = rt.mu.host_alloc().unwrap();
        rt.mu
            .host_post(mfa, i2o::lan::send_request(lan, i2o::devices::TID_HOST, 2, 0x4000, 700))
            .unwrap();
        assert_eq!(rt.service_inbound(0, 8), 2);
        assert_eq!(rt.decode_errors, 0);

        let port = rt.lan_mut(lan).unwrap();
        let tx = port.drain();
        assert_eq!(tx.len(), 1);
        assert_eq!(&tx[0].bytes[..], &image[512..512 + 700], "wire bytes = disk bytes");

        // Unknown TID: error reply, counted.
        let mfa = rt.mu.host_alloc().unwrap();
        rt.mu
            .host_post(
                mfa,
                i2o::bsa::read_request(i2o::devices::Tid(0x7FF), i2o::devices::TID_HOST, 3, 0, 1, 0),
            )
            .unwrap();
        rt.service_inbound(0, 8);
        assert_eq!(rt.decode_errors, 1);
    }

    #[test]
    fn budget_bounds_servicing() {
        let mut rt = rt_with_sched();
        let mut host = VcmHandle::new(rt.ext_tid);
        for _ in 0..5 {
            host.issue(&mut rt, VcmInstruction::Kick).unwrap();
        }
        assert_eq!(rt.service_inbound(0, 2), 2);
        assert_eq!(rt.mu.inbound_backlog(), 3);
        assert_eq!(rt.service_inbound(0, 8), 3);
    }
}
