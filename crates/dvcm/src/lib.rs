//! # dvcm — the Distributed Virtual Communication Machine
//!
//! The paper's architectural frame (§2): a cluster-wide *virtual
//! communication machine* executing "close to the network" on NI
//! co-processors, whose services appear to host applications as
//! **communication instructions**, and which applications may extend with
//! new instructions at run time — "extended and specialized much like
//! extensible OS kernels … like SPIN and Exokernel".
//!
//! Three function sets, mirrored here:
//!
//! 1. **The DVCM API** ([`instr`], [`host::VcmHandle`]) — the host-side
//!    facade. Instructions encode into I2O *private-class* messages and
//!    travel through the messaging unit exactly like any other I2O traffic
//!    (the paper's implementation is "device drivers interacting with the
//!    I2O boards via PCI interfaces").
//! 2. **Low-level NI runtime** ([`runtime::NiRuntime`]) — drains the
//!    inbound FIFO, routes instructions to extension modules, posts
//!    replies; runs as a task on the `vxkit` kernel.
//! 3. **Extensions** ([`extension`]) — run-time-registered modules. The
//!    flagship is [`media_sched::MediaSchedExt`]: the DWCS frame scheduler
//!    as a DVCM extension, the paper's §3 contribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extension;
pub mod host;
pub mod instr;
pub mod media_sched;
pub mod runtime;

pub use extension::{ExtReply, ExtensionModule, ExtensionRegistry};
pub use host::VcmHandle;
pub use instr::{StreamSpec, VcmInstruction};
pub use media_sched::{DispatchRecord, MediaSchedExt};
pub use runtime::NiRuntime;

/// The private-class organisation id DVCM traffic uses (ASCII "GT" —
/// Georgia Tech).
pub const DVCM_ORG: u16 = 0x4754;
