//! DVCM communication instructions and their I2O encoding.
//!
//! Instructions are what host applications see of the DVCM ("available to
//! nodes' application programs as communication instructions", §1). On the
//! wire each instruction is an I2O private-class message frame whose
//! extension-function word selects the instruction and whose payload words
//! carry the operands — exactly how a memory-mapped instruction interface
//! would marshal them.

use dwcs::{FrameKind, StreamId, Time};
use i2o::message::{I2oFunction, MessageFrame};
use i2o::Tid;

/// QoS operands for opening a stream (the DWCS attributes of §3.1.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StreamSpec {
    /// Deadline spacing `T` in nanoseconds.
    pub period: Time,
    /// Loss numerator `x`.
    pub loss_num: u32,
    /// Loss denominator `y`.
    pub loss_den: u32,
    /// Whether late packets may be dropped (1) or must be sent late (0).
    pub droppable: bool,
}

/// The DVCM instruction set used by the media-streaming system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VcmInstruction {
    /// Register a stream with the NI-resident scheduler.
    OpenStream(StreamSpec),
    /// Tear a stream down.
    CloseStream(StreamId),
    /// Hand a frame (already resident in NI memory at `addr`) to the
    /// scheduler's per-stream ring.
    EnqueueFrame {
        /// Target stream.
        stream: StreamId,
        /// NI-local address of the single frame copy.
        addr: u64,
        /// Frame length in bytes.
        len: u32,
        /// MPEG picture kind.
        kind: FrameKind,
    },
    /// Read a stream's service statistics.
    QueryStats(StreamId),
    /// Run scheduler housekeeping (used by hosts that drive dispatch
    /// explicitly rather than letting the NI task free-run).
    Kick,
}

/// Extension-function codes (the `func` half of the private-class word).
mod func {
    pub const OPEN: u16 = 1;
    pub const CLOSE: u16 = 2;
    pub const ENQUEUE: u16 = 3;
    pub const STATS: u16 = 4;
    pub const KICK: u16 = 5;
}

/// Errors decoding an instruction from a frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstrError {
    /// Not a DVCM private message.
    NotDvcm,
    /// Unknown extension function.
    UnknownFunc(u16),
    /// Payload malformed for the function.
    BadPayload,
}

impl VcmInstruction {
    /// Encode into an I2O private-class frame.
    pub fn encode(&self, target: Tid, initiator: Tid, context: u32) -> MessageFrame {
        let (f, payload) = match *self {
            VcmInstruction::OpenStream(spec) => (
                func::OPEN,
                vec![
                    (spec.period >> 32) as u32,
                    spec.period as u32,
                    spec.loss_num,
                    spec.loss_den,
                    u32::from(spec.droppable),
                ],
            ),
            VcmInstruction::CloseStream(sid) => (func::CLOSE, vec![sid.0]),
            VcmInstruction::EnqueueFrame {
                stream,
                addr,
                len,
                kind,
            } => (
                func::ENQUEUE,
                vec![stream.0, (addr >> 32) as u32, addr as u32, len, kind_code(kind)],
            ),
            VcmInstruction::QueryStats(sid) => (func::STATS, vec![sid.0]),
            VcmInstruction::Kick => (func::KICK, vec![]),
        };
        MessageFrame::new(
            I2oFunction::Private {
                org: crate::DVCM_ORG,
                func: f,
            },
            target,
            initiator,
            context,
            payload,
        )
    }

    /// Decode from an I2O frame.
    pub fn decode(frame: &MessageFrame) -> Result<VcmInstruction, InstrError> {
        let I2oFunction::Private { org, func: f } = frame.function else {
            return Err(InstrError::NotDvcm);
        };
        if org != crate::DVCM_ORG {
            return Err(InstrError::NotDvcm);
        }
        let p = &frame.payload;
        let word = |i: usize| p.get(i).copied().ok_or(InstrError::BadPayload);
        Ok(match f {
            func::OPEN => VcmInstruction::OpenStream(StreamSpec {
                period: (u64::from(word(0)?) << 32) | u64::from(word(1)?),
                loss_num: word(2)?,
                loss_den: word(3)?,
                droppable: word(4)? != 0,
            }),
            func::CLOSE => VcmInstruction::CloseStream(StreamId(word(0)?)),
            func::ENQUEUE => VcmInstruction::EnqueueFrame {
                stream: StreamId(word(0)?),
                addr: (u64::from(word(1)?) << 32) | u64::from(word(2)?),
                len: word(3)?,
                kind: kind_from(word(4)?).ok_or(InstrError::BadPayload)?,
            },
            func::STATS => VcmInstruction::QueryStats(StreamId(word(0)?)),
            func::KICK => VcmInstruction::Kick,
            other => return Err(InstrError::UnknownFunc(other)),
        })
    }
}

fn kind_code(k: FrameKind) -> u32 {
    match k {
        FrameKind::I => 1,
        FrameKind::P => 2,
        FrameKind::B => 3,
        FrameKind::Audio => 4,
        FrameKind::Other => 0,
    }
}

fn kind_from(v: u32) -> Option<FrameKind> {
    Some(match v {
        0 => FrameKind::Other,
        1 => FrameKind::I,
        2 => FrameKind::P,
        3 => FrameKind::B,
        4 => FrameKind::Audio,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: VcmInstruction) {
        let f = i.encode(Tid(5), Tid(1), 0xC0FFEE);
        let d = VcmInstruction::decode(&f).unwrap();
        assert_eq!(d, i);
        assert_eq!(f.context, 0xC0FFEE);
    }

    #[test]
    fn all_instructions_round_trip() {
        round_trip(VcmInstruction::OpenStream(StreamSpec {
            period: 33_366_700,
            loss_num: 2,
            loss_den: 9,
            droppable: true,
        }));
        round_trip(VcmInstruction::CloseStream(StreamId(3)));
        round_trip(VcmInstruction::EnqueueFrame {
            stream: StreamId(1),
            addr: 0xA000_1234_5678,
            len: 4_321,
            kind: FrameKind::I,
        });
        round_trip(VcmInstruction::QueryStats(StreamId(0)));
        round_trip(VcmInstruction::Kick);
    }

    #[test]
    fn rejects_foreign_frames() {
        let f = MessageFrame::new(I2oFunction::UtilNop, Tid(5), Tid(1), 0, vec![]);
        assert_eq!(VcmInstruction::decode(&f), Err(InstrError::NotDvcm));
        let f = MessageFrame::new(I2oFunction::Private { org: 0x1111, func: 1 }, Tid(5), Tid(1), 0, vec![]);
        assert_eq!(VcmInstruction::decode(&f), Err(InstrError::NotDvcm));
    }

    #[test]
    fn rejects_malformed_payloads() {
        let f = MessageFrame::new(
            I2oFunction::Private {
                org: crate::DVCM_ORG,
                func: 1,
            },
            Tid(5),
            Tid(1),
            0,
            vec![1, 2], // OPEN needs 5 words
        );
        assert_eq!(VcmInstruction::decode(&f), Err(InstrError::BadPayload));
        let f = MessageFrame::new(
            I2oFunction::Private {
                org: crate::DVCM_ORG,
                func: 99,
            },
            Tid(5),
            Tid(1),
            0,
            vec![],
        );
        assert_eq!(VcmInstruction::decode(&f), Err(InstrError::UnknownFunc(99)));
    }

    #[test]
    fn sixty_four_bit_fields_survive() {
        round_trip(VcmInstruction::OpenStream(StreamSpec {
            period: u64::MAX - 12345,
            loss_num: u32::MAX,
            loss_den: u32::MAX,
            droppable: false,
        }));
        round_trip(VcmInstruction::EnqueueFrame {
            stream: StreamId(u32::MAX),
            addr: u64::MAX,
            len: u32::MAX,
            kind: FrameKind::B,
        });
    }
}
