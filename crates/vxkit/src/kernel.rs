//! The wind-style kernel: 256-priority preemptive scheduler.
//!
//! Execution model: the embedding (an `hwsim` CPU model, or a bare test
//! loop) repeatedly calls [`Kernel::step`], which polls the
//! highest-priority ready task once and reports the cycles consumed; the
//! embedding converts cycles to simulated time and calls
//! [`Kernel::tick_announce`] at every tick boundary (VxWorks `sysClkRate`,
//! 60 Hz by default). Device interrupts are injected through the ISR-level
//! entry points ([`Kernel::isr_sem_give`], [`Kernel::isr_msg_send`]), which
//! may ready a higher-priority task — the next `step` then context-switches
//! exactly like `windExit` would.
//!
//! Blocking is Mesa-style: a task that pends is readied when the object is
//! signalled and *re-attempts* its operation; a higher-priority task may
//! win the race, in which case the waiter re-pends. This matches the
//! retry discipline of real condition-style synchronisation and keeps the
//! kernel single-owner (no token teleportation).

use crate::sync::{MsgQueue, QId, SemId, SemKind, Semaphore};
use crate::task::{BlockOn, StepResult, TaskBody, TaskCtx, TaskId, TaskState};
use crate::timer::{IsrAction, Watchdog, WatchdogId};
use std::collections::VecDeque;

/// Number of priority levels (VxWorks: 0 = highest, 255 = lowest).
pub const PRIORITY_LEVELS: usize = 256;

/// Kernel configuration.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// CPU clock (66 MHz on the i960RD I2O card).
    pub cpu_hz: u64,
    /// System clock rate (`sysClkRateGet`, default 60 Hz).
    pub tick_hz: u64,
    /// Cycles charged per context switch (register save/restore + queue
    /// manipulation; small on the shallow-pipeline i960, see §1 of the
    /// paper on why host-CPU switches are *much* worse).
    pub context_switch_cycles: u64,
    /// Round-robin time slice in ticks for equal-priority tasks
    /// (`kernelTimeSlice`); `None` = FIFO within priority.
    pub round_robin_ticks: Option<u64>,
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            cpu_hz: 66_000_000,
            tick_hz: 60,
            context_switch_cycles: 250,
            round_robin_ticks: Some(1),
        }
    }
}

/// What one [`Kernel::step`] did.
#[derive(Debug, PartialEq, Eq)]
pub enum KernelEvent {
    /// A task ran for `cycles` (including `switch_cycles` if a context
    /// switch occurred).
    Ran {
        /// The task that ran.
        task: TaskId,
        /// Total cycles consumed, context switch included.
        cycles: u64,
        /// Whether a context switch preceded the poll.
        switched: bool,
    },
    /// No task is ready; the embedding should advance time to the next
    /// tick (or next external event) and call [`Kernel::tick_announce`].
    Idle,
}

/// Where a pended task waits (for timeout-driven removal).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PendingOn {
    Sem(SemId),
    Recv(QId),
    Send(QId),
}

struct Tcb {
    name: String,
    base_priority: u8,
    /// Effective priority (≤ base under priority inheritance).
    priority: u8,
    state: TaskState,
    delayed_until: Option<u64>,
    /// Tick at which a pend times out (`semTake(sem, ticks)` semantics).
    timeout_at: Option<u64>,
    /// Object the task pends on (timeout removal needs to find it).
    pending_on: Option<PendingOn>,
    /// Set when the last pend ended by timeout rather than signal —
    /// bodies observe it through [`TaskCtx::take_timed_out`].
    timed_out: bool,
    /// Value a blocked `msgQSend` is waiting to deliver.
    pending_send: Option<(QId, u64)>,
    /// Cycles consumed by this task's body (excl. switches).
    cpu_cycles: u64,
    /// Times this task was readied.
    wakeups: u64,
}

struct ReadyQueue {
    levels: Vec<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn new() -> ReadyQueue {
        ReadyQueue {
            levels: (0..PRIORITY_LEVELS).map(|_| VecDeque::new()).collect(),
        }
    }

    fn push_back(&mut self, prio: u8, t: TaskId) {
        self.levels[prio as usize].push_back(t);
    }

    fn push_front(&mut self, prio: u8, t: TaskId) {
        self.levels[prio as usize].push_front(t);
    }

    fn best(&self) -> Option<(u8, TaskId)> {
        self.levels
            .iter()
            .enumerate()
            .find_map(|(p, q)| q.front().map(|&t| (p as u8, t)))
    }

    fn remove(&mut self, prio: u8, t: TaskId) {
        self.levels[prio as usize].retain(|&x| x != t);
    }

    fn rotate(&mut self, prio: u8) {
        let q = &mut self.levels[prio as usize];
        if q.len() > 1 {
            if let Some(front) = q.pop_front() {
                q.push_back(front);
            }
        }
    }

    fn peers(&self, prio: u8) -> usize {
        self.levels[prio as usize].len()
    }
}

/// The kernel.
pub struct Kernel {
    cfg: KernelConfig,
    tcbs: Vec<Tcb>,
    bodies: Vec<Option<Box<dyn TaskBody>>>,
    ready: ReadyQueue,
    sems: Vec<Semaphore>,
    queues: Vec<MsgQueue>,
    watchdogs: Vec<Watchdog>,
    tick: u64,
    current: Option<TaskId>,
    slice_start_tick: u64,
    total_cycles: u64,
    idle_polls: u64,
    switches: u64,
}

impl Kernel {
    /// A kernel with the given configuration and no tasks.
    pub fn new(cfg: KernelConfig) -> Kernel {
        Kernel {
            cfg,
            tcbs: Vec::new(),
            bodies: Vec::new(),
            ready: ReadyQueue::new(),
            sems: Vec::new(),
            queues: Vec::new(),
            watchdogs: Vec::new(),
            tick: 0,
            current: None,
            slice_start_tick: 0,
            total_cycles: 0,
            idle_polls: 0,
            switches: 0,
        }
    }

    /// `taskSpawn`: create a ready task at `priority` (0 = highest).
    pub fn spawn(&mut self, priority: u8, body: Box<dyn TaskBody>) -> TaskId {
        let id = TaskId(self.tcbs.len() as u32);
        self.tcbs.push(Tcb {
            name: body.name().to_string(),
            base_priority: priority,
            priority,
            state: TaskState::Ready,
            delayed_until: None,
            timeout_at: None,
            pending_on: None,
            timed_out: false,
            pending_send: None,
            cpu_cycles: 0,
            wakeups: 0,
        });
        self.bodies.push(Some(body));
        self.ready.push_back(priority, id);
        id
    }

    /// `semBCreate` / `semCCreate` / `semMCreate`.
    pub fn create_sem(&mut self, kind: SemKind, initial: u32) -> SemId {
        self.sems.push(Semaphore::new(kind, initial));
        SemId((self.sems.len() - 1) as u32)
    }

    /// `msgQCreate`.
    pub fn create_queue(&mut self, capacity: usize) -> QId {
        self.queues.push(MsgQueue::new(capacity));
        QId((self.queues.len() - 1) as u32)
    }

    /// `wdCreate`.
    pub fn create_watchdog(&mut self) -> WatchdogId {
        self.watchdogs.push(Watchdog::disarmed());
        WatchdogId((self.watchdogs.len() - 1) as u32)
    }

    /// `wdStart` from task or ISR level.
    pub fn wd_start(&mut self, wd: WatchdogId, delay_ticks: u64, action: IsrAction) {
        let dog = &mut self.watchdogs[wd.0 as usize];
        dog.fire_at = Some(self.tick + delay_ticks.max(1));
        dog.action = action;
    }

    /// Arm a periodic watchdog.
    pub fn wd_start_periodic(&mut self, wd: WatchdogId, period_ticks: u64, action: IsrAction) {
        let period = period_ticks.max(1);
        let dog = &mut self.watchdogs[wd.0 as usize];
        dog.fire_at = Some(self.tick + period);
        dog.action = action;
        dog.period = Some(period);
    }

    /// `wdCancel`.
    pub fn wd_cancel(&mut self, wd: WatchdogId) {
        self.watchdogs[wd.0 as usize] = Watchdog::disarmed();
    }

    /// ISR-level `semGive` (device interrupt, or another CPU's doorbell).
    pub fn isr_sem_give(&mut self, sem: SemId) {
        if let Some(waiter) = self.sems[sem.0 as usize].give(None) {
            self.make_ready(waiter);
        }
        self.apply_inheritance(sem);
    }

    /// ISR-level `msgQSend(NO_WAIT)`.
    pub fn isr_msg_send(&mut self, q: QId, msg: u64) -> bool {
        let ok = self.queues[q.0 as usize].send_nowait(msg);
        if ok {
            if let Some(waiter) = self.queues[q.0 as usize].recv_waiters.pop() {
                self.make_ready(waiter);
            }
        }
        ok
    }

    /// Drain a message from a queue at ISR/embedding level.
    pub fn isr_msg_recv(&mut self, q: QId) -> Option<u64> {
        let msg = self.queues[q.0 as usize].recv_nowait();
        if msg.is_some() {
            // Space freed: wake a blocked sender.
            if let Some((task, _)) = self.queues[q.0 as usize].send_waiters.first().copied() {
                self.queues[q.0 as usize].send_waiters.remove(0);
                self.make_ready(task);
            }
        }
        msg
    }

    /// Execute one poll of the best ready task.
    pub fn step(&mut self) -> KernelEvent {
        let Some((prio, task)) = self.ready.best() else {
            self.idle_polls += 1;
            return KernelEvent::Idle;
        };
        let switched = self.current != Some(task);
        let mut cycles = 0;
        if switched {
            cycles += self.cfg.context_switch_cycles;
            self.switches += 1;
            self.current = Some(task);
            self.slice_start_tick = self.tick;
        }

        // Poll the body through a context façade that borrows the kernel
        // around the body (the body itself is taken out during the call).
        // analysis: allow(ni-no-panic) reason="invariant: every spawned task's body is re-seated after step(); a bare slot here is kernel corruption, not a runtime condition"
        let mut body = self.bodies[task.index()].take().expect("ready task has a body");
        let result = {
            let mut ctx = Ctx { k: self, me: task };
            body.step(&mut ctx)
        };
        self.bodies[task.index()] = Some(body);

        let body_cycles = match &result {
            StepResult::Ran { cycles }
            | StepResult::Yield { cycles }
            | StepResult::Block { cycles, .. }
            | StepResult::Exit { cycles } => *cycles,
        };
        cycles += body_cycles;
        self.tcbs[task.index()].cpu_cycles += body_cycles;
        self.total_cycles += cycles;

        match result {
            StepResult::Ran { .. } => {}
            StepResult::Yield { .. } => {
                self.ready.rotate(prio);
                self.current = None;
            }
            StepResult::Block { on, .. } => self.block(task, prio, on),
            StepResult::Exit { .. } => {
                self.ready.remove(prio, task);
                self.tcbs[task.index()].state = TaskState::Done;
                self.bodies[task.index()] = None;
                self.current = None;
            }
        }
        KernelEvent::Ran { task, cycles, switched }
    }

    fn block(&mut self, task: TaskId, prio: u8, on: BlockOn) {
        // Leaving the ready queue in all cases below.
        let pend = |k: &mut Kernel| {
            k.ready.remove(prio, task);
            k.tcbs[task.index()].state = TaskState::Pended;
            k.current = None;
        };
        match on {
            BlockOn::Delay(n) => {
                if n == 0 {
                    self.ready.rotate(prio);
                    self.current = None;
                    return;
                }
                self.ready.remove(prio, task);
                self.tcbs[task.index()].state = TaskState::Delayed;
                self.tcbs[task.index()].delayed_until = Some(self.tick + n);
                self.current = None;
            }
            BlockOn::SemTake(sem, timeout) => {
                // Mesa: if it became available since the body checked,
                // stay ready and let the body retry.
                if self.sems[sem.0 as usize].count > 0 {
                    return;
                }
                pend(self);
                let p = self.tcbs[task.index()].priority;
                self.sems[sem.0 as usize].waiters.push(task, p);
                self.arm_timeout(task, PendingOn::Sem(sem), timeout);
                self.boost_owner(sem, p);
            }
            BlockOn::MsgRecv(q, timeout) => {
                if !self.queues[q.0 as usize].is_empty() {
                    return;
                }
                pend(self);
                let p = self.tcbs[task.index()].priority;
                self.queues[q.0 as usize].recv_waiters.push(task, p);
                self.arm_timeout(task, PendingOn::Recv(q), timeout);
            }
            BlockOn::MsgSend(q, timeout) => {
                let _ = timeout; // armed below once actually pended
                                 // The value to send rides in pending_send; delivered by
                                 // the kernel when space appears.
                let Some((_, msg)) = self.tcbs[task.index()].pending_send else {
                    return; // body forgot to stage the message: treat as ready
                };
                if self.queues[q.0 as usize].send_nowait(msg) {
                    self.tcbs[task.index()].pending_send = None;
                    if let Some(w) = self.queues[q.0 as usize].recv_waiters.pop() {
                        self.make_ready(w);
                    }
                    return;
                }
                pend(self);
                self.queues[q.0 as usize].send_waiters.push((task, msg));
                self.arm_timeout(task, PendingOn::Send(q), timeout);
            }
        }
    }

    fn arm_timeout(&mut self, task: TaskId, on: PendingOn, timeout: Option<u64>) {
        let tcb = &mut self.tcbs[task.index()];
        tcb.pending_on = Some(on);
        tcb.timeout_at = timeout.map(|t| self.tick + t.max(1));
    }

    /// Priority inheritance: boost an inversion-safe mutex owner to the
    /// best waiter priority.
    fn boost_owner(&mut self, sem: SemId, waiter_prio: u8) {
        let s = &self.sems[sem.0 as usize];
        if let SemKind::Mutex { inversion_safe: true } = s.kind {
            if let Some(owner) = s.owner {
                let tcb = &mut self.tcbs[owner.index()];
                if waiter_prio < tcb.priority {
                    let old = tcb.priority;
                    tcb.priority = waiter_prio;
                    if tcb.state == TaskState::Ready {
                        self.ready.remove(old, owner);
                        self.ready.push_front(waiter_prio, owner);
                    }
                }
            }
        }
    }

    /// Restore an owner's base priority when an inversion-safe mutex is no
    /// longer held by it.
    fn apply_inheritance(&mut self, sem: SemId) {
        let s = &self.sems[sem.0 as usize];
        if let SemKind::Mutex { inversion_safe: true } = s.kind {
            if s.owner.is_none() {
                // Whoever gave it may have been boosted; restore every
                // boosted live task that no longer owns this mutex. (One
                // mutex per boost in our models; a full implementation
                // would track boost chains.)
                for (i, tcb) in self.tcbs.iter_mut().enumerate() {
                    if tcb.priority < tcb.base_priority && tcb.state != TaskState::Done {
                        let still_owner = self.sems.iter().any(|m| {
                            matches!(m.kind, SemKind::Mutex { inversion_safe: true })
                                && m.owner == Some(TaskId(i as u32))
                                && !m.waiters.is_empty()
                        });
                        if !still_owner {
                            let old = tcb.priority;
                            let base = tcb.base_priority;
                            tcb.priority = base;
                            if tcb.state == TaskState::Ready {
                                self.ready.remove(old, TaskId(i as u32));
                                self.ready.push_back(base, TaskId(i as u32));
                            }
                        }
                    }
                }
            }
        }
    }

    fn make_ready(&mut self, task: TaskId) {
        let tcb = &mut self.tcbs[task.index()];
        if matches!(tcb.state, TaskState::Pended | TaskState::Delayed) {
            tcb.state = TaskState::Ready;
            tcb.delayed_until = None;
            tcb.timeout_at = None;
            tcb.pending_on = None;
            tcb.wakeups += 1;
            self.ready.push_back(tcb.priority, task);
        }
    }

    /// Whether the task's last pend ended in a timeout; reading clears it
    /// (`errno == S_objLib_OBJ_TIMEOUT` semantics).
    pub fn take_timed_out(&mut self, task: TaskId) -> bool {
        core::mem::take(&mut self.tcbs[task.index()].timed_out)
    }

    /// Announce one system clock tick: wake expired delays, fire
    /// watchdogs, rotate round-robin slices.
    pub fn tick_announce(&mut self) {
        self.tick += 1;

        // Delayed tasks.
        let due: Vec<TaskId> = self
            .tcbs
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == TaskState::Delayed && t.delayed_until.is_some_and(|d| d <= self.tick))
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        for t in due {
            self.make_ready(t);
        }

        // Pend timeouts: remove from the wait queue, flag, ready.
        let expired: Vec<(TaskId, PendingOn)> = self
            .tcbs
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                (t.state == TaskState::Pended && t.timeout_at.is_some_and(|d| d <= self.tick))
                    .then_some((TaskId(i as u32), t.pending_on))
            })
            .filter_map(|(t, on)| on.map(|o| (t, o)))
            .collect();
        for (t, on) in expired {
            match on {
                PendingOn::Sem(s) => {
                    self.sems[s.0 as usize].waiters.remove(t);
                }
                PendingOn::Recv(q) => {
                    self.queues[q.0 as usize].recv_waiters.remove(t);
                }
                PendingOn::Send(q) => {
                    self.queues[q.0 as usize].send_waiters.retain(|&(w, _)| w != t);
                    self.tcbs[t.index()].pending_send = None;
                }
            }
            self.tcbs[t.index()].timed_out = true;
            self.make_ready(t);
        }

        // Watchdogs.
        for i in 0..self.watchdogs.len() {
            let fire = self.watchdogs[i].fire_at.is_some_and(|f| f <= self.tick);
            if fire {
                let action = self.watchdogs[i].action;
                match self.watchdogs[i].period {
                    Some(p) => self.watchdogs[i].fire_at = Some(self.tick + p),
                    None => self.watchdogs[i].fire_at = None,
                }
                match action {
                    IsrAction::SemGive(s) => self.isr_sem_give(s),
                    IsrAction::MsgSend(q, m) => {
                        let _ = self.isr_msg_send(q, m);
                    }
                    IsrAction::None => {}
                }
            }
        }

        // Round-robin among equal priorities.
        if let Some(slice) = self.cfg.round_robin_ticks {
            if let Some(cur) = self.current {
                let prio = self.tcbs[cur.index()].priority;
                if self.tick.saturating_sub(self.slice_start_tick) >= slice && self.ready.peers(prio) > 1 {
                    self.ready.rotate(prio);
                    self.current = None;
                }
            }
        }
    }

    /// Current tick count (`tickGet`).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Total cycles consumed (bodies + switches).
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Context switches performed.
    pub fn context_switches(&self) -> u64 {
        self.switches
    }

    /// Cycles consumed by one task's body.
    pub fn task_cycles(&self, t: TaskId) -> u64 {
        self.tcbs[t.index()].cpu_cycles
    }

    /// A task's state.
    pub fn task_state(&self, t: TaskId) -> TaskState {
        self.tcbs[t.index()].state
    }

    /// A task's current (possibly boosted) priority.
    pub fn task_priority(&self, t: TaskId) -> u8 {
        self.tcbs[t.index()].priority
    }

    /// A task's name.
    pub fn task_name(&self, t: TaskId) -> &str {
        &self.tcbs[t.index()].name
    }

    /// Direct queue access for embeddings (depth checks, draining).
    pub fn queue(&mut self, q: QId) -> &mut MsgQueue {
        &mut self.queues[q.0 as usize]
    }

    /// The configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Stage a message for a blocking send from inside a task body, then
    /// return `Block(MsgSend(..))` from the step.
    pub fn stage_send(&mut self, task: TaskId, q: QId, msg: u64) {
        self.tcbs[task.index()].pending_send = Some((q, msg));
    }
}

/// Task-level context handed to bodies during a step.
struct Ctx<'a> {
    k: &'a mut Kernel,
    me: TaskId,
}

impl TaskCtx for Ctx<'_> {
    fn sem_give(&mut self, sem: SemId) {
        self.k.isr_sem_give(sem);
    }

    fn msg_send_nowait(&mut self, q: QId, msg: u64) -> bool {
        self.k.isr_msg_send(q, msg)
    }

    fn msg_recv_nowait(&mut self, q: QId) -> Option<u64> {
        self.k.isr_msg_recv(q)
    }

    fn sem_take_nowait(&mut self, sem: SemId) -> bool {
        self.k.sems[sem.0 as usize].try_take(self.me)
    }

    fn tick_get(&self) -> u64 {
        self.k.tick
    }

    fn task_self(&self) -> TaskId {
        self.me
    }

    fn wd_start(&mut self, wd: WatchdogId, delay: u64, action: IsrAction) {
        self.k.wd_start(wd, delay, action);
    }

    fn wd_cancel(&mut self, wd: WatchdogId) {
        self.k.wd_cancel(wd);
    }

    fn take_timed_out(&mut self) -> bool {
        self.k.take_timed_out(self.me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::FnTask;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_budget(k: &mut Kernel, max_steps: u32) {
        for _ in 0..max_steps {
            if k.step() == KernelEvent::Idle {
                break;
            }
        }
    }

    #[test]
    fn highest_priority_runs_first() {
        let mut k = Kernel::new(KernelConfig::default());
        let log = Rc::new(RefCell::new(Vec::new()));
        for (name, prio) in [("low", 200u8), ("high", 10), ("mid", 100)] {
            let log = Rc::clone(&log);
            k.spawn(
                prio,
                Box::new(FnTask::new(name, move |_ctx| {
                    log.borrow_mut().push(name);
                    StepResult::Exit { cycles: 100 }
                })),
            );
        }
        run_budget(&mut k, 10);
        assert_eq!(*log.borrow(), vec!["high", "mid", "low"]);
    }

    #[test]
    fn preemption_via_isr_give() {
        let mut k = Kernel::new(KernelConfig::default());
        let sem = k.create_sem(SemKind::Binary, 0);
        let log = Rc::new(RefCell::new(Vec::new()));

        let l = Rc::clone(&log);
        let high = k.spawn(
            10,
            Box::new(FnTask::new("high", move |ctx| {
                if ctx.sem_take_nowait(SemId(0)) {
                    l.borrow_mut().push("high-ran");
                    StepResult::Exit { cycles: 10 }
                } else {
                    StepResult::Block {
                        cycles: 5,
                        on: BlockOn::SemTake(SemId(0), None),
                    }
                }
            })),
        );
        let l = Rc::clone(&log);
        k.spawn(
            100,
            Box::new(FnTask::new("low", move |_ctx| {
                l.borrow_mut().push("low-step");
                StepResult::Ran { cycles: 50 }
            })),
        );

        // High blocks on the semaphore; low runs.
        run_budget(&mut k, 3);
        assert_eq!(k.task_state(high), TaskState::Pended);
        assert!(log.borrow().contains(&"low-step"));
        // Interrupt gives the semaphore: high preempts at the next step.
        k.isr_sem_give(sem);
        let e = k.step();
        match e {
            KernelEvent::Ran { task, switched, .. } => {
                assert_eq!(task, high);
                assert!(switched);
            }
            other => panic!("expected high to run, got {other:?}"),
        }
        assert!(log.borrow().contains(&"high-ran"));
    }

    #[test]
    fn delay_wakes_on_tick() {
        let mut k = Kernel::new(KernelConfig::default());
        let t = k.spawn(
            50,
            Box::new(FnTask::new("sleeper", |_ctx| StepResult::Block {
                cycles: 5,
                on: BlockOn::Delay(3),
            })),
        );
        k.step();
        assert_eq!(k.task_state(t), TaskState::Delayed);
        k.tick_announce();
        k.tick_announce();
        assert_eq!(k.task_state(t), TaskState::Delayed);
        k.tick_announce();
        assert_eq!(k.task_state(t), TaskState::Ready);
    }

    #[test]
    fn round_robin_shares_among_equals() {
        let mut k = Kernel::new(KernelConfig::default());
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b"] {
            let log = Rc::clone(&log);
            k.spawn(
                50,
                Box::new(FnTask::new(name, move |_ctx| {
                    log.borrow_mut().push(name);
                    StepResult::Ran { cycles: 1000 }
                })),
            );
        }
        // Run a; tick expires the slice; run b; etc.
        for _ in 0..4 {
            k.step();
            k.tick_announce();
        }
        let l = log.borrow();
        assert!(l.contains(&"a") && l.contains(&"b"), "both ran: {l:?}");
    }

    #[test]
    fn fifo_within_priority_without_time_slice() {
        let cfg = KernelConfig {
            round_robin_ticks: None,
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b"] {
            let log = Rc::clone(&log);
            k.spawn(
                50,
                Box::new(FnTask::new(name, move |_ctx| {
                    log.borrow_mut().push(name);
                    StepResult::Ran { cycles: 1000 }
                })),
            );
        }
        for _ in 0..4 {
            k.step();
            k.tick_announce();
        }
        assert_eq!(*log.borrow(), vec!["a", "a", "a", "a"], "no rotation without slicing");
    }

    #[test]
    fn producer_consumer_over_msgq() {
        let mut k = Kernel::new(KernelConfig::default());
        let q = k.create_queue(4);
        let got = Rc::new(RefCell::new(Vec::new()));

        let g = Rc::clone(&got);
        k.spawn(
            20,
            Box::new(FnTask::new("consumer", move |ctx| match ctx.msg_recv_nowait(QId(0)) {
                Some(m) => {
                    g.borrow_mut().push(m);
                    if m == 99 {
                        StepResult::Exit { cycles: 10 }
                    } else {
                        StepResult::Ran { cycles: 10 }
                    }
                }
                None => StepResult::Block {
                    cycles: 5,
                    on: BlockOn::MsgRecv(QId(0), None),
                },
            })),
        );
        let sent = Rc::new(RefCell::new(0u64));
        let s = Rc::clone(&sent);
        k.spawn(
            30,
            Box::new(FnTask::new("producer", move |ctx| {
                let mut n = s.borrow_mut();
                let msg = if *n == 2 { 99 } else { *n };
                ctx.msg_send_nowait(QId(0), msg);
                *n += 1;
                if *n > 2 {
                    StepResult::Exit { cycles: 10 }
                } else {
                    StepResult::Ran { cycles: 10 }
                }
            })),
        );
        run_budget(&mut k, 50);
        assert_eq!(*got.borrow(), vec![0, 1, 99]);
        let _ = q;
    }

    #[test]
    fn watchdog_fires_and_wakes_pended_task() {
        let mut k = Kernel::new(KernelConfig::default());
        let sem = k.create_sem(SemKind::Binary, 0);
        let wd = k.create_watchdog();
        let t = k.spawn(
            40,
            Box::new(FnTask::new("waiter", move |ctx| {
                if ctx.sem_take_nowait(SemId(0)) {
                    StepResult::Exit { cycles: 10 }
                } else {
                    StepResult::Block {
                        cycles: 5,
                        on: BlockOn::SemTake(SemId(0), None),
                    }
                }
            })),
        );
        k.step();
        assert_eq!(k.task_state(t), TaskState::Pended);
        k.wd_start(wd, 2, IsrAction::SemGive(sem));
        k.tick_announce();
        assert_eq!(k.task_state(t), TaskState::Pended, "not yet");
        k.tick_announce();
        assert_eq!(k.task_state(t), TaskState::Ready, "watchdog gave the sem");
        run_budget(&mut k, 5);
        assert_eq!(k.task_state(t), TaskState::Done);
    }

    #[test]
    fn periodic_watchdog_refires() {
        let mut k = Kernel::new(KernelConfig::default());
        let q = k.create_queue(16);
        let wd = k.create_watchdog();
        k.wd_start_periodic(wd, 2, IsrAction::MsgSend(q, 7));
        for _ in 0..6 {
            k.tick_announce();
        }
        assert_eq!(k.queue(q).len(), 3, "fired at ticks 2, 4, 6");
    }

    #[test]
    fn priority_inheritance_boosts_mutex_owner() {
        let mut k = Kernel::new(KernelConfig::default());
        let m = k.create_sem(SemKind::Mutex { inversion_safe: true }, 1);
        // Low-priority task takes the mutex and then runs forever.
        let low = k.spawn(
            200,
            Box::new(FnTask::new("low", move |ctx| {
                ctx.sem_take_nowait(SemId(0));
                StepResult::Ran { cycles: 10 }
            })),
        );
        k.step(); // low takes the mutex
        assert_eq!(k.task_priority(low), 200);
        // High-priority task arrives and pends on it.
        let high = k.spawn(
            10,
            Box::new(FnTask::new("high", move |ctx| {
                if ctx.sem_take_nowait(SemId(0)) {
                    StepResult::Exit { cycles: 5 }
                } else {
                    StepResult::Block {
                        cycles: 5,
                        on: BlockOn::SemTake(SemId(0), None),
                    }
                }
            })),
        );
        k.step(); // high runs, fails take, pends
        assert_eq!(k.task_state(high), TaskState::Pended);
        assert_eq!(k.task_priority(low), 10, "owner boosted to waiter priority");
        let _ = m;
    }

    #[test]
    fn context_switches_are_charged() {
        let mut k = Kernel::new(KernelConfig::default());
        for name in ["a", "b"] {
            k.spawn(50, Box::new(FnTask::new(name, |_| StepResult::Yield { cycles: 100 })));
        }
        k.step(); // switch to a (+250) run 100, yield
        k.step(); // switch to b (+250) run 100, yield
        assert_eq!(k.context_switches(), 2);
        assert_eq!(k.total_cycles(), 2 * (250 + 100));
    }

    #[test]
    fn sem_take_timeout_expires_and_flags() {
        let mut k = Kernel::new(KernelConfig::default());
        let _sem = k.create_sem(SemKind::Binary, 0);
        let outcomes = Rc::new(RefCell::new(Vec::new()));
        let o = Rc::clone(&outcomes);
        let t = k.spawn(
            30,
            Box::new(FnTask::new("waiter", move |ctx| {
                if ctx.take_timed_out() {
                    o.borrow_mut().push("timed-out");
                    return StepResult::Exit { cycles: 5 };
                }
                if ctx.sem_take_nowait(SemId(0)) {
                    o.borrow_mut().push("got-it");
                    StepResult::Exit { cycles: 5 }
                } else {
                    StepResult::Block {
                        cycles: 5,
                        on: BlockOn::SemTake(SemId(0), Some(3)),
                    }
                }
            })),
        );
        k.step();
        assert_eq!(k.task_state(t), TaskState::Pended);
        k.tick_announce();
        k.tick_announce();
        assert_eq!(k.task_state(t), TaskState::Pended, "not yet expired");
        k.tick_announce();
        assert_eq!(k.task_state(t), TaskState::Ready, "timeout readied it");
        run_budget(&mut k, 3);
        assert_eq!(*outcomes.borrow(), vec!["timed-out"]);
        assert_eq!(k.task_state(t), TaskState::Done);
    }

    #[test]
    fn signal_beats_timeout() {
        let mut k = Kernel::new(KernelConfig::default());
        let sem = k.create_sem(SemKind::Binary, 0);
        let outcomes = Rc::new(RefCell::new(Vec::new()));
        let o = Rc::clone(&outcomes);
        k.spawn(
            30,
            Box::new(FnTask::new("waiter", move |ctx| {
                if ctx.take_timed_out() {
                    o.borrow_mut().push("timed-out");
                    return StepResult::Exit { cycles: 5 };
                }
                if ctx.sem_take_nowait(SemId(0)) {
                    o.borrow_mut().push("got-it");
                    StepResult::Exit { cycles: 5 }
                } else {
                    StepResult::Block {
                        cycles: 5,
                        on: BlockOn::SemTake(SemId(0), Some(10)),
                    }
                }
            })),
        );
        k.step();
        k.tick_announce();
        k.isr_sem_give(sem); // signal well before tick 10
        run_budget(&mut k, 3);
        assert_eq!(*outcomes.borrow(), vec!["got-it"]);
        // Later ticks must not re-fire a stale timeout.
        for _ in 0..15 {
            k.tick_announce();
        }
    }

    #[test]
    fn recv_timeout_removes_from_wait_queue() {
        let mut k = Kernel::new(KernelConfig::default());
        let q = k.create_queue(4);
        let t = k.spawn(
            30,
            Box::new(FnTask::new("rx", move |ctx| {
                if ctx.take_timed_out() {
                    return StepResult::Exit { cycles: 5 };
                }
                match ctx.msg_recv_nowait(QId(0)) {
                    Some(_) => StepResult::Exit { cycles: 5 },
                    None => StepResult::Block {
                        cycles: 5,
                        on: BlockOn::MsgRecv(QId(0), Some(2)),
                    },
                }
            })),
        );
        k.step();
        k.tick_announce();
        k.tick_announce();
        run_budget(&mut k, 3);
        assert_eq!(k.task_state(t), TaskState::Done);
        // The queue's waiter list is clean: a later send just queues.
        assert!(k.isr_msg_send(q, 1));
        assert_eq!(k.queue(q).len(), 1);
    }

    #[test]
    fn idle_when_everything_blocked() {
        let mut k = Kernel::new(KernelConfig::default());
        k.spawn(
            50,
            Box::new(FnTask::new("sleeper", |_| StepResult::Block {
                cycles: 1,
                on: BlockOn::Delay(100),
            })),
        );
        k.step();
        assert_eq!(k.step(), KernelEvent::Idle);
    }
}
