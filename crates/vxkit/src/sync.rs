//! Semaphores and message queues (`semLib` / `msgQLib`).
//!
//! Wait queues are **priority-ordered with FIFO tiebreak** (VxWorks
//! `SEM_Q_PRIORITY`). Mutex semaphores optionally apply **priority
//! inheritance** (`SEM_INVERSION_SAFE`): while a task holds the mutex, its
//! effective priority is raised to the highest priority among waiters,
//! restored on give.
//!
//! These structures hold task ids and values only; the kernel performs the
//! actual ready/pend transitions, so everything here is plain, testable
//! data manipulation.

use crate::task::TaskId;
use std::collections::VecDeque;

/// Semaphore identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SemId(pub u32);

/// Message queue identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QId(pub u32);

/// Semaphore flavours.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SemKind {
    /// Binary semaphore (event signalling). Gives beyond 1 are lost.
    Binary,
    /// Counting semaphore.
    Counting,
    /// Mutual-exclusion semaphore with ownership; optionally
    /// inversion-safe.
    Mutex {
        /// Apply priority inheritance while held.
        inversion_safe: bool,
    },
}

/// A wait queue ordered by (priority, FIFO seq).
#[derive(Debug, Default)]
pub struct WaitQueue {
    entries: Vec<(u8, u64, TaskId)>,
    seq: u64,
}

impl WaitQueue {
    /// Enqueue a waiter with its current priority.
    pub fn push(&mut self, task: TaskId, priority: u8) {
        let seq = self.seq;
        self.seq += 1;
        let pos = self
            .entries
            .iter()
            .position(|&(p, s, _)| (p, s) > (priority, seq))
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, (priority, seq, task));
    }

    /// Remove and return the best waiter.
    pub fn pop(&mut self) -> Option<TaskId> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0).2)
        }
    }

    /// Remove a specific task (timeout or deletion).
    pub fn remove(&mut self, task: TaskId) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(_, _, t)| t == task) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Highest waiter priority (lowest number), if any.
    pub fn best_priority(&self) -> Option<u8> {
        self.entries.first().map(|&(p, _, _)| p)
    }

    /// Number of waiters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no tasks wait.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Semaphore control block.
#[derive(Debug)]
pub struct Semaphore {
    /// Flavour.
    pub kind: SemKind,
    /// Current count (binary: 0/1; mutex: 1 = free).
    pub count: u32,
    /// Pending takers.
    pub waiters: WaitQueue,
    /// Mutex owner, if held.
    pub owner: Option<TaskId>,
    /// Recursion depth for mutex re-takes by the owner.
    pub recursion: u32,
}

impl Semaphore {
    /// New semaphore with an initial count.
    pub fn new(kind: SemKind, initial: u32) -> Semaphore {
        let count = match kind {
            SemKind::Binary => initial.min(1),
            SemKind::Counting => initial,
            SemKind::Mutex { .. } => 1,
        };
        Semaphore {
            kind,
            count,
            waiters: WaitQueue::default(),
            owner: None,
            recursion: 0,
        }
    }

    /// Non-blocking take attempt by `task`. Returns success.
    pub fn try_take(&mut self, task: TaskId) -> bool {
        match self.kind {
            SemKind::Mutex { .. } => {
                if self.owner == Some(task) {
                    self.recursion += 1;
                    true
                } else if self.count > 0 {
                    self.count = 0;
                    self.owner = Some(task);
                    true
                } else {
                    false
                }
            }
            _ => {
                if self.count > 0 {
                    self.count -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Give, Mesa-style: the token is banked on the semaphore and the best
    /// waiter (if any) is returned for the kernel to ready — the waiter
    /// *re-attempts* the take when it next runs, and re-pends if a
    /// higher-priority task got there first. For mutexes only the owner may
    /// give; recursion unwinds first.
    pub fn give(&mut self, giver: Option<TaskId>) -> Option<TaskId> {
        if let SemKind::Mutex { .. } = self.kind {
            if let Some(owner) = self.owner {
                if giver.is_some() && giver != Some(owner) {
                    return None; // foreign give on a held mutex: ignored
                }
                if self.recursion > 0 {
                    self.recursion -= 1;
                    return None;
                }
            }
            self.owner = None;
            self.count = 1;
            return self.waiters.pop();
        }
        self.count = match self.kind {
            SemKind::Binary => 1,
            _ => self.count + 1,
        };
        self.waiters.pop()
    }
}

/// Bounded message queue carrying `u64` message words (the I2O layer packs
/// descriptors/MFAs into single words exactly like the real hardware
/// queues).
#[derive(Debug)]
pub struct MsgQueue {
    /// Buffered messages.
    pub messages: VecDeque<u64>,
    /// Capacity in messages.
    pub capacity: usize,
    /// Tasks pending on receive.
    pub recv_waiters: WaitQueue,
    /// Tasks pending on send (queue full), with the value they tried to
    /// send.
    pub send_waiters: Vec<(TaskId, u64)>,
    /// Messages dropped by `send_nowait` on a full queue (diagnostics).
    pub dropped: u64,
}

impl MsgQueue {
    /// Queue with capacity `cap` messages.
    pub fn new(cap: usize) -> MsgQueue {
        MsgQueue {
            messages: VecDeque::with_capacity(cap),
            capacity: cap.max(1),
            recv_waiters: WaitQueue::default(),
            send_waiters: Vec::new(),
            dropped: 0,
        }
    }

    /// Non-blocking send; false (and counted drop) when full.
    pub fn send_nowait(&mut self, msg: u64) -> bool {
        if self.messages.len() >= self.capacity {
            self.dropped += 1;
            false
        } else {
            self.messages.push_back(msg);
            true
        }
    }

    /// Non-blocking receive.
    pub fn recv_nowait(&mut self) -> Option<u64> {
        self.messages.pop_front()
    }

    /// Queue depth.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Whether at capacity.
    pub fn is_full(&self) -> bool {
        self.messages.len() >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_queue_priority_then_fifo() {
        let mut q = WaitQueue::default();
        q.push(TaskId(1), 50);
        q.push(TaskId(2), 10);
        q.push(TaskId(3), 50);
        q.push(TaskId(4), 10);
        assert_eq!(q.pop(), Some(TaskId(2)), "priority 10 first, FIFO among equals");
        assert_eq!(q.pop(), Some(TaskId(4)));
        assert_eq!(q.pop(), Some(TaskId(1)));
        assert_eq!(q.pop(), Some(TaskId(3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wait_queue_remove() {
        let mut q = WaitQueue::default();
        q.push(TaskId(1), 5);
        q.push(TaskId(2), 5);
        assert!(q.remove(TaskId(1)));
        assert!(!q.remove(TaskId(1)));
        assert_eq!(q.pop(), Some(TaskId(2)));
    }

    #[test]
    fn binary_semaphore_saturates() {
        let mut s = Semaphore::new(SemKind::Binary, 0);
        assert!(!s.try_take(TaskId(0)));
        assert_eq!(s.give(None), None);
        assert_eq!(s.give(None), None); // second give lost
        assert!(s.try_take(TaskId(0)));
        assert!(!s.try_take(TaskId(0)));
    }

    #[test]
    fn counting_semaphore_accumulates() {
        let mut s = Semaphore::new(SemKind::Counting, 0);
        s.give(None);
        s.give(None);
        assert!(s.try_take(TaskId(0)));
        assert!(s.try_take(TaskId(0)));
        assert!(!s.try_take(TaskId(0)));
    }

    #[test]
    fn give_banks_token_and_wakes_best_waiter() {
        let mut s = Semaphore::new(SemKind::Binary, 0);
        s.waiters.push(TaskId(7), 100);
        s.waiters.push(TaskId(8), 10);
        assert_eq!(s.give(None), Some(TaskId(8)));
        assert_eq!(s.count, 1, "Mesa-style: token banked, waiter re-takes");
        assert!(s.try_take(TaskId(8)));
    }

    #[test]
    fn mutex_ownership_and_recursion() {
        let mut s = Semaphore::new(SemKind::Mutex { inversion_safe: true }, 1);
        let a = TaskId(1);
        assert!(s.try_take(a));
        assert!(s.try_take(a), "recursive take by owner");
        assert_eq!(s.give(Some(a)), None, "recursion unwinds");
        assert_eq!(s.owner, Some(a), "still held");
        assert_eq!(s.give(Some(a)), None);
        assert_eq!(s.owner, None, "released");
        assert!(s.try_take(TaskId(2)));
    }

    #[test]
    fn mutex_foreign_give_ignored() {
        let mut s = Semaphore::new(SemKind::Mutex { inversion_safe: false }, 1);
        assert!(s.try_take(TaskId(1)));
        assert_eq!(s.give(Some(TaskId(2))), None);
        assert_eq!(s.owner, Some(TaskId(1)), "ownership unchanged");
    }

    #[test]
    fn mutex_give_wakes_waiter_who_retakes() {
        let mut s = Semaphore::new(SemKind::Mutex { inversion_safe: true }, 1);
        assert!(s.try_take(TaskId(1)));
        s.waiters.push(TaskId(2), 20);
        assert_eq!(s.give(Some(TaskId(1))), Some(TaskId(2)));
        assert_eq!(s.owner, None, "Mesa-style: waiter re-takes on wakeup");
        assert!(s.try_take(TaskId(2)));
        assert_eq!(s.owner, Some(TaskId(2)));
    }

    #[test]
    fn msgq_bounded_fifo() {
        let mut q = MsgQueue::new(2);
        assert!(q.send_nowait(1));
        assert!(q.send_nowait(2));
        assert!(!q.send_nowait(3));
        assert_eq!(q.dropped, 1);
        assert!(q.is_full());
        assert_eq!(q.recv_nowait(), Some(1));
        assert_eq!(q.recv_nowait(), Some(2));
        assert_eq!(q.recv_nowait(), None);
    }
}
