//! Tasks as resumable state machines.
//!
//! A task body is polled by the kernel when it is the highest-priority
//! ready task. Each poll performs a bounded amount of (modelled) work and
//! reports how many CPU cycles that work cost plus what the task does next
//! — keep running, block on a kernel object, delay, or exit. This
//! "execution by accounting" style lets the same task bodies run under any
//! clock (the hwsim i960 at 66 MHz, a host CPU at 200 MHz) with exact,
//! deterministic timing.

/// Task identifier (dense index into the kernel's TCB table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a task is blocked on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockOn {
    /// `semTake` — pend until the semaphore is given (optional tick
    /// timeout).
    SemTake(crate::sync::SemId, Option<u64>),
    /// `msgQReceive` — pend until a message arrives (optional timeout).
    MsgRecv(crate::sync::QId, Option<u64>),
    /// `msgQSend` on a full queue — pend until space (optional timeout).
    MsgSend(crate::sync::QId, Option<u64>),
    /// `taskDelay(n)` — sleep for `n` ticks.
    Delay(u64),
}

/// Outcome of one poll of a task body.
#[derive(Debug)]
pub enum StepResult {
    /// Consumed `cycles` and remains ready (will be polled again when it is
    /// still the highest-priority ready task).
    Ran {
        /// CPU cycles consumed by this step.
        cycles: u64,
    },
    /// Consumed `cycles`, then voluntarily yielded the CPU to equal-priority
    /// peers (`taskDelay(0)` idiom).
    Yield {
        /// CPU cycles consumed by this step.
        cycles: u64,
    },
    /// Consumed `cycles`, then blocked.
    Block {
        /// CPU cycles consumed before blocking.
        cycles: u64,
        /// What the task pends on.
        on: BlockOn,
    },
    /// Consumed `cycles`, then exited (`taskDelete(self)`).
    Exit {
        /// CPU cycles consumed by the final step.
        cycles: u64,
    },
}

/// A task body: the modelled workload. `ctx` exposes the ISR-safe and
/// task-level kernel services a body may invoke mid-step (semGive,
/// msgQSend-NoWait, tickGet, …).
pub trait TaskBody {
    /// Execute one bounded step.
    fn step(&mut self, ctx: &mut dyn TaskCtx) -> StepResult;

    /// Diagnostic task name (`taskName`).
    fn name(&self) -> &str {
        "task"
    }
}

/// Kernel services callable from inside a task step. Mirrors the subset of
/// the VxWorks API that is callable without pending (pending is expressed
/// through [`StepResult::Block`] instead).
pub trait TaskCtx {
    /// `semGive` — non-blocking.
    fn sem_give(&mut self, sem: crate::sync::SemId);
    /// `msgQSend(NO_WAIT)` — returns false if the queue is full.
    fn msg_send_nowait(&mut self, q: crate::sync::QId, msg: u64) -> bool;
    /// `msgQReceive(NO_WAIT)` — returns `None` if empty.
    fn msg_recv_nowait(&mut self, q: crate::sync::QId) -> Option<u64>;
    /// `semTake(NO_WAIT)` — returns false if unavailable.
    fn sem_take_nowait(&mut self, sem: crate::sync::SemId) -> bool;
    /// `tickGet` — kernel tick counter.
    fn tick_get(&self) -> u64;
    /// The calling task's id (`taskIdSelf`).
    fn task_self(&self) -> TaskId;
    /// Start (or restart) a watchdog: fire `action` after `delay` ticks.
    fn wd_start(&mut self, wd: crate::timer::WatchdogId, delay: u64, action: crate::timer::IsrAction);
    /// Cancel a watchdog.
    fn wd_cancel(&mut self, wd: crate::timer::WatchdogId);
    /// Whether the calling task's last pend ended by timeout (reading
    /// clears the flag — `S_objLib_OBJ_TIMEOUT` semantics).
    fn take_timed_out(&mut self) -> bool;
}

/// Task lifecycle states (windALib's state vector, simplified).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// Eligible to run.
    Ready,
    /// Blocked on a kernel object.
    Pended,
    /// Sleeping until a tick deadline.
    Delayed,
    /// Exited.
    Done,
}

/// A closure-backed task body for simple tasks and tests.
pub struct FnTask<F> {
    name: String,
    f: F,
}

impl<F: FnMut(&mut dyn TaskCtx) -> StepResult> FnTask<F> {
    /// Wrap a closure as a task body.
    pub fn new(name: impl Into<String>, f: F) -> FnTask<F> {
        FnTask { name: name.into(), f }
    }
}

impl<F: FnMut(&mut dyn TaskCtx) -> StepResult> TaskBody for FnTask<F> {
    fn step(&mut self, ctx: &mut dyn TaskCtx) -> StepResult {
        (self.f)(ctx)
    }

    fn name(&self) -> &str {
        &self.name
    }
}
